"""E9 — DDI (semantic UI) vs universal interaction (pixel UI).

HAVi's own DDI ships abstract element trees and semantic actions; the
paper ships pixels and raw input events.  Same task on both paths:
*toggle the TV's power from a handheld and observe the confirmation.*

Expected shape: DDI moves ~10²-10³ bytes per interaction where the
thin-client moves a dithered frame (~10³-10⁴ on a phone, ~10⁶ on a TV
panel) — but the thin-client path needs no appliance-side UI description
and works with unmodified GUI applications (E8), which is the paper's
trade.
"""

from __future__ import annotations

import pytest

from repro import Home
from repro.appliances import Television
from repro.devices import CellPhone
from repro.havi import SEID
from repro.havi.ddi import DdiController
from repro.util.ids import guid_from_seed


def _uip_setup():
    home = Home(width=480, height=360)
    tv = home.add_appliance(Television("TV"))
    home.settle()
    phone = CellPhone("keitai", home.scheduler)
    phone.connect(home.proxy)
    home.proxy.select_input("keitai")
    home.proxy.select_output("keitai")
    home.settle()
    return home, tv, phone


def _ddi_setup():
    home = Home(width=480, height=360)
    tv = home.add_appliance(Television("TV"))
    home.settle()
    controller = DdiController(
        SEID(guid_from_seed("bench-ddi"), 0),
        home.network.messaging, home.network.events)
    controller.attach()
    server = home.network.dcm_manager.ddi_server_for(tv.guid)
    controller.open(server.seid)
    home.settle()
    return home, tv, controller


def test_uip_interaction_bytes(benchmark):
    home, tv, phone = _uip_setup()

    def toggle():
        before = (phone.link_stats.bytes_received
                  + phone.link_stats.bytes_sent)
        phone.press("5")
        home.settle()
        return (phone.link_stats.bytes_received
                + phone.link_stats.bytes_sent) - before

    bytes_per_toggle = benchmark(toggle)
    benchmark.extra_info["bytes_per_interaction"] = bytes_per_toggle
    benchmark.extra_info["path"] = "universal interaction (pixels)"


def test_ddi_interaction_bytes(benchmark):
    home, tv, controller = _ddi_setup()

    def toggle():
        before = controller.bytes_moved
        controller.action("1:power", verb="toggle")
        home.settle()
        return controller.bytes_moved - before

    bytes_per_toggle = benchmark(toggle)
    benchmark.extra_info["bytes_per_interaction"] = bytes_per_toggle
    benchmark.extra_info["path"] = "DDI (semantic)"


def test_setup_cost_comparison(benchmark):
    """Initial UI acquisition: DDI tree fetch vs first thin-client frame."""

    def measure():
        home_u, tv_u, phone = _uip_setup()
        uip_setup_bytes = phone.link_stats.bytes_received
        home_d, tv_d, controller = _ddi_setup()
        ddi_setup_bytes = controller.bytes_moved
        return {"uip": uip_setup_bytes, "ddi": ddi_setup_bytes}

    result = benchmark.pedantic(measure, rounds=3, iterations=1)
    benchmark.extra_info.update(result)
    # both fetch an initial UI of the same order of magnitude
    assert result["uip"] > 0 and result["ddi"] > 0


def test_shape_ddi_much_smaller_per_interaction(benchmark):
    home_u, tv_u, phone = _uip_setup()
    home_d, tv_d, controller = _ddi_setup()

    def both():
        before_u = phone.link_stats.bytes_received + phone.link_stats.bytes_sent
        phone.press("5")
        home_u.settle()
        uip = (phone.link_stats.bytes_received
               + phone.link_stats.bytes_sent) - before_u
        before_d = controller.bytes_moved
        controller.action("1:power", verb="toggle")
        home_d.settle()
        ddi = controller.bytes_moved - before_d
        return {"uip": uip, "ddi": ddi}

    result = benchmark.pedantic(both, rounds=3, iterations=1)
    assert result["ddi"] < result["uip"]
    benchmark.extra_info.update(result)
    benchmark.extra_info["uip_over_ddi"] = round(
        result["uip"] / result["ddi"], 1)

"""E11 — self-healing under the standard fault schedule.

Workload: the chaos acceptance scenario at benchmark scale.  A 32-home
TCP fleet (one reactor, one PDA client + one lamp per home) is subjected
to the seeded storm from ``tests/integration/test_chaos.py`` — hard RSTs
on session upstreams, 2-second partitions, 30% frame drops on device
legs, device-leg resets and one crashed home — and must heal completely.
Then repeated RST rounds measure the wall-clock reconnect distribution:
from the reset to the session being warm-resumed (token handshake + one
full-frame resync), sampled once per reactor turn.

Metrics (recorded to ``BENCH_RESILIENCE.json``; written in smoke runs
too, flagged, because the healing acceptance rides on the recorded
numbers):

* storm outcome: sessions parked/resumed, resyncs per reconnect (must be
  exactly 1), device-leg redials, dropped frames, permanent losses (0),
* reconnect wall latency p50/p99 across homes × rounds,
* a crash-looping home driven into its restart cap, with the recorded
  permanent-failure reason.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro import HomeFleet
from repro.appliances import DimmableLight
from repro.devices import Pda
from repro.net import FaultInjector, FaultPlan, FaultyTransport

SEED = 20020
HEARTBEAT_S = 0.25
STALL_S = 2.0


def _populate(home, tag):
    home.add_appliance(DimmableLight(f"lamp-{tag}"))
    home.add_device(Pda(f"pda-{tag}", home.scheduler))
    return home


def _build_fleet(n_homes: int) -> HomeFleet:
    fleet = HomeFleet()
    for i in range(n_homes):
        _populate(fleet.add_home(f"h{i:02d}", width=120, height=90,
                                 resilience=True,
                                 heartbeat_s=HEARTBEAT_S), i)
    fleet.settle()
    assert all(h.server_session.ready for h in fleet)
    return fleet


def _sole_device(home):
    return next(iter(home.devices.values()))


def _percentile(values, q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _run_storm(fleet: HomeFleet, n_homes: int) -> dict:
    """The standard fault schedule; returns the healing scorecard."""
    rng = random.Random(SEED)
    chaos = FaultInjector(seed=SEED)
    homes = [fleet.home(f"h{i:02d}") for i in range(n_homes)]
    rng.shuffle(homes)
    n_rst = max(2, n_homes // 5)
    n_stall = max(1, n_homes // 8)
    n_drop = max(1, n_homes // 5)
    n_leg = max(1, n_homes // 8)
    rst_homes = homes[:n_rst]
    stall_homes = homes[n_rst:n_rst + n_stall]
    rest = homes[n_rst + n_stall:]
    drop_homes = rest[:n_drop]
    leg_homes = rest[n_drop:n_drop + n_leg]
    crashed = rest[n_drop + n_leg]

    fleet.enable_supervision(max_restarts=3, rebuild=lambda f, name, h:
                             _populate(h, name))
    for home in rst_homes:
        chaos.rst(home.session.upstream.endpoint)
    for home in stall_homes:
        chaos.partition_home(home, seconds=STALL_S)
        pda = _sole_device(home)
        for k in range(5):  # taps wake the heartbeats during the blackout
            home.scheduler.call_later(0.3 * (k + 1),
                                      lambda p=pda: p.tap(10, 10))
    drop_wrappers = []
    for home in drop_homes:
        pair = _sole_device(home)._pairs[home.proxy.proxy_id]
        pair.a = FaultyTransport(pair.a, FaultPlan(seed=SEED, drop=0.3),
                                 home.scheduler)
        drop_wrappers.append(pair.a)
    for home in leg_homes:
        chaos.rst(_sole_device(home).endpoint_for(home.proxy.proxy_id))
    chaos.crash_home(crashed, reason="injected appliance crash")

    wall_start = time.perf_counter()
    fleet.settle()
    for home in drop_homes:  # loss degrades, must not disconnect
        for _ in range(20):
            _sole_device(home).tap(10, 10)
    fleet.settle()
    restarted = fleet.supervise()
    fleet.settle()
    wall = time.perf_counter() - wall_start

    reconnected = rst_homes + stall_homes
    resyncs = [h.session.upstream.updates_received for h in reconnected]
    assert all(h.session.upstream.ready for h in fleet)
    assert all(n == 1 for n in resyncs), \
        "every reconnect must cost exactly one full-frame resync"
    assert restarted == [crashed.name]
    return {
        "homes": n_homes,
        "schedule": {
            "session_rsts": n_rst,
            "partitions_2s": n_stall,
            "device_legs_at_30pct_drop": n_drop,
            "device_leg_rsts": n_leg,
            "home_crashes": 1,
        },
        "sessions_reconnected": sum(
            h.session.resilience.reconnect_count for h in reconnected),
        "sessions_parked": sum(
            h.uniint_server.sessions_parked for h in reconnected),
        "sessions_resumed": sum(
            h.uniint_server.sessions_resumed for h in reconnected),
        "resyncs_per_reconnect": 1.0,
        "device_leg_redials": sum(
            _sole_device(h).link_reconnects for h in leg_homes),
        "device_frames_dropped": sum(
            w.frames_dropped for w in drop_wrappers),
        "homes_restarted_by_supervisor": restarted,
        "sessions_lost_permanently": sum(
            1 for h in fleet if h.session.resilience.failed_permanently),
        "heal_wall_s": wall,
    }


def _reconnect_round(fleet: HomeFleet, homes) -> dict[str, float]:
    """RST every session at once; per home, wall seconds until it is
    warm-resumed (ready again with its reconnect counted)."""
    baseline = {h.name: h.session.resilience.reconnect_count for h in homes}
    latencies: dict[str, float] = {}
    start = time.perf_counter()
    for home in homes:
        home.session.upstream.endpoint.abort()

    def all_back() -> bool:
        now = time.perf_counter()
        for home in homes:
            resilience = home.session.resilience
            if (home.name not in latencies
                    and resilience.reconnect_count > baseline[home.name]
                    and home.session.upstream.ready):
                latencies[home.name] = now - start
        return len(latencies) == len(homes)

    assert fleet.run_until(all_back, timeout_s=60.0), (
        f"reconnect round incomplete: {len(latencies)}/{len(homes)}")
    return latencies


def _run_reconnect_rounds(fleet: HomeFleet, rounds: int) -> dict:
    homes = list(fleet)
    samples: list[float] = []
    wall_start = time.perf_counter()
    for _ in range(rounds):
        samples.extend(_reconnect_round(fleet, homes).values())
        fleet.settle()
    wall = time.perf_counter() - wall_start
    assert all(h.session.upstream.updates_received == 1 for h in homes)
    return {
        "rounds": rounds,
        "homes": len(homes),
        "p50_reconnect_s": _percentile(samples, 0.50),
        "p99_reconnect_s": _percentile(samples, 0.99),
        "max_reconnect_s": max(samples),
        "wall_s_total": wall,
    }


def _run_crash_loop() -> dict:
    """A home that re-crashes on every resurrection until the budget."""
    fleet = HomeFleet()
    _populate(fleet.add_home("flaky", resilience=True), "flaky")
    chaos = FaultInjector(seed=SEED)
    fleet.settle()

    def rebuild(f, name, home):
        _populate(home, name)
        chaos.crash_home(home, reason="still broken")

    fleet.enable_supervision(max_restarts=2, rebuild=rebuild)
    chaos.crash_home(fleet.home("flaky"), reason="still broken")
    fleet.settle()
    sweeps = 0
    while fleet.supervise():
        fleet.settle()
        sweeps += 1
        assert sweeps <= 10, "supervision must converge"
    record = fleet.failure_of("flaky")
    assert record.permanent and record.restarts == 2
    fleet.close()
    return {
        "max_restarts": 2,
        "restarts_spent": record.restarts,
        "crashes_observed": len(record.errors),
        "permanent": record.permanent,
        "reason": record.reason,
    }


def test_resilience_heal_and_reconnect_distribution(smoke):
    n_homes = 8 if smoke else 32
    rounds = 2 if smoke else 5

    fleet = _build_fleet(n_homes)
    try:
        storm = _run_storm(fleet, n_homes)
        assert storm["sessions_lost_permanently"] == 0
        reconnect = _run_reconnect_rounds(fleet, rounds)
    finally:
        fleet.close()
    crash_loop = _run_crash_loop()

    out = Path(__file__).resolve().parents[1] / "BENCH_RESILIENCE.json"
    out.write_text(json.dumps({
        "experiment": "fault-injection storm healing and session "
                      "reconnect distribution",
        "workload": {
            "homes": n_homes,
            "screen": "120x90 per home, 1 lamp, 1 PDA client over a "
                      "real TCP loopback socket per home",
            "storm": "seeded schedule: session RSTs + 2s partitions + "
                     "30% device-leg frame drops + device-leg RSTs + "
                     "one crashed home (supervisor restart)",
            "reconnect_round": "RST every session's upstream at once, "
                               "wait for warm resume (token handshake + "
                               "one full-frame resync)",
            "heartbeat_s": HEARTBEAT_S,
            "smoke": bool(smoke),
        },
        "timing_method": "wall-clock (time.perf_counter) from RST to "
                         "resumed session, sampled once per reactor "
                         "turn; percentiles over homes x rounds",
        "storm": storm,
        "reconnect": reconnect,
        "crash_loop": crash_loop,
    }, indent=2) + "\n")

"""E4 — end-to-end interaction latency across device pairs and links.

Claim operationalised: interaction through the universal pipeline (device
event -> input plug-in -> UIP -> window system -> widget -> HAVi command ->
appliance, and the repaint all the way back to the device screen) is
tolerable on every device pairing.

Two numbers per pairing:

* wall time of simulating one full round trip (the benchmark statistic) —
  the *processing* cost;
* ``virtual_latency_ms`` in ``extra_info`` — the modelled wall-clock the
  user would experience, dominated by the device's bearer (the cellular
  phone pays ~1-2 s for a frame on 9600 bps; wired paths are milliseconds).

Expected shape: virtual latency ordered phone >> pda > tv/remote; the
proxy's own processing is negligible against the slow links.
"""

from __future__ import annotations

import pytest

from repro import Home
from repro.appliances import Television
from repro.devices import CellPhone, Pda, RemoteControl, TvDisplay, VoiceInput
from repro.havi import FcmType

PAIRINGS = {
    "pda/pda": (Pda, None),
    "phone/phone": (CellPhone, None),
    "voice/tv": (VoiceInput, TvDisplay),
    "remote/tv": (RemoteControl, TvDisplay),
}


def _build(pairing):
    input_cls, output_cls = PAIRINGS[pairing]
    home = Home(width=480, height=360)
    tv = home.add_appliance(Television("TV"))
    home.settle()
    input_device = input_cls("input-dev", home.scheduler)
    input_device.connect(home.proxy)
    home.proxy.select_input("input-dev")
    if output_cls is None:
        output_device = input_device
        home.proxy.select_output("input-dev")
    else:
        output_device = output_cls("output-dev", home.scheduler)
        output_device.connect(home.proxy)
        home.proxy.select_output("output-dev")
    home.settle()
    return home, tv, input_device, output_device


def _activate(device) -> None:
    """Press 'select' in whatever way this device does it."""
    if isinstance(device, CellPhone):
        device.press("5")
    elif isinstance(device, RemoteControl):
        device.press("ok")
    elif isinstance(device, VoiceInput):
        device.say("select")
    else:  # Pda: the power toggle is the first focusable; tap its centre
        raise AssertionError("unsupported input device")


@pytest.mark.parametrize("pairing", PAIRINGS)
def test_roundtrip_latency(benchmark, pairing):
    home, tv, input_device, output_device = _build(pairing)
    tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
    toggles = {"count": 0}

    def roundtrip():
        start = home.scheduler.now()
        frames_before = output_device.frames_received
        if isinstance(input_device, Pda):
            power = home.window.root.find(f"{tv.guid[:8]}.tuner.power")
            cx, cy = power.abs_rect().center
            dx, dy = home.session.context.view.to_device(cx, cy)
            input_device.tap(dx, dy)
        else:
            _activate(input_device)
        home.settle()
        toggles["count"] += 1
        assert output_device.frames_received > frames_before
        return home.scheduler.now() - start

    latency = benchmark(roundtrip)
    # power state flipped once per completed round trip
    expected = bool(toggles["count"] % 2)
    assert tuner.get_state("power") is expected
    benchmark.extra_info["virtual_latency_ms"] = round(latency * 1000, 2)
    benchmark.extra_info["input_link"] = input_device.descriptor.link.name
    benchmark.extra_info["output_link"] = output_device.descriptor.link.name


def test_proxy_overhead_vs_link(benchmark):
    """The modelled latency must be link-dominated, not proxy-dominated."""
    home, tv, phone, _ = _build("phone/phone")

    def roundtrip():
        start = home.scheduler.now()
        phone.press("5")
        home.settle()
        return home.scheduler.now() - start

    latency = benchmark(roundtrip)
    # one 128x128 mono frame on 9600bps is ~1.7s of serialisation alone
    frame_bytes = len(phone.screen_image.data)
    link = phone.descriptor.link
    serialisation = frame_bytes * 8 / link.bandwidth_bps
    benchmark.extra_info["virtual_latency_ms"] = round(latency * 1000, 1)
    benchmark.extra_info["link_serialisation_ms"] = round(
        serialisation * 1000, 1)
    assert latency > serialisation  # the link, not the proxy, dominates

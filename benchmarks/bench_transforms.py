"""E2 — output plug-in adaptation cost per device class.

Claim operationalised: any server bitmap can be adapted to any output
device by its uploaded plug-in (scale + colour-reduce + dither + pack).
Expected shape: cost scales with device pixel count; the phone (tiny,
error-diffused) and the wall display (huge, full colour) bracket the range;
per-frame output bytes reflect each screen's native depth.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import panel_frame
from repro.devices import CellPhone, Pda, TvDisplay, WallDisplay
from repro.proxy.plugins import SessionContext
from repro.util import Scheduler

DEVICES = {
    "phone-mono1": CellPhone,
    "pda-gray4": Pda,
    "tv-rgb888": TvDisplay,
    "wall-rgb888": WallDisplay,
}


@pytest.mark.parametrize("device_name", DEVICES)
def test_output_plugin_transform(benchmark, device_name):
    device = DEVICES[device_name](device_name, Scheduler())
    context = SessionContext()
    plugin = device.output_plugin_factory(device.descriptor, context)
    frame = panel_frame(480, 360)

    image = benchmark(lambda: plugin.transform(frame, frame.bounds))
    screen = device.descriptor.screen
    benchmark.extra_info["screen"] = f"{screen.width}x{screen.height}"
    benchmark.extra_info["format"] = image.format
    benchmark.extra_info["frame_bytes"] = len(image.data)
    benchmark.extra_info["bits_per_pixel"] = screen.bits_per_pixel


@pytest.mark.parametrize("device_name", ["phone-mono1", "pda-gray4"])
def test_transform_wire_image_fits_link_second(benchmark, device_name):
    """Device frame bytes vs the bearer's one-second byte budget."""
    device = DEVICES[device_name](device_name, Scheduler())
    context = SessionContext()
    plugin = device.output_plugin_factory(device.descriptor, context)
    frame = panel_frame(480, 360)

    image = benchmark(lambda: plugin.transform(frame, frame.bounds))
    link = device.descriptor.link
    budget = link.bandwidth_bps / 8.0
    benchmark.extra_info["frame_bytes"] = len(image.data)
    benchmark.extra_info["link_bytes_per_s"] = int(budget)
    benchmark.extra_info["frames_per_s_on_link"] = round(
        budget / len(image.data), 2)

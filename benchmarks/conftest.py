"""Shared workload builders for the experiment benchmarks (E1-E7).

The paper has no quantitative tables; DESIGN.md §4 defines the experiment
set these benchmarks implement.  Every benchmark attaches the numbers that
matter for the experiment's *shape* (bytes, ratios, virtual-time latencies)
to ``benchmark.extra_info`` so ``--benchmark-json`` captures them alongside
the timing data.
"""

from __future__ import annotations

import pytest

from repro import Home
from repro.appliances import Television, VideoRecorder
from repro.graphics import Bitmap, Rect, default_font, draw


def panel_frame(width: int, height: int) -> Bitmap:
    """A control-panel-like frame: flat fills, bevels, captions.

    This is the workload class the thin-client encodings were designed
    for; the examples' real app frames have the same statistics.
    """
    bmp = Bitmap(width, height, fill=(206, 206, 206))
    font = default_font(1)
    row_h = max(20, height // 8)
    y = 6
    captions = ["POWER", "CH-", "CH+", "VOLUME", "MUTE", "SOURCE"]
    while y + row_h < height - 6:
        caption = captions[(y // row_h) % len(captions)]
        draw.bevel_box(bmp, Rect(8, y, width - 16, row_h - 4),
                       face=(192, 192, 192), light=(250, 250, 250),
                       shadow=(96, 96, 96))
        font.draw(bmp, 14, y + (row_h - 11) // 2, caption, (10, 10, 10))
        if (y // row_h) % 2 == 1:  # alternate rows carry an accent bar
            bmp.fill_rect(Rect(width // 2, y + 4, width // 3, row_h - 12),
                          (40, 80, 160))
        y += row_h
    return bmp


@pytest.fixture
def tv_home():
    """A home with a TV and a VCR, settled."""
    home = Home(width=480, height=360)
    home.add_appliance(Television("TV"))
    home.add_appliance(VideoRecorder("VCR"))
    home.settle()
    return home


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker, so the
    tier-1 suite can deselect it wholesale (`-m "not bench"`)."""
    for item in items:
        item.add_marker(pytest.mark.bench)

"""Shared workload builders for the experiment benchmarks (E1-E7).

The paper has no quantitative tables; DESIGN.md §4 defines the experiment
set these benchmarks implement.  Every benchmark attaches the numbers that
matter for the experiment's *shape* (bytes, ratios, virtual-time latencies)
to ``benchmark.extra_info`` so ``--benchmark-json`` captures them alongside
the timing data.
"""

from __future__ import annotations

import pytest

from repro import Home
from repro.appliances import Television, VideoRecorder
from repro.graphics import Bitmap, Rect, default_font, draw
from repro.net import make_pipe
from repro.proxy.upstream import UniIntClient
from repro.server import UniIntServer
from repro.toolkit import Column, Label, UIWindow
from repro.util import Scheduler
from repro.windows import DisplayServer


def panel_frame(width: int, height: int) -> Bitmap:
    """A control-panel-like frame: flat fills, bevels, captions.

    This is the workload class the thin-client encodings were designed
    for; the examples' real app frames have the same statistics.
    """
    bmp = Bitmap(width, height, fill=(206, 206, 206))
    font = default_font(1)
    row_h = max(20, height // 8)
    y = 6
    captions = ["POWER", "CH-", "CH+", "VOLUME", "MUTE", "SOURCE"]
    while y + row_h < height - 6:
        caption = captions[(y // row_h) % len(captions)]
        draw.bevel_box(bmp, Rect(8, y, width - 16, row_h - 4),
                       face=(192, 192, 192), light=(250, 250, 250),
                       shadow=(96, 96, 96))
        font.draw(bmp, 14, y + (row_h - 11) // 2, caption, (10, 10, 10))
        if (y // row_h) % 2 == 1:  # alternate rows carry an accent bar
            bmp.fill_rect(Rect(width // 2, y + 4, width // 3, row_h - 12),
                          (40, 80, 160))
        y += row_h
    return bmp


def churn_panel_stack(profiles, *, shared: bool = True,
                      backpressure: bool = True):
    """A churn-ready 480x360 12-label panel with one session per profile.

    The shared workload of the broadcast/backpressure experiments:
    returns ``(scheduler, display, labels, server, clients)`` with
    ``clients[i]`` connected over ``profiles[i]``.
    """
    scheduler = Scheduler()
    display = DisplayServer(480, 360)
    window = UIWindow(480, 360)
    column = Column()
    labels = [column.add(Label(f"row {i}")) for i in range(12)]
    window.set_root(column)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler, shared_encode=shared,
                          backpressure=backpressure)
    clients = []
    for i, profile in enumerate(profiles):
        pipe = make_pipe(scheduler, profile, name=f"viewer-{i}")
        server.accept(pipe.a)
        clients.append(UniIntClient(pipe.b))
    scheduler.run_until_idle()
    return scheduler, display, labels, server, clients


def drive_eager_churn(scheduler, labels, poll_clients, seconds,
                      poll_every=0.05, churn_every=0.1):
    """Panel churn plus eagerly polling viewers (pipelined requests).

    Models the slow-device flood: ``poll_clients`` request updates on a
    timer regardless of what is still in flight.  Both drivers stop at
    the deadline so a later ``run_until_idle`` can drain and converge.
    """
    deadline = scheduler.now() + seconds

    def poll():
        for client in poll_clients:
            if client.ready:
                client.request_update(True)
        if scheduler.now() + poll_every <= deadline:
            scheduler.call_later(poll_every, poll)

    rounds = {"n": 0}

    def churn():
        rounds["n"] += 1
        for i, label in enumerate(labels):
            label.text = f"round {rounds['n']} v{(rounds['n'] * 37 + i) % 997}"
        if scheduler.now() + churn_every <= deadline:
            scheduler.call_later(churn_every, churn)

    scheduler.call_later(poll_every, poll)
    scheduler.call_later(churn_every, churn)
    scheduler.run_for(seconds)


@pytest.fixture
def tv_home():
    """A home with a TV and a VCR, settled."""
    home = Home(width=480, height=360)
    home.add_appliance(Television("TV"))
    home.add_appliance(VideoRecorder("VCR"))
    home.settle()
    return home


def pytest_addoption(parser):
    """``--smoke``: shrink workloads to harness-validation size.

    CI runs every benchmark file with ``--smoke --benchmark-disable`` so a
    transport/pipeline refactor cannot silently break the bench harness;
    record-writing tests skip their BENCH_*.json output in smoke mode.
    """
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="run benchmarks with tiny workloads (harness smoke test)")


@pytest.fixture
def smoke(request) -> bool:
    return request.config.getoption("--smoke")


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker, so the
    tier-1 suite can deselect it wholesale (`-m "not bench"`)."""
    for item in items:
        item.add_marker(pytest.mark.bench)

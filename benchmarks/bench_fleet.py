"""E10 — many-home fleet capacity and per-home isolation.

Workload: N complete homes in one process, each with its own virtual-time
scheduler, real TCP listener, UIP session (PDA client) and one appliance,
all multiplexed by a single ``selectors`` reactor.  A *churn round*
toggles every home's lamp at once and measures, per home, the wall-clock
latency from the toggle to that home's client pushing the resulting frame
to its output device — the full pipeline (DDI redraw → damage → encode →
real TCP → decode → device push) under fleet-wide contention.

Metrics (recorded to ``BENCH_FLEET.json``; written in smoke runs too,
flagged, because the isolation acceptance rides on the recorded numbers):

* p50/p99 frame latency across homes × rounds, healthy fleet,
* the same with **one home stalled** in a self-perpetuating event storm —
  the reactor's per-turn event budget must keep the other homes' p99
  within 2× the unstalled baseline (per-home isolation),
* homes/core: how many 1-update-per-second homes one core sustains at
  the measured per-round cost.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import HomeFleet
from repro.appliances import DimmableLight
from repro.devices import Pda
from repro.havi.fcm import FcmType


def _build_fleet(n_homes: int) -> HomeFleet:
    fleet = HomeFleet()
    for i in range(n_homes):
        home = fleet.add_home(f"h{i}", width=160, height=120)
        home.add_appliance(DimmableLight(f"lamp-{i}"))
        home.add_device(Pda(f"pda-{i}", home.scheduler))
    fleet.settle()
    assert all(h.server_session.ready for h in fleet)
    return fleet


def _toggle(home):
    lamp = next(iter(home.appliances.values()))
    lamp.dcm.fcm_by_type(FcmType.LIGHT).invoke_local("power.toggle")


def _churn_round(fleet: HomeFleet, homes) -> dict[str, float]:
    """Toggle every home's lamp; per home, wall seconds until its client
    pushed the resulting frame.  Crossing times are sampled inside the
    reactor's run_until predicate, once per turn."""
    baseline = {h.name: h.session.frames_pushed for h in homes}
    latencies: dict[str, float] = {}
    start = time.perf_counter()
    for home in homes:
        _toggle(home)

    def all_painted() -> bool:
        now = time.perf_counter()
        for home in homes:
            if (home.name not in latencies
                    and home.session.frames_pushed > baseline[home.name]):
                latencies[home.name] = now - start
        return len(latencies) == len(homes)

    assert fleet.run_until(all_painted, timeout_s=60.0), (
        f"round did not complete: {len(latencies)}/{len(homes)} homes "
        f"painted")
    return latencies


def _percentile(values, q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _run_rounds(fleet: HomeFleet, homes, rounds: int) -> dict:
    wall_start = time.perf_counter()
    samples: list[float] = []
    for _ in range(rounds):
        samples.extend(_churn_round(fleet, homes).values())
    wall = time.perf_counter() - wall_start
    per_round = wall / rounds
    return {
        "rounds": rounds,
        "homes_measured": len(homes),
        "p50_frame_latency_s": _percentile(samples, 0.50),
        "p99_frame_latency_s": _percentile(samples, 0.99),
        "max_frame_latency_s": max(samples),
        "wall_s_per_round": per_round,
        # at a nominal 1 update/s per home, one core sustains this many
        # homes at the measured per-home round cost
        "homes_per_core_at_1hz": len(homes) / per_round,
    }


def test_fleet_churn_capacity_and_stall_isolation(smoke):
    n_homes = 64 if smoke else 128
    rounds = 3 if smoke else 10

    fleet = _build_fleet(n_homes)
    try:
        all_homes = list(fleet)
        # warm-up: first paint includes lazy caches and page faults
        _churn_round(fleet, all_homes)

        healthy = _run_rounds(fleet, all_homes, rounds)

        # stall one home: a self-perpetuating event storm that the
        # per-turn budget must contain.  Its siblings are re-measured.
        stalled = fleet.home("h0")

        def storm():
            stalled.scheduler.call_soon(storm)

        stalled.scheduler.call_soon(storm)
        siblings = [h for h in all_homes if h is not stalled]
        under_stall = _run_rounds(fleet, siblings, rounds)

        assert not stalled.reactor_member.failed, \
            "a storming home is throttled, not quarantined"
        # the isolation acceptance: one runaway tenant may not blow up
        # its neighbours' tail latency (small additive cushion absorbs
        # scheduler-timer noise on loaded CI runners)
        budget = 2.0 * healthy["p99_frame_latency_s"] + 0.05
        assert under_stall["p99_frame_latency_s"] <= budget, (
            f"sibling p99 {under_stall['p99_frame_latency_s']:.4f}s "
            f"exceeds isolation budget {budget:.4f}s "
            f"(healthy p99 {healthy['p99_frame_latency_s']:.4f}s)")

        out_path = Path(__file__).resolve().parents[1] / "BENCH_FLEET.json"
        out_path.write_text(json.dumps({
            "experiment": "many-home fleet reactor: capacity and "
                          "per-home stall isolation",
            "workload": {
                "homes": n_homes,
                "screen": "160x120 per home, 1 appliance, 1 PDA client "
                          "over a real TCP loopback socket per home",
                "churn_round": "toggle every home's lamp, wait for "
                               "every client's frame push",
                "stall": "one home in a self-perpetuating call_soon "
                         "storm, budget-throttled by the reactor",
                "smoke": bool(smoke),
            },
            "timing_method": "wall-clock (time.perf_counter) from toggle "
                             "to client frame push, sampled once per "
                             "reactor turn; percentiles over "
                             "homes x rounds",
            "healthy": healthy,
            "one_home_stalled": under_stall,
            "isolation": {
                "p99_ratio_stalled_vs_healthy": (
                    under_stall["p99_frame_latency_s"]
                    / max(healthy["p99_frame_latency_s"], 1e-9)),
                "budget": "p99(stalled siblings) <= 2x p99(healthy) "
                          "+ 50 ms cushion",
                "stalled_home_events_fired":
                    stalled.reactor_member.events_fired,
            },
        }, indent=2) + "\n")
    finally:
        fleet.close()

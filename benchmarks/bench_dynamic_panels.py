"""E10 — descriptor-generated panels vs hand-written builders.

The capability refactor claims generated UI is *free*: a panel built from
an FCM's typed descriptor must cost the same to build and ship the same
order of pixels as the hand-written builder it replaced.  This benchmark
measures both paths on the same appliance mix and asserts parity (≤1.1x),
recording the numbers to ``BENCH_DYNAMIC_PANELS.json`` (written in smoke
runs too, so CI keeps the record fresh).

* **build cost** — wall-clock for one full panel regeneration: the
  application rebuild (descriptors already cached) plus the first render
  of the new tree — i.e. the cost of putting the generated panel on
  screen (best-of-N to squeeze out scheduler noise).
* **wire bytes** — bytes a thin client receives for the first full frame
  of the composed UI, i.e. what the generated layout costs on the link.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import Home
from repro.appliances import (
    AirConditioner,
    MicrowaveOven,
    Refrigerator,
    Television,
)
from repro.devices import Pda

PARITY = 1.1


def _appliances():
    return [Television("TV"), MicrowaveOven("Oven"),
            AirConditioner("Aircon")]


def _home(dynamic: bool, with_fridge: bool = False) -> Home:
    home = Home(width=480, height=360, dynamic_panels=dynamic)
    for appliance in _appliances():
        home.add_appliance(appliance)
    if with_fridge:
        home.add_appliance(Refrigerator("Fridge"))
    home.settle()
    return home


def _build_cost(home: Home, rounds: int) -> float:
    """Best-of-N seconds for one full panel regeneration on screen."""
    app = home.views[0].app
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        app.rebuild()
        app.window.render()
        best = min(best, time.perf_counter() - start)
    return best


def _first_frame_bytes(home: Home) -> int:
    pda = Pda("meter", home.scheduler)
    pda.connect(home.proxy)
    home.proxy.select_output("meter")
    home.settle()
    return pda.link_stats.bytes_received


def test_dynamic_panel_parity(smoke):
    rounds = 20 if smoke else 200

    legacy_home = _home(dynamic=False)
    dynamic_home = _home(dynamic=True)

    legacy_build = _build_cost(legacy_home, rounds)
    dynamic_build = _build_cost(dynamic_home, rounds)
    legacy_wire = _first_frame_bytes(legacy_home)
    dynamic_wire = _first_frame_bytes(dynamic_home)

    build_ratio = dynamic_build / max(legacy_build, 1e-9)
    wire_ratio = dynamic_wire / max(legacy_wire, 1)

    # the descriptor-only appliance: no panel code, still a full panel
    fridge_home = _home(dynamic=True, with_fridge=True)
    fridge = next(a for a in fridge_home.appliances.values()
                  if a.device_class == "refrigerator")
    root = fridge_home.views[0].app.window.root
    fridge_widgets = sum(
        1 for w in root.walk()
        if w.widget_id and w.widget_id.startswith(fridge.guid[:8]))

    assert wire_ratio <= PARITY, (
        f"dynamic panels ship {wire_ratio:.2f}x the first-frame bytes "
        f"of the hand-built path (budget {PARITY}x)")
    assert build_ratio <= PARITY, (
        f"dynamic panel build costs {build_ratio:.2f}x the hand-built "
        f"path (budget {PARITY}x)")
    assert fridge_widgets >= 8  # all three compartments surfaced

    out_path = Path(__file__).resolve().parents[1] / \
        "BENCH_DYNAMIC_PANELS.json"
    out_path.write_text(json.dumps({
        "experiment": "descriptor-generated panels vs hand-written "
                      "builders (build cost and first-frame wire bytes)",
        "workload": {
            "appliances": "TV + microwave + aircon, 480x360 composed UI "
                          "with one tab per appliance",
            "client": "PDA thin client over a pipe transport, bytes "
                      "counted for the first full frame",
            "build_rounds": rounds,
            "smoke": bool(smoke),
        },
        "timing_method": "best-of-N wall-clock (time.perf_counter) per "
                         "full panel regeneration (application rebuild + "
                         "first render), descriptors cached",
        "hand_built": {
            "build_s": legacy_build,
            "first_frame_bytes": legacy_wire,
        },
        "dynamic": {
            "build_s": dynamic_build,
            "first_frame_bytes": dynamic_wire,
        },
        "parity": {
            "build_ratio": round(build_ratio, 3),
            "wire_ratio": round(wire_ratio, 3),
            "budget": PARITY,
        },
        "descriptor_only_fridge": {
            "widgets_generated": fridge_widgets,
            "panel_code_lines": 0,
            "ddi_spec_lines": 0,
        },
    }, indent=2) + "\n")

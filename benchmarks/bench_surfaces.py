"""E11 — per-user UI surfaces: surface multiplexing vs shared broadcast.

PR 5 gives each resident their own UI surface (display + application)
multiplexed by one UniIntServer, with the shared-encode broadcast grouped
by (surface, pixel format).  Two costs must hold simultaneously:

* **same-surface fast path preserved** — 8 sessions watching one surface
  still share one encode per update, at the PR 4 BENCH_MULTIUSER cost;
* **cross-surface isolation** — users on different surfaces stop paying
  for each other's frames: churn on one resident's view costs the server
  roughly the 1-user price and sends zero bytes to everyone else.

Workload (mirrors BENCH_MULTIUSER for comparability): 480x360 12-label
panel churn per round, 3 devices per resident, one proxy/session each.
Writes BENCH_SURFACES.json (before/after + workload + timing method).
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path

import pytest

from benchmarks.bench_home_scale import (
    ServerCostMeter,
    _multiuser_home,
    _multiuser_round,
)
from repro import Home

#: view layout per config: each entry is one surface with that many users.
CONFIGS = {
    "same_surface": (8,),            # 1 surface x 8 sessions (PR 4 shape)
    "per_surface": (1,) * 8,         # 8 surfaces x 1 session
    "mixed": (4, 4),                 # 2 surfaces x 4 sessions
}

SMOKE_CONFIGS = {
    "same_surface": (2,),
    "per_surface": (1, 1),
    "mixed": (2, 1),
}


def _surface_home(groups, shared: bool = True):
    """A Home with one view per group; each group's users share it.

    Returns ``(home, view_labels)`` where ``view_labels[v]`` is the list
    of churnable labels installed on view ``v``'s window.
    """
    from repro.devices import RemoteControl, TvDisplay, VoiceInput
    from repro.toolkit import Column, Label

    home = Home(width=480, height=360, shared_encode=shared)
    view_labels = []
    index = 0
    for group_size in groups:
        owner = None
        for seat in range(group_size):
            if index == 0:
                user = home.default_user
            elif seat == 0:
                user = home.add_user(f"user-{index}")
            else:
                user = home.add_user(f"user-{index}",
                                     view_of=owner.user_id)
            if seat == 0:
                owner = user
                column = Column()
                view_labels.append(
                    [column.add(Label(f"row {i}")) for i in range(12)])
                user.window.set_root(column)
            home.add_device(RemoteControl(f"remote-{index}", home.scheduler),
                            user=user.user_id, reselect=False)
            home.add_device(VoiceInput(f"mic-{index}", home.scheduler),
                            user=user.user_id, reselect=False)
            home.add_device(TvDisplay(f"panel-{index}", home.scheduler),
                            user=user.user_id)
            index += 1
    home.settle()
    for user in home.users.values():
        assert user.current_output is not None
    assert len(home.views) == len(groups)
    return home, view_labels


def _churn_round(home, view_labels, round_no: int,
                 only_view: int | None = None) -> None:
    """Rewrite every label of the selected views and settle the flush."""
    targets = (view_labels if only_view is None
               else [view_labels[only_view]])
    for labels in targets:
        for i, label in enumerate(labels):
            label.text = f"round {round_no} value {(round_no * 37 + i) % 997}"
    home.settle()


def _assert_converged(home) -> None:
    for user in home.users.values():
        assert user.session.upstream.framebuffer == user.display.framebuffer


def _timed_rounds(home, view_labels, counter, meter, repeats,
                  rounds_per_repeat, only_view=None):
    """(best end-to-end, best server cost) per churn round.

    ``meter`` must be the home's one ServerCostMeter — constructing a
    second would stack wrappers over the first and inflate the timings.
    """
    best_total = best_server = None
    for _ in range(repeats):
        meter.seconds = 0.0  # one meter; re-wrapping would stack
        start = time.perf_counter()
        for _ in range(rounds_per_repeat):
            _churn_round(home, view_labels, next(counter),
                         only_view=only_view)
        total = (time.perf_counter() - start) / rounds_per_repeat
        server = meter.seconds / rounds_per_repeat
        best_total = total if best_total is None else min(best_total, total)
        best_server = (server if best_server is None
                       else min(best_server, server))
    return best_total, best_server


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_surface_churn(benchmark, config, smoke):
    groups = (SMOKE_CONFIGS if smoke else CONFIGS)[config]
    home, view_labels = _surface_home(groups)
    meter = ServerCostMeter(home.uniint_server)
    rounds = itertools.count()

    benchmark(lambda: _churn_round(home, view_labels, next(rounds)))

    _assert_converged(home)
    benchmark.extra_info["config"] = config
    benchmark.extra_info["surfaces"] = len(groups)
    benchmark.extra_info["sessions"] = sum(groups)
    benchmark.extra_info["server_cost_s"] = meter.seconds
    benchmark.extra_info["shared_encode_hits"] = (
        home.uniint_server.shared_encode_hits)


def test_cross_surface_churn_is_wire_silent(smoke):
    """Churn on one resident's view sends zero bytes to every session on
    every other surface (the isolation half of the tentpole)."""
    groups = SMOKE_CONFIGS["per_surface"] if smoke else CONFIGS["per_surface"]
    home, view_labels = _surface_home(groups)
    counter = itertools.count()
    _churn_round(home, view_labels, next(counter))  # warm-up, all views
    churner = home.views[0]
    others = [session for view in home.views[1:]
              for session in view.surface.sessions]
    assert others
    wire_before = [s.endpoint.stats.bytes_sent for s in others]
    for _ in range(3):
        _churn_round(home, view_labels, next(counter), only_view=0)
    assert [s.endpoint.stats.bytes_sent for s in others] == wire_before
    assert churner.surface.sessions[0].endpoint.stats.bytes_sent > 0
    _assert_converged(home)


def test_surface_multiplexing_scales_and_records(smoke):
    """Same-surface broadcast must stay at the PR 4 cost (~1.1x of the
    BENCH_MULTIUSER baseline) while isolated per-surface churn costs
    roughly the single-user price; results land in BENCH_SURFACES.json."""
    configs = SMOKE_CONFIGS if smoke else CONFIGS
    repeats = 1 if smoke else 3
    rounds_per_repeat = 1 if smoke else 3
    results = {}
    homes = {}
    for config, groups in configs.items():
        home, view_labels = _surface_home(groups)
        counter = itertools.count()
        _churn_round(home, view_labels, next(counter))  # warm-up
        meter = ServerCostMeter(home.uniint_server)
        homes[config] = (home, view_labels, meter)
        total, server = _timed_rounds(home, view_labels, counter, meter,
                                      repeats, rounds_per_repeat)
        _assert_converged(home)
        results[config] = {
            "surfaces": len(groups),
            "sessions": sum(groups),
            "end_to_end_s": total,
            "server_cost_s": server,
            "shared_encode_hits": home.uniint_server.shared_encode_hits,
        }
    # isolated churn: one view of the per-surface home churns while the
    # other 7 surfaces (and their links) stay untouched (reusing that
    # home's meter — a fresh one would stack wrappers)
    home, view_labels, meter = homes["per_surface"]
    counter = itertools.count(1000)
    total, server = _timed_rounds(home, view_labels, counter, meter,
                                  repeats, rounds_per_repeat, only_view=0)
    results["isolated_churn"] = {
        "surfaces": results["per_surface"]["surfaces"],
        "churning_surfaces": 1,
        "end_to_end_s": total,
        "server_cost_s": server,
    }
    if smoke:  # harness validation only: no perf assertion, no record
        return
    # the same-surface fast path still shares encodes ...
    assert results["same_surface"]["shared_encode_hits"] > 0
    # ... and isolated churn in an 8-surface home costs the server less
    # than the 8-session broadcast of the same content (nobody else pays)
    assert (results["isolated_churn"]["server_cost_s"]
            < results["same_surface"]["server_cost_s"]), results
    # the hard gate is machine-independent: measure the PR 4 multiuser
    # workload (8 residents sharing one view, bench_home_scale E10) in
    # *this* run and require same-surface multiplexing to stay within
    # ~1.1x of it on the same hardware
    control_home, control_labels = _multiuser_home(8)
    control_counter = itertools.count()
    _multiuser_round(control_home, control_labels,
                     next(control_counter))  # warm-up
    control_meter = ServerCostMeter(control_home.uniint_server)
    control_cost = None
    for _ in range(repeats):
        control_meter.seconds = 0.0
        for _ in range(rounds_per_repeat):
            _multiuser_round(control_home, control_labels,
                             next(control_counter))
        cost = control_meter.seconds / rounds_per_repeat
        control_cost = cost if control_cost is None else min(
            control_cost, cost)
    in_run_ratio = results["same_surface"]["server_cost_s"] / control_cost
    assert in_run_ratio < 1.1, (
        f"same-surface broadcast regressed vs the PR 4 multiuser "
        f"workload measured in this run: {in_run_ratio:.2f}x")
    # the cross-run ratio against the committed PR 4 record is evidence,
    # not a gate (absolute timings are machine-dependent)
    baseline_path = (Path(__file__).resolve().parents[1]
                     / "BENCH_MULTIUSER.json")
    baseline_ratio = None
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        baseline_8 = baseline["after_shared_encode"].get("8")
        if baseline_8:
            baseline_ratio = (results["same_surface"]["server_cost_s"]
                              / baseline_8)
    out_path = Path(__file__).resolve().parents[1] / "BENCH_SURFACES.json"
    out_path.write_text(json.dumps({
        "experiment": "per-user surface multiplexing: same-surface "
                      "broadcast vs independent per-user views",
        "workload": {
            "screen": "480x360, 12-label panel churn per round per view",
            "configs": {name: {"surfaces": len(groups),
                               "sessions": sum(groups)}
                        for name, groups in configs.items()},
            "devices_per_user": "IR remote + voice mic + personal TV panel "
                                "(3 each), one UniInt proxy/session per "
                                "user",
        },
        "timing_method": "wall-clock best-of-3 x 3 rounds "
                         "(time.perf_counter); server-side broadcast cost "
                         "via reentrancy-guarded timers around "
                         "_flush/surface._composite_and_distribute/"
                         "session._try_send",
        "before": "PR 4: one shared UIWindow for every resident — "
                  "see BENCH_MULTIUSER.json (all sessions pay for every "
                  "frame; no per-user tabs/input)",
        "after": results,
        "pr4_workload_server_cost_s_same_run": control_cost,
        "same_surface_vs_pr4_workload_same_run_ratio": in_run_ratio,
        "same_surface_vs_multiuser_baseline_ratio": baseline_ratio,
    }, indent=2) + "\n")

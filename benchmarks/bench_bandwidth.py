"""E7 — session bandwidth per device class.

Claim operationalised: thin-client output events fit each device's bearer
because the proxy adapts depth and resolution per device.  A scripted
10-interaction session runs against a phone, a PDA and a TV panel; we
record the bytes moved on the device link (down = frames, up = events) and
on the upstream UIP link.

Expected shape: device-link bytes ordered phone << pda << tv (1-bit 128^2
vs 2-bit 320x240 vs 24-bit 720x480), upstream bytes identical across
devices (same UI activity), and event traffic negligible vs frames.
"""

from __future__ import annotations

import pytest

from repro import Home
from repro.appliances import Television
from repro.devices import CellPhone, Pda, RemoteControl, TvDisplay
from repro.net import ETHERNET_100, make_pipe
from repro.proxy.upstream import UniIntClient

DEVICES = {
    "phone": CellPhone,
    "pda": Pda,
    "tv-panel": TvDisplay,
}


def _session_bytes(device_name):
    home = Home(width=480, height=360)
    home.add_appliance(Television("TV"))
    home.settle()
    output = DEVICES[device_name](device_name, home.scheduler)
    output.connect(home.proxy)
    remote = RemoteControl("driver", home.scheduler)
    remote.connect(home.proxy)
    home.proxy.select_input("driver")
    home.proxy.select_output(device_name)
    home.settle()
    output.link_stats.reset()
    remote.link_stats.reset()
    upstream = home.session.upstream.endpoint.stats
    up_before = (upstream.bytes_sent, upstream.bytes_received)

    # the scripted session: power on, surf two channels, volume, mute, off
    script = ["ok", "next", "ok", "next", "ok", "ok",
              "next", "right", "right", "ok"]
    for press in script:
        remote.press(press)
        home.settle()

    return {
        "frames": output.frames_received,
        "device_down": output.link_stats.bytes_received,
        "device_up": remote.link_stats.bytes_sent,
        "upstream_sent": upstream.bytes_sent - up_before[0],
        "upstream_received": upstream.bytes_received - up_before[1],
        "virtual_seconds": home.scheduler.now(),
    }


@pytest.mark.parametrize("device_name", DEVICES)
def test_session_bandwidth(benchmark, device_name):
    stats = benchmark.pedantic(_session_bytes, args=(device_name,),
                               rounds=3, iterations=1)
    for key, value in stats.items():
        benchmark.extra_info[key] = (round(value, 3)
                                     if isinstance(value, float) else value)
    # frames dominate events by an order of magnitude on every device
    assert stats["device_down"] > 10 * stats["device_up"]


def test_bandwidth_shape_phone_pda_tv(benchmark):
    """The cross-device ordering the adaptation exists to produce."""

    def collect():
        return {name: _session_bytes(name)["device_down"]
                for name in DEVICES}

    down = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert down["phone"] < down["pda"] < down["tv-panel"]
    benchmark.extra_info["device_down_bytes"] = down
    benchmark.extra_info["tv_over_phone"] = round(
        down["tv-panel"] / down["phone"], 1)


def _multi_session_stats(extra_viewers: int):
    """One interactive session plus N passive viewers mirroring the same
    screen (wall displays): the shared-encode broadcast workload."""
    home = Home(width=480, height=360)
    home.add_appliance(Television("TV"))
    home.settle()
    viewers = []
    for i in range(extra_viewers):
        pipe = make_pipe(home.scheduler, ETHERNET_100, name=f"viewer-{i}")
        home.uniint_server.accept(pipe.a)
        viewers.append(UniIntClient(pipe.b))
    remote = RemoteControl("driver", home.scheduler)
    remote.connect(home.proxy)
    tv_out = TvDisplay("panel", home.scheduler)
    tv_out.connect(home.proxy)
    home.proxy.select_input("driver")
    home.proxy.select_output("panel")
    home.settle()
    server = home.uniint_server
    hits_before = server.shared_encode_hits
    packs_before = server.pack_misses

    for press in ["ok", "next", "ok", "next", "right", "ok"]:
        remote.press(press)
        home.settle()

    per_viewer = [v.endpoint.stats.bytes_received for v in viewers]
    return {
        "viewers": extra_viewers,
        "viewer_down_total": sum(per_viewer),
        "viewer_down_min": min(per_viewer, default=0),
        "viewer_down_max": max(per_viewer, default=0),
        "shared_encode_hits": server.shared_encode_hits - hits_before,
        "pack_misses": server.pack_misses - packs_before,
        "updates_each": (viewers[0].updates_received if viewers else 0),
    }


@pytest.mark.parametrize("viewers", [1, 4, 8])
def test_multi_session_viewer_bandwidth(benchmark, viewers):
    """N passive mirrors of one interactive session: encode work stays
    ~flat (shared broadcast) while delivered bytes scale with N."""
    stats = benchmark.pedantic(_multi_session_stats, args=(viewers,),
                               rounds=3, iterations=1)
    for key, value in stats.items():
        benchmark.extra_info[key] = value
    assert stats["shared_encode_hits"] > 0  # broadcast path engaged
    # every viewer received the same update stream, byte for byte
    assert stats["viewer_down_min"] == stats["viewer_down_max"] > 0

"""E5 — dynamic device switching latency and continuity.

Claim operationalised: devices can be changed mid-session according to the
user's situation (paper §2.1, second characteristic).  Expected shape:

* an input switch is near-instant (plug-in swap only);
* an output switch costs one full-frame push over the *new* device's link;
* appliance and UI state survive every switch (continuity assertion).
"""

from __future__ import annotations

import pytest

from repro import Home
from repro.appliances import Television
from repro.context import SelectionPolicy, UserSituation
from repro.devices import CellPhone, Pda, TvDisplay, VoiceInput, WallDisplay
from repro.havi import FcmType


def _loaded_home():
    home = Home(width=480, height=360)
    tv = home.add_appliance(Television("TV"))
    home.settle()
    devices = {
        "pda": Pda("pda", home.scheduler),
        "phone": CellPhone("phone", home.scheduler),
        "voice": VoiceInput("voice", home.scheduler),
        "tv-panel": TvDisplay("tv-panel", home.scheduler),
        "wall": WallDisplay("wall", home.scheduler),
    }
    for device in devices.values():
        device.connect(home.proxy)
    home.proxy.select_input("phone")
    home.proxy.select_output("pda")
    home.settle()
    return home, tv, devices


def test_input_switch_latency(benchmark):
    """phone -> voice -> phone; virtual cost is zero (plug-in swap)."""
    home, tv, devices = _loaded_home()
    state = {"current": "phone"}

    def switch():
        start = home.scheduler.now()
        target = "voice" if state["current"] == "phone" else "phone"
        home.proxy.select_input(target)
        state["current"] = target
        home.settle()
        return home.scheduler.now() - start

    virtual = benchmark(switch)
    benchmark.extra_info["virtual_latency_ms"] = round(virtual * 1000, 3)
    # the new input works immediately
    devices["voice"] if state["current"] == "voice" else devices["phone"]
    if state["current"] == "voice":
        devices["voice"].say("select")
    else:
        devices["phone"].press("5")
    home.settle()
    assert tv.dcm.fcm_by_type(FcmType.TUNER).get_state("power") in (
        True, False)


@pytest.mark.parametrize("target", ["tv-panel", "wall", "phone"])
def test_output_switch_latency(benchmark, target):
    """pda -> {tv, wall, phone}: cost = one full frame on the new link."""
    home, tv, devices = _loaded_home()
    state = {"current": "pda"}

    def switch():
        # alternate pda <-> target so each round performs a real switch
        destination = target if state["current"] == "pda" else "pda"
        device = devices[destination]
        frames_before = device.frames_received
        start = home.scheduler.now()
        home.proxy.select_output(destination)
        home.settle()
        state["current"] = destination
        assert device.frames_received > frames_before
        return home.scheduler.now() - start

    virtual = benchmark(switch)
    benchmark.extra_info["virtual_latency_ms"] = round(virtual * 1000, 2)
    benchmark.extra_info["target_link"] = devices[target].descriptor.link.name


def test_context_reselection_cost(benchmark):
    """Scoring every registered device against a situation is cheap."""
    home, tv, devices = _loaded_home()
    policy = SelectionPolicy()
    descriptors = home.proxy.list_devices()
    situations = [UserSituation.cooking(), UserSituation.on_the_sofa(),
                  UserSituation(location="outside")]
    state = {"i": 0}

    def reselect():
        state["i"] = (state["i"] + 1) % len(situations)
        return policy.choose(descriptors, situations[state["i"]])

    result = benchmark(reselect)
    assert result[0] is not None
    benchmark.extra_info["devices_scored"] = len(descriptors)


def test_state_continuity_across_switches(benchmark):
    """Rapid situation flapping never loses appliance or session state."""
    home, tv, devices = _loaded_home()
    tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
    tuner.invoke_local("power.set", {"on": True})
    tuner.invoke_local("channel.set", {"channel": 8})
    home.settle()
    situations = [UserSituation.cooking(), UserSituation.on_the_sofa(),
                  UserSituation(location="bedroom"),
                  UserSituation(location="outside")]

    def flap():
        for situation in situations:
            home.context.set_situation(situation)
            home.settle()
        return home.session.switch_count

    switches = benchmark(flap)
    assert switches >= 4
    assert tuner.get_state("channel") == 8      # appliance state intact
    assert home.session.upstream.ready           # session never dropped
    benchmark.extra_info["total_switches"] = switches

"""E9 — the vectorized encode core, frame differ, and tiered compression.

Claim operationalised: rebuilding RRE/HEXTILE around whole-array numpy
operations makes the hot encode loop run at numpy speed instead of
Python-loop speed, and change-aware damage refinement removes the encode
entirely when repainted pixels did not change.

The *before* side is the seed's scalar implementation (per-tile
``np.unique``, per-row run generator), embedded below verbatim so the
comparison stays honest on any machine.  ``test_encode_core_speedup_and_
records`` writes BENCH_ENCODE_CORE.json with before/after timings for the
solid, panel-churn and noise workloads at 480x360 and 1280x720, plus the
frame differ's bytes-on-wire ablation for the unchanged-redraw workload.
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import panel_frame
from repro.graphics import Bitmap, RGB888, default_font
from repro.net import CELLULAR_PDC, ETHERNET_100, LOOPBACK, make_pipe
from repro.net.link import compression_tier
from repro.proxy.upstream import UniIntClient
from repro.server import UniIntServer
from repro.server.uniint_server import _TIER_CANDIDATES
from repro.toolkit import Column, Label, UIWindow
from repro.uip import (
    HEXTILE,
    RAW,
    RRE,
    ZLIB,
    ZRLE,
    EncoderState,
    best_encoding,
    encode_rect,
)
from repro.uip.encodings import (
    _HEX_BG,
    _HEX_COLOURED,
    _HEX_FG,
    _HEX_RAW,
    _HEX_SUBRECTS,
    _TILE,
    _pixel_bytes,
)
from repro.uip.wire import Writer
from repro.util import Scheduler
from repro.windows import DisplayServer

SIZES = {"480x360": (480, 360), "1280x720": (1280, 720)}


# -- the seed's scalar encoders (the "before" baseline) ----------------------


def _legacy_most_common(values):
    uniques, counts = np.unique(values, return_counts=True)
    return int(uniques[np.argmax(counts)])


def _legacy_value_runs(row, background):
    if len(row) == 0:
        return
    change = np.flatnonzero(row[1:] != row[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [len(row)]))
    for start, end in zip(starts, ends):
        value = int(row[start])
        if value != background:
            yield (int(start), int(end), value)


def _legacy_merged_subrects(packed, background):
    active = {}
    out = []
    height = packed.shape[0]
    for y in range(height):
        current = {}
        for start, end, value in _legacy_value_runs(packed[y], background):
            current[(start, end, value)] = True
        for key in list(active):
            if key not in current:
                y0, span = active.pop(key)
                out.append((key[0], y0, key[1] - key[0], span, key[2]))
        for key in current:
            if key in active:
                active[key][1] += 1
            else:
                active[key] = [y, 1]
    for key, (y0, span) in active.items():
        out.append((key[0], y0, key[1] - key[0], span, key[2]))
    out.sort(key=lambda r: (r[1], r[0]))
    return out


def _legacy_encode_rre(packed, pf):
    background = _legacy_most_common(packed)
    subrects = _legacy_merged_subrects(packed, background)
    writer = Writer()
    writer.u32(len(subrects))
    writer.raw(_pixel_bytes(background, pf))
    for x, y, w, h, value in subrects:
        writer.raw(_pixel_bytes(value, pf))
        writer.u16(x).u16(y).u16(w).u16(h)
    return writer.getvalue()


def _legacy_encode_hextile(packed, pf):
    height, width = packed.shape
    ps = pf.bytes_per_pixel
    writer = Writer()
    prev_bg = None
    prev_fg = None
    for ty in range(0, height, _TILE):
        for tx in range(0, width, _TILE):
            tile = packed[ty:ty + _TILE, tx:tx + _TILE]
            th, tw = tile.shape
            raw_size = 1 + th * tw * ps
            uniques = np.unique(tile)
            if len(uniques) == 1:
                value = int(uniques[0])
                if value == prev_bg:
                    writer.u8(0)
                else:
                    writer.u8(_HEX_BG).raw(_pixel_bytes(value, pf))
                    prev_bg = value
                continue
            background = _legacy_most_common(tile)
            subrects = _legacy_merged_subrects(tile, background)
            coloured = len(uniques) > 2
            subenc = _HEX_SUBRECTS
            body = Writer()
            if background != prev_bg:
                subenc |= _HEX_BG
                body.raw(_pixel_bytes(background, pf))
            if coloured:
                subenc |= _HEX_COLOURED
            else:
                foreground = int(uniques[uniques != background][0])
                if foreground != prev_fg:
                    subenc |= _HEX_FG
                    body.raw(_pixel_bytes(foreground, pf))
            body.u8(len(subrects))
            for x, y, w, h, value in subrects:
                if coloured:
                    body.raw(_pixel_bytes(value, pf))
                body.u8((x << 4) | y)
                body.u8(((w - 1) << 4) | (h - 1))
            encoded = body.getvalue()
            if 1 + len(encoded) >= raw_size or len(subrects) > 255:
                writer.u8(_HEX_RAW)
                writer.raw(np.ascontiguousarray(tile).tobytes())
                prev_bg = None
                prev_fg = None
            else:
                writer.u8(subenc)
                writer.raw(encoded)
                prev_bg = background
                if not coloured:
                    prev_fg = foreground
    return writer.getvalue()


_LEGACY = {RRE: _legacy_encode_rre, HEXTILE: _legacy_encode_hextile}
_CODEC_NAMES = {RRE: "rre", HEXTILE: "hextile"}


# -- workloads ---------------------------------------------------------------


def _workload(name: str, width: int, height: int) -> np.ndarray:
    if name == "solid":
        bmp = Bitmap(width, height, fill=(40, 90, 160))
    elif name == "panel-churn":
        bmp = panel_frame(width, height)
    elif name == "noise":
        rng = np.random.default_rng(11)
        bmp = Bitmap.from_array(rng.integers(
            0, 256, size=(height, width, 3), dtype=np.uint8))
    else:  # pragma: no cover - guarded by callers
        raise ValueError(name)
    return RGB888.pack_array(bmp.pixels)


def _best_of(fn, repeats: int = 3) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


# -- per-codec microbenchmarks (pytest-benchmark rows) -----------------------


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("workload", ["solid", "panel-churn", "noise"])
@pytest.mark.parametrize("codec", ["rre", "hextile", "zrle"])
def test_encode_core(benchmark, size, workload, codec):
    width, height = SIZES[size]
    packed = _workload(workload, width, height)
    encoding = {"rre": RRE, "hextile": HEXTILE, "zrle": ZRLE}[codec]

    payload = benchmark(lambda: encode_rect(
        EncoderState(RGB888, use_cache=False), packed, encoding))
    benchmark.extra_info["payload_bytes"] = len(payload)
    benchmark.extra_info["raw_bytes"] = packed.nbytes


# -- tiered compression workloads --------------------------------------------


_ENC_NAMES = {RAW: "raw", RRE: "rre", HEXTILE: "hextile", ZLIB: "zlib",
              ZRLE: "zrle"}


def _churn_frames(width: int, height: int, rounds: int = 8) -> list:
    """A churning control panel: the panel frame with per-round captions.

    The persistent-stream codecs see a *sequence* here, as on a real
    session, so cross-frame zlib history counts toward their wire bytes.
    """
    frames = []
    font = default_font(1)
    row_h = max(20, height // 8)
    for n in range(rounds):
        bmp = panel_frame(width, height)
        y = 6
        while y + row_h < height - 6:
            font.draw(bmp, width // 2 + 8, y + (row_h - 11) // 2,
                      f"round {n} v{(n * 37 + y) % 997}", (10, 10, 10))
            y += row_h
        frames.append(RGB888.pack_array(bmp.pixels))
    return frames


def _sequence_cost(frames, encoding, tier) -> tuple[int, float]:
    """(total wire bytes, best-of-3 encode seconds) over the sequence."""
    total = 0
    best = None
    for _ in range(3):
        state = EncoderState(RGB888, use_cache=False, tier=tier)
        run_total = 0
        start = time.perf_counter()
        for packed in frames:
            run_total += len(encode_rect(state, packed, encoding))
        elapsed = time.perf_counter() - start
        total = run_total
        best = elapsed if best is None else min(best, elapsed)
    return total, best


# -- the recorded before/after experiment ------------------------------------


def _unchanged_redraw_stack(tile_diff: bool):
    scheduler = Scheduler()
    display = DisplayServer(480, 360)
    window = UIWindow(480, 360)
    column = Column()
    labels = [column.add(Label(f"panel row {i}")) for i in range(12)]
    window.set_root(column)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler, tile_diff=tile_diff)
    pipe = make_pipe(scheduler, ETHERNET_100, name="viewer")
    server.accept(pipe.a)
    client = UniIntClient(pipe.b)
    scheduler.run_until_idle()
    return scheduler, display, labels, server, client


def _redraw_round(scheduler, labels) -> None:
    """Repaint every label with identical pixels (a blinking-clock tick)."""
    for label in labels:
        label.invalidate()
    scheduler.run_until_idle()


def test_encode_core_speedup_and_records(smoke):
    """Vectorized encoders must beat the seed's scalar ones >= 3x (HEXTILE)
    and >= 2x (RRE) on panel churn with payloads no larger; the frame
    differ must cut unchanged-redraw wire bytes.  Results land in
    BENCH_ENCODE_CORE.json for the trajectory record."""
    results: dict = {"encoders": {}, "frame_differ": {}}
    # smoke (CI harness check): smallest size only, and no wall-clock
    # assertions below — timing floors on a noisy shared runner flake
    sizes = dict(list(SIZES.items())[:1]) if smoke else SIZES
    for size_name, (width, height) in sizes.items():
        for workload in ("solid", "panel-churn", "noise"):
            packed = _workload(workload, width, height)
            for encoding in (RRE, HEXTILE):
                legacy = _LEGACY[encoding]
                before_payload = legacy(packed, RGB888)
                after_payload = encode_rect(
                    EncoderState(RGB888, use_cache=False), packed, encoding)
                before_s = _best_of(lambda: legacy(packed, RGB888))
                after_s = _best_of(lambda: encode_rect(
                    EncoderState(RGB888, use_cache=False), packed, encoding))
                key = f"{workload}/{size_name}/{_CODEC_NAMES[encoding]}"
                results["encoders"][key] = {
                    "before_s": before_s,
                    "after_s": after_s,
                    "speedup": before_s / after_s,
                    "before_bytes": len(before_payload),
                    "after_bytes": len(after_payload),
                }
                assert len(after_payload) <= len(before_payload), key
    if not smoke:
        for size_name in SIZES:
            for codec, floor in (("hextile", 3.0), ("rre", 2.0)):
                row = results["encoders"][f"panel-churn/{size_name}/{codec}"]
                assert row["speedup"] >= floor, (
                    f"{codec} speedup {row['speedup']:.2f}x < {floor}x "
                    f"at {size_name}: {row}")

    # the unchanged-redraw workload: identical repaints through the server
    rounds = 5
    for mode, tile_diff in (("tile-diff", True), ("no-diff", False)):
        scheduler, display, labels, server, client = (
            _unchanged_redraw_stack(tile_diff))
        _redraw_round(scheduler, labels)  # warm-up
        received_before = client.endpoint.stats.bytes_received
        start = time.perf_counter()
        for _ in range(rounds):
            _redraw_round(scheduler, labels)
        elapsed = (time.perf_counter() - start) / rounds
        assert client.framebuffer == display.framebuffer
        results["frame_differ"][mode] = {
            "round_s": elapsed,
            "bytes_per_round": (client.endpoint.stats.bytes_received
                                - received_before) / rounds,
            "tiles_dropped": server.diff_tiles_dropped,
        }
    with_diff = results["frame_differ"]["tile-diff"]
    without = results["frame_differ"]["no-diff"]
    assert with_diff["bytes_per_round"] < without["bytes_per_round"]
    assert with_diff["tiles_dropped"] > 0

    # the tiered-compression experiment: an 8-frame churn sequence over
    # the phone bearer, hextile vs zrle through persistent session state
    frames = _churn_frames(480, 360, rounds=3 if smoke else 8)
    tier = compression_tier(CELLULAR_PDC)
    hex_bytes, hex_s = _sequence_cost(frames, HEXTILE, tier)
    zrle_bytes, zrle_s = _sequence_cost(frames, ZRLE, tier)
    results["compression"] = {
        "panel-churn/480x360/cellular-pdc": {
            "frames": len(frames),
            "tier": tier,
            "hextile_bytes": hex_bytes,
            "zrle_bytes": zrle_bytes,
            "wire_reduction": hex_bytes / zrle_bytes,
            "hextile_encode_s": hex_s,
            "zrle_encode_s": zrle_s,
            "encode_cost_ratio": zrle_s / hex_s,
            "hextile_bearer_s": CELLULAR_PDC.transmission_time(hex_bytes),
            "zrle_bearer_s": CELLULAR_PDC.transmission_time(zrle_bytes),
        },
    }
    row = results["compression"]["panel-churn/480x360/cellular-pdc"]
    assert row["wire_reduction"] >= 5.0, row  # bytes are deterministic
    if not smoke:
        assert row["encode_cost_ratio"] <= 1.2, row

    # adaptive selection: what each bearer's session actually picks,
    # mirroring ServerSession's tier seeding and cost-model scoring
    results["adaptive_selection"] = {}
    for profile in (LOOPBACK, CELLULAR_PDC):
        link_tier = compression_tier(profile)
        candidates = _TIER_CANDIDATES[link_tier]
        state = EncoderState(RGB888, use_cache=False, tier=link_tier)
        if link_tier == 0:
            chosen = candidates[0]  # cheap link: static pick, no trials
        else:
            costs: dict = {}
            chosen = best_encoding(state, frames[-1], candidates,
                                   profile=profile, encode_costs=costs)
        results["adaptive_selection"][profile.name] = {
            "tier": link_tier,
            "chosen": _ENC_NAMES[chosen],
        }
    assert (results["adaptive_selection"]["loopback"]["chosen"]
            != results["adaptive_selection"]["cellular-pdc"]["chosen"])

    # written in smoke mode too (tiny workloads, still every key): the
    # bench-smoke CI job asserts the compression keys are present
    out_path = Path(__file__).resolve().parents[1] / "BENCH_ENCODE_CORE.json"
    out_path.write_text(json.dumps({
        "experiment": "vectorized encode core vs seed scalar encoders; "
                      "tile-grid frame differ ablation; tiered zrle "
                      "compression + adaptive per-link selection",
        "pixel_format": "rgb888",
        "workloads": ["solid", "panel-churn", "noise",
                      "unchanged-redraw (480x360, 12-label panel)",
                      "churn sequence (480x360, phone bearer)"],
        "timing": "best of 3",
        "smoke": bool(smoke),
        **results,
    }, indent=2) + "\n")

"""E1 — thin-client encodings on control-panel frames.

Claim operationalised: the universal interaction protocol's encodings make
bitmap output events cheap enough for weak device links.  Expected shape:
RRE/HEXTILE/ZLIB beat RAW by >= 5x on panel frames; on noise they gracefully
fall back to ~RAW size (HEXTILE) instead of exploding.

Rows: encoding x screen size; ``extra_info`` records payload bytes and the
compression ratio vs RAW.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import panel_frame
from repro.graphics import RGB888, Bitmap
from repro.uip import (
    HEXTILE,
    RAW,
    RRE,
    ZLIB,
    DecoderState,
    EncodeCache,
    EncoderState,
    decode_rect,
    encode_rect,
)
from repro.uip.wire import Cursor

SCREENS = {
    "phone-128": (128, 128),
    "pda-320x240": (320, 240),
    "panel-480x360": (480, 360),
    "tv-720x480": (720, 480),
}

ENCODINGS = {"raw": RAW, "rre": RRE, "hextile": HEXTILE, "zlib": ZLIB}


@pytest.mark.parametrize("screen", SCREENS)
@pytest.mark.parametrize("codec", ENCODINGS)
def test_encode_panel(benchmark, screen, codec):
    width, height = SCREENS[screen]
    packed = RGB888.pack_array(panel_frame(width, height).pixels)
    encoding = ENCODINGS[codec]
    raw_size = packed.nbytes

    def run():
        # fresh state per iteration so ZLIB's stream history is identical
        return encode_rect(EncoderState(RGB888), packed, encoding)

    payload = benchmark(run)
    benchmark.extra_info["payload_bytes"] = len(payload)
    benchmark.extra_info["raw_bytes"] = raw_size
    benchmark.extra_info["ratio_vs_raw"] = round(raw_size / len(payload), 2)


@pytest.mark.parametrize("codec", ["rre", "hextile", "zlib"])
def test_decode_panel(benchmark, codec):
    width, height = SCREENS["pda-320x240"]
    packed = RGB888.pack_array(panel_frame(width, height).pixels)
    encoding = ENCODINGS[codec]
    payload = encode_rect(EncoderState(RGB888), packed, encoding)

    def run():
        out = decode_rect(DecoderState(RGB888), Cursor(payload), width,
                          height, encoding)
        return out

    out = benchmark(run)
    assert np.array_equal(out, packed)
    benchmark.extra_info["payload_bytes"] = len(payload)


def test_encode_noise_worst_case(benchmark):
    """HEXTILE on incompressible noise must not blow up beyond RAW+tiles."""
    rng = np.random.default_rng(7)
    noise = Bitmap.from_array(
        rng.integers(0, 256, size=(240, 320, 3), dtype=np.uint8))
    packed = RGB888.pack_array(noise.pixels)

    payload = benchmark(
        lambda: encode_rect(EncoderState(RGB888), packed, HEXTILE))
    n_tiles = ((240 + 15) // 16) * ((320 + 15) // 16)
    assert len(payload) <= packed.nbytes + n_tiles
    benchmark.extra_info["overhead_bytes"] = len(payload) - packed.nbytes


@pytest.mark.parametrize("codec", ["rre", "hextile"])
def test_encode_cache_warm_hit(benchmark, codec):
    """Re-encoding unchanged content costs one hash, not a full encode."""
    packed = RGB888.pack_array(panel_frame(320, 240).pixels)
    encoding = ENCODINGS[codec]
    state = EncoderState(RGB888)
    cold = encode_rect(state, packed, encoding)

    payload = benchmark(lambda: encode_rect(state, packed, encoding))
    assert payload == cold
    assert state.cache.hits >= 1
    benchmark.extra_info["payload_bytes"] = len(payload)
    benchmark.extra_info["cache_hits"] = state.cache.hits


@pytest.mark.parametrize("sessions", [2, 4, 8])
@pytest.mark.parametrize("mode", ["shared-cache", "per-session"])
def test_multi_session_encode_fanout(benchmark, sessions, mode):
    """N same-config sessions encoding one damaged frame.

    With a shared cache the frame is hextile-encoded once and served to the
    other N-1 sessions from content hash lookups; per-session states repeat
    the full encode N times.
    """
    packed = RGB888.pack_array(panel_frame(320, 240).pixels)

    def run():
        cache = EncodeCache() if mode == "shared-cache" else None
        states = [
            EncoderState(RGB888, cache=cache) if cache is not None
            else EncoderState(RGB888, use_cache=False)
            for _ in range(sessions)
        ]
        return [encode_rect(state, packed, HEXTILE) for state in states]

    payloads = benchmark(run)
    assert all(p == payloads[0] for p in payloads)
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["payload_bytes"] = len(payloads[0])


def test_zlib_second_frame_dictionary_gain(benchmark):
    """Persistent ZLIB: the repeated frame costs almost nothing."""
    packed = RGB888.pack_array(panel_frame(320, 240).pixels)

    def run():
        state = EncoderState(RGB888)
        first = encode_rect(state, packed, ZLIB)
        second = encode_rect(state, packed, ZLIB)
        return first, second

    first, second = benchmark(run)
    benchmark.extra_info["first_bytes"] = len(first)
    benchmark.extra_info["second_bytes"] = len(second)
    assert len(second) < len(first)

"""Ablations — quantifying the design choices DESIGN.md calls out.

A1  incremental damage-tracked updates   vs full-frame refreshes
A2  fixed HEXTILE                        vs adaptive per-rect best-of
A3  Floyd-Steinberg vs ordered vs hard threshold on 1-bit screens
A4  wire pixel format depth (RGB888/565/332) on session bytes
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import panel_frame
from repro.graphics import RGB332, RGB565, RGB888, ops
from repro.net import ETHERNET_100, make_pipe
from repro.proxy import UniIntProxy
from repro.server import UniIntServer
from repro.toolkit import Column, Label, ToggleButton, UIWindow
from repro.uip import HEXTILE, RAW, RRE, ZLIB, DESKTOP_SIZE
from repro.util import Scheduler
from repro.windows import DisplayServer


def _stack(adaptive=False, pixel_format=RGB888, encodings=None,
           tile_diff=True):
    scheduler = Scheduler()
    display = DisplayServer(480, 360)
    window = UIWindow(480, 360)
    col = Column()
    label = col.add(Label("status: ----"))
    label.widget_id = "status"
    for i in range(6):
        col.add(ToggleButton(f"Load {i}"))
    window.set_root(col)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler, adaptive=adaptive,
                          tile_diff=tile_diff)
    proxy = UniIntProxy(scheduler)
    pipe = make_pipe(scheduler, ETHERNET_100)
    server.accept(pipe.a)
    kwargs = {"pixel_format": pixel_format}
    if encodings is not None:
        kwargs["encodings"] = encodings
    session = proxy.connect(pipe.b, **kwargs)
    scheduler.run_until_idle()
    return scheduler, window, session


def _label_workload(scheduler, window, session, steps=20):
    """Twenty small UI changes; returns upstream bytes consumed."""
    before = session.upstream.endpoint.stats.bytes_received
    label = window.root.find("status")
    for i in range(steps):
        label.text = f"status: {i:04d}"
        scheduler.run_until_idle()
    return session.upstream.endpoint.stats.bytes_received - before


class TestA1IncrementalVsFullFrame:
    def test_incremental_updates(self, benchmark):
        def run():
            scheduler, window, session = _stack()
            return _label_workload(scheduler, window, session)

        bytes_used = benchmark.pedantic(run, rounds=3, iterations=1)
        benchmark.extra_info["upstream_bytes"] = bytes_used

    @staticmethod
    def _full_frame_workload(tile_diff):
        scheduler, window, session = _stack(tile_diff=tile_diff)
        before = session.upstream.endpoint.stats.bytes_received
        label = window.root.find("status")
        for i in range(20):
            label.text = f"status: {i:04d}"
            window.damage.add(window.bitmap.bounds)  # the ablation
            scheduler.run_until_idle()
        return session.upstream.endpoint.stats.bytes_received - before

    def test_full_frame_refreshes(self, benchmark):
        """Ablated: damage the whole window on every change.

        The frame differ is disabled here — it refines full-frame damage
        straight back to the changed tiles, which would hide the very
        cost this ablation quantifies (see the test below for that).
        """
        bytes_used = benchmark.pedantic(
            lambda: self._full_frame_workload(tile_diff=False),
            rounds=3, iterations=1)
        benchmark.extra_info["upstream_bytes"] = bytes_used
        # sanity: full-frame costs at least 5x the incremental bytes
        scheduler, window, session = _stack()
        incremental = _label_workload(scheduler, window, session)
        assert bytes_used > 5 * incremental
        benchmark.extra_info["vs_incremental"] = round(
            bytes_used / incremental, 1)

    def test_tile_differ_neutralises_full_frame_damage(self, benchmark):
        """With the frame differ on, full-frame damage costs the same
        bytes as properly incremental damage — over-reporting apps get
        the damage-tracked price anyway."""
        bytes_used = benchmark.pedantic(
            lambda: self._full_frame_workload(tile_diff=True),
            rounds=3, iterations=1)
        scheduler, window, session = _stack()
        incremental = _label_workload(scheduler, window, session)
        assert bytes_used <= incremental * 1.05
        benchmark.extra_info["upstream_bytes"] = bytes_used
        benchmark.extra_info["vs_incremental"] = round(
            bytes_used / incremental, 2)


class TestA2AdaptiveEncoding:
    @pytest.mark.parametrize("mode", ["fixed-hextile", "fixed-rre",
                                      "adaptive"])
    def test_encoding_mode_bytes(self, benchmark, mode):
        encodings = {
            "fixed-hextile": (HEXTILE, DESKTOP_SIZE),
            "fixed-rre": (RRE, DESKTOP_SIZE),
            "adaptive": (HEXTILE, RRE, RAW, DESKTOP_SIZE),
        }[mode]

        def run():
            scheduler, window, session = _stack(
                adaptive=(mode == "adaptive"), encodings=encodings)
            return _label_workload(scheduler, window, session)

        bytes_used = benchmark.pedantic(run, rounds=3, iterations=1)
        benchmark.extra_info["upstream_bytes"] = bytes_used


class TestA3DitherChoice:
    def _gray(self):
        return ops.to_grayscale(panel_frame(320, 240))

    def test_floyd_steinberg(self, benchmark):
        gray = self._gray()
        out = benchmark(lambda: ops.floyd_steinberg(gray, 2))
        benchmark.extra_info["mean_abs_error"] = round(
            self._block_error(gray, out), 2)

    def test_ordered_dither(self, benchmark):
        gray = self._gray()
        out = benchmark(lambda: ops.ordered_dither(gray, 2))
        benchmark.extra_info["mean_abs_error"] = round(
            self._block_error(gray, out), 2)

    def test_hard_threshold(self, benchmark):
        gray = self._gray()
        out = benchmark(lambda: ops.quantize_levels(gray, 2))
        benchmark.extra_info["mean_abs_error"] = round(
            self._block_error(gray, out), 2)

    @staticmethod
    def _block_error(source: np.ndarray, dithered: np.ndarray) -> float:
        """Mean |8x8-block-mean difference| — a perceptual-ish metric."""
        h, w = source.shape
        hb, wb = h // 8 * 8, w // 8 * 8
        s = source[:hb, :wb].reshape(hb // 8, 8, wb // 8, 8).mean((1, 3))
        d = dithered[:hb, :wb].reshape(hb // 8, 8, wb // 8, 8).mean((1, 3))
        return float(np.abs(s - d).mean())


class TestA4WireDepth:
    @pytest.mark.parametrize("fmt_name,fmt", [
        ("rgb888", RGB888), ("rgb565", RGB565), ("rgb332", RGB332)])
    def test_wire_format_bytes(self, benchmark, fmt_name, fmt):
        def run():
            scheduler, window, session = _stack(pixel_format=fmt)
            return _label_workload(scheduler, window, session)

        bytes_used = benchmark.pedantic(run, rounds=3, iterations=1)
        benchmark.extra_info["upstream_bytes"] = bytes_used
        benchmark.extra_info["bytes_per_pixel"] = fmt.bytes_per_pixel

"""E9 — credit backpressure on slow bearers (the paper's phone scenario).

Workload: a 480×360 appliance panel churning at UI speed, viewed by a
client behind the 9600 bps PDC cellular bearer that polls eagerly
(pipelined framebuffer-update requests — the RFB-legal behaviour of
snapshot viewers).  Without flow control the server answers every request
with a fresh update that queues behind the saturated link, so server-side
queue depth grows without bound and every delivered frame is seconds
stale.  With credit backpressure the session withholds sends while the
transport is past its credit and folds new damage into its pending
region — the client receives one merged, freshest update per link drain.

Metrics (recorded to ``BENCH_BACKPRESSURE.json``, before = backpressure
off, after = on):

* peak queued bytes on the server→client transport (bounded vs unbounded),
* staleness of delivered updates — virtual seconds between a payload's
  encode and its arrival (send-time vs delivery-time, matched FIFO by
  cumulative byte count),
* fast-path regression — wall-clock per churn round on an 8-session
  Ethernet broadcast, backpressure on vs off (the credit check is one
  attribute read; the budget is ≤5%).
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from pathlib import Path

import pytest

from benchmarks.conftest import churn_panel_stack, drive_eager_churn
from repro.net import CELLULAR_PDC, ETHERNET_100
from repro.net.transport import as_chunks


class _StalenessProbe:
    """Virtual-time lag between a payload leaving the session and its
    arrival at the client, matched FIFO by cumulative byte count."""

    def __init__(self, scheduler, session, client):
        self._scheduler = scheduler
        self._sent: deque[tuple[int, float]] = deque()
        self._cum_sent = 0
        self._cum_recv = 0
        self.staleness_s: list[float] = []
        inner_send = session.endpoint.send

        def send(data):
            _, total = as_chunks(data)
            self._cum_sent += total
            self._sent.append((self._cum_sent, scheduler.now()))
            inner_send(data)

        session.endpoint.send = send
        inner_receive = client.endpoint.on_receive

        def receive(chunk):
            self._cum_recv += len(chunk)
            while self._sent and self._cum_recv >= self._sent[0][0]:
                _, sent_at = self._sent.popleft()
                self.staleness_s.append(scheduler.now() - sent_at)
            inner_receive(chunk)

        client.endpoint.on_receive = receive


def _slow_bearer_metrics(backpressure: bool, seconds: float) -> dict:
    scheduler, display, labels, server, clients = churn_panel_stack(
        [CELLULAR_PDC], backpressure=backpressure)
    client = clients[0]
    session = server.sessions[0]
    probe = _StalenessProbe(scheduler, session, client)
    drive_eager_churn(scheduler, labels, [client], seconds)
    scheduler.run_until_idle()  # drain the link; mirror must converge
    assert client.framebuffer == display.framebuffer
    staleness = probe.staleness_s or [0.0]
    endpoint = session.endpoint
    return {
        "peak_queued_bytes": endpoint.stats.peak_queued_bytes,
        "credit_limit_bytes": endpoint.credit_limit,
        "bytes_sent": endpoint.stats.bytes_sent,
        "updates_sent": session.updates_sent,
        "updates_delivered": client.updates_received,
        "updates_coalesced": session.updates_coalesced,
        "bytes_suppressed_estimate": session.bytes_suppressed,
        "mean_staleness_s": sum(staleness) / len(staleness),
        "max_staleness_s": max(staleness),
    }


def _fast_path_round_time(backpressure: bool, sessions: int,
                          repeats: int, rounds_per_repeat: int) -> float:
    scheduler, display, labels, server, clients = churn_panel_stack(
        [ETHERNET_100] * sessions, backpressure=backpressure)
    rounds = itertools.count()

    def churn_round():
        round_no = next(rounds)
        for i, label in enumerate(labels):
            label.text = f"round {round_no} value {(round_no * 37 + i) % 997}"
        scheduler.run_until_idle()

    churn_round()  # warm-up
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds_per_repeat):
            churn_round()
        elapsed = (time.perf_counter() - start) / rounds_per_repeat
        best = elapsed if best is None else min(best, elapsed)
    for client in clients:
        assert client.framebuffer == display.framebuffer
    return best


@pytest.mark.parametrize("mode", ["backpressure", "unbounded"])
def test_slow_bearer_queue_depth(benchmark, mode, smoke):
    """Wall-clock cost of simulating the phone-bearer churn scenario."""
    seconds = 2.0 if smoke else 10.0
    flag = mode == "backpressure"

    result = benchmark.pedantic(
        lambda: _slow_bearer_metrics(flag, seconds), rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    benchmark.extra_info["mode"] = mode


def test_backpressure_bounds_queue_and_freshness_and_records(smoke):
    """The headline experiment: before/after + fast path, recorded to
    BENCH_BACKPRESSURE.json per the repo convention."""
    seconds = 3.0 if smoke else 30.0
    repeats, rounds_per_repeat = (2, 2) if smoke else (5, 3)
    before = _slow_bearer_metrics(backpressure=False, seconds=seconds)
    after = _slow_bearer_metrics(backpressure=True, seconds=seconds)

    # bounded: within a few credits of the watermark, not link-unbounded
    assert (after["peak_queued_bytes"]
            < 4 * after["credit_limit_bytes"]), after
    assert before["peak_queued_bytes"] > after["peak_queued_bytes"] * 4, (
        before, after)
    # every delivered frame is fresher on average
    assert after["mean_staleness_s"] < before["mean_staleness_s"], (
        before, after)
    # coalescing happened, and fewer stale updates crossed the wire
    assert after["updates_coalesced"] > 0
    assert after["bytes_sent"] < before["bytes_sent"]

    if smoke:
        # harness check only: the fast-path wall-clock comparison is
        # meaningless at smoke repeats on a noisy runner
        return
    fast_off = _fast_path_round_time(False, 8, repeats, rounds_per_repeat)
    fast_on = _fast_path_round_time(True, 8, repeats, rounds_per_repeat)
    ratio = fast_on / fast_off
    # hard guard looser than the ≤5% budget to keep timing-noise-proof;
    # the recorded JSON carries the actual measurement
    assert ratio < 1.15, f"fast-path regression {ratio:.3f}x"
    out_path = Path(__file__).resolve().parents[1] / "BENCH_BACKPRESSURE.json"
    out_path.write_text(json.dumps({
        "experiment": "credit backpressure + slow-client update coalescing",
        "workload": {
            "screen": "480x360, 12-label panel churn every 100 ms",
            "slow_bearer": "cellular-pdc 9600 bps, eager 50 ms polling "
                           "viewer, 30 virtual seconds",
            "fast_path": "ethernet-100, 8-session shared-encode broadcast",
        },
        "timing_method": "virtual-time metrics from transport stats; "
                         "fast path wall-clock best-of-"
                         f"{repeats} x {rounds_per_repeat} rounds "
                         "(time.perf_counter)",
        "before_backpressure_off": before,
        "after_backpressure_on": after,
        "fast_path": {
            "off_s_per_round": fast_off,
            "on_s_per_round": fast_on,
            "on_vs_off_ratio": ratio,
        },
    }, indent=2) + "\n")

"""E11 — command-spine dispatch overhead and churn throughput.

The unified command spine claims actuation tracking is *free* where it
matters: an actuation driven through the spine (journaled, timeout-
guarded, coalescible) must cost no more than 1.05x the bare
``send_request`` dispatch it replaced, measured on the real actuation
path — a full home, application attached, state events fanning back into
live widgets.

Two scales are recorded:

* **home round trip** (the asserted one) — wall-clock for one actuation
  through a real home: widget-layer command, FCM handler, ``fcm.state``
  event fan-out, panel refresh.  Spine vs direct must be ≤1.05x.
* **bus floor** (recorded, not asserted) — the same comparison against a
  bare echo element with no application attached.  This isolates the
  spine's absolute per-command cost in microseconds; a fixed tracking
  cost that is invisible on the real path is by design visible here.
* **churn throughput** — commands/second with 8 concurrent users
  hammering ``volume.set`` bursts at one appliance, plus the coalescing
  the spine buys on that workload.

Records to ``BENCH_COMMANDS.json`` (written in smoke runs too, so CI
keeps the record fresh and asserts the overhead budget).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import Home
from repro.app.commands import CommandSpine
from repro.appliances import Television
from repro.havi import FcmType, SEID, SoftwareElement
from repro.havi.messaging import MessageSystem
from repro.util import Scheduler
from repro.util.ids import guid_from_seed

OVERHEAD_BUDGET = 1.05
USERS = 8


class EchoFcm(SoftwareElement):
    def __init__(self, seid, messaging):
        super().__init__(seid, messaging)
        self.handled = 0

    def handle_request(self, message):
        self.handled += 1
        self.reply(message, {"echo": True})


# -- home round trip (the asserted comparison) ------------------------------


def _home_rig():
    home = Home()
    tv = Television("TV")
    home.add_appliance(tv)
    home.settle()
    tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
    tuner.invoke_local("power.set", {"on": True})
    home.settle()
    return home, home.app.handle_for("TV", "tuner")


def _home_direct(commands: int) -> float:
    """N direct send_request actuations in a full home (pre-spine path)."""
    home, handle = _home_rig()
    replies = []
    start = time.perf_counter()
    for i in range(commands):
        handle.app.send_request(handle.seid, "volume.set",
                                {"volume": i % 100},
                                on_reply=replies.append)
        home.settle()
    elapsed = time.perf_counter() - start
    assert len(replies) == commands
    assert replies[-1].status == "SUCCESS"
    return elapsed


def _home_spine(commands: int) -> float:
    """N tracked actuations through the handle's spine, same home."""
    home, handle = _home_rig()
    replies = []
    start = time.perf_counter()
    for i in range(commands):
        handle.command("volume.set", {"volume": i % 100},
                       on_reply=replies.append, origin="widget")
        home.settle()
    elapsed = time.perf_counter() - start
    assert len(replies) == commands
    stats = home.command_log.stats()
    assert stats["terminal"]["done"] >= commands
    return elapsed


# -- bus floor (recorded, not asserted) -------------------------------------


def _bus_rig(users: int = 1):
    scheduler = Scheduler()
    messaging = MessageSystem(scheduler)
    requesters = []
    for i in range(users):
        element = SoftwareElement(
            SEID(guid_from_seed(f"bench-user-{i}"), 0), messaging)
        element.attach()
        requesters.append(element)
    fcm = EchoFcm(SEID(guid_from_seed("bench-fcm"), 1), messaging)
    fcm.attach()
    return scheduler, requesters, fcm


def _bus_direct(commands: int) -> float:
    scheduler, (requester,), fcm = _bus_rig()
    replies = []
    start = time.perf_counter()
    for i in range(commands):
        requester.send_request(fcm.seid, "volume.set", {"volume": i % 100},
                               on_reply=replies.append)
        scheduler.run_until_idle()
    elapsed = time.perf_counter() - start
    assert len(replies) == commands
    return elapsed


def _bus_spine(commands: int) -> float:
    scheduler, (requester,), fcm = _bus_rig()
    spine = CommandSpine(requester)
    replies = []
    start = time.perf_counter()
    for i in range(commands):
        spine.submit(fcm.seid, "volume.set", {"volume": i % 100},
                     on_reply=replies.append)
        scheduler.run_until_idle()
    elapsed = time.perf_counter() - start
    assert len(replies) == commands
    assert spine.log.stats()["terminal"]["done"] == commands
    return elapsed


def _churn_throughput(bursts: int):
    """8 users bursting coalescible writes at one appliance."""
    scheduler, requesters, fcm = _bus_rig(USERS)
    spines = [CommandSpine(r) for r in requesters]
    submitted = 0
    start = time.perf_counter()
    for burst in range(bursts):
        for user, spine in enumerate(spines):
            for value in range(4):  # a twisty slider: 4 writes per burst
                spine.submit(fcm.seid, "volume.set",
                             {"volume": (burst + user + value) % 100})
                submitted += 1
        scheduler.run_until_idle()
    elapsed = time.perf_counter() - start
    coalesced = sum(s.coalesced for s in spines)
    dispatched = sum(s.dispatched for s in spines)
    for spine in spines:
        stats = spine.log.stats()
        assert sum(stats["terminal"].values()) == stats["submitted"]
    return {
        "users": USERS,
        "bursts": bursts,
        "commands_submitted": submitted,
        "commands_per_s": submitted / max(elapsed, 1e-9),
        "wire_requests": fcm.handled,
        "dispatched": dispatched,
        "coalesced": coalesced,
        "coalesce_ratio": coalesced / max(submitted, 1),
    }


def test_command_spine_overhead_and_throughput(smoke):
    home_commands = 40 if smoke else 200
    bus_commands = 200 if smoke else 2000
    rounds = 3 if smoke else 6

    home_direct = min(_home_direct(home_commands) for _ in range(rounds))
    home_spine = min(_home_spine(home_commands) for _ in range(rounds))
    home_ratio = home_spine / max(home_direct, 1e-9)

    bus_direct = min(_bus_direct(bus_commands) for _ in range(rounds))
    bus_spine = min(_bus_spine(bus_commands) for _ in range(rounds))

    churn = _churn_throughput(bursts=10 if smoke else 100)

    assert home_ratio <= OVERHEAD_BUDGET, (
        f"spine actuation costs {home_ratio:.3f}x a direct send_request "
        f"round trip through the home (budget {OVERHEAD_BUDGET}x)")
    # coalescing must actually bite on the churn workload: 4 writes per
    # burst into a depth-1 lane means at most 2 hit the wire
    assert churn["coalesced"] > 0
    assert churn["wire_requests"] < churn["commands_submitted"]

    out_path = Path(__file__).resolve().parents[1] / "BENCH_COMMANDS.json"
    out_path.write_text(json.dumps({
        "experiment": "command-spine dispatch overhead vs direct "
                      "send_request, and throughput under 8-user churn",
        "workload": {
            "home_round_trip_commands": home_commands,
            "bus_floor_commands": bus_commands,
            "rounds": rounds,
            "smoke": bool(smoke),
        },
        "timing_method": "best-of-N wall-clock (time.perf_counter) for "
                         "submit+settle round trips; home scale includes "
                         "FCM handler, fcm.state fan-out and panel "
                         "refresh; bus floor is a bare echo element",
        "home_round_trip": {
            "direct_s_per_cmd": home_direct / home_commands,
            "spine_s_per_cmd": home_spine / home_commands,
            "overhead_ratio": home_ratio,
            "budget": OVERHEAD_BUDGET,
        },
        "bus_floor": {
            "direct_s_per_cmd": bus_direct / bus_commands,
            "spine_s_per_cmd": bus_spine / bus_commands,
            "spine_cost_us_per_cmd":
                (bus_spine - bus_direct) / bus_commands * 1e6,
            "note": "absolute tracking+timeout-guard cost on a bare "
                    "bus; not asserted (no application attached, so "
                    "nothing amortises the fixed cost)",
        },
        "churn": churn,
    }, indent=2) + "\n")

"""E6 — uniform control at scale: many appliances, one application.

Claim operationalised: the uniform-control architecture keeps working as
the number of appliances grows (discovery, registry queries, composed-GUI
generation).  Expected shape: registry query and composed-UI build grow
~linearly in appliance count; hotplug install time is flat per device.
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import churn_panel_stack, drive_eager_churn
from repro import Home
from repro.app.composer import compose_ui
from repro.appliances import APPLIANCE_CLASSES
from repro.havi import Comparison, HomeNetwork
from repro.net import CELLULAR_PDC, ETHERNET_100

COUNTS = [1, 4, 16, 64]


def _make_appliances(count: int):
    classes = list(APPLIANCE_CLASSES.values())
    return [classes[i % len(classes)](f"appliance-{i:02d}", unit=i + 1)
            for i in range(count)]


def _populated_home(count: int) -> Home:
    home = Home(width=480, height=360)
    for appliance in _make_appliances(count):
        home.add_appliance(appliance)
    home.settle()
    return home


@pytest.mark.parametrize("count", COUNTS)
def test_hotplug_install(benchmark, count):
    """Bus attach -> DCM install -> registry for N appliances."""

    def run():
        network = HomeNetwork()
        for appliance in _make_appliances(count):
            network.attach_device(appliance)
        network.settle()
        return network

    network = benchmark(run)
    fcms = network.registry.query(Comparison("element.type", "==", "fcm"))
    benchmark.extra_info["appliances"] = count
    benchmark.extra_info["fcms_registered"] = len(fcms)


@pytest.mark.parametrize("count", COUNTS)
def test_registry_query(benchmark, count):
    home = _populated_home(count)
    query = Comparison("element.type", "==", "fcm")

    result = benchmark(lambda: home.network.registry.query(query))
    benchmark.extra_info["appliances"] = count
    benchmark.extra_info["matches"] = len(result)


@pytest.mark.parametrize("count", COUNTS)
def test_composed_ui_build(benchmark, count):
    """compose_ui + full layout for N appliance pages."""
    home = _populated_home(count)
    appliances = home.app.appliances

    def run():
        root = compose_ui(appliances)
        home.window.set_root(root)
        home.window.render()
        return root

    benchmark(run)
    benchmark.extra_info["appliances"] = count
    benchmark.extra_info["widgets"] = sum(
        1 for _ in home.window.root.walk())


# -- E8: framebuffer broadcast at session scale ------------------------------
#
# The damage-tracking pipeline exists so that many viewers of one screen
# (wall display + PDA + phone all mirroring the same appliance panel) cost
# one encode, not one per session.  These benchmarks drive a churning GUI
# with N connected UIP sessions, with shared-encode broadcast on vs off.


def _broadcast_stack(sessions: int, shared: bool):
    return churn_panel_stack([ETHERNET_100] * sessions, shared=shared)


def _churn_round(scheduler, labels, round_no: int) -> None:
    """Dirty most of the screen with fresh content and settle the flush."""
    for i, label in enumerate(labels):
        label.text = f"round {round_no} value {(round_no * 37 + i) % 997}"
    scheduler.run_until_idle()


@pytest.mark.parametrize("sessions", [1, 4, 8])
@pytest.mark.parametrize("mode", ["shared", "per-session"])
def test_framebuffer_broadcast(benchmark, sessions, mode):
    scheduler, display, labels, server, clients = _broadcast_stack(
        sessions, shared=(mode == "shared"))
    rounds = itertools.count()

    benchmark(lambda: _churn_round(scheduler, labels, next(rounds)))

    for client in clients:
        assert client.framebuffer == display.framebuffer
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["shared_encode_hits"] = server.shared_encode_hits
    benchmark.extra_info["shared_encode_misses"] = server.shared_encode_misses
    benchmark.extra_info["pack_hits"] = server.pack_hits


def test_broadcast_beats_per_session_and_records(smoke):
    """Shared-encode broadcast must win at >= 4 sessions; results land in
    BENCH_BROADCAST.json for the trajectory record."""
    session_counts = (1, 4) if smoke else (1, 2, 4, 8)
    repeats = 1 if smoke else 3
    rounds_per_repeat = 2 if smoke else 3
    results = {}
    for sessions in session_counts:
        timings = {}
        for mode in ("shared", "per-session"):
            scheduler, display, labels, server, clients = _broadcast_stack(
                sessions, shared=(mode == "shared"))
            counter = itertools.count()
            _churn_round(scheduler, labels, next(counter))  # warm-up
            best = None
            for _ in range(repeats):
                start = time.perf_counter()
                for _ in range(rounds_per_repeat):
                    _churn_round(scheduler, labels, next(counter))
                elapsed = (time.perf_counter() - start) / rounds_per_repeat
                best = elapsed if best is None else min(best, elapsed)
            for client in clients:
                assert client.framebuffer == display.framebuffer
            timings[mode] = best
            if mode == "shared" and sessions > 1:
                assert server.shared_encode_hits > 0
        results[sessions] = {
            "shared_s": timings["shared"],
            "per_session_s": timings["per-session"],
            "speedup": timings["per-session"] / timings["shared"],
        }
    if smoke:  # harness validation only: no perf assertion, no record
        return
    for sessions in (4, 8):
        assert results[sessions]["shared_s"] < results[sessions][
            "per_session_s"], (
            f"shared encode not faster at {sessions} sessions: {results}")
    out_path = Path(__file__).resolve().parents[1] / "BENCH_BROADCAST.json"
    out_path.write_text(json.dumps({
        "experiment": "shared-encode broadcast vs per-session encoding",
        "screen": "480x360, 12-label panel churn per round",
        "rounds_per_repeat": rounds_per_repeat,
        "repeats": repeats,
        "sessions": results,
    }, indent=2) + "\n")


# -- E9 rider: one slow bearer among fast ones -------------------------------
#
# The home-scale worry with heterogeneous bearers: a phone-link viewer in a
# room of Ethernet wall panels must not inflate server-side queue depth (or
# staleness) for anyone.  Credit backpressure confines the backlog to the
# slow session's own pending region.


def test_slow_bearer_does_not_inflate_other_sessions(smoke):
    fast_count = 3 if smoke else 7
    scheduler, display, labels, server, clients = churn_panel_stack(
        [ETHERNET_100] * fast_count + [CELLULAR_PDC], backpressure=True)
    fast_clients, phone_client = clients[:fast_count], clients[-1]
    phone_session = server.sessions[-1]
    # only the phone polls eagerly (pipelined requests); the Ethernet
    # panels pace themselves with one outstanding request, as usual
    drive_eager_churn(scheduler, labels, [phone_client],
                      seconds=3.0 if smoke else 20.0)

    fast_sessions = [s for s in server.sessions if s is not phone_session]
    # the Ethernet panels never saturate, never coalesce, stay shallow
    for session in fast_sessions:
        assert session.updates_coalesced == 0
        assert (session.endpoint.stats.peak_queued_bytes
                < session.endpoint.credit_limit)
    # the phone's backlog stays bounded near its own credit limit
    assert (phone_session.endpoint.stats.peak_queued_bytes
            < 4 * phone_session.endpoint.credit_limit)
    assert phone_session.updates_coalesced > 0
    # and everyone converges on the same pixels once the links drain
    scheduler.run_until_idle()
    for client in (*fast_clients, phone_client):
        assert client.framebuffer == display.framebuffer


# -- E10: multi-user homes ----------------------------------------------------
#
# The paper's headline scenario: one home serving several residents at
# once, each with their own proxy + server session + device fleet.  The
# cost that must stay sublinear is the *server-side broadcast cost* per
# frame: with shared-encode, adding a user adds one (cheap) transport send
# per update, not another encode.  Per-user work (their proxy's mirror
# decode, their output device's transform) is inherently linear and is
# reported separately as end-to-end time.

USER_COUNTS = [1, 2, 4, 8]

#: Devices provisioned per user: an IR remote and a voice mic for input,
#: a personal TV panel for output (Ethernet bearer).
DEVICES_PER_USER = 3


class ServerCostMeter:
    """Cumulative wall-clock spent inside the server's broadcast path.

    Wraps the update-distribution entry points (`_flush`, each surface's
    `_composite_and_distribute`, each session's `_try_send`) with a
    reentrancy-guarded timer, so time is counted once no matter which
    entry point leads.
    """

    def __init__(self, server):
        self.seconds = 0.0
        self._depth = 0
        self._wrap(server, "_flush")
        for surface in server.surfaces:
            self._wrap(surface, "_composite_and_distribute")
        for session in server.sessions:
            self._wrap(session, "_try_send")

    def _wrap(self, obj, name):
        fn = getattr(obj, name)

        def timed(*args, **kwargs):
            if self._depth:
                return fn(*args, **kwargs)
            self._depth += 1
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self.seconds += time.perf_counter() - start
                self._depth -= 1

        setattr(obj, name, timed)


def _multiuser_home(users: int, shared: bool = True):
    """A Home with N residents x 3 devices and a churn-ready label panel.

    All residents share the default user's *view* (``view_of=...``): this
    is the PR 4 workload — one screen, N mirrors — kept as the
    shared-encode broadcast baseline.  Per-user independent views are
    measured by bench_surfaces.py.
    """
    from repro.devices import RemoteControl, TvDisplay, VoiceInput
    from repro.toolkit import Column, Label

    home = Home(width=480, height=360, shared_encode=shared)
    column = Column()
    labels = [column.add(Label(f"row {i}")) for i in range(12)]
    home.window.set_root(column)
    for index in range(users):
        user = (home.default_user if index == 0
                else home.add_user(f"user-{index}", view_of="resident"))
        uid = user.user_id
        home.add_device(RemoteControl(f"remote-{index}", home.scheduler),
                        user=uid, reselect=False)
        home.add_device(VoiceInput(f"mic-{index}", home.scheduler),
                        user=uid, reselect=False)
        home.add_device(TvDisplay(f"panel-{index}", home.scheduler),
                        user=uid)
    home.settle()
    for user in home.users.values():
        assert user.current_output is not None
    return home, labels


def _multiuser_round(home, labels, round_no: int) -> None:
    for i, label in enumerate(labels):
        label.text = f"round {round_no} value {(round_no * 37 + i) % 997}"
    home.settle()


@pytest.mark.parametrize("users", USER_COUNTS)
@pytest.mark.parametrize("mode", ["shared", "per-session"])
def test_multiuser_churn(benchmark, users, mode):
    home, labels = _multiuser_home(users, shared=(mode == "shared"))
    meter = ServerCostMeter(home.uniint_server)
    rounds = itertools.count()

    benchmark(lambda: _multiuser_round(home, labels, next(rounds)))

    for user in home.users.values():
        assert user.session.upstream.framebuffer == home.display.framebuffer
    benchmark.extra_info["users"] = users
    benchmark.extra_info["devices"] = users * DEVICES_PER_USER
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["server_cost_s"] = meter.seconds
    benchmark.extra_info["shared_encode_hits"] = (
        home.uniint_server.shared_encode_hits)


def test_multiuser_broadcast_scales_and_records(smoke):
    """8-user broadcast must cost < 2x the 1-user cost per frame with
    shared-encode; results land in BENCH_MULTIUSER.json."""
    user_counts = (1, 2) if smoke else USER_COUNTS
    repeats = 1 if smoke else 3
    rounds_per_repeat = 1 if smoke else 3
    results = {}
    for users in user_counts:
        row = {}
        for mode in ("shared", "per-session"):
            home, labels = _multiuser_home(users, shared=(mode == "shared"))
            counter = itertools.count()
            _multiuser_round(home, labels, next(counter))  # warm-up
            meter = ServerCostMeter(home.uniint_server)
            best_total = best_server = None
            for _ in range(repeats):
                meter.seconds = 0.0  # one meter; re-wrapping would stack
                start = time.perf_counter()
                for _ in range(rounds_per_repeat):
                    _multiuser_round(home, labels, next(counter))
                total = (time.perf_counter() - start) / rounds_per_repeat
                server = meter.seconds / rounds_per_repeat
                best_total = (total if best_total is None
                              else min(best_total, total))
                best_server = (server if best_server is None
                               else min(best_server, server))
            for user in home.users.values():
                assert (user.session.upstream.framebuffer
                        == home.display.framebuffer)
                assert home.devices[
                    user.current_output].frames_received > 0
            row[mode] = {"server_cost_s": best_server,
                         "end_to_end_s": best_total}
        results[users] = {
            "server_cost_shared_s": row["shared"]["server_cost_s"],
            "server_cost_per_session_s": row["per-session"]["server_cost_s"],
            "end_to_end_shared_s": row["shared"]["end_to_end_s"],
            "end_to_end_per_session_s": row["per-session"]["end_to_end_s"],
        }
    if smoke:  # harness validation only: no perf assertion, no record
        return
    max_users = max(user_counts)
    scaling = (results[max_users]["server_cost_shared_s"]
               / results[1]["server_cost_shared_s"])
    assert scaling < 2.0, (
        f"{max_users}-user shared-encode broadcast cost {scaling:.2f}x "
        f"the 1-user cost per frame (must be < 2x): {results}")
    out_path = Path(__file__).resolve().parents[1] / "BENCH_MULTIUSER.json"
    out_path.write_text(json.dumps({
        "experiment": "multi-user home: per-user proxy fleet, "
                      "shared-encode broadcast",
        "workload": {
            "screen": "480x360, 12-label panel churn per round",
            "users": list(user_counts),
            "devices_per_user": "IR remote + voice mic + personal TV panel "
                                "(3 each), one UniInt proxy/session per "
                                "user",
        },
        "timing_method": "wall-clock best-of-3 x 3 rounds "
                         "(time.perf_counter); server-side broadcast cost "
                         "via reentrancy-guarded timers around "
                         "_flush/_composite_and_distribute/_try_send",
        "before_per_session_encode": {
            str(u): results[u]["server_cost_per_session_s"]
            for u in user_counts},
        "after_shared_encode": {
            str(u): results[u]["server_cost_shared_s"]
            for u in user_counts},
        "server_cost_scaling_8_vs_1_shared": scaling,
        "users": results,
    }, indent=2) + "\n")


@pytest.mark.parametrize("count", [1, 4, 16])
def test_full_rebuild_on_hotplug(benchmark, count):
    """The application's end-to-end reaction to one appliance arriving."""
    home = _populated_home(count)
    extra = _make_appliances(count + 1)[-1]
    attached = {"on": False}

    def run():
        if attached["on"]:
            home.network.detach_device(extra.guid)
        else:
            home.network.attach_device(extra)
        attached["on"] = not attached["on"]
        home.settle()
        return home.app.rebuild_count

    benchmark(run)
    benchmark.extra_info["appliances_before"] = count

"""E6 — uniform control at scale: many appliances, one application.

Claim operationalised: the uniform-control architecture keeps working as
the number of appliances grows (discovery, registry queries, composed-GUI
generation).  Expected shape: registry query and composed-UI build grow
~linearly in appliance count; hotplug install time is flat per device.
"""

from __future__ import annotations

import pytest

from repro import Home
from repro.app.composer import compose_ui
from repro.appliances import APPLIANCE_CLASSES
from repro.havi import Comparison, HomeNetwork

COUNTS = [1, 4, 16, 64]


def _make_appliances(count: int):
    classes = list(APPLIANCE_CLASSES.values())
    return [classes[i % len(classes)](f"appliance-{i:02d}", unit=i + 1)
            for i in range(count)]


def _populated_home(count: int) -> Home:
    home = Home(width=480, height=360)
    for appliance in _make_appliances(count):
        home.add_appliance(appliance)
    home.settle()
    return home


@pytest.mark.parametrize("count", COUNTS)
def test_hotplug_install(benchmark, count):
    """Bus attach -> DCM install -> registry for N appliances."""

    def run():
        network = HomeNetwork()
        for appliance in _make_appliances(count):
            network.attach_device(appliance)
        network.settle()
        return network

    network = benchmark(run)
    fcms = network.registry.query(Comparison("element.type", "==", "fcm"))
    benchmark.extra_info["appliances"] = count
    benchmark.extra_info["fcms_registered"] = len(fcms)


@pytest.mark.parametrize("count", COUNTS)
def test_registry_query(benchmark, count):
    home = _populated_home(count)
    query = Comparison("element.type", "==", "fcm")

    result = benchmark(lambda: home.network.registry.query(query))
    benchmark.extra_info["appliances"] = count
    benchmark.extra_info["matches"] = len(result)


@pytest.mark.parametrize("count", COUNTS)
def test_composed_ui_build(benchmark, count):
    """compose_ui + full layout for N appliance pages."""
    home = _populated_home(count)
    appliances = home.app.appliances

    def run():
        root = compose_ui(appliances)
        home.window.set_root(root)
        home.window.render()
        return root

    benchmark(run)
    benchmark.extra_info["appliances"] = count
    benchmark.extra_info["widgets"] = sum(
        1 for _ in home.window.root.walk())


@pytest.mark.parametrize("count", [1, 4, 16])
def test_full_rebuild_on_hotplug(benchmark, count):
    """The application's end-to-end reaction to one appliance arriving."""
    home = _populated_home(count)
    extra = _make_appliances(count + 1)[-1]
    attached = {"on": False}

    def run():
        if attached["on"]:
            home.network.detach_device(extra.guid)
        else:
            home.network.attach_device(extra)
        attached["on"] = not attached["on"]
        home.settle()
        return home.app.rebuild_count

    benchmark(run)
    benchmark.extra_info["appliances_before"] = count

"""E6 — uniform control at scale: many appliances, one application.

Claim operationalised: the uniform-control architecture keeps working as
the number of appliances grows (discovery, registry queries, composed-GUI
generation).  Expected shape: registry query and composed-UI build grow
~linearly in appliance count; hotplug install time is flat per device.
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path

import pytest

from repro import Home
from repro.app.composer import compose_ui
from repro.appliances import APPLIANCE_CLASSES
from repro.havi import Comparison, HomeNetwork
from repro.net import ETHERNET_100, make_pipe
from repro.proxy.upstream import UniIntClient
from repro.server import UniIntServer
from repro.toolkit import Column, Label, UIWindow
from repro.util import Scheduler
from repro.windows import DisplayServer

COUNTS = [1, 4, 16, 64]


def _make_appliances(count: int):
    classes = list(APPLIANCE_CLASSES.values())
    return [classes[i % len(classes)](f"appliance-{i:02d}", unit=i + 1)
            for i in range(count)]


def _populated_home(count: int) -> Home:
    home = Home(width=480, height=360)
    for appliance in _make_appliances(count):
        home.add_appliance(appliance)
    home.settle()
    return home


@pytest.mark.parametrize("count", COUNTS)
def test_hotplug_install(benchmark, count):
    """Bus attach -> DCM install -> registry for N appliances."""

    def run():
        network = HomeNetwork()
        for appliance in _make_appliances(count):
            network.attach_device(appliance)
        network.settle()
        return network

    network = benchmark(run)
    fcms = network.registry.query(Comparison("element.type", "==", "fcm"))
    benchmark.extra_info["appliances"] = count
    benchmark.extra_info["fcms_registered"] = len(fcms)


@pytest.mark.parametrize("count", COUNTS)
def test_registry_query(benchmark, count):
    home = _populated_home(count)
    query = Comparison("element.type", "==", "fcm")

    result = benchmark(lambda: home.network.registry.query(query))
    benchmark.extra_info["appliances"] = count
    benchmark.extra_info["matches"] = len(result)


@pytest.mark.parametrize("count", COUNTS)
def test_composed_ui_build(benchmark, count):
    """compose_ui + full layout for N appliance pages."""
    home = _populated_home(count)
    appliances = home.app.appliances

    def run():
        root = compose_ui(appliances)
        home.window.set_root(root)
        home.window.render()
        return root

    benchmark(run)
    benchmark.extra_info["appliances"] = count
    benchmark.extra_info["widgets"] = sum(
        1 for _ in home.window.root.walk())


# -- E8: framebuffer broadcast at session scale ------------------------------
#
# The damage-tracking pipeline exists so that many viewers of one screen
# (wall display + PDA + phone all mirroring the same appliance panel) cost
# one encode, not one per session.  These benchmarks drive a churning GUI
# with N connected UIP sessions, with shared-encode broadcast on vs off.


def _broadcast_stack(sessions: int, shared: bool):
    scheduler = Scheduler()
    display = DisplayServer(480, 360)
    window = UIWindow(480, 360)
    column = Column()
    labels = [column.add(Label(f"row {i}")) for i in range(12)]
    window.set_root(column)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler, shared_encode=shared)
    clients = []
    for i in range(sessions):
        pipe = make_pipe(scheduler, ETHERNET_100, name=f"viewer-{i}")
        server.accept(pipe.a)
        clients.append(UniIntClient(pipe.b))
    scheduler.run_until_idle()
    return scheduler, display, labels, server, clients


def _churn_round(scheduler, labels, round_no: int) -> None:
    """Dirty most of the screen with fresh content and settle the flush."""
    for i, label in enumerate(labels):
        label.text = f"round {round_no} value {(round_no * 37 + i) % 997}"
    scheduler.run_until_idle()


@pytest.mark.parametrize("sessions", [1, 4, 8])
@pytest.mark.parametrize("mode", ["shared", "per-session"])
def test_framebuffer_broadcast(benchmark, sessions, mode):
    scheduler, display, labels, server, clients = _broadcast_stack(
        sessions, shared=(mode == "shared"))
    rounds = itertools.count()

    benchmark(lambda: _churn_round(scheduler, labels, next(rounds)))

    for client in clients:
        assert client.framebuffer == display.framebuffer
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["shared_encode_hits"] = server.shared_encode_hits
    benchmark.extra_info["shared_encode_misses"] = server.shared_encode_misses
    benchmark.extra_info["pack_hits"] = server.pack_hits


def test_broadcast_beats_per_session_and_records():
    """Shared-encode broadcast must win at >= 4 sessions; results land in
    BENCH_BROADCAST.json for the trajectory record."""
    session_counts = (1, 2, 4, 8)
    repeats = 3
    rounds_per_repeat = 3
    results = {}
    for sessions in session_counts:
        timings = {}
        for mode in ("shared", "per-session"):
            scheduler, display, labels, server, clients = _broadcast_stack(
                sessions, shared=(mode == "shared"))
            counter = itertools.count()
            _churn_round(scheduler, labels, next(counter))  # warm-up
            best = None
            for _ in range(repeats):
                start = time.perf_counter()
                for _ in range(rounds_per_repeat):
                    _churn_round(scheduler, labels, next(counter))
                elapsed = (time.perf_counter() - start) / rounds_per_repeat
                best = elapsed if best is None else min(best, elapsed)
            for client in clients:
                assert client.framebuffer == display.framebuffer
            timings[mode] = best
            if mode == "shared" and sessions > 1:
                assert server.shared_encode_hits > 0
        results[sessions] = {
            "shared_s": timings["shared"],
            "per_session_s": timings["per-session"],
            "speedup": timings["per-session"] / timings["shared"],
        }
    for sessions in (4, 8):
        assert results[sessions]["shared_s"] < results[sessions][
            "per_session_s"], (
            f"shared encode not faster at {sessions} sessions: {results}")
    out_path = Path(__file__).resolve().parents[1] / "BENCH_BROADCAST.json"
    out_path.write_text(json.dumps({
        "experiment": "shared-encode broadcast vs per-session encoding",
        "screen": "480x360, 12-label panel churn per round",
        "rounds_per_repeat": rounds_per_repeat,
        "repeats": repeats,
        "sessions": results,
    }, indent=2) + "\n")


@pytest.mark.parametrize("count", [1, 4, 16])
def test_full_rebuild_on_hotplug(benchmark, count):
    """The application's end-to-end reaction to one appliance arriving."""
    home = _populated_home(count)
    extra = _make_appliances(count + 1)[-1]
    attached = {"on": False}

    def run():
        if attached["on"]:
            home.network.detach_device(extra.guid)
        else:
            home.network.attach_device(extra)
        attached["on"] = not attached["on"]
        home.settle()
        return home.app.rebuild_count

    benchmark(run)
    benchmark.extra_info["appliances_before"] = count

"""E3 — input plug-in translation throughput.

Claim operationalised: any device event stream can be translated to
universal key/pointer events by its uploaded plug-in.  Expected shape: all
plug-ins translate far faster than any human can generate events (>= 10^4
events/s), with the gesture recogniser the most expensive (geometry) and
touch/keypad essentially free.
"""

from __future__ import annotations

import math

import pytest

from repro.devices import (
    CellPhone,
    GesturePad,
    Pda,
    RemoteControl,
    VoiceInput,
)
from repro.proxy.plugins import SessionContext, ViewTransform
from repro.util import Scheduler


def _context_with_view() -> SessionContext:
    context = SessionContext()
    context.view = ViewTransform(scale=0.5, offset_x=0, offset_y=30,
                                 server_width=480, server_height=360)
    return context


CASES = {
    "touch": (
        Pda, {"type": "touch", "action": "down", "x": 100, "y": 90}),
    "keypad": (CellPhone, {"type": "key", "key": "5"}),
    "keypad-chord": (CellPhone, {"type": "key", "key": "1"}),
    "voice": (VoiceInput, {"type": "voice", "word": "select"}),
    "remote": (RemoteControl, {"type": "button", "button": "ok"}),
    "gesture-swipe": (GesturePad, {
        "type": "stroke",
        "points": [[50 + 10 * i, 50] for i in range(9)],
    }),
    "gesture-circle": (GesturePad, {
        "type": "stroke",
        "points": [[50 + 20 * math.cos(i / 16 * 2 * math.pi),
                    50 + 20 * math.sin(i / 16 * 2 * math.pi)]
                   for i in range(17)],
    }),
}


@pytest.mark.parametrize("case", CASES)
def test_input_plugin_translate(benchmark, case):
    device_cls, event = CASES[case]
    device = device_cls(case, Scheduler())
    plugin = device.input_plugin_factory(device.descriptor,
                                         _context_with_view())

    out = benchmark(lambda: plugin.translate(event))
    assert len(list(out)) >= 1
    benchmark.extra_info["universal_events_per_input"] = len(list(out))

"""Integration tests for the many-home fleet: real TCP control plane,
per-home isolation (budget fairness, crash quarantine), and the reset
paths that keep credit sane when clients vanish mid-broadcast."""

import socket

import pytest

from repro import Home, HomeFleet
from repro.appliances import DimmableLight, MicrowaveOven, Television
from repro.devices import Pda
from repro.util.errors import ProxyError


def populate(home, tag):
    home.add_appliance(DimmableLight(f"lamp-{tag}"))
    home.add_device(Pda(f"pda-{tag}", home.scheduler))
    return home


def sent_bytes(home):
    return home.server_session.endpoint.stats.bytes_sent


class TestTcpHome:
    def test_single_tcp_home_full_stack(self):
        home = Home(width=160, height=120, transport="tcp")
        populate(home, "solo")
        home.settle()
        assert home.server_session.ready
        assert sent_bytes(home) > 0, "frames crossed a real TCP socket"
        assert home.user().current_output == "pda-solo"
        reactor = home.reactor
        home.close()
        assert reactor.handle_count == 0, "all fds released on close"

    def test_multi_user_tcp_home_binds_surfaces_correctly(self):
        home = Home(width=160, height=120, transport="tcp")
        home.add_user("alice")
        home.settle()
        for user_id in ("resident", "alice"):
            user = home.user(user_id)
            assert user.server_session.ready
            assert user.server_session.surface is user.view.surface
        home.close()

    def test_reactor_requires_tcp_transport(self):
        from repro.net import Reactor
        reactor = Reactor()
        with pytest.raises(ValueError):
            Home(transport="socket", reactor=reactor)
        reactor.close()


class TestFleet:
    def test_fleet_of_homes_all_serve_over_tcp(self):
        fleet = HomeFleet()
        for i in range(6):
            populate(fleet.add_home(f"h{i}"), i)
        fleet.settle()
        assert len(fleet) == 6
        assert all(h.server_session.ready for h in fleet)
        assert all(sent_bytes(h) > 0 for h in fleet)
        ports = {h.listener.port for h in fleet}
        assert len(ports) == 6, "each home listens on its own port"
        fleet.close()

    def test_duplicate_home_name_rejected(self):
        fleet = HomeFleet()
        fleet.add_home("h0")
        with pytest.raises(ProxyError):
            fleet.add_home("h0")
        fleet.close()

    def test_remove_home_releases_its_fds(self):
        fleet = HomeFleet()
        populate(fleet.add_home("h0"), 0)
        populate(fleet.add_home("h1"), 1)
        fleet.settle()
        handles_before = fleet.reactor.handle_count
        fleet.remove_home("h0")
        assert len(fleet) == 1
        assert fleet.reactor.handle_count < handles_before
        fleet.home("h1").add_appliance(Television("tv-1"))
        fleet.settle()
        assert fleet.home("h1").server_session.ready
        fleet.close()

    def test_crashing_home_is_quarantined_and_siblings_keep_painting(self):
        fleet = HomeFleet()
        for i in range(4):
            populate(fleet.add_home(f"h{i}"), i)
        fleet.settle()

        def boom():
            raise RuntimeError("appliance driver crashed")

        fleet.home("h2").scheduler.call_soon(boom)
        fleet.settle()
        assert [h.name for h in fleet.failed_homes] == ["h2"]
        assert isinstance(fleet.error_of("h2"), RuntimeError)
        survivor = fleet.home("h0")
        before = sent_bytes(survivor)
        survivor.add_appliance(MicrowaveOven("late-micro"))
        fleet.settle()
        assert sent_bytes(survivor) > before, \
            "a crashed sibling must not stop this home's frames"
        fleet.close()

    def test_storming_home_cannot_starve_siblings(self):
        # a home stuck in a self-perpetuating event loop burns only its
        # per-turn budget; the sibling's UI churn still completes (the
        # fleet can never settle globally, so drive with a predicate)
        fleet = HomeFleet(event_budget=64)
        populate(fleet.add_home("calm"), "calm")
        populate(fleet.add_home("busy"), "busy")
        fleet.settle()
        busy = fleet.home("busy")

        def storm():
            busy.scheduler.call_soon(storm)

        busy.scheduler.call_soon(storm)
        calm = fleet.home("calm")
        before = sent_bytes(calm)
        calm.add_appliance(Television("tv-calm"))
        assert fleet.run_until(lambda: sent_bytes(calm) > before,
                               timeout_s=10)
        assert busy.reactor_member.events_fired > 0
        assert not busy.reactor_member.failed, \
            "storming is starved fairly, not quarantined"
        fleet.close()

    def test_client_reset_mid_broadcast_releases_credit_fleet_wide(self):
        # one resident's client dies with RST while the server is
        # broadcasting: that session's charged credit must come back and
        # the session drop, while every other session still gets frames
        fleet = HomeFleet()
        home = fleet.add_home("h0", width=200, height=150)
        home.add_user("alice")
        populate(fleet.add_home("h1"), 1)
        fleet.settle()
        victim = home.user("alice")
        victim_endpoint = victim.server_session.endpoint
        survivor_sessions = [home.user("resident").server_session,
                             fleet.home("h1").user().server_session]
        before = [s.endpoint.stats.bytes_sent for s in survivor_sessions]
        # RST the client socket (linger 0 = hard reset, not FIN)
        client_sock = victim.session.upstream.endpoint._sock
        client_sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER,
            b"\x01\x00\x00\x00\x00\x00\x00\x00")
        client_sock.close()
        # now broadcast: damage every surface in both homes
        home.add_appliance(DimmableLight("lamp-h0"))
        fleet.home("h1").add_appliance(Television("tv-h1"))
        fleet.settle()
        assert not victim_endpoint.is_open
        assert victim_endpoint.queued_bytes == 0, \
            "reset must release the dead session's charged credit"
        assert victim.server_session not in home.uniint_server.sessions
        after = [s.endpoint.stats.bytes_sent for s in survivor_sessions]
        assert all(a > b for a, b in zip(after, before)), \
            "all surviving sessions kept receiving the broadcast"
        fleet.close()

    def test_close_is_idempotent_and_releases_everything(self):
        fleet = HomeFleet()
        populate(fleet.add_home("h0"), 0)
        fleet.settle()
        reactor = fleet.reactor
        fleet.close()
        fleet.close()
        assert reactor.handle_count == 0

"""Integration tests: UniInt server <-> proxy <-> devices pipeline."""

import numpy as np
import pytest

from repro.devices import CellPhone, Pda, RemoteControl, TvDisplay, VoiceInput
from repro.graphics import RGB565, RGB888
from repro.net import ETHERNET_100, make_pipe
from repro.proxy import UniIntProxy
from repro.server import UniIntServer
from repro.toolkit import Button, Column, Label, ToggleButton, UIWindow
from repro.uip import keysyms
from repro.util import Scheduler
from repro.windows import DisplayServer


def build_stack(width=400, height=300, pixel_format=RGB888):
    """A display server with one window, a UniInt server, and a proxy."""
    scheduler = Scheduler()
    display = DisplayServer(width, height)
    window = UIWindow(width, height)
    col = Column()
    label = col.add(Label("READY"))
    label.widget_id = "status"
    toggle = col.add(ToggleButton("Power"))
    toggle.widget_id = "power"
    toggle.on_activate = lambda w: setattr(
        label, "text", "ON" if w.value else "OFF")
    button = col.add(Button("Next"))
    button.widget_id = "next"
    window.set_root(col)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler)
    proxy = UniIntProxy(scheduler)
    pipe = make_pipe(scheduler, ETHERNET_100, name="server-link")
    server.accept(pipe.a)
    session = proxy.connect(pipe.b, pixel_format=pixel_format)
    return scheduler, display, window, server, proxy, session


class TestUpstreamMirror:
    def test_handshake_and_initial_frame(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        assert session.upstream.ready
        assert session.upstream.framebuffer is not None
        assert session.upstream.framebuffer.size == (400, 300)
        # mirror matches the composited framebuffer exactly (RGB888 wire)
        assert session.upstream.framebuffer == display.framebuffer

    def test_mirror_tracks_ui_changes(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        label = window.root.find("status")
        label.text = "CHANGED TEXT"
        scheduler.run_until_idle()
        assert session.upstream.framebuffer == display.framebuffer

    def test_key_event_roundtrip_drives_widget(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        toggle = window.root.find("power")
        assert toggle.value is False
        session.upstream.press_key(keysyms.RETURN)  # toggle has focus
        scheduler.run_until_idle()
        assert toggle.value is True
        assert window.root.find("status").text == "ON"
        # and the updated pixels came back to the mirror
        assert session.upstream.framebuffer == display.framebuffer

    def test_pointer_event_roundtrip(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        toggle = window.root.find("power")
        cx, cy = toggle.abs_rect().center
        session.upstream.click(cx, cy)
        scheduler.run_until_idle()
        assert toggle.value is True

    def test_lossy_wire_format_still_tracks_geometry(self):
        scheduler, display, window, server, proxy, session = build_stack(
            pixel_format=RGB565)
        scheduler.run_until_idle()
        mirror = session.upstream.framebuffer
        # RGB565 is lossy but close: every pixel within the quantisation step
        err = np.abs(mirror.pixels.astype(int)
                     - display.framebuffer.pixels.astype(int))
        assert err.max() <= 8

    def test_updates_are_incremental_not_full(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        server_session = server.sessions[0]
        sent_before = server_session.rects_sent
        window.root.find("status").text = "x"
        scheduler.run_until_idle()
        # a label change must not resend the whole screen
        assert server_session.rects_sent > sent_before
        label_rect = window.root.find("status").abs_rect()
        bytes_per_px = session.upstream.pixel_format.bytes_per_pixel
        full_frame = 400 * 300 * bytes_per_px
        # (generous bound: hextile of the label area is far below full frame)
        assert session.upstream.endpoint.stats.bytes_received < full_frame

    def test_quiescent_when_idle(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        fired = scheduler.fired_count
        scheduler.run_until_idle()
        assert scheduler.fired_count == fired


class TestMultiSessionBroadcast:
    """N proxy sessions sharing one display server (the wall-display +
    PDA + phone scenario): every mirror stays independently decodable."""

    def _build_multi(self, configs):
        scheduler = Scheduler()
        display = DisplayServer(400, 300)
        window = UIWindow(400, 300)
        col = Column()
        label = col.add(Label("READY"))
        label.widget_id = "status"
        toggle = col.add(ToggleButton("Power"))
        toggle.widget_id = "power"
        window.set_root(col)
        display.map_fullscreen(window)
        server = UniIntServer(display, scheduler)
        sessions = []
        for kwargs in configs:
            proxy = UniIntProxy(scheduler)
            pipe = make_pipe(scheduler, ETHERNET_100, name="multi")
            server.accept(pipe.a)
            sessions.append(proxy.connect(pipe.b, **kwargs))
        return scheduler, display, window, server, sessions

    def test_mixed_formats_and_encodings_all_track(self):
        from repro.uip import HEXTILE, RAW, RRE, ZLIB
        configs = [
            {},                                        # RGB888, default
            {"pixel_format": RGB565},
            {"encodings": (RRE, RAW)},
            {"encodings": (ZLIB, RAW)},
            {"pixel_format": RGB565, "encodings": (HEXTILE, RAW)},
        ]
        scheduler, display, window, server, sessions = self._build_multi(
            configs)
        scheduler.run_until_idle()
        assert len(server.sessions) == len(configs)
        for rounds in range(3):
            window.root.find("status").text = f"round {rounds}"
            scheduler.run_until_idle()
        for session in sessions:
            mirror = session.upstream.framebuffer
            assert mirror is not None
            err = np.abs(mirror.pixels.astype(int)
                         - display.framebuffer.pixels.astype(int))
            # exact for RGB888 sessions, quantisation-bounded for RGB565
            limit = 0 if session.upstream.pixel_format == RGB888 else 8
            assert err.max() <= limit

    def test_shared_encode_fans_out_fewer_encodes(self):
        configs = [{} for _ in range(5)]
        scheduler, display, window, server, sessions = self._build_multi(
            configs)
        scheduler.run_until_idle()
        misses_before = server.shared_encode_misses
        hits_before = server.shared_encode_hits
        window.root.find("status").text = "fan out"
        scheduler.run_until_idle()
        new_misses = server.shared_encode_misses - misses_before
        new_hits = server.shared_encode_hits - hits_before
        assert new_hits >= 4 * new_misses  # 1 encode feeds 5 sessions

    def test_input_from_one_session_updates_all_mirrors(self):
        configs = [{}, {}, {"pixel_format": RGB565}]
        scheduler, display, window, server, sessions = self._build_multi(
            configs)
        scheduler.run_until_idle()
        toggle = window.root.find("power")
        cx, cy = toggle.abs_rect().center
        sessions[0].upstream.click(cx, cy)
        scheduler.run_until_idle()
        assert toggle.value is True
        for session in sessions[:2]:
            assert session.upstream.framebuffer == display.framebuffer


class TestDevicePipeline:
    def test_pda_receives_frames_and_taps_back(self):
        scheduler, display, window, server, proxy, session = build_stack()
        pda = Pda("my-pda", scheduler)
        pda.connect(proxy)
        proxy.select_input("my-pda")
        proxy.select_output("my-pda")
        scheduler.run_until_idle()
        assert pda.frames_received >= 1
        assert pda.screen_image.format == "gray4"
        assert pda.screen_image.width == 320
        # tap the toggle through the view transform
        toggle = window.root.find("power")
        cx, cy = toggle.abs_rect().center
        view = session.context.view
        dx, dy = view.to_device(cx, cy)
        pda.tap(dx, dy)
        scheduler.run_until_idle()
        assert toggle.value is True

    def test_phone_keypad_navigation(self):
        scheduler, display, window, server, proxy, session = build_stack()
        phone = CellPhone("keitai", scheduler)
        phone.connect(proxy)
        proxy.select_input("keitai")
        proxy.select_output("keitai")
        scheduler.run_until_idle()
        assert phone.screen_image.format == "mono1"
        toggle = window.root.find("power")
        phone.press("5")  # select -> Return on focused toggle
        scheduler.run_until_idle()
        assert toggle.value is True

    def test_voice_input_with_tv_output(self):
        scheduler, display, window, server, proxy, session = build_stack()
        voice = VoiceInput("kitchen-mic", scheduler)
        tv = TvDisplay("living-tv", scheduler)
        voice.connect(proxy)
        tv.connect(proxy)
        proxy.select_input("kitchen-mic")
        proxy.select_output("living-tv")
        scheduler.run_until_idle()
        assert tv.screen_image.format == "rgb888"
        toggle = window.root.find("power")
        voice.say("select")
        scheduler.run_until_idle()
        assert toggle.value is True
        voice.say("wibble")  # out of vocabulary: ignored
        scheduler.run_until_idle()
        assert toggle.value is True

    def test_remote_button_input(self):
        scheduler, display, window, server, proxy, session = build_stack()
        remote = RemoteControl("sofa-remote", scheduler)
        tv = TvDisplay("tv", scheduler)
        remote.connect(proxy)
        tv.connect(proxy)
        proxy.select_input("sofa-remote")
        proxy.select_output("tv")
        scheduler.run_until_idle()
        remote.press("ok")
        scheduler.run_until_idle()
        assert window.root.find("power").value is True

    def test_dynamic_input_switch_preserves_session(self):
        """Paper §2.1: phone input swapped for voice mid-session."""
        scheduler, display, window, server, proxy, session = build_stack()
        phone = CellPhone("keitai", scheduler)
        voice = VoiceInput("mic", scheduler)
        phone.connect(proxy)
        voice.connect(proxy)
        proxy.select_input("keitai")
        proxy.select_output("keitai")
        scheduler.run_until_idle()
        toggle = window.root.find("power")
        phone.press("5")
        scheduler.run_until_idle()
        assert toggle.value is True
        # both hands become busy: switch to voice
        proxy.select_input("mic")
        assert session.switch_count == 1
        voice.say("select")
        scheduler.run_until_idle()
        assert toggle.value is False  # toggled back off
        # the old device's events are now ignored
        phone.press("5")
        scheduler.run_until_idle()
        assert toggle.value is False

    def test_dynamic_output_switch_repushes_frame(self):
        scheduler, display, window, server, proxy, session = build_stack()
        pda = Pda("pda", scheduler)
        tv = TvDisplay("tv", scheduler)
        pda.connect(proxy)
        tv.connect(proxy)
        proxy.select_output("pda")
        scheduler.run_until_idle()
        assert pda.frames_received >= 1
        assert tv.frames_received == 0
        proxy.select_output("tv")
        scheduler.run_until_idle()
        assert tv.frames_received >= 1
        assert tv.screen_image.width == 720

    def test_unselected_devices_get_no_frames(self):
        scheduler, display, window, server, proxy, session = build_stack()
        pda = Pda("pda", scheduler)
        tv = TvDisplay("tv", scheduler)
        pda.connect(proxy)
        tv.connect(proxy)
        proxy.select_output("tv")
        window.root.find("status").text = "busy busy"
        scheduler.run_until_idle()
        assert pda.frames_received == 0

    def test_device_unregister_clears_selection(self):
        scheduler, display, window, server, proxy, session = build_stack()
        pda = Pda("pda", scheduler)
        pda.connect(proxy)
        proxy.select_input("pda")
        proxy.select_output("pda")
        scheduler.run_until_idle()
        proxy.unregister_device("pda")
        assert proxy.current_input is None
        assert proxy.current_output is None

    def test_screen_luma_reflects_ui(self):
        scheduler, display, window, server, proxy, session = build_stack()
        pda = Pda("pda", scheduler)
        pda.connect(proxy)
        proxy.select_output("pda")
        scheduler.run_until_idle()
        luma = pda.screen_luma()
        assert luma.shape == (240, 320)
        # the panel area is mostly light grey; letterbox bands are black
        assert luma.mean() > 20

"""Chaos integration: a seeded fault schedule against a resilient fleet.

The acceptance scenario of the self-healing work: 32 TCP homes, one
reactor, and a reproducible storm — device-leg frame drops, hard RSTs on
session upstreams, 2-second partitions ("stalls"), device-leg resets and
one crashed home.  Every session and device leg must come back on its
own: sessions warm-resume their parked server state with exactly one
full-frame resync, device legs redial and re-enter selection, the
crashed home is restarted by the fleet supervisor, and no session is
ever permanently lost.
"""

import random

import pytest

from repro import HomeFleet
from repro.appliances import DimmableLight, Television
from repro.devices import Pda
from repro.net import FaultInjector, FaultPlan, FaultyTransport

SEED = 20020  # ICDCS 2002

N_HOMES = 32
N_RST = 6          # sessions hard-reset mid-life
N_STALL = 4        # homes partitioned off the reactor for 2 s
N_DROP = 6         # device legs running at 30% frame loss
N_LEG_RST = 4      # device legs hard-reset

HEARTBEAT_S = 0.25
STALL_S = 2.0


def populate(home, tag):
    home.add_appliance(DimmableLight(f"lamp-{tag}"))
    home.add_device(Pda(f"pda-{tag}", home.scheduler))
    return home


def build_fleet(n_homes=N_HOMES):
    fleet = HomeFleet()
    for i in range(n_homes):
        populate(fleet.add_home(f"h{i:02d}", width=120, height=90,
                                resilience=True, heartbeat_s=HEARTBEAT_S), i)
    fleet.settle()
    return fleet


def sole_device(home):
    return next(iter(home.devices.values()))


class TestSeededFaultSchedule:
    def test_fleet_heals_from_the_full_storm(self):
        fleet = build_fleet()
        rng = random.Random(SEED)
        chaos = FaultInjector(seed=SEED)
        homes = [fleet.home(f"h{i:02d}") for i in range(N_HOMES)]
        rng.shuffle(homes)
        # carve disjoint victim groups out of the shuffled fleet
        rst_homes = homes[:N_RST]
        stall_homes = homes[N_RST:N_RST + N_STALL]
        rest = homes[N_RST + N_STALL:]
        drop_homes = rest[:N_DROP]
        leg_rst_homes = rest[N_DROP:N_DROP + N_LEG_RST]
        crash_home = rest[N_DROP + N_LEG_RST]
        untouched = rest[N_DROP + N_LEG_RST + 1:]

        fleet.enable_supervision(max_restarts=3, rebuild=lambda f, name, h:
                                 populate(h, name))

        # -- the schedule ---------------------------------------------------
        # RSTs: the user's upstream TCP leg dies with a hard reset
        for home in rst_homes:
            chaos.rst(home.session.upstream.endpoint)
        # stalls: the whole home falls off the reactor for 2 s; stylus
        # taps during the blackout wake the heartbeats, which is how the
        # dead link is actually noticed (TCP alone would just buffer)
        for home in stall_homes:
            chaos.partition_home(home, seconds=STALL_S)
            pda = sole_device(home)
            for k in range(5):
                home.scheduler.call_later(0.3 * (k + 1),
                                          lambda p=pda: p.tap(10, 10))
        # drops: 30% frame loss on the device->proxy event leg (framed,
        # so whole events vanish without desyncing the stream)
        drop_wrappers = []
        for home in drop_homes:
            pair = sole_device(home)._pairs[home.proxy.proxy_id]
            pair.a = FaultyTransport(
                pair.a, FaultPlan(seed=SEED, drop=0.3), home.scheduler)
            drop_wrappers.append(pair.a)
        # device-leg RSTs: the input device's bearer link dies outright
        for home in leg_rst_homes:
            chaos.rst(sole_device(home).endpoint_for(home.proxy.proxy_id))
        # and one home crashes in its own event loop
        chaos.crash_home(crash_home, reason="injected appliance crash")

        fleet.settle()

        # -- sessions healed ------------------------------------------------
        for home in rst_homes + stall_homes:
            resilience = home.session.resilience
            assert resilience.reconnect_count == 1, home.name
            assert not resilience.failed_permanently, home.name
            upstream = home.session.upstream
            assert upstream.ready and upstream.endpoint.is_open
            # exactly one full-frame resync per reconnect: the revived
            # session saw the parked state transplanted, then one update
            assert upstream.updates_received == 1, home.name
            assert home.uniint_server.sessions_parked == 1
            assert home.uniint_server.sessions_resumed == 1
            assert home.uniint_server.resume_misses == 0
            assert home.user().current_output == sole_device(home).device_id, \
                "device selection survived the reconnect"
        # reconnect latency is a measured quantity, not a guess
        latencies = [lat for home in rst_homes + stall_homes
                     for lat in home.session.resilience.reconnect_latencies]
        assert len(latencies) == N_RST + N_STALL
        # virtual time: an RST reconnect can land in the same instant it
        # died (pure I/O, no timed waits), so 0 is legitimate; a stalled
        # home must at least wait out the miss window
        assert all(lat >= 0 for lat in latencies)
        for home in stall_homes:
            assert home.session.resilience.reconnect_latencies[0] > 0

        # -- device legs healed ---------------------------------------------
        for home in leg_rst_homes:
            device = sole_device(home)
            assert device.link_reconnects == 1, home.name
            assert device.link_reconnects_failed == 0
            assert home.proxy.proxy_id in device._pairs, "leg is back"
            assert home.user().current_output == device.device_id, \
                "re-registration re-entered selection"

        # -- frame drops degrade, never disconnect --------------------------
        for home, wrapper in zip(drop_homes, drop_wrappers):
            device = sole_device(home)
            before = home.session.events_forwarded
            for _ in range(20):
                device.tap(10, 10)
            fleet.settle()
            assert wrapper.frames_dropped > 0, "the loss actually happened"
            assert home.session.events_forwarded > before, \
                "surviving frames still drive the session"
            assert home.session.resilience.reconnect_count == 0, \
                "loss on a device leg must not kill the session"

        # -- the crashed home is restarted by the supervisor ----------------
        assert [h.name for h in fleet.failed_homes] == [crash_home.name]
        assert fleet.supervise() == [crash_home.name]
        fleet.settle()
        assert not fleet.failed_homes
        record = fleet.failure_of(crash_home.name)
        assert record.restarts == 1 and not record.permanent
        assert "injected appliance crash" in str(record.errors[0])
        reborn = fleet.home(crash_home.name)
        assert reborn.session.upstream.ready
        assert reborn.user().current_output is not None

        # -- nothing was permanently lost, fleet-wide -----------------------
        assert fleet.permanently_failed == ()
        for home in fleet:
            assert home.session.upstream.ready, home.name
            assert not home.session.resilience.failed_permanently
        for home in untouched:
            assert home.session.resilience.reconnect_count == 0, \
                "chaos must stay inside its blast radius"
        fleet.close()

    def test_storm_is_reproducible_under_its_seed(self):
        # same seed, same victims: the schedule itself is deterministic
        def victims():
            names = [f"h{i:02d}" for i in range(N_HOMES)]
            rng = random.Random(SEED)
            rng.shuffle(names)
            return names[:N_RST + N_STALL]

        assert victims() == victims()


class TestCrashLoopSupervision:
    def test_crash_looping_home_exhausts_its_restart_budget(self):
        fleet = HomeFleet()
        populate(fleet.add_home("stable", resilience=True), "stable")
        populate(fleet.add_home("flaky", resilience=True), "flaky")
        fleet.settle()
        chaos = FaultInjector(seed=SEED)

        # the rebuild hook plants the next crash: every resurrection
        # detonates again, which is what a genuine crash loop looks like
        def rebuild(f, name, home):
            populate(home, name)
            chaos.crash_home(home, reason="still broken")

        fleet.enable_supervision(max_restarts=2, rebuild=rebuild)
        chaos.crash_home(fleet.home("flaky"), reason="still broken")
        fleet.settle()
        sweeps = 0
        while fleet.supervise():
            fleet.settle()
            sweeps += 1
            assert sweeps <= 10, "supervision must converge"
        record = fleet.failure_of("flaky")
        assert record.permanent
        assert record.restarts == 2
        assert "crash loop: restart budget of 2 spent" in record.reason
        assert "still broken" in record.reason
        assert fleet.permanently_failed == ("flaky",)
        assert len(record.tracebacks) == len(record.errors) == 3
        # the stable sibling never noticed
        stable = fleet.home("stable")
        assert stable.session.upstream.ready
        assert not stable.reactor_member.failed
        before = stable.server_session.endpoint.stats.bytes_sent
        stable.add_appliance(Television("tv-late"))
        fleet.settle()
        assert stable.server_session.endpoint.stats.bytes_sent > before
        fleet.close()

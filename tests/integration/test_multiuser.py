"""Integration tests: multi-user homes, follow-me migration, arbitration.

The paper's headline scenario — one home serving several people at once,
each controlling appliances through whichever devices suit their current
situation — exercised end to end through the Home facade.
"""

import numpy as np
import pytest

from repro import Home
from repro.appliances import MicrowaveOven, Television
from repro.context import UserSituation
from repro.devices import (
    CellPhone,
    Pda,
    RemoteControl,
    TvDisplay,
    VoiceInput,
    WallDisplay,
)
from repro.havi import FcmType
from repro.util.errors import ProxyError


def two_user_home():
    """A TV home with residents alice and bob, personal + shared devices."""
    home = Home()
    home.add_appliance(Television("TV"))
    alice = home.add_user("alice")
    bob = home.add_user("bob")
    home.add_device(Pda("alice-pda", home.scheduler), user="alice")
    home.add_device(CellPhone("alice-phone", home.scheduler), user="alice")
    home.add_device(Pda("bob-pda", home.scheduler), user="bob")
    home.add_device(TvDisplay("tv-panel", home.scheduler), shared=True)
    home.settle()
    return home, alice, bob


class TestMultiUserProvisioning:
    def test_default_user_keeps_legacy_attributes(self):
        home = Home()
        assert home.proxy is home.user().proxy
        assert home.session is home.user().session
        assert home.context is home.user().context
        assert home.server_session in home.uniint_server.sessions

    def test_each_user_gets_own_proxy_and_server_session(self):
        home, alice, bob = two_user_home()
        # resident + alice + bob: three live server sessions
        assert len(home.uniint_server.sessions) == 3
        assert alice.proxy is not bob.proxy
        assert alice.session.upstream.ready
        assert bob.session.upstream.ready
        # both mirrors track the one shared application framebuffer
        home.screenshot()
        assert alice.session.upstream.framebuffer == home.display.framebuffer
        assert bob.session.upstream.framebuffer == home.display.framebuffer

    def test_duplicate_user_rejected(self):
        home, *_ = two_user_home()
        with pytest.raises(ProxyError):
            home.add_user("alice")

    def test_personal_devices_are_invisible_to_other_users(self):
        home, alice, bob = two_user_home()
        alice_sees = {d.device_id for d in alice.proxy.list_devices()}
        bob_sees = {d.device_id for d in bob.proxy.list_devices()}
        assert "alice-pda" in alice_sees and "alice-pda" not in bob_sees
        assert "bob-pda" in bob_sees and "bob-pda" not in alice_sees
        # the shared panel is visible to everyone
        assert "tv-panel" in alice_sees and "tv-panel" in bob_sees

    def test_both_users_control_the_same_appliance(self):
        home, alice, bob = two_user_home()
        tv = home.appliances["TV"]
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        alice.context.reselect()
        bob.context.reselect()
        home.settle()
        # alice powers the TV on through her pda's touch screen
        phone = home.devices["alice-phone"]
        alice.proxy.select_input("alice-phone")
        home.settle()
        phone.press("5")
        home.settle()
        assert tuner.get_state("power") is True
        # bob sees the updated panel on his own mirror
        assert bob.session.upstream.framebuffer == home.display.framebuffer

    def test_remove_user_releases_devices_and_sessions(self):
        home, alice, bob = two_user_home()
        alice.set_situation(UserSituation.on_the_sofa())
        home.settle()
        assert home.arbiter.holder_of("tv-panel") == "alice"
        sessions_before = len(home.uniint_server.sessions)
        home.remove_user("alice")
        home.settle()
        assert "alice" not in home.users
        assert "alice-pda" not in home.devices
        assert home.arbiter.holder_of("tv-panel") != "alice"
        assert len(home.uniint_server.sessions) == sessions_before - 1
        # the freed panel is re-arbitrated to bob on the next tick
        bob.set_situation(UserSituation.on_the_sofa())
        home.settle()
        assert home.arbiter.holder_of("tv-panel") == "bob"

    def test_bell_beeps_on_every_users_output_device(self):
        home = Home()
        home.add_appliance(MicrowaveOven("Oven"))
        home.add_user("guest")
        phone = home.add_device(CellPhone("keitai", home.scheduler))
        guest_pda = home.add_device(Pda("guest-pda", home.scheduler),
                                    user="guest")
        home.settle()
        fcm = home.appliances["Oven"].dcm.fcm_by_type(FcmType.MICROWAVE)
        fcm.invoke_local("timer.start", {"seconds": 45})
        home.settle()
        assert phone.bells_received == 1
        assert guest_pda.bells_received == 1


class TestFollowMeMigration:
    def _roaming_home(self):
        home = Home()
        home.add_appliance(Television("TV"))
        home.add_device(CellPhone("keitai", home.scheduler))
        home.add_device(TvDisplay("tv-panel", home.scheduler), shared=True)
        home.add_device(WallDisplay("kitchen-wall", home.scheduler),
                        shared=True)
        home.settle()
        return home

    def test_room_change_hands_session_to_new_rooms_display(self):
        home = self._roaming_home()
        user = home.default_user
        user.set_situation(UserSituation.on_the_sofa())
        home.settle()
        assert user.current_output == "tv-panel"
        wall = home.devices["kitchen-wall"]
        frames_before = wall.frames_received
        record = user.move_to("kitchen")
        home.settle()
        # the session followed the user: output is now the kitchen wall
        assert user.current_output == "kitchen-wall"
        assert record.changed
        # ... which received a fresh full frame (no lost damage):
        assert wall.frames_received == frames_before + 1
        assert (wall.screen_image.width, wall.screen_image.height) == (
            1024, 768)
        # the panel pixels embed the server frame 1:1 (clamped fit)
        rgb = np.frombuffer(wall.screen_image.data,
                            dtype=np.uint8).reshape(768, 1024, 3)
        frame = home.screenshot().bitmap.pixels
        assert np.array_equal(rgb[204:204 + 360, 272:272 + 480], frame)
        # and the switch latency over the panel's bearer was recorded
        assert record.latency_s is not None
        assert record.latency_s > 0.0

    def test_migration_with_damage_in_flight_loses_nothing(self):
        """Damage landing during the handoff still reaches the new device:
        the full-frame push happens after it, or folds it in."""
        home = self._roaming_home()
        user = home.default_user
        user.set_situation(UserSituation.on_the_sofa())
        home.settle()
        tv = home.appliances["TV"]
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})   # damage in flight
        user.move_to("kitchen")                          # migrate now
        home.settle()
        wall = home.devices["kitchen-wall"]
        rgb = np.frombuffer(wall.screen_image.data,
                            dtype=np.uint8).reshape(768, 1024, 3)
        frame = home.screenshot().bitmap.pixels
        assert np.array_equal(rgb[204:204 + 360, 272:272 + 480], frame)

    def test_slow_bearer_migration_keeps_queue_bounded(self):
        """Moving outside hands the session to the 9600 bps phone; churn
        during the handoff must stay within the phone leg's credit."""
        home = self._roaming_home()
        user = home.default_user
        user.set_situation(UserSituation.on_the_sofa())
        home.settle()
        record = user.move_to("outside")
        assert user.current_output == "keitai"
        tv = home.appliances["TV"]
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        # churn the panel while the phone link is still draining the
        # full-frame push of the handoff
        for i in range(8):
            tuner.invoke_local("power.set", {"on": i % 2 == 0})
            home.run_for(0.25)
        home.settle()
        phone = home.devices["keitai"]
        binding = user.proxy.binding("keitai")
        endpoint = binding.endpoint
        # bounded queue: never more than the credit high-watermark plus
        # the one frame that may be accepted while still writable
        max_frame = 3000  # 128x128 mono1 ~2 KiB + headers/framing
        assert endpoint.stats.peak_queued_bytes <= (
            endpoint.credit_limit + max_frame)
        # churn was coalesced, not queued stale
        assert user.session.updates_coalesced > 0
        # and the phone converged on the freshest frame
        assert phone.frames_received >= 1
        assert record.latency_s is not None

    def test_input_only_switch_records_no_output_latency(self):
        """A hands-busy switch swaps the input but keeps the output: no
        handoff happened, so no 'latency' may be stamped by later
        unrelated damage frames."""
        home = Home()
        home.add_appliance(Television("TV"))
        home.add_device(RemoteControl("remote", home.scheduler))
        home.add_device(VoiceInput("mic", home.scheduler))
        home.add_device(TvDisplay("tv-panel", home.scheduler))
        user = home.default_user
        user.set_situation(UserSituation.on_the_sofa())
        home.settle()
        assert user.current_output == "tv-panel"
        record = user.update(hands_busy=True)   # remote -> voice input
        assert record.changed
        assert record.output_device == "tv-panel"  # output kept
        tuner = home.appliances["TV"].dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})  # unrelated damage
        home.settle()
        assert record.latency_s is None

    def test_user_added_after_shared_devices_selects_immediately(self):
        home = Home()
        home.add_appliance(Television("TV"))
        home.add_device(WallDisplay("kitchen-wall", home.scheduler),
                        shared=True)
        carol = home.add_user(
            "carol", situation=UserSituation(location="kitchen"))
        home.settle()
        assert carol.current_output == "kitchen-wall"
        assert home.devices["kitchen-wall"].frames_received >= 1

    def test_follow_me_tour_keeps_appliance_state(self):
        home = self._roaming_home()
        user = home.default_user
        tv = home.appliances["TV"]
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        user.set_situation(UserSituation.on_the_sofa())
        home.settle()
        tuner.invoke_local("power.set", {"on": True})
        tuner.invoke_local("channel.set", {"channel": 8})
        home.settle()
        for room in ("kitchen", "bedroom", "living_room"):
            user.move_to(room)
            home.settle()
        assert tuner.get_state("channel") == 8
        assert user.session.upstream.ready


class TestOwnershipArbitration:
    def test_tie_keeps_the_incumbent(self):
        home, alice, bob = two_user_home()
        alice.set_situation(UserSituation.on_the_sofa())
        home.settle()
        assert home.arbiter.holder_of("tv-panel") == "alice"
        # bob wants the same panel with an identical situation: tie ->
        # alice keeps it, bob falls back to his own pda
        bob.set_situation(UserSituation.on_the_sofa())
        home.settle()
        assert home.arbiter.holder_of("tv-panel") == "alice"
        assert alice.current_output == "tv-panel"
        assert bob.current_output == "bob-pda"

    def test_released_device_is_picked_up_by_the_waiting_user(self):
        home, alice, bob = two_user_home()
        alice.set_situation(UserSituation.on_the_sofa())
        bob.set_situation(UserSituation.on_the_sofa())
        home.settle()
        assert bob.current_output == "bob-pda"
        panel = home.devices["tv-panel"]
        frames_before = panel.frames_received
        # alice walks out to cook: the panel frees up, and bob's deferred
        # reselect grabs it without bob's situation changing at all
        alice.set_situation(UserSituation.cooking())
        home.settle()
        assert home.arbiter.holder_of("tv-panel") == "bob"
        assert bob.current_output == "tv-panel"
        assert panel.frames_received > frames_before  # fresh full frame

    def test_preemption_releases_and_reselects_the_loser(self):
        home, alice, bob = two_user_home()
        # the default resident is out, so the contest is alice vs bob
        home.default_user.set_situation(UserSituation(location="outside"))
        # bob holds the panel while merely standing around in the room
        bob.set_situation(UserSituation())
        home.settle()
        assert home.arbiter.holder_of("tv-panel") == "bob"
        preemptions_before = home.arbiter.preemptions
        # alice sits down to watch TV: she outscores bob for the panel
        alice.set_situation(UserSituation.on_the_sofa())
        home.settle()
        assert home.arbiter.preemptions == preemptions_before + 1
        assert home.arbiter.holder_of("tv-panel") == "alice"
        assert alice.current_output == "tv-panel"
        # the loser was released and re-selected his next-best device
        assert bob.current_output == "bob-pda"
        handoff = home.arbiter.handoffs[-1]
        assert (handoff.device_id, handoff.preempted) == ("tv-panel", True)
        assert (handoff.from_user, handoff.to_user) == ("bob", "alice")

    def test_two_sessions_never_drive_one_screen(self):
        """Across an arbitration handoff, frames pushed to the contested
        panel come from exactly one user's session at a time."""
        home, alice, bob = two_user_home()
        bob.set_situation(UserSituation())
        home.settle()
        alice.set_situation(UserSituation.on_the_sofa())
        home.settle()
        # after the dust settles only alice's session owns the panel
        assert bob.proxy.current_output != "tv-panel"
        assert alice.proxy.current_output == "tv-panel"
        tv = home.appliances["TV"]
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        panel = home.devices["tv-panel"]
        before = panel.frames_received
        tuner.invoke_local("power.set", {"on": True})
        home.settle()
        # one churn -> frames only from the single owning session
        assert panel.frames_received == before + 1


class TestMultiUserSocketTransport:
    def test_two_users_over_real_socketpairs(self):
        home = Home(transport="socket")
        home.add_appliance(Television("TV"))
        home.add_user("guest")
        home.add_device(Pda("pda", home.scheduler))
        home.add_device(Pda("guest-pda", home.scheduler), user="guest")
        home.settle()
        assert home.user().session.upstream.ready
        assert home.user("guest").session.upstream.ready
        assert home.devices["pda"].frames_received >= 1
        assert home.devices["guest-pda"].frames_received >= 1

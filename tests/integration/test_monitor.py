"""The status monitor: a second, independent universal-interaction app.

Proves the paper's transparency property is architectural: a different
application, written only against the toolkit + HAVi, is immediately
drivable through the same UniInt pipeline from any device.
"""

import pytest

from repro.app.monitor import StatusMonitorApplication
from repro.appliances import DimmableLight, Television
from repro.devices import CellPhone
from repro.havi import FcmType, HomeNetwork
from repro.net import ETHERNET_100, make_pipe
from repro.proxy import UniIntProxy
from repro.server import UniIntServer
from repro.toolkit import UIWindow
from repro.util import Scheduler
from repro.windows import DisplayServer


def build_monitor_home():
    scheduler = Scheduler()
    network = HomeNetwork(scheduler)
    tv = Television("TV")
    lamp = DimmableLight("Lamp")
    network.attach_device(tv)
    network.attach_device(lamp)
    network.settle()
    window = UIWindow(320, 240)
    monitor = StatusMonitorApplication(network, window)
    return scheduler, network, tv, lamp, window, monitor


class TestMonitorApp:
    def test_lists_all_appliances(self):
        scheduler, network, tv, lamp, window, monitor = build_monitor_home()
        assert window.root.find(f"monitor.{tv.guid[:8]}.status") is not None
        assert window.root.find(
            f"monitor.{lamp.guid[:8]}.status") is not None

    def test_status_follows_power_events(self):
        scheduler, network, tv, lamp, window, monitor = build_monitor_home()
        row = window.root.find(f"monitor.{tv.guid[:8]}.status")
        assert row.text == "standby"
        tv.dcm.fcm_by_type(FcmType.TUNER).invoke_local(
            "power.set", {"on": True})
        network.settle()
        assert row.text == "ON"

    def test_wattage_estimate_changes(self):
        scheduler, network, tv, lamp, window, monitor = build_monitor_home()
        idle = monitor.watts
        tv.dcm.fcm_by_type(FcmType.TUNER).invoke_local(
            "power.set", {"on": True})
        network.settle()
        assert monitor.watts > idle

    def test_standby_all(self):
        scheduler, network, tv, lamp, window, monitor = build_monitor_home()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        light = lamp.dcm.fcm_by_type(FcmType.LIGHT)
        tuner.invoke_local("power.set", {"on": True})
        light.invoke_local("power.set", {"on": True})
        network.settle()
        monitor.standby_all()
        network.settle()
        assert tuner.get_state("power") is False
        assert light.get_state("power") is False

    def test_hotplug_rebuilds(self):
        scheduler, network, tv, lamp, window, monitor = build_monitor_home()
        network.detach_device(lamp.guid)
        network.settle()
        assert window.root.find(f"monitor.{lamp.guid[:8]}.status") is None


class TestMonitorThroughDevices:
    def test_phone_presses_standby_all_through_the_pipeline(self):
        """A different app, same universal interaction — zero app changes."""
        scheduler, network, tv, lamp, window, monitor = build_monitor_home()
        tv.dcm.fcm_by_type(FcmType.TUNER).invoke_local(
            "power.set", {"on": True})
        network.settle()
        display = DisplayServer(320, 240)
        display.map_fullscreen(window)
        server = UniIntServer(display, scheduler)
        proxy = UniIntProxy(scheduler)
        pipe = make_pipe(scheduler, ETHERNET_100)
        server.accept(pipe.a)
        proxy.connect(pipe.b)
        phone = CellPhone("keitai", scheduler)
        phone.connect(proxy)
        proxy.select_input("keitai")
        proxy.select_output("keitai")
        scheduler.run_until_idle()
        # the standby button is the monitor's only focusable widget
        assert window.focus is window.root.find("monitor.standby-all")
        phone.press("5")
        scheduler.run_until_idle()
        assert tv.dcm.fcm_by_type(FcmType.TUNER).get_state("power") is False
        # and the phone saw the status row repaint
        assert phone.frames_received >= 2

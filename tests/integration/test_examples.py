"""Smoke tests: every example script must run to completion.

Examples are the library's face; these tests execute each one in-process
(stdout captured) so a refactor can never silently break them.
"""

import io
import os
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

EXAMPLES = [
    "quickstart.py",
    "cooking_scenario.py",
    "living_room.py",
    "device_roaming.py",
    "watch_tape.py",
]


def run_example(name: str) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(path, run_name="__main__")
    return buffer.getvalue()


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip()  # every example narrates what it does


class TestExampleOutcomes:
    def test_quickstart_turns_tv_on(self):
        output = run_example("quickstart.py")
        assert "TV power after tap:  True" in output

    def test_cooking_scenario_switches_and_dings(self):
        output = run_example("cooking_scenario.py")
        assert "input='headset-mic'" in output
        assert "*ding* x1" in output
        assert "bells_received=1" in output

    def test_living_room_composes_tabs(self):
        output = run_example("living_room.py")
        assert "'TV', 'VCR'" in output.replace("[", "").replace("]", "")
        assert "VCR transport: play" in output

    def test_device_roaming_switches_everywhere(self):
        output = run_example("device_roaming.py")
        assert "kitchen" in output
        assert "'mic'" in output
        assert "still connected=True" in output

    def test_watch_tape_streams_and_renders(self):
        output = run_example("watch_tape.py")
        assert "TV source is now 'vcr'" in output
        assert "after disconnect, TV source: 'tuner'" in output

    def test_examples_are_deterministic(self):
        assert run_example("device_roaming.py") == run_example(
            "device_roaming.py")

"""Integration tests: per-user UI surfaces and the appliance-churn sweep.

Each resident gets their own DisplayServer + HomeApplianceApplication
(one discovery/event fan-out, N views) multiplexed by one UniIntServer.
These tests pin the isolation contract — one user's tab switches and
input never reach another user's wire — plus the churn bugfixes that
ride along (guid reuse, stale active tab, per-surface bells).
"""

import pytest

from repro import Home
from repro.appliances import AirConditioner, MicrowaveOven, Television
from repro.havi import FcmType
from repro.util.errors import HaviError


def two_view_home():
    """TV + microwave home where alice and bob each have their own view."""
    home = Home()
    home.add_appliance(Television("TV"))
    home.add_appliance(MicrowaveOven("Micro"))
    alice = home.add_user("alice")
    bob = home.add_user("bob")
    home.settle()
    return home, alice, bob


def active_appliance(user) -> str:
    tabs = user.app._tabs()
    assert tabs is not None
    return user.app.appliances[tabs.active].name


class TestPerUserSurfaces:
    def test_each_user_gets_their_own_view(self):
        home, alice, bob = two_view_home()
        assert alice.view is not bob.view
        assert alice.display is not bob.display
        assert alice.app is not bob.app
        assert alice.surface is not bob.surface
        # one server multiplexes all surfaces
        assert len(home.uniint_server.surfaces) == len(home.views) == 3
        # sessions bind to their user's surface
        assert alice.server_session.surface is alice.surface
        assert bob.server_session.surface is bob.surface

    def test_independent_active_tabs(self):
        home, alice, bob = two_view_home()
        alice.show_appliance("TV")
        bob.show_appliance("Micro")
        home.settle()
        assert active_appliance(alice) == "TV"
        assert active_appliance(bob) == "Micro"
        # each user's mirror tracks their own display, not a shared one
        assert alice.session.upstream.framebuffer == alice.display.framebuffer
        assert bob.session.upstream.framebuffer == bob.display.framebuffer
        assert alice.display.framebuffer != bob.display.framebuffer

    def test_tab_switch_sends_zero_bytes_to_other_surfaces(self):
        home, alice, bob = two_view_home()
        bob.show_appliance("Micro")
        home.settle()
        bob_wire = bob.server_session.endpoint.stats.bytes_sent
        bob_tab = active_appliance(bob)
        alice.show_appliance("TV")
        home.settle()
        # alice's switch repainted *her* surface only: bob's session saw
        # zero wire bytes and his active tab is untouched
        assert bob.server_session.endpoint.stats.bytes_sent == bob_wire
        assert active_appliance(bob) == bob_tab
        assert active_appliance(alice) == "TV"

    def test_pointer_input_is_isolated_per_surface(self):
        home, alice, bob = two_view_home()
        bob_wire = bob.server_session.endpoint.stats.bytes_sent
        alice.session.upstream.click(20, 20)
        home.settle()
        assert alice.server_session.pointer_events == 2  # press + release
        assert bob.server_session.pointer_events == 0
        assert bob.server_session.endpoint.stats.bytes_sent == bob_wire

    def test_key_input_is_isolated_per_surface(self):
        home, alice, bob = two_view_home()
        alice_focus = alice.window.focus
        bob_focus = bob.window.focus
        alice.session.upstream.press_key(0xFF09)  # Tab: move alice's focus
        home.settle()
        assert alice.window.focus is not alice_focus
        assert bob.window.focus is bob_focus
        assert bob.server_session.key_events == 0

    def test_two_users_drive_different_appliances_concurrently(self):
        """The paper's premise, finally multi-user: alice runs the TV from
        one room while bob runs the microwave from another."""
        home, alice, bob = two_view_home()
        alice.show_appliance("TV")
        bob.show_appliance("Micro")
        home.settle()
        tv_guid8 = home.appliances["TV"].guid[:8]
        micro_guid8 = home.appliances["Micro"].guid[:8]
        # alice toggles TV power on her view
        power = alice.window.root.find(f"{tv_guid8}.tuner.power")
        cx, cy = power.abs_rect().center
        alice.session.upstream.click(cx, cy)
        home.settle()
        # bob queues 10 minutes and starts the microwave on his view
        for widget_id in (f"{micro_guid8}.microwave.add600",
                          f"{micro_guid8}.microwave.start"):
            widget = bob.window.root.find(widget_id)
            assert widget is not None
            cx, cy = widget.abs_rect().center
            bob.session.upstream.click(cx, cy)
            home.run_for(1.0)  # deliver events without finishing the cook
        tuner = home.appliances["TV"].dcm.fcm_by_type(FcmType.TUNER)
        oven = home.appliances["Micro"].dcm.fcm_by_type(FcmType.MICROWAVE)
        assert tuner.get_state("power") is True
        assert oven.get_state("running") is True
        # tabs stayed where each user put them
        assert active_appliance(alice) == "TV"
        assert active_appliance(bob) == "Micro"

    def test_state_changes_propagate_to_every_view(self):
        """One event fan-out, N views: an appliance driven by one user is
        mirrored on everyone's panels regardless of surface."""
        home, alice, bob = two_view_home()
        alice.show_appliance("TV")
        bob.show_appliance("TV")
        home.settle()
        tuner = home.appliances["TV"].dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        home.settle()
        guid8 = home.appliances["TV"].guid[:8]
        for user in (alice, bob, home.default_user):
            widget = user.window.root.find(f"{guid8}.tuner.power")
            assert widget.value is True
        # and both mirrors converged on their own surface's pixels
        assert alice.session.upstream.framebuffer == alice.display.framebuffer
        assert bob.session.upstream.framebuffer == bob.display.framebuffer


class TestSharedViews:
    def test_view_of_shares_one_surface(self):
        home = Home()
        home.add_appliance(Television("TV"))
        alice = home.add_user("alice")
        carol = home.add_user("carol", view_of="alice")
        home.settle()
        assert carol.view is alice.view
        assert carol.server_session.surface is alice.surface
        assert len(home.views) == 2  # resident + alice's shared view
        assert carol.session.upstream.framebuffer == alice.display.framebuffer

    def test_same_surface_sessions_share_encodes(self):
        """The PR 4 broadcast win must survive surface multiplexing: a
        same-surface family still hits the shared-encode cache, while
        single-session surfaces never produce (or need) shared hits."""
        home = Home()
        home.add_appliance(Television("TV"))
        home.add_user("alice", view_of="resident")
        home.add_user("bob", view_of="resident")
        home.settle()
        hits_before = home.uniint_server.shared_encode_hits
        tuner = home.appliances["TV"].dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        home.settle()
        # 3 sessions, 1 surface: one encode, two cache hits per update
        assert home.uniint_server.shared_encode_hits >= hits_before + 2

    def test_separate_surfaces_do_not_share_encodes(self):
        home, alice, bob = two_view_home()
        assert home.uniint_server.shared_encode_hits == 0
        tuner = home.appliances["TV"].dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        home.settle()
        # every surface has exactly one session: nothing to share, and
        # (crucially) no cross-surface hits that would mix frames up
        assert home.uniint_server.shared_encode_hits == 0
        for user in (alice, bob):
            assert (user.session.upstream.framebuffer
                    == user.display.framebuffer)

    def test_owner_departure_keeps_shared_view_alive(self):
        home = Home()
        home.add_appliance(Television("TV"))
        alice = home.add_user("alice")
        carol = home.add_user("carol", view_of="alice")
        home.settle()
        home.remove_user("alice")
        home.settle()
        assert carol.view in home.views
        assert not carol.view.app.closed
        assert carol.session.upstream.ready
        # carol still sees appliance churn on the inherited view
        rebuilds = carol.app.rebuild_count
        home.add_appliance(MicrowaveOven("Micro"))
        home.settle()
        assert carol.app.rebuild_count > rebuilds


class TestViewLifecycle:
    def test_remove_user_tears_down_their_view(self):
        home = Home()
        home.add_appliance(Television("TV"))
        alice = home.add_user("alice")
        home.settle()
        app, surface = alice.app, alice.surface
        views_before = len(home.views)
        home.remove_user("alice")
        home.settle()
        assert len(home.views) == views_before - 1
        assert app.closed
        assert surface not in home.uniint_server.surfaces
        assert surface.sessions == []
        # a closed app no longer rebuilds on discovery churn
        rebuilds = app.rebuild_count
        home.add_appliance(MicrowaveOven("Micro"))
        home.settle()
        assert app.rebuild_count == rebuilds

    def test_surfaces_track_sessions_after_removal(self):
        home, alice, bob = two_view_home()
        total_before = len(home.uniint_server.sessions)
        home.remove_user("alice")
        home.settle()
        assert len(home.uniint_server.sessions) == total_before - 1
        assert all(s.surface in home.uniint_server.surfaces
                   for s in home.uniint_server.sessions)


class TestBellRouting:
    def _bell_home(self, shared_view: bool):
        from repro.devices import Pda
        home = Home()
        home.add_appliance(MicrowaveOven("Oven"))
        home.add_user("guest",
                      view_of=("resident" if shared_view else None))
        home.add_device(Pda("resident-pda", home.scheduler))
        home.add_device(Pda("guest-pda", home.scheduler), user="guest")
        home.settle()
        return home

    @pytest.mark.parametrize("shared_view", [False, True])
    def test_bell_reaches_every_surface_exactly_once(self, shared_view):
        """One ding per resident, whether their sessions share a surface
        or each have their own — never N dings for N views."""
        home = self._bell_home(shared_view)
        fcm = home.appliances["Oven"].dcm.fcm_by_type(FcmType.MICROWAVE)
        fcm.invoke_local("timer.start", {"seconds": 45})
        home.settle()
        assert home.devices["resident-pda"].bells_received == 1
        assert home.devices["guest-pda"].bells_received == 1

    def test_home_bell_hook_fires_once_per_event(self):
        home = self._bell_home(shared_view=False)
        bells = []
        home.on_bell = bells.append
        fcm = home.appliances["Oven"].dcm.fcm_by_type(FcmType.MICROWAVE)
        fcm.invoke_local("timer.start", {"seconds": 30})
        home.settle()
        assert len(bells) == 1


class TestApplianceChurn:
    def test_remove_unknown_appliance_is_a_clear_error(self):
        home = Home()
        with pytest.raises(HaviError, match="no appliance 'Ghost'"):
            home.remove_appliance("Ghost")

    def test_duplicate_appliance_name_rejected(self):
        home = Home()
        home.add_appliance(Television("TV"))
        with pytest.raises(HaviError, match="already"):
            home.add_appliance(Television("TV", unit=2))

    def test_guid_reuse_after_settled_removal(self):
        """Remove, settle, re-add a same-GUID appliance: full reinstall."""
        home = Home()
        original = home.add_appliance(Television("TV"))
        home.settle()
        home.remove_appliance("TV")
        home.settle()
        assert home.app.appliances == []
        replacement = Television("TV-mk2")  # same model/unit -> same guid
        assert replacement.guid == original.guid
        home.add_appliance(replacement)
        home.settle()
        assert replacement.dcm is not None
        tuner = replacement.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        home.settle()
        assert tuner.get_state("power") is True
        assert home.app.appliance_by_name("TV-mk2") is not None

    def test_guid_reuse_within_one_coalesced_reset(self):
        """Remove + re-add inside the bus settle window coalesce into one
        reset; the stale DCM of the departed instance must not survive."""
        home = Home()
        original = home.add_appliance(Television("TV"))
        home.settle()
        home.remove_appliance("TV")
        replacement = Television("TV-mk2")
        home.add_appliance(replacement)  # same guid, no settle between
        home.settle()
        # the *new* instance is the one installed and discoverable
        assert replacement.dcm is not None
        assert home.app.appliance_by_name("TV-mk2") is not None
        assert home.app.appliance_by_name("TV") is None
        tuner = replacement.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        home.settle()
        assert tuner.get_state("power") is True
        # the departed instance's DCM is fully uninstalled
        assert original.dcm is not None
        assert not original.dcm.attached


class TestStaleTabFallback:
    def _three_appliance_home(self):
        home = Home()
        home.add_appliance(AirConditioner("AC"))        # tab 0
        home.add_appliance(MicrowaveOven("Micro"))      # tab 1
        home.add_appliance(Television("TV"))            # tab 2
        home.settle()
        return home

    def test_unplugging_last_active_tab_falls_back_to_new_last(self):
        home = self._three_appliance_home()
        user = home.default_user
        user.show_appliance("TV")
        home.settle()
        home.remove_appliance("TV")
        home.settle()
        assert active_appliance(user) == "Micro"

    def test_unplugging_middle_active_tab_falls_to_next(self):
        home = self._three_appliance_home()
        user = home.default_user
        user.show_appliance("Micro")
        home.settle()
        home.remove_appliance("Micro")
        home.settle()
        # the appliance that slid into the vacated slot, not tab 0
        assert active_appliance(user) == "TV"

    def test_unplug_repaints_and_other_views_keep_their_tab(self):
        home = self._three_appliance_home()
        bob = home.add_user("bob")
        home.settle()
        user = home.default_user
        user.show_appliance("TV")
        bob.show_appliance("AC")
        home.settle()
        home.remove_appliance("TV")
        home.settle()
        assert active_appliance(user) == "Micro"
        assert active_appliance(bob) == "AC"
        # no stale pixels: every mirror converged on the rebuilt UI
        assert user.session.upstream.framebuffer == user.display.framebuffer
        assert bob.session.upstream.framebuffer == bob.display.framebuffer

    def test_survivor_tab_is_restored_by_guid(self):
        home = self._three_appliance_home()
        user = home.default_user
        user.show_appliance("Micro")
        home.settle()
        home.remove_appliance("AC")  # before the active tab
        home.settle()
        assert active_appliance(user) == "Micro"

"""Integration: the full session stack over a real socketpair transport.

The acceptance bar for the Transport abstraction: the server/proxy stack
must behave identically whether bytes move over the simulated pipe or a
genuine kernel byte stream (:func:`make_socket_transport_pair`), which
re-segments chunks arbitrarily and signals close via EOF instead of a
scheduler event.
"""

import pytest

from repro import Home
from repro.appliances import Television
from repro.devices import RemoteControl
from repro.graphics import RGB565, RGB888
from repro.net import make_socket_transport_pair
from repro.proxy import UniIntProxy
from repro.server import UniIntServer
from repro.toolkit import Button, Column, Label, ToggleButton, UIWindow
from repro.uip import keysyms
from repro.util import Scheduler
from repro.windows import DisplayServer


def build_stack(width=400, height=300, pixel_format=RGB888):
    """The test_thin_client stack, but over a socketpair transport."""
    scheduler = Scheduler()
    display = DisplayServer(width, height)
    window = UIWindow(width, height)
    col = Column()
    label = col.add(Label("READY"))
    label.widget_id = "status"
    toggle = col.add(ToggleButton("Power"))
    toggle.widget_id = "power"
    toggle.on_activate = lambda w: setattr(
        label, "text", "ON" if w.value else "OFF")
    button = col.add(Button("Next"))
    button.widget_id = "next"
    window.set_root(col)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler)
    proxy = UniIntProxy(scheduler)
    pair = make_socket_transport_pair(scheduler, name="server-link")
    server.accept(pair.a)
    session = proxy.connect(pair.b, pixel_format=pixel_format)
    return scheduler, display, window, server, proxy, session


class TestSocketSession:
    def test_handshake_and_initial_frame(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        assert session.upstream.ready
        assert session.upstream.framebuffer is not None
        assert session.upstream.framebuffer == display.framebuffer

    def test_mirror_tracks_ui_changes(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        window.root.find("status").text = "CHANGED TEXT"
        scheduler.run_until_idle()
        assert session.upstream.framebuffer == display.framebuffer

    def test_key_event_roundtrip_drives_widget(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        session.upstream.press_key(keysyms.RETURN)  # toggle has focus
        scheduler.run_until_idle()
        assert window.root.find("status").text == "ON"
        assert session.upstream.framebuffer == display.framebuffer

    def test_rgb565_wire_format(self):
        scheduler, display, window, server, proxy, session = build_stack(
            pixel_format=RGB565)
        scheduler.run_until_idle()
        window.root.find("status").text = "565 WIRE"
        scheduler.run_until_idle()
        # RGB565 is lossy; compare through the wire format's round trip
        mirror = session.upstream.framebuffer
        assert mirror is not None and mirror.size == display.framebuffer.size

    def test_close_propagates_to_server(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        assert len(server.sessions) == 1
        session.close()
        scheduler.run_until_idle()
        assert len(server.sessions) == 0

    def test_server_side_close_reaches_client(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        server.sessions[0].close()
        scheduler.run_until_idle()
        assert session.upstream.closed

    def test_many_churn_rounds_stay_pixel_identical(self):
        scheduler, display, window, server, proxy, session = build_stack()
        scheduler.run_until_idle()
        label = window.root.find("status")
        for round_no in range(25):
            label.text = f"round {round_no}"
            scheduler.run_until_idle()
            assert session.upstream.framebuffer == display.framebuffer


class TestSocketHome:
    def test_full_home_over_sockets(self):
        home = Home(transport="socket")
        home.add_appliance(Television("TV"))
        remote = RemoteControl("clicker", home.scheduler)
        home.add_device(remote)
        home.settle()
        assert home.session.upstream.framebuffer == home.display.framebuffer
        # input events flow device -> proxy -> server over the socket link
        remote.press("ok")
        home.settle()
        assert home.session.upstream.framebuffer == home.display.framebuffer
        assert home.server_session.key_events > 0

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError):
            Home(transport="carrier-pigeon")

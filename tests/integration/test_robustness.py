"""Failure injection and robustness tests across the stack."""

import json

import pytest

from repro import Home
from repro.appliances import Television
from repro.devices import CellPhone, Pda, TvDisplay, VoiceInput
from repro.havi import FcmType
from repro.net import LinkProfile, make_pipe
from repro.net.framing import encode_frame
from repro.proxy import UniIntProxy
from repro.server import UniIntServer
from repro.toolkit import Column, Label, ToggleButton, UIWindow
from repro.util import Scheduler
from repro.windows import DisplayServer


def stack(width=200, height=150, adaptive=False):
    scheduler = Scheduler()
    display = DisplayServer(width, height)
    window = UIWindow(width, height)
    col = Column()
    toggle = col.add(ToggleButton("Power"))
    toggle.widget_id = "power"
    col.add(Label("panel"))
    window.set_root(col)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler, adaptive=adaptive)
    proxy = UniIntProxy(scheduler)
    pipe = make_pipe(scheduler, name="up")
    server.accept(pipe.a)
    session = proxy.connect(pipe.b)
    return scheduler, display, window, server, proxy, session


class TestMalformedDeviceTraffic:
    def test_bad_json_recorded_and_dropped(self):
        scheduler, display, window, server, proxy, session = stack()
        phone = CellPhone("ph", scheduler)
        phone.connect(proxy)
        proxy.select_input("ph")
        scheduler.run_until_idle()
        # raw garbage framed as an event
        phone._pipe.a.send(encode_frame(b"\xFF\xFEnot json"))
        scheduler.run_until_idle()
        assert len(session.plugin_errors) == 1
        # session still works afterwards
        phone.press("5")
        scheduler.run_until_idle()
        assert window.root.find("power").value is True

    def test_plugin_rejection_recorded(self):
        scheduler, display, window, server, proxy, session = stack()
        phone = CellPhone("ph", scheduler)
        phone.connect(proxy)
        proxy.select_input("ph")
        scheduler.run_until_idle()
        phone._pipe.a.send(encode_frame(
            json.dumps({"type": "key", "key": "Z"}).encode()))
        scheduler.run_until_idle()
        assert "ph" in session.plugin_errors[0]
        phone.press("5")
        scheduler.run_until_idle()
        assert window.root.find("power").value is True

    def test_unselected_device_events_ignored_silently(self):
        scheduler, display, window, server, proxy, session = stack()
        a = CellPhone("a", scheduler)
        b = CellPhone("b", scheduler)
        a.connect(proxy)
        b.connect(proxy)
        proxy.select_input("a")
        scheduler.run_until_idle()
        b.press("5")
        scheduler.run_until_idle()
        assert window.root.find("power").value is False
        assert session.plugin_errors == []


class TestLossyLinks:
    def test_lossy_voice_link_degrades_gracefully(self):
        scheduler, display, window, server, proxy, session = stack()

        class FlakyVoice(VoiceInput):
            def build_descriptor(self):
                descriptor = super().build_descriptor()
                lossy = LinkProfile("flaky-bt", latency_s=0.02,
                                    bandwidth_bps=500e3, loss=0.4)
                return type(descriptor)(
                    device_id=descriptor.device_id, kind=descriptor.kind,
                    screen=None, input_modes=descriptor.input_modes,
                    link=lossy, tags=descriptor.tags)

        voice = FlakyVoice("mic", scheduler, seed=11)
        voice.connect(proxy)
        proxy.select_input("mic")
        scheduler.run_until_idle()
        for _ in range(30):
            voice.say("select")
            scheduler.run_until_idle()
        delivered = session.events_forwarded // 2  # press+release pairs
        assert 0 < delivered < 30          # some lost, some made it
        # toggle state equals parity of delivered activations
        assert window.root.find("power").value is (delivered % 2 == 1)


class TestDisconnects:
    def test_output_device_vanishes_mid_session(self):
        scheduler, display, window, server, proxy, session = stack()
        pda = Pda("pda", scheduler)
        tv = TvDisplay("tv", scheduler)
        pda.connect(proxy)
        tv.connect(proxy)
        proxy.select_input("pda")
        proxy.select_output("tv")
        scheduler.run_until_idle()
        tv.disconnect()
        scheduler.run_until_idle()
        assert proxy.current_output is None
        # UI changes must not crash with no output device
        window.root.find("power").toggle()
        scheduler.run_until_idle()
        # and a replacement device picks the session back up
        proxy.select_output("pda")
        scheduler.run_until_idle()
        assert pda.frames_received >= 1

    def test_upstream_close_marks_client_closed(self):
        scheduler, display, window, server, proxy, session = stack()
        scheduler.run_until_idle()
        server.sessions[0].close()
        scheduler.run_until_idle()
        assert session.upstream.closed
        assert server.sessions == []

    def test_proxy_disconnect_allows_reconnect(self):
        scheduler, display, window, server, proxy, session = stack()
        scheduler.run_until_idle()
        proxy.disconnect()
        scheduler.run_until_idle()
        pipe = make_pipe(scheduler, name="up2")
        server.accept(pipe.a)
        new_session = proxy.connect(pipe.b)
        scheduler.run_until_idle()
        assert new_session.upstream.ready
        assert new_session.upstream.framebuffer == display.framebuffer


class TestAdaptiveEncoding:
    def test_adaptive_mirror_is_exact(self):
        scheduler, display, window, server, proxy, session = stack(
            adaptive=True)
        scheduler.run_until_idle()
        assert session.upstream.framebuffer == display.framebuffer
        window.root.find("power").toggle()
        scheduler.run_until_idle()
        assert session.upstream.framebuffer == display.framebuffer

    def test_adaptive_beats_fixed_raw_bytes(self):
        from repro.uip import RAW
        results = {}
        for adaptive in (False, True):
            scheduler, display, window, server, proxy, session = stack(
                adaptive=adaptive)
            # client that only offers RAW: fixed mode must use RAW,
            # adaptive may still pick it per-rect (candidates include RAW)
            scheduler.run_until_idle()
            results[adaptive] = session.upstream.endpoint.stats.bytes_received
        # with the default encoding list, adaptive picks RRE/HEXTILE on
        # panel content; both modes are correct, adaptive no larger
        assert results[True] <= results[False]


class TestMultiUser:
    def test_two_proxies_one_home(self):
        """One home server, two users with their own proxies and devices."""
        scheduler = Scheduler()
        display = DisplayServer(200, 150)
        window = UIWindow(200, 150)
        col = Column()
        toggle = col.add(ToggleButton("Power"))
        toggle.widget_id = "power"
        window.set_root(col)
        display.map_fullscreen(window)
        server = UniIntServer(display, scheduler)

        proxies = []
        phones = []
        for user in ("alice", "bob"):
            proxy = UniIntProxy(scheduler, proxy_id=f"proxy-{user}")
            pipe = make_pipe(scheduler, name=f"up-{user}")
            server.accept(pipe.a)
            proxy.connect(pipe.b)
            phone = CellPhone(f"phone-{user}", scheduler)
            phone.connect(proxy)
            proxy.select_input(f"phone-{user}")
            proxy.select_output(f"phone-{user}")
            proxies.append(proxy)
            phones.append(phone)
        scheduler.run_until_idle()
        assert len(server.sessions) == 2

        # alice toggles power; bob's phone sees the repaint
        bob_frames = phones[1].frames_received
        phones[0].press("5")
        scheduler.run_until_idle()
        assert toggle.value is True
        assert phones[1].frames_received > bob_frames

        # bob toggles it back
        phones[1].press("5")
        scheduler.run_until_idle()
        assert toggle.value is False


class TestApplianceFaultSurface:
    def test_command_to_departed_appliance_errors_cleanly(self):
        home = Home()
        tv = Television("TV")
        home.add_appliance(tv)
        home.settle()
        handle = home.app.handle_for("TV", "tuner")
        home.remove_appliance("TV")
        home.settle()
        # the old handle's target SEID is gone; command bounces
        handle.command("power.set", {"on": True})
        home.settle()
        assert any("EUNKNOWN_ELEMENT" in e for e in handle.errors)

    def test_rapid_hotplug_cycles_stay_consistent(self):
        home = Home()
        tv = Television("TV")
        for _ in range(5):
            home.add_appliance(tv)
            home.settle()
            assert len(home.app.appliances) == 1
            home.remove_appliance("TV")
            home.settle()
            assert home.app.appliances == []
        assert len(home.network.registry) == 0

"""Integration: per-link adaptive encoder selection (paper §3.3).

One display server, two very different bearers.  A link-adaptive server
should spend CPU to save wire bytes on the 9600 bps cellular leg (ZRLE at
max compression) while the loopback leg takes the cheap path (HEXTILE,
no trial encodes at all) — and both client mirrors must stay exact.
"""

import pytest

from repro.net import BLUETOOTH_1, CELLULAR_PDC, LOOPBACK, make_pipe
from repro.net.link import compression_tier
from repro.proxy.upstream import UniIntClient
from repro.server import UniIntServer
from repro.toolkit import Column, Label, UIWindow
from repro.uip import HEXTILE, ZRLE
from repro.util import Scheduler
from repro.windows import DisplayServer


def adaptive_stack(profile, *, width=320, height=240, rows=10):
    scheduler = Scheduler()
    display = DisplayServer(width, height)
    window = UIWindow(width, height)
    column = Column()
    labels = [column.add(Label(f"row {i}")) for i in range(rows)]
    window.set_root(column)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler, backpressure=True,
                          link_adaptive=True)
    pipe = make_pipe(scheduler, profile, name=f"{profile.name}-link")
    session = server.accept(pipe.a)
    client = UniIntClient(pipe.b)
    scheduler.run_until_idle()
    return scheduler, labels, session, client


def drive_churn(scheduler, labels, client, seconds=8.0,
                poll_every=0.05, churn_every=0.1):
    deadline = scheduler.now() + seconds

    def poll():
        if client.ready:
            client.request_update(True)
        if scheduler.now() + poll_every <= deadline:
            scheduler.call_later(poll_every, poll)

    rounds = {"n": 0}

    def churn():
        rounds["n"] += 1
        for i, label in enumerate(labels):
            label.text = f"round {rounds['n']} v{(rounds['n'] * 37 + i) % 997}"
        if scheduler.now() + churn_every <= deadline:
            scheduler.call_later(churn_every, churn)

    scheduler.call_later(poll_every, poll)
    scheduler.call_later(churn_every, churn)
    scheduler.run_for(seconds)


def assert_mirror_exact(session, client):
    import numpy as np
    assert np.array_equal(client.framebuffer.pixels,
                          session.surface.display.framebuffer.pixels)


class TestAdaptiveSelection:
    def test_phone_leg_upgrades_to_zrle(self):
        scheduler, labels, session, client = adaptive_stack(CELLULAR_PDC)
        assert compression_tier(CELLULAR_PDC) == 2
        drive_churn(scheduler, labels, client)
        scheduler.run_until_idle()
        health = session.link_health()
        assert health.tier == 2
        assert health.active_encoding == ZRLE
        assert session.rects_by_encoding[ZRLE] > 0
        assert_mirror_exact(session, client)

    def test_loopback_leg_stays_on_hextile(self):
        scheduler, labels, session, client = adaptive_stack(LOOPBACK)
        assert compression_tier(LOOPBACK) == 0
        drive_churn(scheduler, labels, client, seconds=3.0)
        scheduler.run_until_idle()
        health = session.link_health()
        assert health.tier == 0
        assert health.active_encoding == HEXTILE
        # tier 0 never runs trial encodes, so nothing else ever got sent
        assert set(session.rects_by_encoding) == {HEXTILE}
        assert_mirror_exact(session, client)

    def test_different_legs_pick_different_encoders(self):
        """The acceptance bar: same UI, adaptive server, the phone leg and
        the local leg end up on different wire encodings."""
        _, labels_a, phone, client_a = adaptive_stack(CELLULAR_PDC)
        sched_a = phone.surface.server.scheduler
        drive_churn(sched_a, labels_a, client_a)
        sched_a.run_until_idle()
        _, labels_b, local, client_b = adaptive_stack(LOOPBACK)
        sched_b = local.surface.server.scheduler
        drive_churn(sched_b, labels_b, client_b, seconds=3.0)
        sched_b.run_until_idle()
        assert phone.link_health().active_encoding == ZRLE
        assert local.link_health().active_encoding == HEXTILE

    def test_bluetooth_leg_escalates_under_churn(self):
        """A mid-tier bearer that keeps falling behind shifts to heavier
        compression: withheld sends accumulate, the session escalates to
        tier 2 and re-seeds its candidate order."""
        scheduler, labels, session, client = adaptive_stack(
            BLUETOOTH_1, width=480, height=360, rows=14)
        assert compression_tier(BLUETOOTH_1) == 1
        drive_churn(scheduler, labels, client, seconds=6.0,
                    poll_every=0.005, churn_every=0.005)
        scheduler.run_until_idle()
        health = session.link_health()
        assert session.updates_coalesced >= 3  # the link really fell behind
        assert health.tier == 2
        assert health.reevaluations >= 1
        assert session.rects_by_encoding[ZRLE] > 0
        assert_mirror_exact(session, client)

    def test_link_health_snapshot_contents(self):
        scheduler, labels, session, client = adaptive_stack(CELLULAR_PDC)
        drive_churn(scheduler, labels, client)
        health = session.link_health()
        assert health.profile == CELLULAR_PDC.name
        assert health.bandwidth_bps == CELLULAR_PDC.bandwidth_bps
        assert health.updates_coalesced == session.updates_coalesced
        assert health.bytes_suppressed == session.bytes_suppressed
        assert health.backlog_s >= 0.0
        scheduler.run_until_idle()
        assert session.link_health().backlog_s == 0.0  # fully drained

    def test_stats_exposes_link_health(self):
        scheduler, labels, session, client = adaptive_stack(CELLULAR_PDC)
        drive_churn(scheduler, labels, client, seconds=3.0)
        scheduler.run_until_idle()
        stats = session.stats()
        assert stats["link_health"] is session.link_health() or (
            stats["link_health"] == session.link_health())
        assert stats["rects_by_encoding"] == dict(session.rects_by_encoding)
        assert stats["updates_sent"] == session.updates_sent

"""The README quickstart snippet must work exactly as documented."""

from repro import Home
from repro.appliances import Television, VideoRecorder
from repro.context import UserSituation
from repro.devices import CellPhone, VoiceInput, WallDisplay
from repro.havi import FcmType
from repro.toolkit import TabPanel


def test_readme_quickstart_snippet():
    home = Home()
    home.add_appliance(Television("Living Room TV"))
    home.add_appliance(VideoRecorder("VCR"))        # -> composed TV+VCR GUI

    phone = CellPhone("keitai", home.scheduler)
    home.add_device(phone)
    home.add_device(VoiceInput("mic", home.scheduler))
    home.add_device(WallDisplay("kitchen-wall", home.scheduler))
    home.settle()

    phone.press("*")        # keypad Tab: focus the TV panel's power toggle
    phone.press("5")        # keypad 'select' -> universal Return -> power
    home.settle()

    home.context.set_situation(UserSituation.cooking())  # hands busy now
    home.settle()
    assert home.proxy.current_input == "mic"  # switched to voice, live

    # the claims around the snippet
    assert isinstance(home.window.root, TabPanel)  # composed GUI
    assert sorted(home.window.root.titles) == ["Living Room TV", "VCR"]
    tv = home.appliances["Living Room TV"]
    assert tv.dcm.fcm_by_type(FcmType.TUNER).get_state("power") is True


def test_readme_module_docstring_quickstart():
    """The snippet in repro/__init__ works too."""
    from repro.devices import Pda

    home = Home()
    home.add_appliance(Television("Living Room TV"))
    home.add_device(Pda("my-pda", home.scheduler))
    home.settle()
    pda = home.devices["my-pda"]
    assert pda.screen_image is not None
    assert pda.screen_image.format == "gray4"

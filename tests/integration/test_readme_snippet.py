"""The README quickstart snippet must work exactly as documented."""

from repro import Home
from repro.appliances import Television, VideoRecorder
from repro.context import UserSituation
from repro.devices import CellPhone, VoiceInput, WallDisplay
from repro.havi import FcmType
from repro.toolkit import TabPanel


def test_readme_quickstart_snippet():
    home = Home()
    home.add_appliance(Television("Living Room TV"))
    home.add_appliance(VideoRecorder("VCR"))        # -> composed TV+VCR GUI

    phone = CellPhone("keitai", home.scheduler)
    home.add_device(phone)
    home.add_device(VoiceInput("mic", home.scheduler))
    home.add_device(WallDisplay("kitchen-wall", home.scheduler))
    home.settle()

    phone.press("*")        # keypad Tab: focus the TV panel's power toggle
    phone.press("5")        # keypad 'select' -> universal Return -> power
    home.settle()

    home.context.set_situation(UserSituation.cooking())  # hands busy now
    home.settle()
    assert home.proxy.current_input == "mic"  # switched to voice, live

    # the claims around the snippet
    assert isinstance(home.window.root, TabPanel)  # composed GUI
    assert sorted(home.window.root.titles) == ["Living Room TV", "VCR"]
    tv = home.appliances["Living Room TV"]
    assert tv.dcm.fcm_by_type(FcmType.TUNER).get_state("power") is True


def test_readme_multiuser_snippet():
    """The 'Multi-user homes & follow-me migration' snippet, verbatim."""
    from repro.devices import Pda, TvDisplay

    home = Home()
    home.add_appliance(Television("TV"))
    alice = home.add_user("alice")
    bob = home.add_user("bob")

    home.add_device(CellPhone("alice-keitai", home.scheduler), user="alice")
    home.add_device(Pda("bob-pda", home.scheduler), user="bob")
    home.add_device(TvDisplay("tv-panel", home.scheduler), shared=True)
    home.settle()

    alice.set_situation(UserSituation.on_the_sofa())  # alice takes the panel
    bob.set_situation(UserSituation.on_the_sofa())    # tie: alice keeps it
    home.settle()
    assert alice.current_output == "tv-panel"
    assert bob.current_output == "bob-pda"            # bob's next-best

    record = alice.move_to("kitchen")                 # follow-me migration
    home.settle()
    assert bob.current_output == "tv-panel"           # freed panel -> bob
    assert record.latency_s is not None               # handoff latency


def test_readme_module_docstring_quickstart():
    """The snippet in repro/__init__ works too."""
    from repro.devices import Pda

    home = Home()
    home.add_appliance(Television("Living Room TV"))
    home.add_device(Pda("my-pda", home.scheduler))
    home.settle()
    pda = home.devices["my-pda"]
    assert pda.screen_image is not None
    assert pda.screen_image.format == "gray4"


def test_readme_fleet_snippet():
    """The 'Fleet: many homes, one process, real TCP' snippet, verbatim."""
    from repro import HomeFleet
    from repro.appliances import DimmableLight
    from repro.devices import Pda

    fleet = HomeFleet()
    for i in range(8):
        home = fleet.add_home(f"h{i}")           # Home(transport="tcp")
        home.add_appliance(DimmableLight(f"lamp-{i}"))
        home.add_device(Pda(f"pda-{i}", home.scheduler))
    fleet.settle()           # drives all 8 handshakes over real TCP sockets

    # the claims around the snippet
    assert all(h.server_session.ready for h in fleet)
    assert len({h.listener.port for h in fleet}) == 8  # one port per home
    frames_before = fleet.home("h3").session.frames_pushed

    lamp = fleet.home("h3").appliances["lamp-3"]
    lamp.dcm.fcm_by_type(FcmType.LIGHT).invoke_local("power.toggle")
    fleet.settle()           # redraw -> encode -> TCP -> decode -> PDA frame

    assert fleet.home("h3").session.frames_pushed > frames_before
    reactor = fleet.reactor
    fleet.close()
    assert reactor.handle_count == 0


def test_readme_fault_injection_snippet():
    """The 'Fault injection & self-healing' snippet, verbatim."""
    from repro.net import FaultInjector

    home = Home(transport="tcp", resilience=True)  # heartbeats + warm resume
    home.add_appliance(Television("TV"))
    from repro.devices import Pda
    home.add_device(Pda("pda", home.scheduler))
    home.settle()

    chaos = FaultInjector(seed=7)
    chaos.rst(home.session.upstream.endpoint)   # yank the session's cable
    home.settle()                               # detect, redial, resume

    assert home.session.resilience.reconnect_count == 1
    assert home.uniint_server.sessions_resumed == 1   # warm resume, no re-login
    assert home.session.upstream.updates_received == 1  # one full-frame resync
    home.close()


def test_readme_per_user_surfaces_snippet():
    """The 'Per-user surfaces' snippet, verbatim."""
    from repro.appliances import MicrowaveOven

    home = Home()
    home.add_appliance(Television("TV"))
    home.add_appliance(MicrowaveOven("Micro"))
    alice = home.add_user("alice")
    bob = home.add_user("bob")
    home.settle()

    alice.show_appliance("TV")      # alice's view tabs to the TV ...
    bob.show_appliance("Micro")     # ... bob's stays on the microwave
    home.settle()

    # independent input: alice toggles TV power on *her* surface only
    guid8 = home.appliances["TV"].guid[:8]
    power = alice.window.root.find(f"{guid8}.tuner.power")
    bob_wire = bob.server_session.endpoint.stats.bytes_sent
    alice.session.upstream.click(*power.abs_rect().center)
    home.settle()

    tuner = home.appliances["TV"].dcm.fcm_by_type(FcmType.TUNER)
    assert tuner.get_state("power") is True
    assert alice.window is not bob.window            # independent views
    assert (bob.server_session.endpoint.stats.bytes_sent
            == bob_wire)                             # bob's wire stayed silent


def test_readme_dynamic_panels_snippet():
    """The 'Dynamic capability panels' snippet, verbatim."""
    from repro.appliances import Refrigerator
    from repro.devices import Pda

    home = Home()                               # dynamic_panels=True (default)
    home.add_appliance(Refrigerator("Fridge"))  # zero panel code, zero DDI spec
    home.add_device(Pda("pda", home.scheduler))
    home.settle()

    guid8 = home.appliances["Fridge"].guid[:8]
    dispense = home.window.root.find(f"{guid8}.refrigerator.ice-dispense")
    home.session.upstream.click(*dispense.abs_rect().center)
    home.settle()

    fridge = home.appliances["Fridge"].dcm.fcm_by_type(FcmType.REFRIGERATOR)
    assert fridge.get_state("ice_level") == 50  # generated button drove the FCM
    level = home.window.root.find(f"{guid8}.refrigerator.ice-level")
    assert level.value == 50                    # ...and the panel follows state

    # the migration claim around the snippet: the legacy builders still
    # compose the same ids when dynamic panels are pinned off
    legacy = Home(dynamic_panels=False)
    legacy.add_appliance(Television("TV"))
    legacy.settle()
    tv_guid8 = legacy.appliances["TV"].guid[:8]
    assert legacy.window.root.find(f"{tv_guid8}.tuner.power") is not None


def test_readme_adaptive_selection_snippet():
    """The 'Tiered compression & adaptive selection' snippet, verbatim."""
    from repro.net import CELLULAR_PDC, LOOPBACK, make_pipe
    from repro.proxy.upstream import UniIntClient
    from repro.server import UniIntServer
    from repro.toolkit import Column, Label, UIWindow
    from repro.uip import HEXTILE, ZRLE
    from repro.util import Scheduler
    from repro.windows import DisplayServer

    scheduler = Scheduler()
    display = DisplayServer(320, 240)
    window = UIWindow(320, 240)
    column = Column()
    labels = [column.add(Label(f"row {i}")) for i in range(10)]
    window.set_root(column)
    display.map_fullscreen(window)

    server = UniIntServer(display, scheduler, backpressure=True,
                          link_adaptive=True)
    phone_pipe = make_pipe(scheduler, CELLULAR_PDC, name="phone")
    panel_pipe = make_pipe(scheduler, LOOPBACK, name="panel")
    phone = server.accept(phone_pipe.a)
    local = server.accept(panel_pipe.a)

    # "... clients connect, the panel churns ..."
    clients = [UniIntClient(phone_pipe.b), UniIntClient(panel_pipe.b)]
    scheduler.run_until_idle()
    deadline = scheduler.now() + 8.0

    def poll():
        for client in clients:
            if client.ready:
                client.request_update(True)
        if scheduler.now() + 0.05 <= deadline:
            scheduler.call_later(0.05, poll)

    rounds = {"n": 0}

    def churn():
        rounds["n"] += 1
        for i, label in enumerate(labels):
            label.text = f"round {rounds['n']} v{i}"
        if scheduler.now() + 0.1 <= deadline:
            scheduler.call_later(0.1, churn)

    scheduler.call_later(0.05, poll)
    scheduler.call_later(0.1, churn)
    scheduler.run_for(8.0)
    scheduler.run_until_idle()

    assert phone.link_health().active_encoding == ZRLE     # wire bytes win
    assert local.link_health().active_encoding == HEXTILE  # cheap CPU wins


def test_readme_command_spine_snippet():
    """The 'Command spine' snippet, verbatim."""
    from repro.app.commands import CommandState
    from repro.appliances import MicrowaveOven
    from repro.net.faults import FaultPlan
    from repro.tools.report import render_command_journal

    home = Home()
    home.add_appliance(MicrowaveOven("Oven"))
    home.settle()

    job = home.submit_command("Oven", "timer.add", {"seconds": 90})
    home.settle()
    assert job.ok and job.result == {"pending_s": 90}

    home.network.messaging.inject_faults(FaultPlan(drop=1.0), "bus")
    lost = home.submit_command("Oven", "timer.start")
    home.settle()                 # the 2 s guard fires on the virtual clock
    assert lost.state is CommandState.TIMED_OUT

    journal = render_command_journal(home.command_log)  # id origin opcode...
    assert "timer.add" in journal and "timed_out" in journal

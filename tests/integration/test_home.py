"""Integration tests: the full Home facade, app layer and context switching."""

import pytest

from repro import Home
from repro.appliances import (
    DimmableLight,
    MicrowaveOven,
    Television,
    VideoRecorder,
)
from repro.context import UserSituation
from repro.devices import (
    CellPhone,
    Pda,
    RemoteControl,
    TvDisplay,
    VoiceInput,
    WallDisplay,
)
from repro.havi import FcmType
from repro.toolkit import Label, ListBox, Slider, TabPanel, ToggleButton
from repro.uip import keysyms


def make_home(*appliances):
    home = Home()
    for appliance in appliances:
        home.add_appliance(appliance)
    home.settle()
    return home


class TestApplicationUI:
    def test_no_appliances_shows_notice(self):
        home = make_home()
        assert home.window.root.find("no-appliances") is not None

    def test_single_appliance_shows_single_panel(self):
        home = make_home(Television("TV"))
        assert home.app.appliances[0].name == "TV"
        assert not isinstance(home.window.root, TabPanel)
        # tuner panel widgets exist
        guid8 = home.app.appliances[0].guid[:8]
        assert home.window.root.find(f"{guid8}.tuner.power") is not None

    def test_two_appliances_compose_tabs(self):
        """Paper §2.2: composed GUI for TV and VCR."""
        home = make_home(Television("TV"), VideoRecorder("VCR"))
        tabs = home.window.root
        assert isinstance(tabs, TabPanel)
        assert sorted(tabs.titles) == ["TV", "VCR"]

    def test_hotplug_rebuilds_ui(self):
        home = make_home(Television("TV"))
        assert not isinstance(home.window.root, TabPanel)
        vcr = VideoRecorder("VCR")
        home.add_appliance(vcr)
        home.settle()
        assert isinstance(home.window.root, TabPanel)
        home.remove_appliance("VCR")
        home.settle()
        assert not isinstance(home.window.root, TabPanel)

    def test_hotplug_preserves_active_tab(self):
        home = make_home(Television("TV"), VideoRecorder("VCR"))
        home.app.show_appliance("VCR")
        home.add_appliance(DimmableLight("Lamp"))
        home.settle()
        tabs = home.window.root
        active_name = tabs.titles[tabs.active]
        assert active_name == "VCR"

    def test_panel_reflects_initial_state(self):
        tv = Television("TV")
        home = Home()
        home.add_appliance(tv)
        home.settle()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        tuner.invoke_local("channel.set", {"channel": 8})
        home.settle()
        guid8 = tv.guid[:8]
        station = home.window.root.find(f"{guid8}.tuner.station")
        assert "8" in station.text
        assert "Fuji" in station.text

    def test_widget_action_drives_appliance(self):
        tv = Television("TV")
        home = make_home(tv)
        guid8 = tv.guid[:8]
        power = home.window.root.find(f"{guid8}.tuner.power")
        assert isinstance(power, ToggleButton)
        power.toggle()  # as if clicked
        home.settle()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        assert tuner.get_state("power") is True

    def test_slider_drives_volume(self):
        tv = Television("TV")
        home = make_home(tv)
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        home.settle()
        guid8 = tv.guid[:8]
        volume = home.window.root.find(f"{guid8}.tuner.volume")
        assert isinstance(volume, Slider)
        volume._set_and_notify(80)
        home.settle()
        assert tuner.get_state("volume") == 80

    def test_rejected_command_recorded_not_crashing(self):
        tv = Television("TV")
        home = make_home(tv)
        guid8 = tv.guid[:8]
        volume = home.window.root.find(f"{guid8}.tuner.volume")
        volume._set_and_notify(50)  # TV is off -> EPOWER_OFF
        home.settle()
        handle = home.app.handle_for("TV", "tuner")
        assert any("EPOWER_OFF" in e for e in handle.errors)

    def test_state_events_update_widgets(self):
        tv = Television("TV")
        home = make_home(tv)
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        tuner.invoke_local("volume.set", {"volume": 66})
        home.settle()
        guid8 = tv.guid[:8]
        assert home.window.root.find(f"{guid8}.tuner.volume").value == 66
        assert home.window.root.find(f"{guid8}.tuner.power").value is True

    def test_microwave_panel_cooks(self):
        oven = MicrowaveOven("Oven")
        home = make_home(oven)
        guid8 = oven.guid[:8]
        root = home.window.root
        root.find(f"{guid8}.microwave.add60").activate()
        root.find(f"{guid8}.microwave.start").activate()
        home.settle()  # fast-forwards through the cook
        fcm = oven.dcm.fcm_by_type(FcmType.MICROWAVE)
        assert fcm.get_state("cook_count") == 1

    def test_bell_reaches_the_output_device(self):
        """The microwave ding beeps on whatever device the user holds."""
        oven = MicrowaveOven("Oven")
        home = make_home(oven)
        phone = CellPhone("keitai", home.scheduler)
        home.add_device(phone)
        home.settle()
        bells = []
        home.on_bell = lambda event: bells.append(event)
        fcm = oven.dcm.fcm_by_type(FcmType.MICROWAVE)
        fcm.invoke_local("timer.start", {"seconds": 45})
        home.settle()
        assert phone.bells_received == 1
        assert len(bells) == 1
        assert bells[0].payload["device_name"] == "Oven"


class TestEndToEndThroughDevices:
    def test_phone_controls_tv_power(self):
        tv = Television("TV")
        home = make_home(tv)
        phone = CellPhone("keitai", home.scheduler)
        home.add_device(phone)
        home.settle()
        # first focusable widget is the tuner power toggle; '5' = select
        phone.press("5")
        home.settle()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        assert tuner.get_state("power") is True
        # the phone's screen shows the updated panel
        assert phone.frames_received >= 2

    def test_pda_touch_controls_tv(self):
        tv = Television("TV")
        home = make_home(tv)
        pda = Pda("pda", home.scheduler)
        home.add_device(pda)
        home.settle()
        guid8 = tv.guid[:8]
        power = home.window.root.find(f"{guid8}.tuner.power")
        cx, cy = power.abs_rect().center
        dx, dy = home.session.context.view.to_device(cx, cy)
        pda.tap(dx, dy)
        home.settle()
        assert tv.dcm.fcm_by_type(FcmType.TUNER).get_state("power") is True

    def test_tab_navigation_reaches_second_appliance(self):
        tv = Television("TV")
        vcr = VideoRecorder("VCR")
        home = make_home(tv, vcr)
        remote = RemoteControl("remote", home.scheduler)
        display = TvDisplay("tv-panel", home.scheduler)
        home.add_device(remote)
        home.add_device(display)
        home.context.set_situation(UserSituation.on_the_sofa())
        home.settle()
        assert home.proxy.current_input == "remote"
        # tab panel has focus first; right arrow switches to the VCR tab
        remote.press("right")
        home.settle()
        tabs = home.window.root
        assert tabs.titles[tabs.active] == "VCR"


class TestContextSwitching:
    def test_cooking_scenario_switches_to_voice(self):
        """The paper's motivating scenario, end to end."""
        oven = MicrowaveOven("Oven")
        home = make_home(oven)
        phone = CellPhone("keitai", home.scheduler)
        voice = VoiceInput("mic", home.scheduler)
        wall = WallDisplay("kitchen-wall", home.scheduler)
        home.add_device(phone)
        home.add_device(voice)
        home.add_device(wall)
        # idle in the living room: phone is fine
        home.context.set_situation(UserSituation())
        home.settle()
        before = home.proxy.current_input
        # start cooking: hands become busy
        home.context.set_situation(UserSituation.cooking())
        home.settle()
        assert home.proxy.current_input == "mic"
        assert home.proxy.current_output == "kitchen-wall"
        assert home.proxy.current_input != before or before == "mic"
        # and the voice path actually works: select the focused widget
        voice.say("select")
        home.settle()

    def test_switch_record_history(self):
        home = make_home(Television("TV"))
        phone = CellPhone("keitai", home.scheduler)
        home.add_device(phone)
        home.settle()
        count = home.context.switch_count
        home.context.update(location="kitchen")
        home.settle()
        assert len(home.context.history) >= 2
        assert home.context.switch_count >= count

    def test_device_arrival_triggers_reselection(self):
        home = make_home(Television("TV"))
        home.context.set_situation(UserSituation.on_the_sofa())
        phone = CellPhone("keitai", home.scheduler)
        home.add_device(phone)
        home.settle()
        assert home.proxy.current_input == "keitai"
        remote = RemoteControl("remote", home.scheduler)
        home.add_device(remote)
        home.settle()
        assert home.proxy.current_input == "remote"  # better on the sofa

    def test_device_departure_falls_back(self):
        home = make_home(Television("TV"))
        home.context.set_situation(UserSituation.on_the_sofa())
        phone = CellPhone("keitai", home.scheduler)
        remote = RemoteControl("remote", home.scheduler)
        home.add_device(phone)
        home.add_device(remote)
        home.settle()
        assert home.proxy.current_input == "remote"
        home.remove_device("remote")
        home.settle()
        assert home.proxy.current_input == "keitai"


class TestTransparency:
    """E8: the same appliance trajectory via local clicks and via devices."""

    def _drive_locally(self):
        tv = Television("TV")
        home = make_home(tv)
        guid8 = tv.guid[:8]
        root = home.window.root
        root.find(f"{guid8}.tuner.power").toggle()
        home.settle()
        root.find(f"{guid8}.tuner.ch-up").activate()
        home.settle()
        root.find(f"{guid8}.tuner.ch-up").activate()
        home.settle()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        return {k: tuner.get_state(k)
                for k in ("power", "channel", "station")}

    def _drive_through_phone(self):
        tv = Television("TV")
        home = make_home(tv)
        phone = CellPhone("keitai", home.scheduler)
        home.add_device(phone)
        home.settle()
        phone.press("5")        # power toggle (focused first)
        home.settle()
        phone.press("*")        # Tab to CH- button
        phone.press("*")        # Tab to CH+ button... order check below
        home.settle()
        # focus order: power -> station-less -> ch-down -> ch-up -> ...
        # We pressed Tab twice from power: focus is on ch-up
        phone.press("5")
        phone.press("5")
        home.settle()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        return {k: tuner.get_state(k)
                for k in ("power", "channel", "station")}

    def test_same_trajectory(self):
        local = self._drive_locally()
        remote = self._drive_through_phone()
        assert local == remote
        assert local["power"] is True
        assert local["channel"] == 4  # 1 -> 3 -> 4 through broadcast list

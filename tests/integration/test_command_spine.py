"""Integration tests: the command spine end-to-end through a real home.

Covers the PR's acceptance criteria: ``Home.submit_command`` drives an
appliance and stays trackable under injected faults; every actuation
origin (widget, ddi, voice, api) lands in the per-home journal; and the
spine migration left the wire byte-identical on the happy path.
"""

import pytest

from repro import Home
from repro.app.commands import CommandState
from repro.app.handles import FcmHandle
from repro.appliances import MicrowaveOven, Television
from repro.devices import Pda, VoiceInput
from repro.havi import FcmType, SEID
from repro.havi.ddi import DdiController, DdiVoiceAssistant
from repro.net.faults import FaultPlan
from repro.toolkit import Slider, ToggleButton
from repro.tools.report import render_command_journal
from repro.util.ids import guid_from_seed


def make_home(*appliances):
    home = Home()
    for appliance in appliances:
        home.add_appliance(appliance)
    home.settle()
    return home


class TestSubmitCommand:
    def test_drives_microwave_to_done(self):
        oven = MicrowaveOven("Oven")
        home = make_home(oven)
        command = home.submit_command("Oven", "timer.add", {"seconds": 90})
        assert command.state is CommandState.INFLIGHT
        home.settle()
        assert command.ok
        assert command.result == {"pending_s": 90}
        fcm = oven.dcm.fcm_by_type(FcmType.MICROWAVE)
        assert fcm.get_state("pending_s") == 90

    def test_routes_by_capability_descriptor(self):
        home = make_home(Television("TV"))
        command = home.submit_command("TV", "volume.set", {"volume": 40})
        home.settle()
        # volume.set only exists on the tuner FCM: the spine found it
        assert command.status in ("SUCCESS", "EPOWER_OFF")
        assert command.done

    def test_unknown_appliance_raises(self):
        from repro.util.errors import HaviError
        home = make_home(MicrowaveOven("Oven"))
        with pytest.raises(HaviError, match="Toaster"):
            home.submit_command("Toaster", "timer.add", {"seconds": 5})

    def test_times_out_under_total_drop(self):
        oven = MicrowaveOven("Oven")
        home = make_home(oven)
        home.network.messaging.inject_faults(FaultPlan(drop=1.0), "bus")
        command = home.submit_command("Oven", "timer.add", {"seconds": 30})
        home.settle()  # fires the 2 s guard timer on the virtual clock
        home.network.messaging.clear_faults()
        assert command.state is CommandState.TIMED_OUT
        assert command.status == "ETIMEOUT"
        assert home.network.messaging.messages_fault_dropped >= 1
        assert home.network.messaging.requests_timed_out == 1
        # the oven never cooked
        fcm = oven.dcm.fcm_by_type(FcmType.MICROWAVE)
        assert fcm.get_state("pending_s") == 0

    def test_survives_delay_faults(self):
        home = make_home(MicrowaveOven("Oven"))
        home.network.messaging.inject_faults(
            FaultPlan(delay=1.0, delay_s=0.4), "bus")
        command = home.submit_command("Oven", "timer.add", {"seconds": 30})
        home.settle()
        home.network.messaging.clear_faults()
        # request and reply each held 0.4 s: slow, but inside the guard
        assert command.ok
        assert command.latency_s is not None
        assert command.latency_s >= 0.4
        assert home.network.messaging.messages_fault_delayed >= 1

    def test_journal_records_fault_run(self):
        home = make_home(MicrowaveOven("Oven"))
        ok = home.submit_command("Oven", "timer.add", {"seconds": 10})
        home.settle()
        home.network.messaging.inject_faults(FaultPlan(drop=1.0), "bus")
        bad = home.submit_command("Oven", "timer.add", {"seconds": 20})
        home.settle()
        home.network.messaging.clear_faults()
        assert ok.ok and bad.state is CommandState.TIMED_OUT
        journal = [c for c in home.command_log.journal(origin="api")]
        assert [c.state for c in journal] == [
            CommandState.DONE, CommandState.TIMED_OUT]
        text = render_command_journal(home.command_log)
        assert "timer.add" in text
        assert "timed_out" in text
        assert f"{ok.command_id:>5}" in text


class TestOriginCoverage:
    def test_every_origin_reaches_the_home_journal(self):
        """Widget click, DDI action, voice utterance and the programmatic
        API all surface in ``home.command_log`` with their origin."""
        tv = Television("TV")
        home = make_home(tv, MicrowaveOven("Oven"))

        # widget: a panel toggle, exactly as if clicked on screen
        guid8 = tv.guid[:8]
        power = home.window.root.find(f"{guid8}.tuner.power")
        assert isinstance(power, ToggleButton)
        power.toggle()
        home.settle()

        # ddi + voice: a native DDI controller over the TV's tree,
        # sharing the home journal, with the speech front-end on top
        controller = DdiController(
            SEID(guid_from_seed("spine-ddi"), 0), home.network.messaging,
            home.network.events, command_log=home.command_log)
        controller.attach()
        server = home.network.dcm_manager.ddi_server_for(tv.guid)
        controller.open(server.seid)
        home.settle()
        ddi_cmd = controller.action("1:volume", "set", 25)
        home.settle()
        assert ddi_cmd.ok

        # voice: the microphone device forwards out-of-vocabulary speech
        # to the assistant, which actuates with origin "voice"
        mic = VoiceInput("mic", home.scheduler)
        home.add_device(mic)
        mic.assistant = DdiVoiceAssistant(controller)
        mic.say("vol 40")
        home.settle()
        assert mic.assistant.utterances_matched == 1

        # api: the programmatic seam
        api_cmd = home.submit_command("Oven", "timer.add", {"seconds": 60})
        home.settle()
        assert api_cmd.ok

        origins = home.command_log.stats()["by_origin"]
        for origin in ("widget", "ddi", "voice", "api"):
            assert origins.get(origin, 0) >= 1, origins
        # and the whole history partitions cleanly
        stats = home.command_log.stats()
        assert sum(stats["terminal"].values()) == stats["submitted"]


class TestWireParity:
    """The migration guard: routing every actuation through the spine
    must not change a single byte on a thin client's link."""

    SCENARIO_VOLUMES = (35, 60, 80)

    def _run_scenario(self, tv):
        home = make_home(tv, MicrowaveOven("Oven"))
        pda = Pda("meter", home.scheduler)
        pda.connect(home.proxy)
        home.proxy.select_output("meter")
        home.settle()
        bytes_seen = [pda.link_stats.bytes_received]
        guid8 = tv.guid[:8]
        power = home.window.root.find(f"{guid8}.tuner.power")
        power.toggle()
        home.settle()
        bytes_seen.append(pda.link_stats.bytes_received)
        for volume in self.SCENARIO_VOLUMES:
            slider = home.window.root.find(f"{guid8}.tuner.volume")
            assert isinstance(slider, Slider)
            slider._set_and_notify(volume)
            home.settle()
            bytes_seen.append(pda.link_stats.bytes_received)
        return bytes_seen

    def test_panel_churn_bytes_identical_to_direct_dispatch(
            self, monkeypatch):
        spine_bytes = self._run_scenario(Television("TV"))

        def direct_command(self, opcode, payload=None, on_reply=None,
                           origin="api"):
            # the pre-spine FcmHandle.command, verbatim: straight to
            # send_request, errors recorded, nothing tracked
            self.commands_sent += 1

            def handle_reply(message):
                if message.status != "SUCCESS":
                    detail = message.payload.get("detail", "")
                    error = f"{opcode}: {message.status} {detail}".strip()
                    self.errors.append(error)
                if on_reply is not None:
                    on_reply(message)

            self.app.send_request(self.seid, opcode, payload or {},
                                  on_reply=handle_reply)

        monkeypatch.setattr(FcmHandle, "command", direct_command)
        direct_bytes = self._run_scenario(Television("TV"))
        assert spine_bytes == direct_bytes
        # the scenario actually shipped frames at every step
        assert all(b > 0 for b in spine_bytes)
        assert spine_bytes == sorted(spine_bytes)

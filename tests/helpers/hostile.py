"""Reusable hostile-environment shims for property tests.

:class:`HostileSocket` is the hypothesis-driven syscall shim the
transport property suite pioneered: it wraps a real socket and injects
EINTR and partial writes at RNG-chosen points, pinning the pump loops'
liveness no matter where the kernel "fails".  The fault-injection
property suite reuses it alongside the deterministic, schedule-driven
:class:`repro.net.faults.FaultySocket`.

``split_points`` / ``partition`` are the stream re-segmentation
primitives for split-point-invariance properties: a byte stream has no
message boundaries, so any partition of it must decode identically.
"""

from hypothesis import strategies as st


def split_points(data_len):
    """Strategy: sorted cut positions partitioning a byte stream."""
    return st.lists(st.integers(0, data_len), max_size=12).map(sorted)


def partition(data, cuts):
    """Split ``data`` at the given sorted cut offsets."""
    chunks = []
    last = 0
    for cut in [*cuts, len(data)]:
        chunks.append(data[last:cut])
        last = cut
    return chunks


class HostileSocket:
    """Syscall shim: injects EINTR and partial writes around a real socket.

    ``sendmsg`` may raise :class:`InterruptedError` or truncate the iovec
    to an arbitrary byte prefix before handing it to the kernel; ``recv``
    may raise :class:`InterruptedError`.  Everything else passes through.
    """

    def __init__(self, real, rng):
        self._real = real
        self._rng = rng

    def sendmsg(self, iov):
        roll = self._rng.random()
        if roll < 0.25:
            raise InterruptedError(4, "sendmsg interrupted")
        total = sum(len(c) for c in iov)
        if roll < 0.6 and total > 1:
            cap = self._rng.randrange(1, total)
            clipped, left = [], cap
            for chunk in iov:
                part = chunk[:left]
                clipped.append(part)
                left -= len(part)
                if left == 0:
                    break
            return self._real.sendmsg(clipped)
        return self._real.sendmsg(iov)

    def recv(self, n):
        if self._rng.random() < 0.25:
            raise InterruptedError(4, "recv interrupted")
        return self._real.recv(n)

    def __getattr__(self, name):
        return getattr(self._real, name)

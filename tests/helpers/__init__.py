"""Shared test helpers (importable as ``tests.helpers``).

Requires ``pythonpath = .`` in pytest.ini so the repo root is on
``sys.path`` during collection.
"""

from tests.helpers.hostile import HostileSocket, partition, split_points

__all__ = ["HostileSocket", "partition", "split_points"]

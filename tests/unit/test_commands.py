"""Unit tests for the command spine (repro.app.commands) and the
messaging-layer guards underneath it (timeouts, EGONE synthesis)."""

from pathlib import Path

import pytest

from repro.app import FcmHandle
from repro.app.commands import (
    Command,
    CommandError,
    CommandLog,
    CommandSpine,
    CommandState,
    TERMINAL_STATES,
    coalescible,
)
from repro.havi import HomeNetwork, SEID, SoftwareElement
from repro.havi.messaging import MessageSystem, MessageType
from repro.util import Scheduler
from repro.util.ids import guid_from_seed


class Responder(SoftwareElement):
    """Scriptable request target: replies SUCCESS/failure, or never."""

    def __init__(self, seid, messaging, mode="ok"):
        super().__init__(seid, messaging)
        self.mode = mode
        self.received = []

    def handle_request(self, message):
        self.received.append((message.opcode, dict(message.payload)))
        if self.mode == "ok":
            self.reply(message, {"echo": message.opcode})
        elif self.mode == "fail":
            self.reply(message, {"detail": "scripted failure"},
                       status="EFAIL")
        # "silent": never reply — the timeout guard must recover


def rig(mode="ok"):
    scheduler = Scheduler()
    messaging = MessageSystem(scheduler)
    requester = SoftwareElement(SEID(guid_from_seed("req"), 0), messaging)
    requester.attach()
    responder = Responder(SEID(guid_from_seed("resp"), 1), messaging,
                          mode=mode)
    responder.attach()
    spine = CommandSpine(requester)
    return scheduler, messaging, requester, responder, spine


class TestCommandLifecycle:
    def test_success_path(self):
        scheduler, _, _, responder, spine = rig()
        command = spine.submit(responder.seid, "power.set", {"on": True},
                               origin="api")
        assert command.state is CommandState.INFLIGHT
        assert not command.done
        scheduler.run_until_idle()
        assert command.state is CommandState.DONE
        assert command.ok
        assert command.status == "SUCCESS"
        assert command.result == {"echo": "power.set"}
        assert command.latency_s is not None and command.latency_s > 0

    def test_failure_path(self):
        scheduler, _, _, responder, spine = rig(mode="fail")
        command = spine.submit(responder.seid, "power.set", {"on": True})
        scheduler.run_until_idle()
        assert command.state is CommandState.FAILED
        assert command.status == "EFAIL"
        assert command.detail == "scripted failure"

    def test_timeout_on_virtual_clock(self):
        scheduler, messaging, _, responder, spine = rig(mode="silent")
        command = spine.submit(responder.seid, "power.set", {"on": True},
                               timeout_s=1.5)
        scheduler.run_until_idle()
        assert command.state is CommandState.TIMED_OUT
        assert command.status == "ETIMEOUT"
        assert command.latency_s == pytest.approx(1.5)
        assert messaging.requests_timed_out == 1
        assert not messaging._pending  # no leaked entry

    def test_reply_cancels_timer_without_dragging_clock(self):
        scheduler, _, _, responder, spine = rig()
        spine.submit(responder.seid, "power.set", {"on": True})
        scheduler.run_until_idle()
        # the 2 s guard timer must be cancelled, not fired: settling may
        # not fast-forward the home by the timeout
        assert scheduler.now() < 0.01

    def test_terminal_exactly_once(self):
        scheduler, _, _, responder, spine = rig()
        command = spine.submit(responder.seid, "power.set", {"on": True})
        scheduler.run_until_idle()
        assert command.state in TERMINAL_STATES
        with pytest.raises(CommandError):
            command._finish(CommandState.DONE, 0.0)

    def test_on_done_fires_late_subscriber_immediately(self):
        scheduler, _, _, responder, spine = rig()
        command = spine.submit(responder.seid, "power.set", {"on": True})
        seen = []
        command.on_done(lambda c: seen.append(c.state))
        scheduler.run_until_idle()
        command.on_done(lambda c: seen.append("late"))
        assert seen == [CommandState.DONE, "late"]


class TestCoalescing:
    def test_set_writes_coalesce_last_wins(self):
        scheduler, _, _, responder, spine = rig()
        first = spine.submit(responder.seid, "volume.set", {"volume": 10})
        second = spine.submit(responder.seid, "volume.set", {"volume": 20})
        third = spine.submit(responder.seid, "volume.set", {"volume": 30})
        assert first.state is CommandState.INFLIGHT
        assert second.state is CommandState.SUPERSEDED
        assert second.superseded_by == third.command_id
        assert third.state is CommandState.QUEUED
        scheduler.run_until_idle()
        assert first.ok and third.ok
        # the middle write never hit the wire
        assert [p for _, p in responder.received] == [
            {"volume": 10}, {"volume": 30}]
        assert spine.coalesced == 1
        assert spine.dispatched == 2

    def test_superseded_never_fires_on_reply(self):
        scheduler, _, _, responder, spine = rig()
        replies = []
        spine.submit(responder.seid, "volume.set", {"volume": 1})
        spine.submit(responder.seid, "volume.set", {"volume": 2},
                     on_reply=replies.append)
        spine.submit(responder.seid, "volume.set", {"volume": 3})
        scheduler.run_until_idle()
        assert replies == []

    def test_non_idempotent_opcodes_bypass_coalescing(self):
        scheduler, _, _, responder, spine = rig()
        assert not coalescible("timer.add")
        for _ in range(3):
            spine.submit(responder.seid, "timer.add", {"seconds": 30})
        scheduler.run_until_idle()
        # all three adds reach the appliance — 3 x 30 s, never 1 x 30 s
        assert len(responder.received) == 3
        assert spine.dispatched == 3
        assert spine.coalesced == 0

    def test_lanes_drain(self):
        scheduler, _, _, responder, spine = rig()
        spine.submit(responder.seid, "volume.set", {"volume": 1})
        spine.submit(responder.seid, "volume.set", {"volume": 2})
        assert spine.inflight_count == 2
        scheduler.run_until_idle()
        assert spine.inflight_count == 0
        assert spine.inflight_for(responder.seid) == []


class TestCommandLog:
    def test_ring_rotation_keeps_counters(self):
        scheduler, _, _, responder, spine = rig()
        log = spine.log
        log2 = CommandLog(capacity=4)
        spine.log = log2
        for i in range(10):
            spine.submit(responder.seid, "timer.add", {"n": i})
        scheduler.run_until_idle()
        assert len(log2) == 4
        assert log2.submitted == 10
        assert log2.terminal["done"] == 10

    def test_terminal_states_partition(self):
        scheduler, _, _, responder, spine = rig()
        spine.submit(responder.seid, "volume.set", {"volume": 1})
        spine.submit(responder.seid, "volume.set", {"volume": 2})
        spine.submit(responder.seid, "volume.set", {"volume": 3})
        spine.submit(responder.seid, "timer.add", {"seconds": 5})
        scheduler.run_until_idle()
        stats = spine.log.stats()
        assert sum(stats["terminal"].values()) == stats["submitted"] == 4
        assert stats["terminal"]["superseded"] == 1

    def test_journal_filters_by_origin(self):
        scheduler, _, _, responder, spine = rig()
        spine.submit(responder.seid, "a.op", origin="widget")
        spine.submit(responder.seid, "b.op", origin="voice")
        scheduler.run_until_idle()
        assert [c.opcode for c in spine.log.journal(origin="voice")] \
            == ["b.op"]
        assert spine.log.stats()["by_origin"] == {"widget": 1, "voice": 1}


class TestMessagingGuards:
    """Satellite: the pending-reply leak and its synthesized failures."""

    def test_destination_unregister_synthesizes_egone(self):
        scheduler = Scheduler()
        messaging = MessageSystem(scheduler)
        requester = SoftwareElement(SEID(guid_from_seed("r"), 0), messaging)
        requester.attach()
        target = Responder(SEID(guid_from_seed("t"), 1), messaging,
                           mode="silent")
        target.attach()
        replies = []
        requester.send_request(target.seid, "power.set", {"on": True},
                               on_reply=replies.append)
        scheduler.run_until_idle()
        assert replies == []          # silent target: still pending
        assert messaging._pending     # the would-be leak
        target.detach()
        scheduler.run_until_idle()
        assert [m.status for m in replies] == ["EGONE"]
        assert replies[0].opcode == "power.set"
        assert messaging.replies_synthesized == 1
        assert not messaging._pending  # regression: no strand

    def test_egone_reply_reaches_spine_as_failed(self):
        scheduler, _, _, responder, spine = rig(mode="silent")
        command = spine.submit(responder.seid, "power.set", {"on": True})
        scheduler.run_until(0.001)  # request delivered, no reply yet
        assert responder.received
        responder.detach()  # unplugged mid-flight, before any reply
        scheduler.run_until_idle()
        assert command.state is CommandState.FAILED
        assert command.status == "EGONE"

    def test_requester_unregister_cancels_timers(self):
        scheduler = Scheduler()
        messaging = MessageSystem(scheduler)
        requester = SoftwareElement(SEID(guid_from_seed("r"), 0), messaging)
        requester.attach()
        target = Responder(SEID(guid_from_seed("t"), 1), messaging,
                           mode="silent")
        target.attach()
        requester.send_request(target.seid, "x.op", on_reply=lambda m: None,
                               timeout_s=5.0)
        requester.detach()
        scheduler.run_until_idle()
        assert not messaging._pending
        assert scheduler.now() < 0.01  # cancelled timer didn't fire/drag
        assert messaging.requests_timed_out == 0


class TestFcmHandleErrors:
    """Satellite: bounded error history + totals on the handle."""

    def make_handle(self, mode="fail"):
        scheduler, messaging, requester, responder, spine = rig(mode=mode)
        handle = FcmHandle(requester, responder.seid, {
            "fcm.type": "tuner",
            "device.guid": guid_from_seed("resp"),
            "device.name": "T",
            "device.class": "tv",
        }, spine=spine)
        return scheduler, handle

    def test_errors_capped_total_keeps_counting(self):
        from repro.app.handles import ERRORS_KEPT
        scheduler, handle = self.make_handle()
        for i in range(ERRORS_KEPT + 8):
            handle.command("op.fail", {"i": i})
        scheduler.run_until_idle()
        assert len(handle.errors) == ERRORS_KEPT
        assert handle.errors_total == ERRORS_KEPT + 8
        assert handle.commands_sent == ERRORS_KEPT + 8

    def test_command_returns_tracked_command(self):
        scheduler, handle = self.make_handle(mode="ok")
        command = handle.command("power.set", {"on": True},
                                 origin="widget")
        assert isinstance(command, Command)
        scheduler.run_until_idle()
        assert command.ok
        assert command.origin == "widget"
        assert handle.command_stats()["commands_sent"] == 1
        assert handle.command_stats()["errors_total"] == 0


class TestNoDirectActuation:
    def test_no_send_request_actuation_outside_spine(self):
        """Acceptance guard: the spine is the ONLY place that turns an
        actuation into a bus request.  ``.send_request(`` may appear only
        in the spine's dispatch and in the SoftwareElement/MessageSystem
        plumbing that defines it."""
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        allowed = {
            src / "app" / "commands.py",    # the spine's single dispatch
            src / "havi" / "element.py",    # definition/delegation
        }
        offenders = []
        for path in src.rglob("*.py"):
            if path in allowed:
                continue
            if ".send_request(" in path.read_text():
                offenders.append(str(path.relative_to(src)))
        assert offenders == []

"""Unit tests for the widget toolkit."""

import pytest

from repro.graphics import Rect
from repro.toolkit import (
    Button,
    Column,
    DEFAULT_THEME,
    Grid,
    KeyPress,
    Label,
    ListBox,
    Panel,
    Pointer,
    PointerKind,
    ProgressBar,
    Row,
    Slider,
    Spacer,
    TabPanel,
    ToggleButton,
    UIWindow,
    Widget,
)
from repro.uip import keysyms
from repro.util.errors import ToolkitError


def make_window(width=200, height=150):
    return UIWindow(width, height, title="test")


class TestWidgetTree:
    def test_add_remove(self):
        parent = Column()
        child = Label("x")
        parent.add(child)
        assert child.parent is parent
        parent.remove(child)
        assert child.parent is None
        assert parent.children == []

    def test_double_parent_rejected(self):
        a, b = Column(), Column()
        child = Label("x")
        a.add(child)
        with pytest.raises(ToolkitError):
            b.add(child)

    def test_self_add_rejected(self):
        col = Column()
        with pytest.raises(ToolkitError):
            col.add(col)

    def test_remove_non_child_rejected(self):
        with pytest.raises(ToolkitError):
            Column().remove(Label("x"))

    def test_walk_preorder(self):
        root = Column()
        a = root.add(Row())
        b = a.add(Label("b"))
        c = root.add(Label("c"))
        assert list(root.walk()) == [root, a, b, c]

    def test_find_by_id(self):
        root = Column()
        child = root.add(Label("x"))
        child.widget_id = "power"
        assert root.find("power") is child
        assert root.find("missing") is None

    def test_abs_rect(self):
        root = Column()
        inner = root.add(Column())
        leaf = inner.add(Label("x"))
        root.rect = Rect(10, 10, 100, 100)
        inner.rect = Rect(5, 5, 50, 50)
        leaf.rect = Rect(2, 3, 10, 10)
        assert leaf.abs_rect() == Rect(17, 18, 10, 10)

    def test_window_lookup(self):
        window = make_window()
        root = Column()
        leaf = root.add(Label("x"))
        window.set_root(root)
        assert leaf.window is window


class TestLayout:
    def test_column_stacks_vertically(self):
        window = make_window()
        col = Column(padding=0, spacing=0)
        a = col.add(Button("A"))
        b = col.add(Button("B"))
        window.set_root(col)
        assert a.rect.y == 0
        assert b.rect.y == a.rect.h
        assert a.rect.w == window.bitmap.width

    def test_row_stacks_horizontally(self):
        window = make_window()
        row = Row(padding=0, spacing=0)
        a = row.add(Button("A"))
        b = row.add(Button("BB"))
        window.set_root(row)
        assert b.rect.x == a.rect.w
        assert a.rect.h == window.bitmap.height

    def test_spacing_and_padding(self):
        window = make_window()
        col = Column(padding=7, spacing=3)
        a = col.add(Button("A"))
        b = col.add(Button("B"))
        window.set_root(col)
        assert a.rect.x == 7
        assert a.rect.y == 7
        assert b.rect.y == a.rect.y2 + 3

    def test_stretch_absorbs_leftover(self):
        window = make_window(200, 200)
        col = Column(padding=0, spacing=0)
        a = col.add(Button("A"))
        spacer = col.add(Spacer())
        b = col.add(Button("B"))
        window.set_root(col)
        assert b.rect.y2 == 200
        assert spacer.rect.h == 200 - a.rect.h - b.rect.h

    def test_stretch_shares_proportionally(self):
        window = make_window(100, 100)
        row = Row(padding=0, spacing=0)
        a = row.add(Spacer(stretch=1))
        b = row.add(Spacer(stretch=3))
        window.set_root(row)
        assert a.rect.w + b.rect.w == 100
        assert b.rect.w == pytest.approx(3 * a.rect.w, abs=2)

    def test_hidden_children_skipped(self):
        window = make_window()
        col = Column(padding=0, spacing=0)
        a = col.add(Button("A"))
        a.visible = False
        b = col.add(Button("B"))
        window.set_root(col)
        assert b.rect.y == 0

    def test_grid_places_cells(self):
        window = make_window(220, 150)
        grid = Grid(columns=3, padding=0, spacing=0)
        buttons = [grid.add(Button(str(i))) for i in range(7)]
        window.set_root(grid)
        assert buttons[0].rect.y == buttons[2].rect.y
        assert buttons[3].rect.y > buttons[0].rect.y
        assert buttons[6].rect.y > buttons[3].rect.y
        assert buttons[1].rect.x > buttons[0].rect.x

    def test_grid_needs_columns(self):
        with pytest.raises(ToolkitError):
            Grid(columns=0)

    def test_preferred_size_aggregates(self):
        col = Column(padding=2, spacing=1)
        col.add(Button("A"))
        col.add(Button("B"))
        w, h = col.preferred_size(DEFAULT_THEME)
        bw, bh = Button("A").preferred_size(DEFAULT_THEME)
        assert h == 2 * bh + 1 + 4
        assert w >= bw


class TestRendering:
    def test_initial_render_covers_window(self):
        window = make_window()
        window.set_root(Column())
        region = window.render()
        assert region.bounds() == window.bitmap.bounds

    def test_render_clears_damage(self):
        window = make_window()
        window.set_root(Column())
        window.render()
        assert window.render().is_empty

    def test_invalidate_damages_widget_rect(self):
        window = make_window()
        col = Column(padding=0, spacing=0)
        button = col.add(Button("A"))
        window.set_root(col)
        window.render()
        button.invalidate()
        region = window.render()
        assert region.bounds() == button.abs_rect()

    def test_label_text_change_repaints(self):
        window = make_window()
        col = Column()
        label = col.add(Label("before"))
        window.set_root(col)
        window.render()
        before = window.bitmap.copy()
        label.text = "AFTER!"
        window.render()
        assert window.bitmap != before

    def test_resize_recreates_bitmap(self):
        window = make_window(100, 100)
        window.set_root(Column())
        window.render()
        window.resize(150, 80)
        assert window.bitmap.size == (150, 80)
        assert window.render().bounds() == window.bitmap.bounds

    def test_painting_stays_inside_widget(self):
        window = make_window(100, 100)
        col = Column(padding=0, spacing=0)
        col.add(Button("A"))
        col.add(Spacer())
        window.set_root(col)
        window.render()
        # bottom area is untouched background
        assert window.bitmap.get_pixel(50, 99) == DEFAULT_THEME.background


class TestButton:
    def test_click_activates(self):
        window = make_window()
        clicks = []
        col = Column(padding=0, spacing=0)
        button = col.add(Button("Go", on_click=lambda w: clicks.append(w)))
        window.set_root(col)
        center = button.abs_rect().center
        window.click(*center)
        assert clicks == [button]

    def test_press_then_release_outside_does_not_activate(self):
        window = make_window()
        clicks = []
        col = Column(padding=0, spacing=0)
        button = col.add(Button("Go", on_click=lambda w: clicks.append(w)))
        col.add(Spacer())
        window.set_root(col)
        cx, cy = button.abs_rect().center
        window.dispatch_pointer(Pointer(PointerKind.DOWN, cx, cy, 1))
        window.dispatch_pointer(Pointer(PointerKind.UP, cx, 140, 0))
        assert clicks == []
        assert button.pressed is False

    def test_return_key_activates_focused(self):
        window = make_window()
        clicks = []
        col = Column()
        button = col.add(Button("Go", on_click=lambda w: clicks.append(1)))
        window.set_root(col)
        assert window.focus is button
        window.press_key(keysyms.RETURN)
        assert clicks == [1]

    def test_disabled_button_ignores_click(self):
        window = make_window()
        clicks = []
        col = Column(padding=0, spacing=0)
        button = col.add(Button("Go", on_click=lambda w: clicks.append(1)))
        button.enabled = False
        window.set_root(col)
        window.click(*button.abs_rect().center)
        assert clicks == []


class TestToggle:
    def test_click_toggles(self):
        window = make_window()
        changes = []
        col = Column(padding=0, spacing=0)
        toggle = col.add(ToggleButton("Power",
                                      on_change=lambda w: changes.append(
                                          w.value)))
        window.set_root(col)
        window.click(*toggle.abs_rect().center)
        window.click(*toggle.abs_rect().center)
        assert changes == [True, False]

    def test_space_toggles(self):
        window = make_window()
        col = Column()
        toggle = col.add(ToggleButton("Power"))
        window.set_root(col)
        window.press_key(keysyms.SPACE)
        assert toggle.value is True

    def test_setter_does_not_fire_callback(self):
        changes = []
        toggle = ToggleButton("P", on_change=lambda w: changes.append(1))
        toggle.value = True
        assert changes == []
        assert toggle.value is True


class TestSlider:
    def test_range_validation(self):
        with pytest.raises(ToolkitError):
            Slider(minimum=5, maximum=5)
        with pytest.raises(ToolkitError):
            Slider(step=0)

    def test_arrow_keys_step(self):
        window = make_window()
        values = []
        col = Column()
        slider = col.add(Slider(0, 10, value=5,
                                on_change=lambda w: values.append(w.value)))
        window.set_root(col)
        window.press_key(keysyms.RIGHT)
        window.press_key(keysyms.LEFT)
        window.press_key(keysyms.LEFT)
        assert values == [6, 5, 4]

    def test_home_end(self):
        window = make_window()
        col = Column()
        slider = col.add(Slider(0, 50, value=25))
        window.set_root(col)
        window.press_key(keysyms.END)
        assert slider.value == 50
        window.press_key(keysyms.HOME)
        assert slider.value == 0

    def test_value_clamped(self):
        slider = Slider(0, 10, value=99)
        assert slider.value == 10
        slider.value = -5
        assert slider.value == 0

    def test_pointer_drag_sets_value(self):
        window = make_window()
        col = Column(padding=0, spacing=0)
        slider = col.add(Slider(0, 100, value=0))
        window.set_root(col)
        rect = slider.abs_rect()
        window.dispatch_pointer(
            Pointer(PointerKind.DOWN, rect.x2 - 5, rect.center[1], 1))
        assert slider.value > 80
        window.dispatch_pointer(
            Pointer(PointerKind.MOVE, rect.x + 5, rect.center[1], 1))
        assert slider.value < 20
        window.dispatch_pointer(
            Pointer(PointerKind.UP, rect.x + 5, rect.center[1], 0))


class TestProgressBar:
    def test_clamping(self):
        bar = ProgressBar(0, 10, value=20)
        assert bar.value == 10

    def test_range_validation(self):
        with pytest.raises(ToolkitError):
            ProgressBar(3, 3)


class TestListBox:
    def test_selection_keys(self):
        window = make_window()
        selections = []
        col = Column()
        listbox = col.add(ListBox(["a", "b", "c"],
                                  on_select=lambda w: selections.append(
                                      w.selected_item)))
        window.set_root(col)
        window.press_key(keysyms.DOWN)
        window.press_key(keysyms.DOWN)
        window.press_key(keysyms.UP)
        assert selections == ["b", "c", "b"]

    def test_selection_clamped(self):
        window = make_window()
        col = Column()
        listbox = col.add(ListBox(["a", "b"]))
        window.set_root(col)
        window.press_key(keysyms.UP)
        assert listbox.selected == 0
        for _ in range(5):
            window.press_key(keysyms.DOWN)
        assert listbox.selected == 1

    def test_set_items_resets(self):
        listbox = ListBox(["a", "b"])
        listbox.selected = 1
        listbox.set_items(["x"])
        assert listbox.selected == 0
        assert listbox.selected_item == "x"

    def test_empty_list(self):
        listbox = ListBox()
        assert listbox.selected_item is None

    def test_click_selects_row(self):
        window = make_window()
        col = Column(padding=0, spacing=0)
        listbox = col.add(ListBox(["a", "b", "c"]))
        window.set_root(col)
        rect = listbox.abs_rect()
        row_h = listbox._row_height(DEFAULT_THEME)
        window.click(rect.x + 5, rect.y + 2 + row_h + row_h // 2)
        assert listbox.selected_item == "b"


class TestTabPanel:
    def _tabbed_window(self):
        window = make_window(300, 200)
        tabs = TabPanel()
        page_a = Column()
        page_a.add(Button("A1"))
        page_b = Column()
        page_b.add(Button("B1"))
        tabs.add_page("TV", page_a)
        tabs.add_page("VCR", page_b)
        root = Column(padding=0, spacing=0)
        root.add(tabs)
        window.set_root(root)
        return window, tabs

    def test_only_active_page_visible(self):
        window, tabs = self._tabbed_window()
        assert tabs.children[0].visible is True
        assert tabs.children[1].visible is False
        tabs.set_active(1)
        assert tabs.children[0].visible is False
        assert tabs.children[1].visible is True

    def test_arrow_keys_switch(self):
        window, tabs = self._tabbed_window()
        tabs.request_focus()
        window.press_key(keysyms.RIGHT)
        assert tabs.active == 1
        window.press_key(keysyms.LEFT)
        assert tabs.active == 0

    def test_click_tab_switches(self):
        window, tabs = self._tabbed_window()
        rect = tabs.abs_rect()
        tab_w = tabs._tab_width(DEFAULT_THEME)
        window.click(rect.x + tab_w + 5, rect.y + 5)
        assert tabs.active == 1

    def test_remove_page(self):
        window, tabs = self._tabbed_window()
        tabs.set_active(1)
        tabs.remove_page(1)
        assert tabs.titles == ["TV"]
        assert tabs.active == 0

    def test_remove_bad_page(self):
        window, tabs = self._tabbed_window()
        with pytest.raises(ToolkitError):
            tabs.remove_page(5)

    def test_tab_change_callback(self):
        window, tabs = self._tabbed_window()
        seen = []
        tabs.on_tab_change = seen.append
        tabs.set_active(1)
        tabs.set_active(1)  # no-op, no callback
        assert seen == [1]

    def test_focus_skips_hidden_page_widgets(self):
        window, tabs = self._tabbed_window()
        focusables = window._focus_order()
        # page B's button is hidden; only tab panel + page A button
        names = [type(w).__name__ for w in focusables]
        assert names.count("Button") == 1


class TestFocusTraversal:
    def test_tab_cycles_focus(self):
        window = make_window()
        col = Column()
        a = col.add(Button("A"))
        b = col.add(Button("B"))
        c = col.add(Button("C"))
        window.set_root(col)
        assert window.focus is a
        window.press_key(keysyms.TAB)
        assert window.focus is b
        window.press_key(keysyms.TAB)
        assert window.focus is c
        window.press_key(keysyms.TAB)
        assert window.focus is a

    def test_shift_tab_reverses(self):
        window = make_window()
        col = Column()
        a = col.add(Button("A"))
        b = col.add(Button("B"))
        window.set_root(col)
        window.dispatch_key_event(keysyms.SHIFT_L, True)
        window.dispatch_key_event(keysyms.TAB, True)
        window.dispatch_key_event(keysyms.TAB, False)
        window.dispatch_key_event(keysyms.SHIFT_L, False)
        assert window.focus is b  # wrapped backwards from a

    def test_disabled_widgets_skipped(self):
        window = make_window()
        col = Column()
        a = col.add(Button("A"))
        b = col.add(Button("B"))
        b.enabled = False
        c = col.add(Button("C"))
        window.set_root(col)
        window.press_key(keysyms.TAB)
        assert window.focus is c

    def test_removing_focused_widget_clears_focus(self):
        window = make_window()
        col = Column()
        a = col.add(Button("A"))
        window.set_root(col)
        assert window.focus is a
        col.remove(a)
        assert window.focus is None

    def test_focus_follows_click(self):
        window = make_window()
        col = Column(padding=0, spacing=0)
        a = col.add(Button("A"))
        b = col.add(Button("B"))
        window.set_root(col)
        window.click(*b.abs_rect().center)
        assert window.focus is b

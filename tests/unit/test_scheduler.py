"""Unit tests for the virtual-time scheduler and clocks."""

import pytest

from repro.util import Scheduler, SchedulerError, VirtualClock
from repro.util.clock import MonotonicClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(10.0).now() == 10.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(1.5)
        assert clock.now() == 1.5

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_cannot_move_backward(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestMonotonicClock:
    def test_starts_near_zero_and_increases(self):
        clock = MonotonicClock()
        first = clock.now()
        assert first >= 0.0
        assert clock.now() >= first


class TestScheduler:
    def test_events_fire_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.call_later(0.3, order.append, "c")
        sched.call_later(0.1, order.append, "a")
        sched.call_later(0.2, order.append, "b")
        sched.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self):
        sched = Scheduler()
        order = []
        for tag in "abcde":
            sched.call_at(1.0, order.append, tag)
        sched.run_until_idle()
        assert order == list("abcde")

    def test_clock_advances_to_last_event(self):
        sched = Scheduler()
        sched.call_later(2.5, lambda: None)
        sched.run_until_idle()
        assert sched.now() == 2.5

    def test_call_soon_runs_at_current_time(self):
        sched = Scheduler()
        times = []
        sched.call_later(1.0, lambda: sched.call_soon(
            lambda: times.append(sched.now())))
        sched.run_until_idle()
        assert times == [1.0]

    def test_cancel_prevents_firing(self):
        sched = Scheduler()
        fired = []
        event = sched.call_later(1.0, fired.append, "x")
        event.cancel()
        sched.run_until_idle()
        assert fired == []

    def test_cancel_twice_is_harmless(self):
        sched = Scheduler()
        event = sched.call_later(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sched.run_until_idle() == 0

    def test_scheduling_in_past_rejected(self):
        sched = Scheduler()
        sched.call_later(1.0, lambda: None)
        sched.run_until_idle()
        with pytest.raises(SchedulerError):
            sched.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulerError):
            Scheduler().call_later(-0.1, lambda: None)

    def test_events_can_schedule_events(self):
        sched = Scheduler()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 5:
                sched.call_later(0.1, chain, n + 1)

        sched.call_soon(chain, 1)
        sched.run_until_idle()
        assert seen == [1, 2, 3, 4, 5]
        assert sched.now() == pytest.approx(0.4)

    def test_run_until_stops_at_deadline(self):
        sched = Scheduler()
        fired = []
        sched.call_later(1.0, fired.append, "early")
        sched.call_later(5.0, fired.append, "late")
        count = sched.run_until(2.0)
        assert count == 1
        assert fired == ["early"]
        assert sched.now() == 2.0

    def test_run_until_then_idle_fires_remaining(self):
        sched = Scheduler()
        fired = []
        sched.call_later(5.0, fired.append, "late")
        sched.run_until(2.0)
        sched.run_until_idle()
        assert fired == ["late"]

    def test_run_for_advances_relative(self):
        sched = Scheduler()
        sched.run_for(1.0)
        sched.run_for(1.0)
        assert sched.now() == 2.0

    def test_run_until_rejects_past_deadline(self):
        sched = Scheduler()
        sched.run_for(2.0)
        with pytest.raises(SchedulerError):
            sched.run_until(1.0)

    def test_runaway_loop_detected(self):
        sched = Scheduler()

        def forever():
            sched.call_soon(forever)

        sched.call_soon(forever)
        with pytest.raises(SchedulerError):
            sched.run_until_idle(max_events=100)

    def test_pending_count_excludes_cancelled(self):
        sched = Scheduler()
        sched.call_later(1.0, lambda: None)
        event = sched.call_later(2.0, lambda: None)
        event.cancel()
        assert sched.pending_count() == 1

    def test_cancel_heavy_churn_keeps_heap_bounded(self):
        """Backpressure-style timer churn: schedule+cancel in a tight loop.

        Cancelled entries must not accumulate in the heap until popped —
        the scheduler compacts once more than half the heap is dead.
        """
        sched = Scheduler()
        keepers = [sched.call_later(10.0 + i, lambda: None)
                   for i in range(10)]
        for i in range(10_000):
            sched.call_later(1.0 + i * 1e-4, lambda: None).cancel()
        # without compaction the heap would hold ~10_010 entries
        assert len(sched._queue) < 2 * len(keepers) + Scheduler.COMPACT_MIN_SIZE
        assert sched.pending_count() == len(keepers)
        assert sched._compactions > 0
        assert sched.run_until_idle() == len(keepers)
        assert sched.pending_count() == 0

    def test_compaction_preserves_fifo_order(self):
        sched = Scheduler()
        order = []
        survivors = []
        for i in range(200):
            event = sched.call_at(1.0, order.append, i)
            if i % 7 == 0:
                survivors.append(i)
            else:
                event.cancel()
        assert sched._compactions > 0
        sched.run_until_idle()
        assert order == survivors

    def test_cancel_after_fire_does_not_corrupt_accounting(self):
        sched = Scheduler()
        event = sched.call_later(1.0, lambda: None)
        sched.call_later(2.0, lambda: None)
        sched.run_until_idle()
        event.cancel()       # already fired: must not touch the counter
        event.cancel()       # and cancelling twice stays harmless
        sched.call_later(3.0, lambda: None)
        assert sched.pending_count() == 1

    def test_cancel_inside_callback_is_safe(self):
        sched = Scheduler()
        fired = []
        later = sched.call_later(2.0, fired.append, "later")

        def fire_and_cancel():
            fired.append("first")
            later.cancel()

        sched.call_later(1.0, fire_and_cancel)
        sched.run_until_idle()
        assert fired == ["first"]
        assert sched.pending_count() == 0

    def test_fired_count(self):
        sched = Scheduler()
        for _ in range(3):
            sched.call_later(1.0, lambda: None)
        sched.run_until_idle()
        assert sched.fired_count == 3

    def test_step_returns_false_when_empty(self):
        assert Scheduler().step() is False

    def test_args_passed_to_callback(self):
        sched = Scheduler()
        result = []
        sched.call_soon(lambda a, b: result.append(a + b), 2, 3)
        sched.run_until_idle()
        assert result == [5]

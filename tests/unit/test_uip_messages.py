"""Unit tests for UIP messages, stream decoders and the handshake."""

import numpy as np
import pytest

from repro.graphics import RGB565, RGB888, Bitmap, PixelFormat, Rect
from repro.uip import (
    Bell,
    ClientCutText,
    ClientHandshake,
    ClientMessageDecoder,
    DESKTOP_SIZE,
    DecoderState,
    EncoderState,
    FramebufferUpdate,
    FramebufferUpdateRequest,
    HEXTILE,
    KeyEvent,
    PointerEvent,
    PROTOCOL_VERSION,
    RAW,
    RRE,
    RectUpdate,
    ServerCutText,
    ServerHandshake,
    ServerMessageDecoder,
    SetEncodings,
    SetPixelFormat,
    ZLIB,
    keysyms,
)
from repro.util.errors import ProtocolError


class TestClientMessages:
    def decode_one(self, data):
        decoder = ClientMessageDecoder()
        messages = decoder.feed(data)
        assert len(messages) == 1
        assert decoder.buffered_bytes == 0
        return messages[0]

    def test_set_pixel_format(self):
        msg = SetPixelFormat(RGB565)
        assert self.decode_one(msg.encode()) == msg

    def test_set_encodings(self):
        msg = SetEncodings((HEXTILE, RRE, RAW, DESKTOP_SIZE))
        assert self.decode_one(msg.encode()) == msg

    def test_framebuffer_update_request(self):
        msg = FramebufferUpdateRequest(True, Rect(10, 20, 300, 400))
        assert self.decode_one(msg.encode()) == msg

    def test_key_event(self):
        msg = KeyEvent(True, keysyms.RETURN)
        assert self.decode_one(msg.encode()) == msg

    def test_pointer_event(self):
        msg = PointerEvent(keysyms.BUTTON_LEFT, 123, 456)
        assert self.decode_one(msg.encode()) == msg

    def test_client_cut_text(self):
        msg = ClientCutText("hello appliances")
        assert self.decode_one(msg.encode()) == msg

    def test_stream_reassembly_byte_by_byte(self):
        messages = [KeyEvent(True, ord("a")), PointerEvent(0, 1, 2),
                    SetEncodings((RAW,))]
        stream = b"".join(m.encode() for m in messages)
        decoder = ClientMessageDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i:i + 1]))
        assert out == messages

    def test_multiple_messages_one_chunk(self):
        messages = [KeyEvent(True, 5), KeyEvent(False, 5), Bell]
        stream = KeyEvent(True, 5).encode() + KeyEvent(False, 5).encode()
        out = ClientMessageDecoder().feed(stream)
        assert out == [KeyEvent(True, 5), KeyEvent(False, 5)]

    def test_unknown_type_raises(self):
        with pytest.raises(ProtocolError):
            ClientMessageDecoder().feed(b"\xEE")


class TestServerMessages:
    def _roundtrip(self, update, fmt=RGB888):
        enc_state = EncoderState(fmt)
        dec_state = DecoderState(fmt)
        data = update.encode(enc_state)
        messages = ServerMessageDecoder(dec_state).feed(data)
        assert len(messages) == 1
        return messages[0]

    def test_bell_and_cut_text(self):
        enc_state = EncoderState(RGB888)
        stream = Bell().encode() + ServerCutText("clip").encode()
        out = ServerMessageDecoder(DecoderState(RGB888)).feed(stream)
        assert out == [Bell(), ServerCutText("clip")]

    def test_framebuffer_update_raw(self):
        bmp = Bitmap(8, 6, fill=(10, 20, 30))
        packed = RGB888.pack_array(bmp.pixels)
        update = FramebufferUpdate(
            (RectUpdate(Rect(2, 3, 8, 6), RAW, packed),))
        out = self._roundtrip(update)
        assert out.rects[0].rect == Rect(2, 3, 8, 6)
        assert np.array_equal(out.rects[0].payload, packed)

    def test_framebuffer_update_multi_rect(self):
        a = RGB888.pack_array(Bitmap(4, 4, fill=(1, 1, 1)).pixels)
        b = RGB888.pack_array(Bitmap(8, 2, fill=(2, 2, 2)).pixels)
        update = FramebufferUpdate((
            RectUpdate(Rect(0, 0, 4, 4), RRE, a),
            RectUpdate(Rect(10, 10, 8, 2), HEXTILE, b),
        ))
        out = self._roundtrip(update)
        assert np.array_equal(out.rects[0].payload, a)
        assert np.array_equal(out.rects[1].payload, b)

    def test_copyrect_update(self):
        from repro.uip import COPYRECT
        update = FramebufferUpdate(
            (RectUpdate(Rect(5, 5, 10, 10), COPYRECT, (1, 2)),))
        out = self._roundtrip(update)
        assert out.rects[0].payload == (1, 2)

    def test_desktop_size_update(self):
        update = FramebufferUpdate(
            (RectUpdate(Rect(0, 0, 320, 240), DESKTOP_SIZE),))
        out = self._roundtrip(update)
        assert out.rects[0].payload == (320, 240)

    def test_zlib_update_survives_fragmentation(self):
        """Persistent zlib stream must not be corrupted by partial reads."""
        fmt = RGB888
        enc_state = EncoderState(fmt)
        dec_state = DecoderState(fmt)
        decoder = ServerMessageDecoder(dec_state)
        frames = []
        for fill in ((1, 2, 3), (4, 5, 6), (7, 8, 9)):
            bmp = Bitmap(32, 32, fill=fill)
            packed = fmt.pack_array(bmp.pixels)
            frames.append((packed, FramebufferUpdate(
                (RectUpdate(Rect(0, 0, 32, 32), ZLIB, packed),))))
        stream = b"".join(u.encode(enc_state) for _, u in frames)
        out = []
        step = 7  # force many partial parses
        for i in range(0, len(stream), step):
            out.extend(decoder.feed(stream[i:i + step]))
        assert len(out) == 3
        for (packed, _), message in zip(frames, out):
            assert np.array_equal(message.rects[0].payload, packed)

    def test_unknown_type_raises(self):
        with pytest.raises(ProtocolError):
            ServerMessageDecoder(DecoderState(RGB888)).feed(b"\x77")


class TestKeysyms:
    def test_char_roundtrip(self):
        for char in "aZ0 9~":
            sym = keysyms.keysym_for_char(char)
            assert keysyms.char_for_keysym(sym) == char

    def test_control_keys_have_no_char(self):
        assert keysyms.char_for_keysym(keysyms.RETURN) is None

    def test_names(self):
        assert keysyms.name_for_keysym(keysyms.ESCAPE) == "Escape"
        assert keysyms.name_for_keysym(ord("x")) == "x"
        assert "0x" in keysyms.name_for_keysym(0xFE99)

    def test_name_roundtrip(self):
        assert keysyms.keysym_for_name("Return") == keysyms.RETURN
        assert keysyms.keysym_for_name("a") == ord("a")
        with pytest.raises(ValueError):
            keysyms.keysym_for_name("NoSuchKey")

    def test_non_latin_rejected(self):
        with pytest.raises(ValueError):
            keysyms.keysym_for_char("あ")


def run_handshake(server, client, chunk=5):
    """Ferry handshake bytes between the two sans-io machines."""

    def ferry(data, target):
        for i in range(0, len(data), chunk):
            if target.failed is not None:
                return
            target.feed(data[i:i + chunk])

    for _ in range(100):
        progressed = False
        out_s = server.outgoing()
        if out_s and client.failed is None:
            ferry(out_s, client)
            progressed = True
        out_c = client.outgoing()
        if out_c and server.failed is None:
            ferry(out_c, server)
            progressed = True
        if not progressed:
            return
    raise AssertionError("handshake did not converge")


class TestHandshake:
    def test_plain_handshake(self):
        server = ServerHandshake(640, 480, RGB888, "home-panel")
        client = ClientHandshake()
        run_handshake(server, client)
        assert server.done and client.done
        assert client.result.width == 640
        assert client.result.height == 480
        assert client.result.pixel_format == RGB888
        assert client.result.name == "home-panel"

    def test_shared_secret_success(self):
        server = ServerHandshake(320, 240, RGB565, "tv", secret="s3cret")
        client = ClientHandshake(secret="s3cret")
        run_handshake(server, client)
        assert server.done and client.done

    def test_shared_secret_mismatch(self):
        server = ServerHandshake(320, 240, RGB565, "tv", secret="right")
        client = ClientHandshake(secret="wrong")
        run_handshake(server, client)
        assert server.failed is not None
        assert client.failed is not None

    def test_client_without_secret_fails_against_secured_server(self):
        server = ServerHandshake(320, 240, RGB565, "tv", secret="s")
        client = ClientHandshake()
        run_handshake(server, client)
        assert client.failed is not None

    def test_byte_at_a_time(self):
        server = ServerHandshake(100, 100, RGB888, "x")
        client = ClientHandshake()
        run_handshake(server, client, chunk=1)
        assert server.done and client.done

    def test_leftover_bytes_preserved(self):
        server = ServerHandshake(100, 100, RGB888, "x")
        client = ClientHandshake()
        # client completes after ServerInit; append message bytes after
        run_handshake(server, client)
        client.feed(KeyEvent(True, 7).encode())
        leftover = client.leftover()
        decoded = ClientMessageDecoder().feed(leftover)
        assert decoded == [KeyEvent(True, 7)]

    def test_version_constant_shape(self):
        assert PROTOCOL_VERSION.endswith(b"\n")
        assert len(PROTOCOL_VERSION) == 12

    def test_shared_flag_transmitted(self):
        server = ServerHandshake(100, 100, RGB888, "x")
        client = ClientHandshake(shared=False)
        run_handshake(server, client)
        assert server.result.shared is False

    def test_bad_version_fails(self):
        server = ServerHandshake(100, 100, RGB888, "x")
        server.feed(b"RFB 003.008\n")
        assert server.failed is not None

    def test_feed_after_failure_raises(self):
        server = ServerHandshake(100, 100, RGB888, "x")
        server.feed(b"RFB 003.008\n")
        with pytest.raises(ProtocolError):
            server.feed(b"more")


class TestVersionNegotiation:
    def test_both_new_agree_on_1_1(self):
        from repro.uip.handshake import VERSION_1_1
        server = ServerHandshake(100, 100, RGB888, "x")
        client = ClientHandshake()
        run_handshake(server, client)
        assert server.result.version == VERSION_1_1
        assert client.result.version == VERSION_1_1

    def test_client_negotiates_down_to_old_server(self):
        """Against a 001.000 server the client clamps its reply and both
        ends record the old dialect (so neither offers ZRLE)."""
        from repro.uip.handshake import VERSION_1_0
        client = ClientHandshake()
        client.feed(b"UIP 001.000\n")
        assert client.outgoing() == b"UIP 001.000\n"
        assert client.version == VERSION_1_0

    def test_server_accepts_old_client_reply(self):
        from repro.uip.handshake import VERSION_1_0
        server = ServerHandshake(100, 100, RGB888, "x")
        server.outgoing()
        server.feed(b"UIP 001.000\n")
        assert server.failed is None
        assert server.version == VERSION_1_0

    def test_server_rejects_newer_client_reply(self):
        # a reply above the server's own version violates the clamp rule
        server = ServerHandshake(100, 100, RGB888, "x")
        server.outgoing()
        server.feed(b"UIP 001.002\n")
        assert server.failed is not None

    def test_server_rejects_prehistoric_client(self):
        server = ServerHandshake(100, 100, RGB888, "x")
        server.outgoing()
        server.feed(b"UIP 000.009\n")
        assert server.failed is not None

    def test_client_rejects_garbled_version(self):
        client = ClientHandshake()
        client.feed(b"HTTP/1.1 200\n")
        assert client.failed is not None

"""Unit tests for bitmaps, pixel formats, drawing, fonts and image ops."""

import numpy as np
import pytest

from repro.graphics import (
    RGB332,
    RGB565,
    RGB888,
    Bitmap,
    PixelFormat,
    Rect,
    default_font,
    draw,
    ops,
)
from repro.util.errors import GraphicsError


class TestBitmap:
    def test_create_filled(self):
        bmp = Bitmap(4, 3, fill=(10, 20, 30))
        assert bmp.size == (4, 3)
        assert bmp.get_pixel(0, 0) == (10, 20, 30)
        assert bmp.get_pixel(3, 2) == (10, 20, 30)

    def test_zero_size_rejected(self):
        with pytest.raises(GraphicsError):
            Bitmap(0, 5)

    def test_bad_color_rejected(self):
        with pytest.raises(GraphicsError):
            Bitmap(2, 2, fill=(300, 0, 0))

    def test_set_get_pixel(self):
        bmp = Bitmap(4, 4)
        bmp.set_pixel(2, 1, (1, 2, 3))
        assert bmp.get_pixel(2, 1) == (1, 2, 3)

    def test_pixel_out_of_bounds(self):
        bmp = Bitmap(4, 4)
        with pytest.raises(GraphicsError):
            bmp.get_pixel(4, 0)
        with pytest.raises(GraphicsError):
            bmp.set_pixel(0, -1, (0, 0, 0))

    def test_fill_rect_clips(self):
        bmp = Bitmap(4, 4, fill=(0, 0, 0))
        bmp.fill_rect(Rect(2, 2, 10, 10), (255, 0, 0))
        assert bmp.get_pixel(3, 3) == (255, 0, 0)
        assert bmp.get_pixel(1, 1) == (0, 0, 0)

    def test_blit_returns_dirty_rect(self):
        dst = Bitmap(10, 10)
        src = Bitmap(4, 4, fill=(9, 9, 9))
        dirty = dst.blit(src, 2, 3)
        assert dirty == Rect(2, 3, 4, 4)
        assert dst.get_pixel(2, 3) == (9, 9, 9)

    def test_blit_clips_offscreen(self):
        dst = Bitmap(10, 10)
        src = Bitmap(4, 4, fill=(9, 9, 9))
        dirty = dst.blit(src, 8, 8)
        assert dirty == Rect(8, 8, 2, 2)
        dirty = dst.blit(src, -2, -2)
        assert dirty == Rect(0, 0, 2, 2)
        assert dst.get_pixel(1, 1) == (9, 9, 9)

    def test_blit_fully_offscreen(self):
        dst = Bitmap(10, 10)
        src = Bitmap(4, 4, fill=(9, 9, 9))
        assert dst.blit(src, 100, 100).is_empty

    def test_crop(self):
        bmp = Bitmap(10, 10)
        bmp.fill_rect(Rect(2, 2, 3, 3), (5, 5, 5))
        sub = bmp.crop(Rect(2, 2, 3, 3))
        assert sub.size == (3, 3)
        assert sub.get_pixel(0, 0) == (5, 5, 5)

    def test_crop_outside_raises(self):
        with pytest.raises(GraphicsError):
            Bitmap(5, 5).crop(Rect(10, 10, 2, 2))

    def test_copy_rect(self):
        bmp = Bitmap(10, 10)
        bmp.fill_rect(Rect(0, 0, 2, 2), (7, 7, 7))
        bmp.copy_rect(Rect(0, 0, 2, 2), 5, 5)
        assert bmp.get_pixel(5, 5) == (7, 7, 7)
        assert bmp.get_pixel(0, 0) == (7, 7, 7)

    def test_copy_rect_overlapping(self):
        bmp = Bitmap(10, 1)
        for x in range(10):
            bmp.set_pixel(x, 0, (x * 10, 0, 0))
        bmp.copy_rect(Rect(0, 0, 5, 1), 2, 0)  # overlapping shift right
        assert bmp.get_pixel(2, 0) == (0, 0, 0)
        assert bmp.get_pixel(6, 0) == (40, 0, 0)

    def test_copy_rect_clipped_source_keeps_alignment(self):
        """Regression: a source clipped at the bitmap edge must shift the
        destination by the clip offset, not paste at the raw (dst_x, dst_y)."""
        bmp = Bitmap(10, 4)
        bmp.fill_rect(Rect(0, 0, 1, 4), (255, 0, 0))  # red column at x=0
        dirty = bmp.copy_rect(Rect(-2, 0, 4, 4), 5, 0)
        # src clips to x in [0, 2); those pixels sat 2 to the right of the
        # src origin, so they must land 2 to the right of dst_x as well
        assert dirty == Rect(7, 0, 2, 4)
        assert bmp.get_pixel(7, 0) == (255, 0, 0)
        assert bmp.get_pixel(5, 0) == (0, 0, 0)

    def test_copy_rect_clipped_source_top(self):
        bmp = Bitmap(4, 10)
        bmp.fill_rect(Rect(0, 0, 4, 1), (0, 255, 0))  # green row at y=0
        dirty = bmp.copy_rect(Rect(0, -3, 4, 4), 0, 5)
        assert dirty == Rect(0, 8, 4, 1)
        assert bmp.get_pixel(0, 8) == (0, 255, 0)
        assert bmp.get_pixel(0, 5) == (0, 0, 0)

    def test_equality(self):
        a = Bitmap(3, 3, fill=(1, 2, 3))
        b = Bitmap(3, 3, fill=(1, 2, 3))
        assert a == b
        b.set_pixel(0, 0, (0, 0, 0))
        assert a != b

    def test_diff_rect(self):
        a = Bitmap(10, 10)
        b = a.copy()
        assert a.diff_rect(b).is_empty
        b.set_pixel(3, 4, (1, 1, 1))
        b.set_pixel(6, 8, (1, 1, 1))
        assert a.diff_rect(b) == Rect(3, 4, 4, 5)

    def test_diff_rect_size_mismatch(self):
        with pytest.raises(GraphicsError):
            Bitmap(2, 2).diff_rect(Bitmap(3, 3))

    def test_ppm_roundtrip(self):
        bmp = Bitmap(7, 5)
        bmp.fill_rect(Rect(1, 1, 3, 2), (200, 100, 50))
        again = Bitmap.from_ppm(bmp.to_ppm())
        assert again == bmp

    def test_ppm_with_comment(self):
        bmp = Bitmap(2, 2, fill=(1, 2, 3))
        data = bmp.to_ppm().replace(b"P6\n", b"P6\n# a comment\n", 1)
        assert Bitmap.from_ppm(data) == bmp

    def test_ppm_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "shot.ppm")
        bmp = Bitmap(4, 4, fill=(9, 8, 7))
        bmp.save_ppm(path)
        assert Bitmap.load_ppm(path) == bmp

    def test_from_array_copies(self):
        arr = np.zeros((2, 2, 3), dtype=np.uint8)
        bmp = Bitmap.from_array(arr)
        arr[0, 0] = 255
        assert bmp.get_pixel(0, 0) == (0, 0, 0)


class TestBitmapView:
    def test_view_shares_storage(self):
        bmp = Bitmap(8, 8, fill=(1, 2, 3))
        view = bmp.view(Rect(2, 2, 4, 4))
        assert view.shape == (4, 4, 3)
        assert view.base is not None  # zero-copy
        view[0, 0] = (9, 9, 9)
        assert bmp.get_pixel(2, 2) == (9, 9, 9)

    def test_view_clips_to_bounds(self):
        bmp = Bitmap(8, 8)
        assert bmp.view(Rect(6, 6, 10, 10)).shape == (2, 2, 3)

    def test_view_outside_raises(self):
        bmp = Bitmap(8, 8)
        with pytest.raises(GraphicsError):
            bmp.view(Rect(20, 20, 4, 4))

    def test_from_array_copies_contiguous_input(self):
        src = np.zeros((4, 4, 3), dtype=np.uint8)
        bmp = Bitmap.from_array(src)
        src[0, 0] = 77
        assert bmp.get_pixel(0, 0) == (0, 0, 0)

    def test_from_array_single_copy_of_view(self):
        # a non-contiguous view triggers exactly one conversion copy
        base = np.zeros((8, 8, 3), dtype=np.uint8)
        view = base[::2, ::2]
        bmp = Bitmap.from_array(view)
        assert bmp.pixels.flags.c_contiguous
        base[0, 0] = 55
        assert bmp.get_pixel(0, 0) == (0, 0, 0)

    def test_from_array_copies_ndarray_subclass(self):
        class Sub(np.ndarray):
            pass

        src = np.zeros((4, 4, 3), dtype=np.uint8).view(Sub)
        bmp = Bitmap.from_array(src)
        src[0, 0] = 99
        assert bmp.get_pixel(0, 0) == (0, 0, 0)

    def test_from_array_copies_contiguous_view(self):
        base = np.zeros((8, 8, 3), dtype=np.uint8)
        view = base[2:6, :]  # contiguous but shares base storage
        bmp = Bitmap.from_array(view)
        base[3, 0] = 44
        assert bmp.get_pixel(0, 1) == (0, 0, 0)


class TestPixelFormat:
    @pytest.mark.parametrize("fmt", [RGB888, RGB565, RGB332])
    def test_pack_size(self, fmt):
        bmp = Bitmap(8, 4, fill=(100, 150, 200))
        assert len(fmt.pack(bmp.pixels)) == 8 * 4 * fmt.bytes_per_pixel

    def test_rgb888_lossless(self):
        rng = np.random.default_rng(1)
        rgb = rng.integers(0, 256, size=(5, 7, 3), dtype=np.uint8)
        out = RGB888.unpack(RGB888.pack(rgb), 7, 5)
        assert np.array_equal(out, rgb)

    @pytest.mark.parametrize("fmt", [RGB565, RGB332])
    def test_lossy_roundtrip_is_idempotent(self, fmt):
        rng = np.random.default_rng(2)
        rgb = rng.integers(0, 256, size=(6, 6, 3), dtype=np.uint8)
        once = fmt.quantise(rgb)
        twice = fmt.quantise(once)
        assert np.array_equal(once, twice)

    def test_extremes_preserved(self):
        black = np.zeros((1, 1, 3), dtype=np.uint8)
        white = np.full((1, 1, 3), 255, dtype=np.uint8)
        for fmt in (RGB888, RGB565, RGB332):
            assert np.array_equal(fmt.quantise(black), black)
            assert np.array_equal(fmt.quantise(white), white)

    def test_wire_encode_decode(self):
        for fmt in (RGB888, RGB565, RGB332):
            assert PixelFormat.decode(fmt.encode()) == fmt

    def test_decode_wrong_length(self):
        with pytest.raises(GraphicsError):
            PixelFormat.decode(b"short")

    def test_invalid_max_rejected(self):
        with pytest.raises(GraphicsError):
            PixelFormat(16, 16, False, 30, 63, 31, 11, 5, 0)

    def test_invalid_bpp_rejected(self):
        with pytest.raises(GraphicsError):
            PixelFormat(24, 24, False, 255, 255, 255, 16, 8, 0)

    def test_unpack_wrong_size(self):
        with pytest.raises(GraphicsError):
            RGB888.unpack(b"\x00" * 10, 2, 2)

    @pytest.mark.parametrize("fmt", [RGB888, RGB565, RGB332])
    def test_pack_array_accepts_non_contiguous_view(self, fmt):
        rng = np.random.default_rng(5)
        rgb = rng.integers(0, 256, size=(12, 12, 3), dtype=np.uint8)
        view = rgb[2:9, 3:11]
        assert not view.flags.c_contiguous
        assert np.array_equal(fmt.pack_array(view),
                              fmt.pack_array(view.copy()))

    @pytest.mark.parametrize("fmt", [RGB888, RGB565, RGB332])
    def test_pack_array_out_buffer(self, fmt):
        rng = np.random.default_rng(6)
        rgb = rng.integers(0, 256, size=(6, 9, 3), dtype=np.uint8)
        out = np.empty((6, 9), dtype=fmt.dtype)
        result = fmt.pack_array(rgb, out=out)
        assert result is out  # reused, not reallocated
        assert np.array_equal(out, fmt.pack_array(rgb))

    def test_pack_array_out_mismatch_rejected(self):
        rgb = np.zeros((4, 4, 3), dtype=np.uint8)
        with pytest.raises(GraphicsError):
            RGB888.pack_array(rgb, out=np.empty((3, 3), dtype=RGB888.dtype))
        with pytest.raises(GraphicsError):
            RGB888.pack_array(rgb, out=np.empty((4, 4), dtype=RGB565.dtype))


class TestDraw:
    def test_hline_vline(self):
        bmp = Bitmap(10, 10)
        draw.hline(bmp, 1, 2, 5, (255, 0, 0))
        draw.vline(bmp, 3, 0, 4, (0, 255, 0))
        assert bmp.get_pixel(5, 2) == (255, 0, 0)
        assert bmp.get_pixel(3, 3) == (0, 255, 0)

    def test_line_diagonal(self):
        bmp = Bitmap(10, 10)
        draw.line(bmp, 0, 0, 9, 9, (9, 9, 9))
        for i in range(10):
            assert bmp.get_pixel(i, i) == (9, 9, 9)

    def test_line_clips(self):
        bmp = Bitmap(5, 5)
        draw.line(bmp, -5, 2, 10, 2, (1, 1, 1))  # no exception
        assert bmp.get_pixel(0, 2) == (1, 1, 1)
        assert bmp.get_pixel(4, 2) == (1, 1, 1)

    def test_rect_outline(self):
        bmp = Bitmap(10, 10)
        draw.rect_outline(bmp, Rect(1, 1, 5, 5), (2, 2, 2))
        assert bmp.get_pixel(1, 1) == (2, 2, 2)
        assert bmp.get_pixel(5, 5) == (2, 2, 2)
        assert bmp.get_pixel(3, 3) == (0, 0, 0)

    def test_bevel_box(self):
        bmp = Bitmap(10, 10)
        draw.bevel_box(bmp, Rect(0, 0, 10, 10), face=(128, 128, 128),
                       light=(255, 255, 255), shadow=(64, 64, 64))
        assert bmp.get_pixel(0, 0) == (255, 255, 255)
        assert bmp.get_pixel(9, 9) == (64, 64, 64)
        assert bmp.get_pixel(5, 5) == (128, 128, 128)

    def test_bevel_box_sunken_swaps_edges(self):
        bmp = Bitmap(10, 10)
        draw.bevel_box(bmp, Rect(0, 0, 10, 10), face=(128, 128, 128),
                       light=(255, 255, 255), shadow=(64, 64, 64),
                       sunken=True)
        assert bmp.get_pixel(0, 0) == (64, 64, 64)
        assert bmp.get_pixel(9, 9) == (255, 255, 255)

    def test_circle_outline_radius(self):
        bmp = Bitmap(21, 21)
        draw.circle_outline(bmp, 10, 10, 8, (5, 5, 5))
        assert bmp.get_pixel(18, 10) == (5, 5, 5)
        assert bmp.get_pixel(10, 2) == (5, 5, 5)
        assert bmp.get_pixel(10, 10) == (0, 0, 0)

    def test_circle_fill(self):
        bmp = Bitmap(21, 21)
        draw.circle_fill(bmp, 10, 10, 5, (5, 5, 5))
        assert bmp.get_pixel(10, 10) == (5, 5, 5)
        assert bmp.get_pixel(10, 5) == (5, 5, 5)
        assert bmp.get_pixel(0, 0) == (0, 0, 0)

    def test_checkerboard(self):
        bmp = Bitmap(8, 8)
        draw.checkerboard(bmp, bmp.bounds, 2, (0, 0, 0), (255, 255, 255))
        assert bmp.get_pixel(0, 0) == (0, 0, 0)
        assert bmp.get_pixel(2, 0) == (255, 255, 255)
        assert bmp.get_pixel(2, 2) == (0, 0, 0)


class TestFont:
    def test_measure(self):
        font = default_font(1)
        w, h = font.measure("AB")
        assert h == 7
        assert w == 11  # 5 + 1 + 5

    def test_measure_empty(self):
        assert default_font(1).measure("")[0] == 0

    def test_draw_marks_pixels(self):
        font = default_font(1)
        bmp = Bitmap(20, 10)
        dirty = font.draw(bmp, 1, 1, "I", (255, 255, 255))
        assert not dirty.is_empty
        # 'I' has a vertical bar through the middle column
        assert bmp.get_pixel(3, 4) == (255, 255, 255)

    def test_scale_doubles_metrics(self):
        assert default_font(2).glyph_height == 14
        assert default_font(2).measure("A")[0] == 10

    def test_render_minimal_bitmap(self):
        img = default_font(1).render("Hi", (0, 0, 0), (255, 255, 255))
        assert img.size == default_font(1).measure("Hi")

    def test_unknown_glyph_uses_replacement(self):
        img = default_font(1).render("é", (255, 255, 255))
        # replacement glyph is a box: corners set
        assert img.get_pixel(0, 0) == (255, 255, 255)
        assert img.get_pixel(4, 6) == (255, 255, 255)

    def test_clipping_draw_offscreen(self):
        font = default_font(1)
        bmp = Bitmap(4, 4)
        dirty = font.draw(bmp, -3, -3, "W", (1, 1, 1))
        assert bmp.bounds.contains_rect(dirty)

    def test_bad_scale(self):
        from repro.graphics.font import Font
        with pytest.raises(GraphicsError):
            Font(scale=0)


class TestOps:
    def _gradient(self, w=16, h=12):
        bmp = Bitmap(w, h)
        ramp = np.linspace(0, 255, w, dtype=np.uint8)
        bmp.pixels[:] = ramp[None, :, None]
        return bmp

    def test_scale_nearest_dimensions(self):
        out = ops.scale_nearest(self._gradient(), 8, 6)
        assert out.size == (8, 6)

    def test_scale_nearest_identity(self):
        src = self._gradient()
        out = ops.scale_nearest(src, src.width, src.height)
        assert out == src

    def test_scale_box_dimensions(self):
        out = ops.scale_box(self._gradient(), 4, 3)
        assert out.size == (4, 3)

    def test_scale_box_preserves_mean(self):
        src = self._gradient(32, 32)
        out = ops.scale_box(src, 8, 8)
        assert abs(float(out.pixels.mean()) - float(src.pixels.mean())) < 2.0

    def test_scale_box_upscale(self):
        out = ops.scale_box(self._gradient(4, 4), 8, 8)
        assert out.size == (8, 8)

    def test_scale_to_fit_aspect(self):
        src = Bitmap(100, 50)
        out = ops.scale_to_fit(src, 40, 40)
        assert out.size == (40, 20)

    def test_scale_to_fit_never_upscales_identity(self):
        src = Bitmap(10, 10, fill=(3, 3, 3))
        out = ops.scale_to_fit(src, 100, 100)
        assert out.size == (100, 100)  # ratio 10 upscale allowed
        out2 = ops.scale_to_fit(src, 10, 10)
        assert out2 == src

    def test_bad_scale_target(self):
        with pytest.raises(GraphicsError):
            ops.scale_nearest(self._gradient(), 0, 5)
        with pytest.raises(GraphicsError):
            ops.scale_box(self._gradient(), 5, 0)

    def test_grayscale_range(self):
        gray = ops.to_grayscale(self._gradient())
        assert gray.min() >= 0.0
        assert gray.max() <= 255.0

    def test_grayscale_weights(self):
        green = Bitmap(2, 2, fill=(0, 255, 0))
        blue = Bitmap(2, 2, fill=(0, 0, 255))
        assert ops.to_grayscale(green).mean() > ops.to_grayscale(blue).mean()

    def test_quantize_levels(self):
        gray = np.linspace(0, 255, 100).reshape(10, 10)
        q = ops.quantize_levels(gray, 4)
        assert set(np.round(np.unique(q), 3)) <= {0.0, 85.0, 170.0, 255.0}

    def test_quantize_needs_two_levels(self):
        with pytest.raises(GraphicsError):
            ops.quantize_levels(np.zeros((2, 2)), 1)

    @pytest.mark.parametrize("dither", [ops.ordered_dither,
                                        ops.floyd_steinberg])
    def test_dither_output_levels(self, dither):
        gray = np.full((16, 16), 128.0)
        out = dither(gray, levels=2)
        assert set(np.unique(out)) <= {0.0, 255.0}

    @pytest.mark.parametrize("dither", [ops.ordered_dither,
                                        ops.floyd_steinberg])
    def test_dither_preserves_mean_gray(self, dither):
        gray = np.full((32, 32), 100.0)
        out = dither(gray, levels=2)
        assert abs(out.mean() - 100.0) < 16.0

    def test_floyd_steinberg_beats_quantize_on_gradient(self):
        gray = np.tile(np.linspace(0, 255, 64), (16, 1))
        fs = ops.floyd_steinberg(gray, levels=2)
        hard = ops.quantize_levels(gray, 2)
        # local 8x8 block means: dithering tracks the gradient better
        def block_err(img):
            total = 0.0
            for bx in range(0, 64, 8):
                total += abs(img[:, bx:bx + 8].mean()
                             - gray[:, bx:bx + 8].mean())
            return total
        assert block_err(fs) < block_err(hard)

    def test_pack_unpack_mono(self):
        gray = np.asarray([[0.0, 255.0, 0.0, 255.0, 255.0]] * 3)
        packed = ops.pack_mono(gray)
        assert len(packed) == 3  # 5 bits -> 1 byte per row
        out = ops.unpack_mono(packed, 5, 3)
        assert np.array_equal(out, gray)

    def test_pack_unpack_gray4(self):
        gray = np.asarray([[0.0, 85.0, 170.0, 255.0, 85.0]] * 2)
        packed = ops.pack_gray4(gray)
        assert len(packed) == 2 * 2  # ceil(5/4)=2 bytes per row
        out = ops.unpack_gray4(packed, 5, 2)
        assert np.array_equal(out, gray)

    def test_unpack_mono_wrong_size(self):
        with pytest.raises(GraphicsError):
            ops.unpack_mono(b"\x00", 16, 2)

    def test_mean_abs_error(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 10.0)
        assert ops.mean_abs_error(a, b) == 10.0
        with pytest.raises(GraphicsError):
            ops.mean_abs_error(a, np.zeros((2, 2)))

    def test_gray_bitmap_roundtrip(self):
        gray = np.full((3, 3), 85.0)
        bmp = ops.gray_bitmap(gray)
        assert bmp.get_pixel(1, 1) == (85, 85, 85)

"""Lifecycle and misuse error paths across layers."""

import pytest

from repro import Home
from repro.appliances import Television
from repro.havi import HomeNetwork
from repro.havi.dcm import Dcm
from repro.havi.fcm import Fcm, FcmType
from repro.util.errors import FcmError, HaviError


class TestDcmLifecycle:
    def _dcm(self, network):
        return Dcm("aabbccdd00112233", network.messaging, network.events,
                   network.registry, "tv", "ReproWorks", "T-1", "TV")

    def test_double_install_rejected(self):
        network = HomeNetwork()
        dcm = self._dcm(network)
        dcm.install()
        with pytest.raises(HaviError):
            dcm.install()

    def test_uninstall_without_install_rejected(self):
        network = HomeNetwork()
        dcm = self._dcm(network)
        with pytest.raises(HaviError):
            dcm.uninstall()

    def test_add_fcm_after_install_rejected(self):
        network = HomeNetwork()
        dcm = self._dcm(network)
        dcm.install()
        with pytest.raises(HaviError):
            dcm.add_fcm(Fcm)

    def test_install_uninstall_cycles(self):
        network = HomeNetwork()
        dcm = self._dcm(network)
        dcm.add_fcm(Fcm)
        for _ in range(3):
            dcm.install()
            assert len(network.registry) == 2
            dcm.uninstall()
            assert len(network.registry) == 0

    def test_describe_over_messaging(self):
        from repro.havi import SEID, SoftwareElement
        network = HomeNetwork()
        dcm = self._dcm(network)
        dcm.add_fcm(Fcm)
        dcm.install()
        client = SoftwareElement(SEID("9999888877776666", 0),
                                 network.messaging)
        client.attach()
        replies = []
        client.send_request(dcm.seid, "dcm.describe",
                            on_reply=replies.append)
        network.settle()
        assert replies[0].payload["name"] == "TV"
        assert len(replies[0].payload["fcm_seids"]) == 1


class TestFcmErrors:
    def test_duplicate_command_rejected(self):
        network = HomeNetwork()
        from repro.havi import SEID
        fcm = Fcm(SEID("ab" * 8, 1), network.messaging, network.events,
                  "ab" * 8, "x")
        with pytest.raises(FcmError):
            fcm.register_command("fcm.describe", lambda p: {})

    def test_invoke_local_unknown_command(self):
        from repro.havi import SEID
        from repro.havi.fcm import FcmCommandError
        network = HomeNetwork()
        fcm = Fcm(SEID("ab" * 8, 1), network.messaging, network.events,
                  "ab" * 8, "x")
        with pytest.raises(FcmCommandError):
            fcm.invoke_local("no.such")

    def test_require_arg(self):
        from repro.havi.fcm import FcmCommandError
        with pytest.raises(FcmCommandError) as err:
            Fcm.require_arg({}, "volume")
        assert err.value.status == "EINVALID_ARG"
        assert Fcm.require_arg({"volume": 5}, "volume") == 5


class TestBusErrors:
    def test_double_attach_rejected(self):
        network = HomeNetwork()
        tv = Television("TV")
        network.attach_device(tv)
        with pytest.raises(HaviError):
            network.attach_device(tv)

    def test_detach_unknown_rejected(self):
        network = HomeNetwork()
        with pytest.raises(HaviError):
            network.detach_device("nope")


class TestHomeFacade:
    def test_screenshot_composites(self):
        home = Home()
        home.add_appliance(Television("TV"))
        home.settle()
        window = home.screenshot()
        # the app painted something other than wallpaper
        assert window.bitmap.get_pixel(10, 10) != (0, 24, 64)

    def test_remove_unknown_appliance_raises(self):
        from repro.util.errors import HaviError
        home = Home()
        with pytest.raises(HaviError, match="no appliance 'ghost'"):
            home.remove_appliance("ghost")

    def test_remove_unknown_device_raises(self):
        from repro.util.errors import ProxyError
        home = Home()
        with pytest.raises(ProxyError, match="no device 'ghost'"):
            home.remove_device("ghost")

    def test_run_for_advances_time(self):
        home = Home()
        start = home.scheduler.now()
        home.run_for(5.0)
        assert home.scheduler.now() == start + 5.0

"""Descriptor-generated panels: parity with the hand-written builders.

The tentpole guarantee: :func:`repro.app.panels.build_capability_panel`
must expose the same widget ids and drive the same FCM commands as the
legacy per-type builders it replaces — asserted here per appliance — while
appliances without any builder (the refrigerator) get a full panel from
their descriptor alone.
"""

import pytest

from repro.app import HomeApplianceApplication, build_fcm_panel
from repro.app.composer import assign_guid_prefixes, compose_ui
from repro.app.handles import ApplianceHandle, FcmHandle
from repro.app.panels import PANEL_BUILDERS, build_capability_panel
from repro.appliances import APPLIANCE_CLASSES, Refrigerator, Television
from repro.havi import (
    Capability,
    CapabilityDescriptor,
    HomeNetwork,
    SEID,
    SoftwareElement,
)
from repro.toolkit import Column, UIWindow
from repro.util.ids import guid_from_seed, guid_prefixes

#: Appliances with a hand-written legacy builder for every FCM (the
#: refrigerator deliberately has none — it is descriptor-only).
LEGACY_APPLIANCES = sorted(set(APPLIANCE_CLASSES) - {"fridge"})


def make_app(*appliances, dynamic=True):
    network = HomeNetwork()
    for appliance in appliances:
        network.attach_device(appliance)
    network.settle()
    window = UIWindow(480, 420)
    app = HomeApplianceApplication(network, window,
                                   dynamic_panels=dynamic)
    network.settle()  # descriptor fetches land -> coalesced rebuild
    return network, window, app


def widget_ids(root):
    return {w.widget_id for w in root.walk() if w.widget_id is not None}


def offline_handle(fcm_type="tuner", state=None):
    network = HomeNetwork()
    element = SoftwareElement(SEID(guid_from_seed("panel-app"), 0),
                              network.messaging)
    element.attach()
    handle = FcmHandle(element, SEID(guid_from_seed("panel-dev"), 1), {
        "fcm.type": fcm_type,
        "device.guid": guid_from_seed("panel-dev"),
        "device.name": "Bench Device",
        "device.class": "x",
    })
    handle.state.update(state or {})
    return network, handle


class TestWidgetIdParity:
    @pytest.mark.parametrize("kind", LEGACY_APPLIANCES)
    def test_same_ids_as_legacy_builder(self, kind):
        _, _, dynamic_app = make_app(APPLIANCE_CLASSES[kind](kind))
        _, _, legacy_app = make_app(APPLIANCE_CLASSES[kind](kind),
                                    dynamic=False)
        assert widget_ids(dynamic_app.window.root) == \
            widget_ids(legacy_app.window.root)

    @pytest.mark.parametrize("kind", LEGACY_APPLIANCES)
    def test_focus_order_matches_legacy(self, kind):
        """Keypad Tab traversal (pre-order walk over focusable widgets)
        must visit the same widgets in the same order on both paths."""
        def focus_ids(app):
            return [w.widget_id for w in app.window.root.walk()
                    if w.focusable and w.widget_id is not None]

        _, _, dynamic_app = make_app(APPLIANCE_CLASSES[kind](kind))
        _, _, legacy_app = make_app(APPLIANCE_CLASSES[kind](kind),
                                    dynamic=False)
        assert focus_ids(dynamic_app) == focus_ids(legacy_app)


class TestCommandParity:
    def test_toggle_drives_fcm(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        prefix = tv.guid[:8]
        window.root.find(f"{prefix}.tuner.power").toggle()
        network.settle()
        from repro.havi import FcmType
        assert tv.dcm.fcm_by_type(FcmType.TUNER).get_state("power") is True

    def test_slider_drives_fcm_and_follows_state(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        prefix = tv.guid[:8]
        from repro.havi import FcmType
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        network.settle()
        volume = window.root.find(f"{prefix}.tuner.volume")
        volume._set_and_notify(45)
        network.settle()
        assert tuner.get_state("volume") == 45
        # reverse direction: a change from elsewhere updates the widget
        tuner.invoke_local("volume.set", {"volume": 80})
        network.settle()
        assert volume.value == 80

    def test_listbox_drives_fcm(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        prefix = tv.guid[:8]
        sources = window.root.find(f"{prefix}.display.source")
        sources._select(sources.items.index("dvd"), 3)
        network.settle()
        from repro.havi import FcmType
        display = tv.dcm.fcm_by_type(FcmType.DISPLAY)
        assert display.get_state("source") == "dvd"

    def test_number_entry_drives_fcm(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        prefix = tv.guid[:8]
        from repro.havi import FcmType
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        entry = window.root.find(f"{prefix}.tuner.ch-entry")
        entry.text = "8"
        entry.on_activate(entry)
        network.settle()
        assert tuner.get_state("channel") == 8
        assert entry.text == ""  # submitted entries clear

    def test_every_generated_command_is_accepted(self):
        """No generated widget may send a verb its FCM rejects as
        unsupported (the descriptor<->behaviour contract, end to end)."""
        for kind in sorted(APPLIANCE_CLASSES):
            appliance = APPLIANCE_CLASSES[kind](kind)
            network, _, app = make_app(appliance)
            for handle in app.appliances[0].fcms:
                descriptor = handle.descriptor
                if descriptor is None:
                    continue
                fcm = next(f for f in appliance.dcm.fcms
                           if f.fcm_type.value == handle.fcm_type)
                for capability in descriptor:
                    if capability.command:
                        assert capability.command in fcm.commands, (
                            f"{kind}/{handle.fcm_type}: "
                            f"{capability.command}")


class TestDescriptorFetch:
    def test_descriptor_arrives_and_rebuild_coalesces(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        # initial build + exactly one coalesced rebuild once every
        # outstanding capabilities.get reply has landed
        assert app.rebuild_count == 2
        for handle in app.appliances[0].fcms:
            if handle.capability_version > 0:
                assert handle.descriptor is not None

    def test_cache_survives_rebuild(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        misses = app.descriptors.misses
        app.rebuild()
        assert app.descriptors.misses == misses  # all hits, no refetch

    def test_uninstall_invalidates_cache(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        assert len(app.descriptors) > 0
        network.detach_device(tv.guid)
        network.settle()
        assert len(app.descriptors) == 0

    def test_legacy_mode_never_fetches(self):
        tv = Television("TV")
        network, window, app = make_app(tv, dynamic=False)
        assert app.rebuild_count == 1  # no descriptor replies, no rebuild
        assert len(app.descriptors) == 0
        for handle in app.appliances[0].fcms:
            assert handle.descriptor is None


class TestUnknownFcmFallback:
    def test_banner_instead_of_raising(self):
        network, handle = offline_handle("teleporter", {"charge": 3})
        panel = build_fcm_panel(handle)
        banner = panel.find(f"{handle.device_guid[:8]}"
                            f".teleporter.unsupported")
        assert banner is not None
        assert "teleporter" in banner.text

    def test_unmapped_kind_gets_send_command_button(self):
        network, handle = offline_handle("tuner")
        handle.descriptor = CapabilityDescriptor(
            fcm_type="tuner", version=1, capabilities=(
                Capability(kind="gesture", name="wave",
                           command="gesture.wave"),
            ))
        panel = build_capability_panel(handle)
        button = panel.find(f"{handle.device_guid[:8]}.tuner.wave")
        assert button is not None
        button.activate()
        assert handle.commands_sent == 1

    def test_unmapped_readonly_kind_gets_label(self):
        network, handle = offline_handle("tuner", {"aura": "calm"})
        handle.descriptor = CapabilityDescriptor(
            fcm_type="tuner", version=1, capabilities=(
                Capability(kind="hologram", name="aura", attribute="aura",
                           read_only=True),
            ))
        panel = build_capability_panel(handle)
        label = panel.find(f"{handle.device_guid[:8]}.tuner.aura")
        assert label is not None and label.text == "calm"


class TestGuidPrefixCollisions:
    def test_prefixes_extend_until_unique(self):
        a = "deadbeef" + "0" * 24
        b = "deadbeef" + "f" * 24
        prefixes = guid_prefixes([a, b])
        assert prefixes[a] != prefixes[b]
        assert len(prefixes[a]) > 8
        assert a.startswith(prefixes[a]) and b.startswith(prefixes[b])

    def test_no_collision_keeps_short_prefixes(self):
        a, b = guid_from_seed("one"), guid_from_seed("two")
        prefixes = guid_prefixes([a, b])
        assert {len(p) for p in prefixes.values()} == {8}

    def test_composed_ui_widget_ids_stay_distinct(self):
        colliding = ["deadbeef" + "0" * 24, "deadbeef" + "f" * 24]
        network = HomeNetwork()
        element = SoftwareElement(SEID(guid_from_seed("collide-app"), 0),
                                  network.messaging)
        element.attach()
        appliances = []
        for guid in colliding:
            appliance = ApplianceHandle(guid, f"Lamp {guid[-1]}", "light")
            appliance.add(FcmHandle(element, SEID(guid, 1), {
                "fcm.type": "light", "device.guid": guid,
                "device.name": appliance.name, "device.class": "light",
            }))
            appliances.append(appliance)
        root = compose_ui(appliances)
        ids = [w.widget_id for w in root.walk() if w.widget_id]
        assert len(ids) == len(set(ids)), f"colliding widget ids: {ids}"
        assert appliances[0].guid_prefix != appliances[1].guid_prefix


class TestListenerLifecycle:
    def test_rebuild_churn_keeps_listener_count_flat(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        counts = {h.fcm_type: len(h.listeners)
                  for h in app.appliances[0].fcms}
        assert all(n > 0 for n in counts.values())
        for _ in range(10):
            app.rebuild()
            network.settle()
        for handle in app.appliances[0].fcms:
            assert len(handle.listeners) == counts[handle.fcm_type], (
                f"{handle.fcm_type} leaked listeners across rebuilds")

    def test_set_root_none_detaches_all_listeners(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        handles = list(app.appliances[0].fcms)
        window.set_root(Column())
        for handle in handles:
            assert handle.listeners == []

    def test_close_tears_down_final_root(self):
        tv = Television("TV")
        network, window, app = make_app(tv)
        handles = list(app.appliances[0].fcms)
        app.close()
        for handle in handles:
            assert handle.listeners == []

    def test_legacy_builders_also_detach(self):
        tv = Television("TV")
        network, window, app = make_app(tv, dynamic=False)
        before = {h.fcm_type: len(h.listeners)
                  for h in app.appliances[0].fcms}
        for _ in range(10):
            app.rebuild()
        for handle in app.appliances[0].fcms:
            assert len(handle.listeners) == before[handle.fcm_type]


class TestRefrigerator:
    """The descriptor-only appliance: no panel builder, no DDI spec."""

    def test_no_legacy_builder_registered(self):
        assert "refrigerator" not in PANEL_BUILDERS

    def test_component_sections_render(self):
        fridge = Refrigerator("Fridge")
        network, window, app = make_app(fridge)
        prefix = fridge.guid[:8]
        for component in ("fridge", "freezer", "icemaker"):
            section = window.root.find(
                f"{prefix}.refrigerator.component.{component}")
            assert section is not None, f"missing section {component}"
        region = window.render()
        assert not region.is_empty

    def test_widgets_drive_the_fcm(self):
        fridge = Refrigerator("Fridge")
        network, window, app = make_app(fridge)
        prefix = fridge.guid[:8]
        from repro.havi import FcmType
        fcm = fridge.dcm.fcm_by_type(FcmType.REFRIGERATOR)
        target = window.root.find(f"{prefix}.refrigerator.freezer-target")
        target._set_and_notify(-20)
        network.settle()
        assert fcm.get_state("freezer_target") == -20
        level = window.root.find(f"{prefix}.refrigerator.ice-level")
        assert level.value == 60
        window.root.find(f"{prefix}.refrigerator.ice-dispense").activate()
        network.settle()
        assert fcm.get_state("ice_level") == 50
        assert level.value == 50  # progress bar followed the event

    def test_range_unit_label_follows(self):
        fridge = Refrigerator("Fridge")
        network, window, app = make_app(fridge)
        prefix = fridge.guid[:8]
        label = window.root.find(
            f"{prefix}.refrigerator.fridge-target-label")
        assert label.text == "4C"
        window.root.find(
            f"{prefix}.refrigerator.fridge-target")._set_and_notify(6)
        network.settle()
        assert label.text == "6C"


class TestMultiApplianceHome:
    def test_mixed_home_builds_tabs_with_fridge(self):
        tv = Television("TV")
        fridge = Refrigerator("Fridge")
        network, window, app = make_app(tv, fridge)
        tabs = window.root
        assert sorted(tabs.titles) == ["Fridge", "TV"]
        assert window.root.find(
            f"{fridge.guid[:8]}.refrigerator.ice-mode") is not None
        assert window.root.find(f"{tv.guid[:8]}.tuner.power") is not None

"""Unit tests: Transport credit flow control, vectored sends, sockets."""

import pytest

from repro.net import (
    CELLULAR_PDC,
    ETHERNET_100,
    LOOPBACK,
    LinkProfile,
    Transport,
    credit_watermarks,
    encode_frame,
    frame_chunks,
    make_pipe,
    make_socket_transport_pair,
)
from repro.net.transport import MIN_CREDIT, as_chunks
from repro.uip.wire import Writer
from repro.util import Scheduler, TransportClosed


class TestAsChunks:
    def test_bytes_passthrough(self):
        payload = b"hello"
        chunks, total = as_chunks(payload)
        assert chunks == [b"hello"] and total == 5
        assert chunks[0] is payload  # zero-copy for immutable input

    def test_mutable_inputs_are_copied(self):
        buf = bytearray(b"abc")
        chunks, _ = as_chunks(buf)
        buf[0] = ord("z")
        assert chunks[0] == b"abc"

    def test_chunk_list(self):
        chunks, total = as_chunks([b"ab", memoryview(b"cd"), bytearray(b"e")])
        assert chunks == [b"ab", b"cd", b"e"] and total == 5

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            as_chunks(42)
        with pytest.raises(TypeError):
            as_chunks([b"ok", "not bytes"])


class TestCreditWatermarks:
    def test_floor_on_slow_links(self):
        high, low = credit_watermarks(CELLULAR_PDC)
        assert high == MIN_CREDIT and low == MIN_CREDIT // 2

    def test_scales_with_bdp(self):
        fat = LinkProfile("fat", latency_s=0.1, bandwidth_bps=1e9)
        high, low = credit_watermarks(fat)
        assert high == int(2 * (1e9 / 8) * 0.2)
        assert low == high // 2

    def test_all_presets_have_sane_hysteresis(self):
        for profile in (LOOPBACK, ETHERNET_100, CELLULAR_PDC):
            high, low = credit_watermarks(profile)
            assert 0 < low < high


class TestPipeCredit:
    def test_queued_bytes_track_in_flight_data(self):
        sched = Scheduler()
        pipe = make_pipe(sched, CELLULAR_PDC)
        pipe.b.on_receive = lambda data: None
        pipe.a.send(b"\x00" * 1000)
        assert pipe.a.queued_bytes == 1000
        assert pipe.a.stats.peak_queued_bytes == 1000
        sched.run_until_idle()
        assert pipe.a.queued_bytes == 0
        assert pipe.a.stats.peak_queued_bytes == 1000

    def test_writable_goes_false_at_high_watermark(self):
        sched = Scheduler()
        pipe = make_pipe(sched, CELLULAR_PDC)
        assert pipe.a.writable
        pipe.a.send(b"\x00" * pipe.a.credit_limit)
        assert not pipe.a.writable
        sched.run_until_idle()
        assert pipe.a.writable

    def test_on_writable_fires_below_low_watermark(self):
        sched = Scheduler()
        pipe = make_pipe(sched, CELLULAR_PDC)
        fired = []
        pipe.a.on_writable = lambda: fired.append(sched.now())
        # two sends: credit stays saturated until the first delivery drops
        # the backlog to half the limit (= the low watermark)
        pipe.a.send(b"\x00" * pipe.a.credit_limit)
        pipe.a.send(b"\x00" * (pipe.a.credit_limit // 2))
        sched.run_until_idle()
        assert len(fired) == 1

    def test_no_spurious_writable_when_never_saturated(self):
        sched = Scheduler()
        pipe = make_pipe(sched, ETHERNET_100)
        fired = []
        pipe.a.on_writable = lambda: fired.append(1)
        pipe.a.send(b"tiny")
        sched.run_until_idle()
        assert fired == []

    def test_lost_messages_do_not_leak_credit(self):
        sched = Scheduler()
        lossy = LinkProfile("lossy", latency_s=0.0, bandwidth_bps=1e9,
                            loss=0.5)
        pipe = make_pipe(sched, lossy, seed=7)
        for _ in range(50):
            pipe.a.send(b"\x00" * 100)
        sched.run_until_idle()
        assert pipe.a.queued_bytes == 0
        assert pipe.a.stats.messages_dropped > 0


class TestPipeVectoredSend:
    def test_chunk_list_arrives_in_order(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        got = []
        pipe.b.on_receive = got.append
        pipe.a.send([b"ab", b"cd", b"ef"])
        sched.run_until_idle()
        assert b"".join(got) == b"abcdef"
        assert pipe.a.stats.messages_sent == 1
        assert pipe.b.stats.messages_received == 1
        assert pipe.b.stats.bytes_received == 6

    def test_chunked_send_times_match_flat_send(self):
        link = LinkProfile("thin", latency_s=0.0, bandwidth_bps=8000)
        arrivals = {}
        for mode, payload in (("flat", b"\x00" * 1000),
                              ("chunks", [b"\x00" * 500] * 2)):
            sched = Scheduler()
            pipe = make_pipe(sched, link)
            pipe.b.on_receive = lambda d, m=mode: arrivals.setdefault(
                m, sched.now())
            pipe.a.send(payload)
            sched.run_until_idle()
        assert arrivals["flat"] == pytest.approx(arrivals["chunks"])

    def test_buffered_chunks_flush_to_late_callback(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        pipe.a.send([b"one", b"two"])
        sched.run_until_idle()
        got = []
        pipe.b.on_receive = got.append
        assert b"".join(got) == b"onetwo"

    def test_empty_chunk_list_is_a_noop_message(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        got = []
        pipe.b.on_receive = got.append
        pipe.a.send([])
        sched.run_until_idle()
        assert got == []
        assert pipe.b.stats.messages_received == 1


class TestSocketTransport:
    def test_roundtrip(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        got = []
        pair.b.on_receive = got.append
        pair.a.send(b"hello")
        sched.run_until_idle()
        assert b"".join(got) == b"hello"
        assert pair.b.stats.bytes_received == 5

    def test_vectored_send(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        got = []
        pair.b.on_receive = got.append
        pair.a.send([b"ab", b"cd", b"ef"])
        sched.run_until_idle()
        assert b"".join(got) == b"abcdef"

    def test_duplex(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        got_a, got_b = [], []
        pair.a.on_receive = got_a.append
        pair.b.on_receive = got_b.append
        pair.a.send(b"to-b")
        pair.b.send(b"to-a")
        sched.run_until_idle()
        assert b"".join(got_b) == b"to-b"
        assert b"".join(got_a) == b"to-a"

    def test_large_transfer_exceeding_kernel_buffer(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        blob = bytes(range(256)) * 8192  # 2 MiB, forces outbox spill
        got = []
        pair.b.on_receive = got.append
        pair.a.send(blob)
        sched.run_until_idle()
        assert b"".join(got) == blob
        assert pair.a.queued_bytes == 0

    def test_credit_released_as_peer_reads(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched, CELLULAR_PDC)
        pair.b.on_receive = lambda data: None
        pair.a.send(b"\x00" * (pair.a.credit_limit + 100))
        assert not pair.a.writable
        sched.run_until_idle()
        assert pair.a.queued_bytes == 0
        assert pair.a.writable

    def test_close_flushes_then_signals_peer(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        got, closed = [], []
        pair.b.on_receive = got.append
        pair.b.on_close = lambda: closed.append(True)
        pair.a.send(b"last words")
        pair.a.close()
        sched.run_until_idle()
        assert b"".join(got) == b"last words"
        assert closed == [True]
        assert not pair.b.is_open

    def test_close_flushes_outbox_backlog(self):
        # a payload far beyond the kernel socket buffer spills into the
        # userspace outbox; close() must still deliver every byte and
        # only then EOF the peer
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        blob = bytes(range(256)) * 4096  # 1 MiB
        got, closed = [], []
        pair.b.on_receive = got.append
        pair.b.on_close = lambda: closed.append(True)
        pair.a.send(blob)
        pair.a.close()
        sched.run_until_idle()
        assert b"".join(got) == blob
        assert closed == [True]
        assert pair.a.queued_bytes == 0

    def test_peer_hard_close_releases_credit_and_closes(self):
        # the peer's socket dies outright (reset, not graceful EOF):
        # the sender must get all its credit back and learn it is closed,
        # not wedge forever waiting for a drain that cannot happen
        sched = Scheduler()
        pair = make_socket_transport_pair(sched, CELLULAR_PDC)
        closed = []
        pair.a.on_close = lambda: closed.append(True)
        pair.a.send(b"\x00" * (pair.a.credit_limit * 100))
        assert not pair.a.writable
        pair.b._sock.close()  # hard reset, no SHUT_WR handshake
        pair.a.send(b"more")  # next write hits EPIPE
        sched.run_until_idle()
        assert pair.a.queued_bytes == 0
        assert not pair.a.is_open
        assert closed == [True]

    def test_send_after_close_raises(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        pair.a.close()
        with pytest.raises(TransportClosed):
            pair.a.send(b"nope")

    def test_is_a_transport(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        assert isinstance(pair.a, Transport)
        pair.a.close()
        sched.run_until_idle()


class TestSocketPumpFixes:
    """Regression suite for the socket-transport pump bugfix sweep."""

    def test_blocked_outbox_has_continuation_armed_at_stall_time(self):
        # sendmsg hit EAGAIN with bytes left in the outbox: the flush
        # continuation must already be scheduled at that instant, not
        # depend on some unrelated later send coming along
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        blob = b"x" * (2 * 1024 * 1024)
        got = []
        pair.b.on_receive = got.append
        pair.a.send(blob)
        assert pair.a._outbox, "payload must exceed the kernel buffer"
        assert sched.pending_count() > 0
        sched.run_until_idle()
        assert not pair.a._outbox
        assert b"".join(got) == blob

    def test_raising_receive_callback_does_not_stall_peer_flush(self):
        # the drain arms the sender's flush *before* dispatching, so a UI
        # callback blowing up cannot strand the sender's outbox: recovery
        # is just running the scheduler again
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        blob = b"y" * (2 * 1024 * 1024)
        calls = []

        def explode(data):
            calls.append(bytes(data))
            raise RuntimeError("ui fell over")

        pair.b.on_receive = explode
        pair.a.send(blob)
        with pytest.raises(RuntimeError):
            sched.run_until_idle()
        pair.b.on_receive = lambda data: calls.append(bytes(data))
        sched.run_until_idle()
        assert not pair.a._outbox
        assert b"".join(calls) == blob
        assert pair.a.queued_bytes == 0

    def test_recv_pump_yields_at_byte_budget(self):
        # an unbounded drain would hand one busy link the whole turn;
        # the pump must stop at RECV_BUDGET and reschedule the remainder
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        pair.b.RECV_BUDGET = 8192
        pair.b.on_receive = lambda data: None
        pair.a.send(b"z" * 65536)
        pair.b._recv_scheduled = True  # claim the slot; pump directly
        pair.b._pump_recv()
        assert pair.b.stats.bytes_received <= 8192
        assert sched.pending_count() > 0  # remainder rescheduled
        sched.run_until_idle()
        assert pair.b.stats.bytes_received == 65536

    def test_recv_budget_interleaves_other_events(self):
        # while one link drains a big transfer in budgeted slices, an
        # unrelated event scheduled later at the same instant still gets
        # to run before the drain finishes
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        pair.b.RECV_BUDGET = 4096
        order = []
        pair.b.on_receive = lambda data: order.append("chunk")
        pair.a.send(b"w" * 65536)
        sched.call_soon(lambda: order.append("other"))
        sched.run_until_idle()
        assert "other" in order
        assert order.index("other") < len(order) - 1, \
            "the budgeted drain must not monopolise the turn"

    def test_messages_received_counts_frames_not_syscalls(self):
        # several back-to-back sends coalesce in the kernel buffer and
        # arrive in one recv() syscall; the counter must still match the
        # sender's messages_sent (framed-message parity)
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        pair.b.on_receive = lambda data: None
        for i in range(5):
            pair.a.send(bytes([i]) * (i + 1))
        sched.run_until_idle()
        assert pair.a.stats.messages_sent == 5
        assert pair.b.stats.messages_received == 5

    def test_messages_received_parity_when_stream_resegments(self):
        # a message bigger than one recv() syscall: N syscalls, one frame
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        pair.b.on_receive = lambda data: None
        pair.a.send(b"a" * 300_000)  # several 64 KiB reads
        pair.a.send([b"tail", b"-bits"])
        sched.run_until_idle()
        assert pair.a.stats.messages_sent == 2
        assert pair.b.stats.messages_received == 2

    def test_empty_socket_message_counts_once(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        pair.b.on_receive = lambda data: None
        pair.a.send([])
        pair.a.send([b"", b""])
        sched.run_until_idle()
        assert pair.a.stats.messages_sent == 2
        assert pair.b.stats.messages_received == 2

    def test_graceful_eof_with_queued_credit_releases_it(self):
        # the peer EOFs while this side still has charged credit (bytes
        # queued toward the peer that can now never drain): the credit
        # must come back, like the hard-reset path already guaranteed
        sched = Scheduler()
        pair = make_socket_transport_pair(sched, CELLULAR_PDC)
        pair.a.on_receive = lambda data: None
        pair.b.on_receive = lambda data: None
        pair.b.send(b"\x00" * (pair.b.credit_limit * 50))  # b -> a backlog
        assert not pair.b.writable
        pair.a.close()   # a EOFs; b's pump sees it with credit charged
        sched.run_until_idle()
        assert not pair.b.is_open
        assert pair.b.queued_bytes == 0
        assert pair.b.writable


class TestFrameChunks:
    def test_matches_encode_frame(self):
        payload = b"payload bytes"
        assert b"".join(frame_chunks(payload)) == encode_frame(payload)

    def test_chunk_list_payload_not_joined(self):
        part_a, part_b = b"aaaa", b"bbb"
        chunks = frame_chunks([part_a, part_b])
        assert chunks[1] is part_a and chunks[2] is part_b
        assert b"".join(chunks) == encode_frame(part_a + part_b)

    def test_oversized_rejected(self):
        from repro.net.framing import MAX_FRAME_SIZE
        from repro.util.errors import TransportError
        with pytest.raises(TransportError):
            frame_chunks([b"\x00" * (MAX_FRAME_SIZE // 2 + 1)] * 2)


class TestWriterChunks:
    def test_chunks_join_to_getvalue(self):
        writer = Writer().u8(7).u16(300).raw(b"xyz").pad(2)
        assert b"".join(writer.chunks()) == writer.getvalue()

"""Unit tests for the experiment report generator."""

import json

import pytest

from repro.tools.report import (
    EXPERIMENT_TITLES,
    group_benchmarks,
    main,
    render_report,
)


def sample_data():
    return {
        "machine_info": {"python_version": "3.11", "machine": "test"},
        "benchmarks": [
            {
                "fullname": "benchmarks/bench_encodings.py::test_encode",
                "stats": {"mean": 0.0021},
                "extra_info": {"payload_bytes": 2078, "ratio_vs_raw": 31.5},
            },
            {
                "fullname": "benchmarks/bench_bandwidth.py::test_session",
                "stats": {"mean": 0.27},
                "extra_info": {"device_down": 18549},
            },
            {
                "fullname": "benchmarks/bench_unknown.py::test_custom",
                "stats": {"mean": 1.5},
                "extra_info": {},
            },
        ],
    }


class TestGrouping:
    def test_groups_by_experiment_file(self):
        groups = group_benchmarks(sample_data())
        assert "bench_encodings" in groups
        assert "bench_bandwidth" in groups
        assert len(groups["bench_encodings"]) == 1

    def test_unknown_files_still_grouped(self):
        groups = group_benchmarks(sample_data())
        assert "bench_unknown" in groups

    def test_empty_groups_dropped(self):
        groups = group_benchmarks(sample_data())
        assert "bench_switching" not in groups

    def test_experiment_order_preserved(self):
        keys = list(group_benchmarks(sample_data()))
        assert keys.index("bench_encodings") < keys.index("bench_bandwidth")


class TestRendering:
    def test_report_contains_titles_and_metrics(self):
        report = render_report(sample_data())
        assert EXPERIMENT_TITLES["bench_encodings"] in report
        assert "payload_bytes=2078" in report
        assert "total benchmarks: 3" in report

    def test_time_units(self):
        report = render_report(sample_data())
        assert "2.10 ms" in report
        assert "270.00 ms" in report
        assert "1.500 s" in report

    def test_empty_dump(self):
        report = render_report({"benchmarks": []})
        assert "total benchmarks: 0" in report


class TestCli:
    def test_main_renders_file(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(sample_data()))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "EXPERIMENT REPORT" in out

    def test_main_missing_file(self, capsys):
        assert main(["/no/such/file.json"]) == 1
        assert "cannot read" in capsys.readouterr().err

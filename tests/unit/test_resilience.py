"""Unit tests for self-healing sessions: liveness heartbeats, server-side
session parking + warm resume, proxy reconnect with backoff, device-leg
redial, and the satellite robustness fixes that rode along (listener
accept-path leak, quarantine diagnostics, handshake name-length cap)."""

import socket

import pytest

from repro.devices import Pda
from repro.graphics import RGB565
from repro.home import Home
from repro.net import ETHERNET_100, Reactor, TcpListener, make_pipe
from repro.proxy.upstream import UniIntClient
from repro.server import UniIntServer
from repro.toolkit import Button, Column, Label, UIWindow
from repro.uip import ClientHandshake, ServerHandshake
from repro.uip.handshake import MAX_NAME_LEN
from repro.util import Scheduler
from repro.windows import DisplayServer
from repro.appliances import Television


def make_server(width=160, height=120, **server_kwargs):
    scheduler = Scheduler()
    display = DisplayServer(width, height)
    window = UIWindow(width, height)
    col = Column()
    col.add(Label("hello"))
    col.add(Button("Go"))
    window.set_root(col)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler, name="test-home",
                          **server_kwargs)
    return scheduler, display, window, server


def connect(scheduler, server, **kwargs):
    pipe = make_pipe(scheduler, ETHERNET_100, name="c")
    server.accept(pipe.a)
    return UniIntClient(pipe.b, **kwargs)


def resilient_home():
    home = Home(resilience=True)
    home.add_appliance(Television("tv"))
    pda = Pda("pda-1", home.scheduler)
    home.add_device(pda)
    home.scheduler.run_until_idle()
    return home, pda


class TestSessionParking:
    def test_no_grant_without_resume_grace(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        assert client.resume_token is None
        assert server.parked_count == 0

    def test_grant_and_park_on_abrupt_loss(self):
        scheduler, *_, server = make_server(resume_grace_s=30.0)
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        assert client.resume_token is not None
        client.endpoint.abort()
        scheduler.run_until_idle()
        assert server.sessions == []
        assert server.sessions_parked == 1
        assert server.parked_count == 1

    def test_resume_transplants_state_with_one_full_resync(self):
        scheduler, display, window, server = make_server(resume_grace_s=30.0)
        client = connect(scheduler, server, pixel_format=RGB565)
        scheduler.run_until_idle()
        token = client.resume_token
        client.endpoint.abort()
        scheduler.run_until_idle()

        revived = connect(scheduler, server, pixel_format=RGB565,
                          resume_from=token)
        scheduler.run_until_idle()
        assert server.sessions_resumed == 1
        assert server.parked_count == 0
        assert len(server.sessions) == 1
        session = server.sessions[0]
        assert session.resumed
        assert session.pixel_format == RGB565
        # exactly one full-frame resync: the resuming client's single
        # non-incremental request
        assert revived.updates_received == 1
        # the RGB565 wire is lossy, so compare against the dead client's
        # mirror (same format, same display content)
        assert revived.framebuffer == client.framebuffer
        # a fresh token was granted to the new connection
        assert revived.resume_token is not None
        assert revived.resume_token != token

    def test_expired_token_degrades_to_fresh_session(self):
        scheduler, display, window, server = make_server(resume_grace_s=2.0)
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        token = client.resume_token
        client.endpoint.abort()
        scheduler.run_until_idle()
        scheduler.run_for(10.0)  # grace window sails past

        revived = connect(scheduler, server, resume_from=token)
        scheduler.run_until_idle()
        assert server.sessions_resumed == 0
        assert server.resume_misses == 1
        assert server.sessions_expired == 1
        # the session still works, just without the parked state
        assert revived.updates_received == 1
        assert revived.framebuffer == display.framebuffer

    def test_reap_stale_sessions(self):
        scheduler, *_, server = make_server(resume_grace_s=1.0)
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        client.endpoint.abort()
        scheduler.run_until_idle()
        assert server.parked_count == 1
        assert server.reap_stale_sessions() == 0  # still inside the grace
        scheduler.run_for(5.0)
        assert server.reap_stale_sessions() == 1
        assert server.parked_count == 0
        assert server.sessions_expired == 1

    def test_takeover_presenting_a_live_token(self):
        scheduler, *_, server = make_server(resume_grace_s=30.0)
        first = connect(scheduler, server)
        scheduler.run_until_idle()
        token = first.resume_token
        # the old leg is still "live" from the server's point of view when
        # the new connection presents its token: takeover must park the
        # zombie first, then resume into the newcomer
        second = connect(scheduler, server, resume_from=token)
        scheduler.run_until_idle()
        assert server.sessions_resumed == 1
        assert len(server.sessions) == 1
        assert server.sessions[0].resumed
        assert second.updates_received >= 1

    def test_deliberate_close_discards_token(self):
        scheduler, *_, server = make_server(resume_grace_s=30.0)
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        server.sessions[0].close()
        scheduler.run_until_idle()
        assert server.parked_count == 0
        assert server.sessions_parked == 0


class TestSessionSelfHealing:
    def test_rst_recovers_with_one_resync(self):
        home, pda = resilient_home()
        user = home.default_user
        frames_before = pda.frames_received
        user.session.upstream.endpoint.abort()
        home.scheduler.run_until_idle()
        res = user.session.resilience
        assert res.reconnect_count == 1
        assert res.death_reasons == ["transport closed"]
        assert len(res.reconnect_latencies) == 1
        assert user.session.upstream.ready
        # exactly one full-frame resync flowed to the new upstream
        assert user.session.upstream.updates_received == 1
        assert home.uniint_server.sessions_resumed == 1
        assert pda.frames_received == frames_before + 1
        assert user.current_output == "pda-1"

    def test_heartbeat_detects_silent_death(self):
        home, pda = resilient_home()
        user = home.default_user
        # blackhole the server side: bytes in, nothing out — only the
        # miss-based heartbeat can notice this
        home.uniint_server.sessions[0].endpoint.on_receive = lambda d: None
        pda.send_event({"type": "tap", "x": 1, "y": 1})  # wakes heartbeat
        home.scheduler.run_until_idle()
        res = user.session.resilience
        assert res.death_reasons == ["3 unanswered pings"]
        assert res.reconnect_count == 1
        assert user.session.upstream.ready

    def test_idle_heartbeats_go_dormant(self):
        home, pda = resilient_home()
        res = home.default_user.session.resilience
        home.scheduler.run_until_idle()
        beats = res.heartbeats_sent
        # idle: the one-shot chain has gone dormant, so the clock is not
        # being dragged forward forever and no further beats fire
        home.scheduler.run_until_idle()
        assert res.heartbeats_sent == beats
        # activity wakes it again
        pda.send_event({"type": "tap", "x": 1, "y": 1})
        home.scheduler.run_until_idle()
        assert res.heartbeats_sent > beats

    def test_gives_up_after_max_attempts(self):
        home, pda = resilient_home()
        user = home.default_user
        res = user.session.resilience

        def dead_dial():
            from repro.util.errors import TransportError
            raise TransportError("house burned down")

        res.dial = dead_dial
        user.session.upstream.endpoint.abort()
        home.scheduler.run_until_idle()
        assert res.failed_permanently
        assert not res.reconnecting
        assert res.reconnect_count == 0
        assert len(res.attempt_failures) == res.max_attempts
        assert "gave up after" in res.give_up_reason
        # permanent failure is quiescent: no timers left spinning
        assert home.scheduler.pending_count() == 0

    def test_backoff_grows_and_caps(self):
        home, pda = resilient_home()
        res = home.default_user.session.resilience
        res.max_attempts = 12
        from repro.util.errors import TransportError

        times = []
        real_dial = res.dial

        def failing_dial():
            times.append(home.scheduler.now())
            raise TransportError("nope")

        res.dial = failing_dial
        home.default_user.session.upstream.endpoint.abort()
        home.scheduler.run_until_idle()
        gaps = [b - a for a, b in zip(times, times[1:])]
        # exponential up to the cap with +/-50% jitter
        assert gaps[0] < 1.0
        assert all(gap <= res.backoff_cap_s * 1.5 + 1e-9 for gap in gaps)
        assert max(gaps) > gaps[0]

    def test_close_disables_resilience(self):
        home, pda = resilient_home()
        user = home.default_user
        res = user.session.resilience
        user.proxy.disconnect()
        home.scheduler.run_until_idle()
        assert not res.enabled
        assert res.reconnect_count == 0
        assert home.scheduler.pending_count() == 0


class TestDeviceLegSelfHealing:
    def test_leg_bounce_redials_and_reselects(self):
        home, pda = resilient_home()
        user = home.default_user
        pda.endpoint_for(user.proxy.proxy_id).abort()
        home.scheduler.run_until_idle()
        assert pda.link_reconnects == 1
        assert pda.connected
        assert user.current_input == "pda-1"
        assert user.current_output == "pda-1"
        # the screen still works over the new leg
        frames = pda.frames_received
        user.app.show_appliance("tv")
        home.scheduler.run_until_idle()
        assert pda.frames_received >= frames

    def test_deliberate_disconnect_is_not_retried(self):
        home, pda = resilient_home()
        pda.disconnect()
        home.scheduler.run_until_idle()
        assert not pda.connected
        assert pda.link_reconnects == 0

    def test_gives_up_after_budget(self):
        home, pda = resilient_home()
        user = home.default_user
        pda.reconnect_max_attempts = 2
        # make every redial fail: the proxy claims the id is taken
        import repro.proxy.proxy as proxy_mod
        from repro.util.errors import ProxyError

        def reject(device, endpoint):
            raise ProxyError("no room at the inn")

        user.proxy.register_device = reject
        pda.endpoint_for(user.proxy.proxy_id).abort()
        home.scheduler.run_until_idle()
        assert pda.link_reconnects == 0
        assert pda.link_reconnects_failed == 1
        assert not pda.connected


class TestSatelliteFixes:
    def test_listener_closes_conn_when_accept_callback_raises(self):
        reactor = Reactor()
        accepted_fds = []

        def exploding_accept(conn, addr):
            accepted_fds.append(conn)
            raise RuntimeError("no thanks")

        listener = TcpListener(reactor, exploding_accept)
        client = socket.create_connection(listener.address)
        # the raise quarantines the listener's orphan handling path, but
        # the freshly accepted socket must not leak open
        for _ in range(50):
            reactor.turn(block_s=0.01)
            if accepted_fds:
                break
        assert accepted_fds
        assert accepted_fds[0].fileno() == -1, "accepted socket must close"
        client.close()
        listener.close()
        reactor.close()

    def test_quarantine_diagnostics(self):
        import time as _time
        reactor = Reactor()
        sched = Scheduler()
        member = reactor.add_scheduler(sched, name="sick-home")

        def boom():
            raise ValueError("contained")

        before = _time.time()
        sched.call_soon(boom)
        reactor.run_until_idle()
        assert member.failed
        assert member.failed_at is not None
        assert before <= member.failed_at <= _time.time()
        assert "ValueError: contained" in member.last_traceback
        assert len(member.tracebacks) == 1
        assert "QUARANTINED" in repr(member)
        assert "sick-home" in repr(member)
        assert "quarantined=['sick-home']" in repr(reactor)
        reactor.close()

    def test_partitioned_state_in_repr(self):
        reactor = Reactor()
        sched = Scheduler()
        member = reactor.add_scheduler(sched, name="walled")
        reactor.partition_member(member)
        assert "PARTITIONED" in repr(member)
        reactor.heal_member(member)
        assert "ok" in repr(member)
        reactor.close()

    def test_handshake_rejects_absurd_name_length(self):
        # hand-drive the client against a hostile ServerInit whose name
        # length claims ~4 GiB: must fail, not buffer forever
        server = ServerHandshake(160, 120,
                                 __import__("repro.graphics",
                                            fromlist=["RGB888"]).RGB888,
                                 "x" * 10)
        client = ClientHandshake()
        client.feed(server.outgoing())
        server.feed(client.outgoing())
        client.feed(server.outgoing())
        server.feed(client.outgoing())
        wire = bytearray(server.outgoing())  # ServerInit
        # poison the u32 name length (offset: 2+2+16 = 20)
        wire[20:24] = (MAX_NAME_LEN + 1).to_bytes(4, "big")
        client.feed(bytes(wire))
        assert client.failed is not None
        assert "exceeds" in client.failed

    def test_handshake_accepts_max_name_length(self):
        from repro.graphics import RGB888
        server = ServerHandshake(160, 120, RGB888, "n" * MAX_NAME_LEN)
        client = ClientHandshake()
        client.feed(server.outgoing())
        server.feed(client.outgoing())
        client.feed(server.outgoing())
        server.feed(client.outgoing())
        client.feed(server.outgoing())
        assert client.done
        assert client.result.name == "n" * MAX_NAME_LEN

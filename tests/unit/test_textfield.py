"""Unit tests for the TextField widget and direct channel entry."""

import pytest

from repro.toolkit import Column, TextField, UIWindow
from repro.uip import keysyms
from repro.util.errors import ToolkitError


def field_window(**kwargs):
    window = UIWindow(200, 60)
    col = Column()
    field = col.add(TextField(**kwargs))
    window.set_root(col)
    assert window.focus is field
    return window, field


def type_text(window, text):
    for char in text:
        window.press_key(ord(char))


class TestTextField:
    def test_typing_inserts(self):
        window, field = field_window()
        type_text(window, "hello")
        assert field.text == "hello"
        assert field.cursor == 5

    def test_backspace(self):
        window, field = field_window(text="abc")
        window.press_key(keysyms.BACKSPACE)
        assert field.text == "ab"

    def test_backspace_at_start_is_noop(self):
        window, field = field_window(text="abc")
        window.press_key(keysyms.HOME)
        window.press_key(keysyms.BACKSPACE)
        assert field.text == "abc"

    def test_cursor_movement_and_midline_insert(self):
        window, field = field_window(text="ad")
        window.press_key(keysyms.LEFT)
        type_text(window, "bc")
        assert field.text == "abcd"

    def test_delete_forward(self):
        window, field = field_window(text="abc")
        window.press_key(keysyms.HOME)
        window.press_key(keysyms.DELETE)
        assert field.text == "bc"

    def test_home_end(self):
        window, field = field_window(text="abc")
        window.press_key(keysyms.HOME)
        assert field.cursor == 0
        window.press_key(keysyms.END)
        assert field.cursor == 3

    def test_max_length_enforced(self):
        window, field = field_window(max_length=3)
        type_text(window, "abcdef")
        assert field.text == "abc"

    def test_return_submits(self):
        submitted = []
        window, field = field_window(
            on_submit=lambda w: submitted.append(w.text))
        type_text(window, "42")
        window.press_key(keysyms.RETURN)
        assert submitted == ["42"]

    def test_setter_truncates_and_clamps_cursor(self):
        window, field = field_window(text="abcdef", max_length=10)
        window.press_key(keysyms.END)
        field.text = "xy"
        assert field.cursor == 2

    def test_clear(self):
        window, field = field_window(text="abc")
        field.clear()
        assert field.text == ""
        assert field.cursor == 0

    def test_bad_max_length(self):
        with pytest.raises(ToolkitError):
            TextField(max_length=0)

    def test_renders_with_cursor(self):
        window, field = field_window(text="hi")
        region = window.render()
        assert not region.is_empty


class TestChannelEntry:
    def test_remote_digits_set_channel(self):
        from repro import Home
        from repro.appliances import Television
        from repro.devices import RemoteControl, TvDisplay
        from repro.havi import FcmType
        home = Home()
        tv = home.add_appliance(Television("TV"))
        home.settle()
        remote = RemoteControl("r", home.scheduler)
        panel = TvDisplay("p", home.scheduler)
        home.add_device(remote)
        home.add_device(panel)
        home.settle()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        home.settle()
        # walk focus to the channel entry field
        entry = home.window.root.find(f"{tv.guid[:8]}.tuner.ch-entry")
        entry.request_focus()
        remote.press("8")
        remote.press("ok")
        home.settle()
        assert tuner.get_state("channel") == 8
        assert entry.text == ""  # cleared after submit

    def test_non_numeric_entry_ignored(self):
        from repro import Home
        from repro.appliances import Television
        from repro.havi import FcmType
        home = Home()
        tv = home.add_appliance(Television("TV"))
        home.settle()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        home.settle()
        entry = home.window.root.find(f"{tv.guid[:8]}.tuner.ch-entry")
        entry.request_focus()
        entry.text = "x"
        home.window.press_key(keysyms.RETURN)
        home.settle()
        assert tuner.get_state("channel") == 1  # unchanged

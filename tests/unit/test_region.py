"""Unit tests for rectangle and region algebra."""

import pytest

from repro.graphics import Rect, Region


class TestRect:
    def test_edges_and_area(self):
        r = Rect(2, 3, 4, 5)
        assert (r.x2, r.y2, r.area) == (6, 8, 20)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 5)

    def test_empty(self):
        assert Rect(1, 1, 0, 5).is_empty
        assert not Rect(0, 0, 1, 1).is_empty

    def test_contains_point(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)
        assert r.contains_point(9, 9)
        assert not r.contains_point(10, 10)
        assert not r.contains_point(-1, 0)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 3, 3))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 10, 10))
        assert outer.contains_rect(Rect(100, 100, 0, 0))  # empty fits anywhere

    def test_intersect(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 10, 10)
        assert a.intersect(b) == Rect(5, 5, 5, 5)

    def test_intersect_disjoint_is_empty(self):
        assert Rect(0, 0, 5, 5).intersect(Rect(10, 10, 5, 5)).is_empty

    def test_intersect_touching_is_empty(self):
        assert Rect(0, 0, 5, 5).intersect(Rect(5, 0, 5, 5)).is_empty

    def test_union_bounds(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(8, 8, 2, 2)
        assert a.union_bounds(b) == Rect(0, 0, 10, 10)

    def test_union_bounds_with_empty(self):
        a = Rect(3, 3, 2, 2)
        assert a.union_bounds(Rect(0, 0, 0, 0)) == a
        assert Rect(0, 0, 0, 0).union_bounds(a) == a

    def test_subtract_no_overlap(self):
        a = Rect(0, 0, 5, 5)
        assert a.subtract(Rect(10, 10, 2, 2)) == [a]

    def test_subtract_full_cover(self):
        assert Rect(2, 2, 3, 3).subtract(Rect(0, 0, 10, 10)) == []

    def test_subtract_center_hole(self):
        pieces = Rect(0, 0, 10, 10).subtract(Rect(4, 4, 2, 2))
        assert sum(p.area for p in pieces) == 100 - 4
        # pieces are disjoint
        for i, p in enumerate(pieces):
            for q in pieces[i + 1:]:
                assert not p.intersects(q)

    def test_translate(self):
        assert Rect(1, 2, 3, 4).translate(10, 20) == Rect(11, 22, 3, 4)

    def test_inset(self):
        assert Rect(0, 0, 10, 10).inset(2) == Rect(2, 2, 6, 6)
        assert Rect(0, 0, 3, 3).inset(2).is_empty

    def test_split_tiles_covers_exactly(self):
        r = Rect(0, 0, 37, 21)
        tiles = list(r.split_tiles(16, 16))
        assert sum(t.area for t in tiles) == r.area
        assert all(r.contains_rect(t) for t in tiles)
        widths = {t.w for t in tiles}
        assert widths == {16, 5}

    def test_split_tiles_bad_size(self):
        with pytest.raises(ValueError):
            list(Rect(0, 0, 10, 10).split_tiles(0, 4))

    def test_center(self):
        assert Rect(0, 0, 10, 10).center == (5, 5)


class TestRegion:
    def test_empty_region(self):
        region = Region()
        assert region.is_empty
        assert region.area == 0
        assert region.bounds().is_empty

    def test_single_rect(self):
        region = Region([Rect(1, 1, 4, 4)])
        assert region.area == 16
        assert region.bounds() == Rect(1, 1, 4, 4)

    def test_disjoint_rects_area_adds(self):
        region = Region([Rect(0, 0, 2, 2), Rect(10, 10, 3, 3)])
        assert region.area == 4 + 9

    def test_overlapping_rects_not_double_counted(self):
        region = Region([Rect(0, 0, 4, 4), Rect(2, 2, 4, 4)])
        assert region.area == 16 + 16 - 4

    def test_identical_rects_counted_once(self):
        region = Region([Rect(0, 0, 5, 5), Rect(0, 0, 5, 5)])
        assert region.area == 25

    def test_contained_rect_is_absorbed(self):
        region = Region([Rect(0, 0, 10, 10)])
        region.add(Rect(2, 2, 3, 3))
        assert region.area == 100
        assert len(region) == 1

    def test_stored_rects_are_disjoint(self):
        region = Region()
        for rect in [Rect(0, 0, 6, 6), Rect(3, 3, 6, 6), Rect(1, 4, 10, 2)]:
            region.add(rect)
        rects = region.rects()
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert not a.intersects(b)

    def test_contains_point(self):
        region = Region([Rect(0, 0, 2, 2), Rect(5, 5, 2, 2)])
        assert region.contains_point(1, 1)
        assert region.contains_point(6, 6)
        assert not region.contains_point(3, 3)

    def test_subtract(self):
        region = Region([Rect(0, 0, 10, 10)])
        region.subtract(Rect(0, 0, 5, 10))
        assert region.area == 50
        assert not region.contains_point(2, 2)
        assert region.contains_point(7, 2)

    def test_clear(self):
        region = Region([Rect(0, 0, 5, 5)])
        region.clear()
        assert region.is_empty

    def test_copy_is_independent(self):
        region = Region([Rect(0, 0, 5, 5)])
        clone = region.copy()
        clone.add(Rect(10, 10, 5, 5))
        assert region.area == 25
        assert clone.area == 50

    def test_adding_empty_rect_is_noop(self):
        region = Region()
        region.add(Rect(5, 5, 0, 0))
        assert region.is_empty

    def test_iteration_is_deterministic(self):
        region = Region([Rect(4, 0, 2, 2), Rect(0, 0, 2, 2), Rect(2, 4, 2, 2)])
        assert list(region) == sorted(region.rects())

    def test_from_disjoint_skips_add_splitting(self):
        region = Region.from_disjoint([Rect(0, 0, 2, 2), Rect(5, 5, 2, 2),
                                       Rect(3, 3, 0, 0)])
        assert len(region) == 2  # empty rect dropped
        assert region.area == 8


class TestCoalesce:
    def test_empty_region(self):
        assert Region().coalesced() == []
        assert Region().coalesced(cap=1) == []

    def test_single_rect_unchanged(self):
        region = Region([Rect(3, 4, 5, 6)])
        assert region.coalesced() == [Rect(3, 4, 5, 6)]

    def test_adjacent_rows_fuse_to_one(self):
        region = Region()
        for y in range(50):
            region.add(Rect(0, y, 40, 1))
        assert len(region.rects()) == 50
        assert region.coalesced() == [Rect(0, 0, 40, 50)]

    def test_adjacent_columns_fuse_to_one(self):
        region = Region()
        for x in range(30):
            region.add(Rect(x, 0, 1, 20))
        assert region.coalesced() == [Rect(0, 0, 30, 20)]

    def test_overlapping_adds_fuse_back(self):
        # the classic fragmentation case: a rect added over another splits
        # into disjoint pieces that coalesce straight back
        region = Region([Rect(0, 0, 10, 10), Rect(5, 0, 10, 10)])
        assert region.coalesced() == [Rect(0, 0, 15, 10)]

    def test_disjoint_islands_stay_separate(self):
        rects = [Rect(0, 0, 2, 2), Rect(10, 10, 2, 2)]
        region = Region(rects)
        assert region.coalesced() == rects

    def test_exact_cover_preserves_area(self):
        region = Region([Rect(0, 0, 6, 6), Rect(3, 3, 6, 6), Rect(1, 4, 10, 2)])
        coalesced = region.coalesced()
        assert sum(r.area for r in coalesced) == region.area
        for i, a in enumerate(coalesced):
            for b in coalesced[i + 1:]:
                assert not a.intersects(b)

    def test_cap_bounds_rect_count(self):
        region = Region([Rect(i * 3, i * 3, 2, 2) for i in range(10)])
        capped = region.coalesced(cap=3)
        assert len(capped) <= 3
        # capped cover may grow but never loses pixels
        for rect in region.rects():
            assert any(c.contains_rect(rect) or c.intersects(rect)
                       for c in capped)
        covered = Region(capped)
        for rect in region.rects():
            covered.subtract(rect)
        assert covered.area == sum(c.area for c in capped) - region.area

    def test_cap_one_gives_bounds(self):
        region = Region([Rect(0, 0, 2, 2), Rect(8, 8, 2, 2)])
        assert region.coalesced(cap=1) == [region.bounds()]

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            Region([Rect(0, 0, 1, 1)]).coalesced(cap=0)

    def test_coalesce_in_place(self):
        region = Region([Rect(0, y, 8, 1) for y in range(8)])
        region.coalesce()
        assert region.rects() == [Rect(0, 0, 8, 8)]
        assert region.area == 64

"""Unit tests for the situation model, preferences and selection policy."""

import pytest

from repro.context import (
    Activity,
    ContextManager,
    DeviceArbiter,
    PreferenceStore,
    SelectionPolicy,
    UserSituation,
)
from repro.devices import (
    CellPhone,
    GesturePad,
    Pda,
    RemoteControl,
    TvDisplay,
    VoiceInput,
    WallDisplay,
)
from repro.util import Scheduler
from repro.util.errors import ContextError


def descriptors():
    scheduler = Scheduler()
    return [
        Pda("pda", scheduler).descriptor,
        CellPhone("phone", scheduler).descriptor,
        VoiceInput("voice", scheduler).descriptor,
        RemoteControl("remote", scheduler).descriptor,
        TvDisplay("tv-panel", scheduler).descriptor,
        WallDisplay("wall", scheduler).descriptor,
        GesturePad("wrist", scheduler).descriptor,
    ]


class TestSituation:
    def test_defaults(self):
        situation = UserSituation()
        assert situation.location == "living_room"
        assert situation.activity is Activity.IDLE

    def test_validation(self):
        with pytest.raises(ContextError):
            UserSituation(location="garage")
        with pytest.raises(ContextError):
            UserSituation(noise=1.5)

    def test_evolve_is_non_destructive(self):
        a = UserSituation()
        b = a.evolve(hands_busy=True)
        assert a.hands_busy is False
        assert b.hands_busy is True

    def test_canned_scenarios(self):
        cooking = UserSituation.cooking()
        assert cooking.location == "kitchen"
        assert cooking.hands_busy
        sofa = UserSituation.on_the_sofa()
        assert sofa.seated


class TestPreferences:
    def test_base_weight(self):
        prefs = PreferenceStore()
        prefs.prefer("pda", 2.0)
        assert prefs.score("pda", UserSituation()) == 2.0
        assert prefs.score("phone", UserSituation()) == 0.0

    def test_conditional_rule(self):
        prefs = PreferenceStore()
        prefs.rule("boost voice while cooking",
                   lambda s: s.activity is Activity.COOKING, voice=3.0)
        assert prefs.score("voice", UserSituation()) == 0.0
        assert prefs.score("voice", UserSituation.cooking()) == 3.0

    def test_explain_lists_contributions(self):
        prefs = PreferenceStore()
        prefs.prefer("voice", 1.0)
        prefs.rule("cooking boost",
                   lambda s: s.activity is Activity.COOKING, voice=3.0)
        parts = prefs.explain("voice", UserSituation.cooking())
        assert ("base preference", 1.0) in parts
        assert ("cooking boost", 3.0) in parts


class TestPolicyScenarios:
    """The paper's §2.1 scenarios as executable policy assertions."""

    def test_cooking_selects_voice(self):
        policy = SelectionPolicy()
        input_id, output_id = policy.choose(descriptors(),
                                            UserSituation.cooking())
        assert input_id == "voice"

    def test_cooking_output_is_kitchen_wall_display(self):
        policy = SelectionPolicy()
        _, output_id = policy.choose(descriptors(), UserSituation.cooking())
        assert output_id == "wall"  # the kitchen display wins on location

    def test_sofa_selects_remote_and_tv(self):
        policy = SelectionPolicy()
        input_id, output_id = policy.choose(descriptors(),
                                            UserSituation.on_the_sofa())
        assert input_id == "remote"
        assert output_id == "tv-panel"

    def test_outside_prefers_carried_devices(self):
        policy = SelectionPolicy()
        situation = UserSituation(location="outside")
        input_id, output_id = policy.choose(descriptors(), situation)
        assert input_id in ("phone", "pda", "remote")
        assert output_id in ("phone", "pda")  # fixed panels penalised away

    def test_noise_suppresses_voice(self):
        policy = SelectionPolicy()
        noisy_cooking = UserSituation.cooking().evolve(noise=0.9)
        ranked = policy.rank_inputs(descriptors(), noisy_cooking)
        voice_score = next(s for s in ranked if s.kind == "voice").score
        gesture_score = next(s for s in ranked if s.kind == "gesture").score
        assert gesture_score > voice_score

    def test_user_preference_overrides_situation(self):
        prefs = PreferenceStore()
        prefs.prefer("gesture", 10.0)  # user loves the wrist pad
        policy = SelectionPolicy(prefs)
        input_id, _ = policy.choose(descriptors(), UserSituation.cooking())
        assert input_id == "wrist"

    def test_ranking_is_deterministic(self):
        policy = SelectionPolicy()
        a = policy.rank_inputs(descriptors(), UserSituation())
        b = policy.rank_inputs(list(reversed(descriptors())),
                               UserSituation())
        assert [s.device_id for s in a] == [s.device_id for s in b]

    def test_scores_carry_reasons(self):
        policy = SelectionPolicy()
        scored = policy.score_input(
            VoiceInput("voice", Scheduler()).descriptor,
            UserSituation.cooking())
        reasons = dict(scored.reasons)
        assert "hands busy: hands-free input" in reasons

    def test_no_devices_selects_none(self):
        policy = SelectionPolicy()
        assert policy.choose([], UserSituation()) == (None, None)

    def test_output_only_devices_never_chosen_for_input(self):
        policy = SelectionPolicy()
        scheduler = Scheduler()
        only_displays = [TvDisplay("tv", scheduler).descriptor]
        input_id, output_id = policy.choose(only_displays, UserSituation())
        assert input_id is None
        assert output_id == "tv"


class TestDeviceArbiter:
    """Unit-level arbitration: managers over shared proxies, no sessions."""

    def _pair(self):
        from repro.proxy import UniIntProxy
        scheduler = Scheduler()
        arbiter = DeviceArbiter(scheduler)
        managers = {}
        for user_id in ("alice", "bob"):
            proxy = UniIntProxy(scheduler, proxy_id=f"proxy-{user_id}")
            manager = ContextManager(proxy, SelectionPolicy(),
                                     user_id=user_id, arbiter=arbiter)
            arbiter.register(manager)
            managers[user_id] = manager
        return scheduler, arbiter, managers["alice"], managers["bob"]

    def _share(self, device_cls, device_id, scheduler, *managers):
        device = device_cls(device_id, scheduler)
        for manager in managers:
            device.connect(manager.proxy)
        return device

    def test_first_claim_wins_and_is_recorded(self):
        scheduler, arbiter, alice, bob = self._pair()
        self._share(TvDisplay, "panel", scheduler, alice, bob)
        alice.reselect()
        assert arbiter.holder_of("panel") == "alice"
        assert arbiter.handoffs[-1].to_user == "alice"
        assert arbiter.handoffs[-1].preempted is False

    def test_equal_score_cannot_preempt(self):
        scheduler, arbiter, alice, bob = self._pair()
        self._share(TvDisplay, "panel", scheduler, alice, bob)
        alice.reselect()
        bob.reselect()           # identical situation: strict > required
        assert arbiter.holder_of("panel") == "alice"
        assert arbiter.preemptions == 0

    def test_higher_score_preempts_and_wakes_loser(self):
        scheduler, arbiter, alice, bob = self._pair()
        self._share(TvDisplay, "panel", scheduler, alice, bob)
        self._share(Pda, "spare", scheduler, alice, bob)
        alice.reselect()   # alice standing in the room takes the panel
        bob.set_situation(UserSituation.on_the_sofa())   # bob outscores
        assert arbiter.holder_of("panel") == "bob"
        assert arbiter.preemptions == 1
        scheduler.run_until_idle()   # the loser's deferred reselect runs
        assert alice.history[-1].output_device == "spare"

    def test_duplicate_registration_rejected(self):
        scheduler, arbiter, alice, bob = self._pair()
        with pytest.raises(ContextError):
            arbiter.register(alice)

    def test_unregister_releases_and_wakes_survivors(self):
        scheduler, arbiter, alice, bob = self._pair()
        self._share(TvDisplay, "panel", scheduler, alice, bob)
        alice.reselect()
        bob.reselect()
        assert arbiter.holder_of("panel") == "alice"
        arbiter.unregister("alice")
        scheduler.run_until_idle()
        assert arbiter.holder_of("panel") == "bob"

    def test_without_arbiter_behaviour_is_single_user(self):
        from repro.proxy import UniIntProxy
        scheduler = Scheduler()
        proxy = UniIntProxy(scheduler)
        manager = ContextManager(proxy, SelectionPolicy())
        TvDisplay("panel", scheduler).connect(proxy)
        record = manager.reselect()
        assert record.output_device == "panel"
        assert record.user_id == "resident"

"""Unit tests for the HAVi middleware substrate."""

import pytest

from repro.havi import (
    Comparison,
    HaviEvent,
    HaviMessage,
    HomeNetwork,
    MessageSystem,
    MessageType,
    QueryAnd,
    QueryNot,
    QueryOr,
    Registry,
    SEID,
    SoftwareElement,
)
from repro.util import Scheduler
from repro.util.errors import MessagingError, RegistryError


def seid(n, guid="aabbccdd00112233"):
    return SEID(guid, n)


class TestSeid:
    def test_roundtrip_str(self):
        s = SEID("deadbeef", 3)
        assert SEID.parse(str(s)) == s

    def test_validation(self):
        with pytest.raises(ValueError):
            SEID("", 0)
        with pytest.raises(ValueError):
            SEID("abc", -1)

    def test_ordering_stable(self):
        a = SEID("aaaa", 1)
        b = SEID("aaaa", 2)
        c = SEID("bbbb", 0)
        assert sorted([c, b, a]) == [a, b, c]


class TestMessageSystem:
    def setup_method(self):
        self.sched = Scheduler()
        self.ms = MessageSystem(self.sched)

    def test_delivery_is_asynchronous(self):
        got = []
        self.ms.register(seid(1), got.append)
        self.ms.send(HaviMessage(seid(2), seid(1), MessageType.EVENT, "ping"))
        assert got == []  # not yet delivered
        self.sched.run_until_idle()
        assert len(got) == 1
        assert got[0].opcode == "ping"

    def test_request_response_correlation(self):
        def echo(message):
            self.ms.send(message.reply({"echo": message.payload["x"]}))

        self.ms.register(seid(1), echo)
        self.ms.register(seid(2), lambda m: None)
        replies = []
        self.ms.send_request(seid(2), seid(1), "echo", {"x": 42},
                             on_reply=replies.append)
        self.sched.run_until_idle()
        assert len(replies) == 1
        assert replies[0].payload == {"echo": 42}
        assert replies[0].status == "SUCCESS"

    def test_unknown_destination_bounces_error(self):
        self.ms.register(seid(2), lambda m: None)
        replies = []
        self.ms.send_request(seid(2), seid(99), "anything",
                             on_reply=replies.append)
        self.sched.run_until_idle()
        assert replies[0].status == "EUNKNOWN_ELEMENT"
        assert self.ms.messages_dropped == 1

    def test_duplicate_registration_rejected(self):
        self.ms.register(seid(1), lambda m: None)
        with pytest.raises(MessagingError):
            self.ms.register(seid(1), lambda m: None)

    def test_unregister_unknown_rejected(self):
        with pytest.raises(MessagingError):
            self.ms.unregister(seid(9))

    def test_reply_to_non_request_rejected(self):
        event = HaviMessage(seid(1), seid(2), MessageType.EVENT, "x")
        with pytest.raises(MessagingError):
            event.reply()

    def test_latency_applied(self):
        ms = MessageSystem(self.sched, latency=0.5)
        times = []
        ms.register(seid(1), lambda m: times.append(self.sched.now()))
        ms.send(HaviMessage(seid(2), seid(1), MessageType.EVENT, "x"))
        self.sched.run_until_idle()
        assert times == [0.5]

    def test_unregister_drops_pending_reply(self):
        def late_echo(message):
            self.sched.call_later(1.0, lambda: self.ms.send(message.reply()))

        self.ms.register(seid(1), late_echo)
        self.ms.register(seid(2), lambda m: None)
        replies = []
        self.ms.send_request(seid(2), seid(1), "x", on_reply=replies.append)
        self.sched.run_for(0.01)
        self.ms.unregister(seid(2))
        self.sched.run_until_idle()
        assert replies == []


class TestRegistryQueries:
    def setup_method(self):
        self.registry = Registry()
        self.registry.register(seid(1), {"fcm.type": "tuner", "volume": 10})
        self.registry.register(seid(2), {"fcm.type": "vcr"})
        self.registry.register(seid(3, "ffff000011112222"),
                               {"fcm.type": "tuner", "volume": 90})

    def test_equality_query(self):
        result = self.registry.query(Comparison("fcm.type", "==", "tuner"))
        assert len(result) == 2

    def test_missing_attribute_never_matches(self):
        result = self.registry.query(Comparison("volume", ">", 0))
        assert seid(2) not in result

    def test_numeric_comparisons(self):
        assert self.registry.query(Comparison("volume", ">", 50)) == [
            seid(3, "ffff000011112222")]
        assert self.registry.query(Comparison("volume", "<=", 10)) == [
            seid(1)]

    def test_exists(self):
        assert len(self.registry.query(Comparison("volume", "exists"))) == 2

    def test_and_or_not(self):
        tuner = Comparison("fcm.type", "==", "tuner")
        loud = Comparison("volume", ">", 50)
        assert self.registry.query(QueryAnd([tuner, loud])) == [
            seid(3, "ffff000011112222")]
        assert len(self.registry.query(QueryOr([tuner, loud]))) == 2
        assert self.registry.query(QueryAnd([tuner, QueryNot(loud)])) == [
            seid(1)]

    def test_operator_sugar(self):
        tuner = Comparison("fcm.type", "==", "tuner")
        loud = Comparison("volume", ">", 50)
        assert self.registry.query(tuner & ~loud) == [seid(1)]
        assert len(self.registry.query(tuner | loud)) == 2

    def test_query_none_returns_all(self):
        assert len(self.registry.query()) == 3

    def test_type_mismatch_is_false_not_error(self):
        query = Comparison("fcm.type", ">", 5)  # str > int
        assert self.registry.query(query) == []

    def test_unknown_op_rejected(self):
        with pytest.raises(RegistryError):
            Comparison("a", "~=", 1)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError):
            self.registry.register(seid(1), {})

    def test_unregister(self):
        self.registry.unregister(seid(2))
        assert len(self.registry) == 2
        with pytest.raises(RegistryError):
            self.registry.unregister(seid(2))

    def test_update_attributes(self):
        self.registry.update_attributes(seid(1), {"volume": 55})
        assert self.registry.get_attributes(seid(1))["volume"] == 55

    def test_change_observers(self):
        changes = []
        self.registry.on_change.append(
            lambda kind, entry: changes.append((kind, entry.seid)))
        self.registry.register(seid(9), {})
        self.registry.unregister(seid(9))
        assert changes == [("registered", seid(9)),
                           ("unregistered", seid(9))]


class TestEventManager:
    def test_prefix_filtering(self):
        sched = Scheduler()
        from repro.havi.events import EventManager
        em = EventManager(sched)
        got = []
        em.subscribe("fcm.state", got.append)
        em.post(HaviEvent(seid(1), "fcm.state.power", {"value": True}))
        em.post(HaviEvent(seid(1), "dcm.installed", {}))
        sched.run_until_idle()
        assert [e.opcode for e in got] == ["fcm.state.power"]

    def test_source_filtering(self):
        sched = Scheduler()
        from repro.havi.events import EventManager
        em = EventManager(sched)
        got = []
        em.subscribe("", got.append, source=seid(1))
        em.post(HaviEvent(seid(1), "a"))
        em.post(HaviEvent(seid(2), "b"))
        sched.run_until_idle()
        assert [e.opcode for e in got] == ["a"]

    def test_unsubscribe(self):
        sched = Scheduler()
        from repro.havi.events import EventManager
        em = EventManager(sched)
        got = []
        ident = em.subscribe("", got.append)
        em.post(HaviEvent(seid(1), "one"))
        sched.run_until_idle()
        em.unsubscribe(ident)
        em.post(HaviEvent(seid(1), "two"))
        sched.run_until_idle()
        assert [e.opcode for e in got] == ["one"]

    def test_unsubscribe_in_flight(self):
        sched = Scheduler()
        from repro.havi.events import EventManager
        em = EventManager(sched)
        got = []
        ident = em.subscribe("", got.append)
        em.post(HaviEvent(seid(1), "x"))
        em.unsubscribe(ident)  # before delivery
        sched.run_until_idle()
        assert got == []


class TestSoftwareElement:
    def test_attach_detach(self):
        sched = Scheduler()
        ms = MessageSystem(sched)
        element = SoftwareElement(seid(1), ms)
        element.attach()
        assert ms.is_registered(seid(1))
        element.detach()
        assert not ms.is_registered(seid(1))
        element.detach()  # idempotent

    def test_double_attach_rejected(self):
        sched = Scheduler()
        ms = MessageSystem(sched)
        element = SoftwareElement(seid(1), ms)
        element.attach()
        with pytest.raises(MessagingError):
            element.attach()

    def test_unknown_request_gets_eunsupported(self):
        sched = Scheduler()
        ms = MessageSystem(sched)
        server = SoftwareElement(seid(1), ms)
        client = SoftwareElement(seid(2), ms)
        server.attach()
        client.attach()
        replies = []
        client.send_request(seid(1), "no.such.op", on_reply=replies.append)
        sched.run_until_idle()
        assert replies[0].status == "EUNSUPPORTED"


class TestHomeBusResetIsolation:
    """A faulty or re-entrant reset observer must not starve the rest
    (regression for the observer loop aborting on the first exception)."""

    def _bus(self):
        from repro.havi.bus import HomeBus
        scheduler = Scheduler()
        return scheduler, HomeBus(scheduler)

    def _device(self, guid):
        from repro.havi.bus import DeviceInfo

        class FakeDevice:
            def __init__(self, info):
                self.info = info

        return FakeDevice(DeviceInfo(guid=guid, device_class="x",
                                     manufacturer="m", model="mo",
                                     name=guid))

    def test_raising_observer_does_not_starve_the_rest(self):
        scheduler, bus = self._bus()
        seen = []

        def bad(devices):
            raise RuntimeError("observer exploded")

        bus.observe_resets(bad)
        bus.observe_resets(lambda devices: seen.append(len(devices)))
        bus.attach(self._device("g1"))
        with pytest.raises(RuntimeError, match="observer exploded"):
            scheduler.run_until_idle()
        # the second observer still saw the reset, and the failure was
        # counted for diagnostics
        assert seen == [1]
        assert bus.observer_errors == 1
        assert isinstance(bus.last_observer_error, RuntimeError)

    def test_reset_pending_not_wedged_after_observer_error(self):
        scheduler, bus = self._bus()

        def bad(devices):
            raise RuntimeError("boom")

        bus.observe_resets(bad)
        bus.attach(self._device("g1"))
        with pytest.raises(RuntimeError):
            scheduler.run_until_idle()
        # the coalescing flag dropped before observers ran: the next
        # topology change fires a fresh reset
        bus.unobserve_resets(bad)
        seen = []
        bus.observe_resets(lambda devices: seen.append(len(devices)))
        bus.attach(self._device("g2"))
        scheduler.run_until_idle()
        assert seen == [2]
        assert bus.reset_count == 2

    def test_observer_attaching_device_mid_reset_schedules_new_reset(self):
        scheduler, bus = self._bus()
        extra = self._device("g2")
        sizes = []

        def grower(devices):
            if len(devices) == 1:
                bus.attach(extra)  # re-entrant topology change

        bus.observe_resets(grower)
        bus.observe_resets(lambda devices: sizes.append(len(devices)))
        bus.attach(self._device("g1"))
        scheduler.run_until_idle()
        # first reset saw 1 device, the re-entrant attach fired a second
        assert sizes == [1, 2]
        assert bus.reset_count == 2

    def test_observer_detaching_itself_mid_reset_is_safe(self):
        scheduler, bus = self._bus()
        calls = []

        def one_shot(devices):
            calls.append("one-shot")
            bus.unobserve_resets(one_shot)

        bus.observe_resets(one_shot)
        bus.observe_resets(lambda devices: calls.append("steady"))
        bus.attach(self._device("g1"))
        scheduler.run_until_idle()
        assert calls == ["one-shot", "steady"]
        bus.attach(self._device("g2"))
        scheduler.run_until_idle()
        assert calls == ["one-shot", "steady", "steady"]

    def test_observer_subscribing_mid_reset_joins_next_reset_only(self):
        scheduler, bus = self._bus()
        late_calls = []

        def late(devices):
            late_calls.append(len(devices))

        def subscriber(devices):
            if late not in bus._observers:
                bus.observe_resets(late)

        bus.observe_resets(subscriber)
        bus.attach(self._device("g1"))
        scheduler.run_until_idle()
        assert late_calls == []  # snapshot: not notified for this reset
        bus.attach(self._device("g2"))
        scheduler.run_until_idle()
        assert late_calls == [2]

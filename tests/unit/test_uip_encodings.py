"""Unit tests for the framebuffer-update encodings."""

import numpy as np
import pytest

from repro.graphics import RGB332, RGB565, RGB888, Bitmap, Rect, draw
from repro.uip import (
    COMPRESSION_TIERS,
    COPYRECT,
    HEXTILE,
    RAW,
    RRE,
    ZLIB,
    ZRLE,
    DecoderState,
    EncoderState,
    decode_rect,
    encode_rect,
)
from repro.uip.encodings import (
    best_encoding,
    encode_copyrect,
    encode_zrle_tiles,
)
from repro.uip.wire import Cursor
from repro.util.errors import ProtocolError

from repro.graphics import PixelFormat

#: A big-endian wire format (e.g. a network-order embedded panel).
BE565 = PixelFormat(16, 16, True, 31, 63, 31, 11, 5, 0)

ALL_FORMATS = [RGB888, RGB565, RGB332, BE565]
PIXEL_CODECS = [RAW, RRE, HEXTILE, ZLIB, ZRLE]


def panel_bitmap(width=96, height=64):
    """A control-panel-like image: flat fills, bevels and text."""
    bmp = Bitmap(width, height, fill=(192, 192, 192))
    draw.bevel_box(bmp, Rect(8, 8, width - 16, 20), face=(160, 160, 200),
                   light=(255, 255, 255), shadow=(80, 80, 80))
    draw.bevel_box(bmp, Rect(8, 34, (width - 16) // 2, 20),
                   face=(200, 120, 120), light=(255, 255, 255),
                   shadow=(80, 80, 80))
    from repro.graphics import default_font
    default_font(1).draw(bmp, 12, 14, "POWER", (0, 0, 0))
    return bmp


def noise_bitmap(width=64, height=48, seed=3):
    rng = np.random.default_rng(seed)
    return Bitmap.from_array(
        rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8))


def roundtrip(bitmap, fmt, encoding):
    packed = fmt.pack_array(bitmap.pixels)
    enc_state = EncoderState(fmt)
    dec_state = DecoderState(fmt)
    payload = encode_rect(enc_state, packed, encoding)
    out = decode_rect(dec_state, Cursor(payload), bitmap.width,
                      bitmap.height, encoding)
    return packed, payload, out


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    @pytest.mark.parametrize("encoding", PIXEL_CODECS)
    def test_panel_roundtrip(self, fmt, encoding):
        packed, _, out = roundtrip(panel_bitmap(), fmt, encoding)
        assert np.array_equal(out, packed)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    @pytest.mark.parametrize("encoding", PIXEL_CODECS)
    def test_noise_roundtrip(self, fmt, encoding):
        packed, _, out = roundtrip(noise_bitmap(), fmt, encoding)
        assert np.array_equal(out, packed)

    @pytest.mark.parametrize("encoding", PIXEL_CODECS)
    def test_single_pixel(self, encoding):
        bmp = Bitmap(1, 1, fill=(13, 57, 201))
        packed, _, out = roundtrip(bmp, RGB888, encoding)
        assert np.array_equal(out, packed)

    @pytest.mark.parametrize("encoding", PIXEL_CODECS)
    def test_non_tile_aligned_sizes(self, encoding):
        bmp = panel_bitmap(37, 23)
        packed, _, out = roundtrip(bmp, RGB565, encoding)
        assert np.array_equal(out, packed)

    @pytest.mark.parametrize("size", [(15, 15), (16, 16), (17, 17),
                                      (33, 16), (16, 33), (48, 31)])
    @pytest.mark.parametrize("encoding", [RRE, HEXTILE])
    def test_edge_tile_sizes(self, size, encoding):
        """Widths/heights straddling the 16-pixel tile grid."""
        width, height = size
        bmp = Bitmap(width, height, fill=(32, 32, 32))
        draw.checkerboard(bmp, Rect(0, 0, width, height), 5,
                          (32, 32, 32), (220, 80, 10))
        bmp.fill_rect(Rect(width // 3, height // 3, width // 2, 3),
                      (0, 255, 0))
        packed, _, out = roundtrip(bmp, RGB888, encoding)
        assert np.array_equal(out, packed)

    @pytest.mark.parametrize("encoding", [RRE, HEXTILE])
    def test_big_endian_wire_format(self, encoding):
        packed, payload, out = roundtrip(panel_bitmap(50, 40), BE565,
                                         encoding)
        assert out.dtype == packed.dtype
        assert np.array_equal(out, packed)
        # also identical to what the same image costs in little endian
        _, le_payload, _ = roundtrip(panel_bitmap(50, 40), RGB565, encoding)
        assert len(payload) == len(le_payload)

    def test_flat_bitmap_rre_is_tiny(self):
        bmp = Bitmap(128, 128, fill=(5, 5, 5))
        _, payload, _ = roundtrip(bmp, RGB888, RRE)
        assert len(payload) == 4 + 4  # count + background pixel

    def test_checkerboard_roundtrip_hextile(self):
        bmp = Bitmap(64, 64)
        draw.checkerboard(bmp, bmp.bounds, 1, (0, 0, 0), (255, 255, 255))
        packed, _, out = roundtrip(bmp, RGB888, HEXTILE)
        assert np.array_equal(out, packed)


class TestCompression:
    def test_panel_rre_beats_raw(self):
        bmp = panel_bitmap(256, 192)
        packed = RGB888.pack_array(bmp.pixels)
        state = EncoderState(RGB888)
        raw = encode_rect(state, packed, RAW)
        rre = encode_rect(state, packed, RRE)
        hextile = encode_rect(state, packed, HEXTILE)
        assert len(rre) < len(raw) / 5
        assert len(hextile) < len(raw) / 5

    def test_noise_hextile_falls_back_to_raw_size(self):
        bmp = noise_bitmap(64, 64)
        packed = RGB888.pack_array(bmp.pixels)
        state = EncoderState(RGB888)
        raw = encode_rect(state, packed, RAW)
        hextile = encode_rect(state, packed, HEXTILE)
        # per-tile 1-byte header overhead only
        assert len(hextile) <= len(raw) + (64 // 16) ** 2

    def test_zlib_persistent_stream_improves(self):
        # Incompressible noise: the first frame stays near raw size, but the
        # identical second frame hits the persistent dictionary window.
        bmp = noise_bitmap(48, 48)
        packed = RGB888.pack_array(bmp.pixels)
        enc_state = EncoderState(RGB888)
        first = encode_rect(enc_state, packed, ZLIB)
        second = encode_rect(enc_state, packed, ZLIB)
        assert len(second) < len(first) / 10
        # and both decode correctly through one persistent inflater
        dec_state = DecoderState(RGB888)
        out1 = decode_rect(dec_state, Cursor(first), 48, 48, ZLIB)
        out2 = decode_rect(dec_state, Cursor(second), 48, 48, ZLIB)
        assert np.array_equal(out1, packed)
        assert np.array_equal(out2, packed)

    def test_best_encoding_prefers_rre_on_flat(self):
        bmp = Bitmap(64, 64, fill=(1, 2, 3))
        state = EncoderState(RGB888)
        assert best_encoding(state, RGB888.pack_array(bmp.pixels)) == RRE

    def test_best_encoding_prefers_raw_on_noise(self):
        state = EncoderState(RGB888)
        packed = RGB888.pack_array(noise_bitmap(48, 48).pixels)
        assert best_encoding(state, packed) == RAW

    def test_best_encoding_trials_stateful_candidates(self):
        """ZLIB-family candidates are sized on stream clones, not refused."""
        state = EncoderState(RGB888)
        packed = RGB888.pack_array(Bitmap(4, 4).pixels)
        winner = best_encoding(state, packed, candidates=(RAW, ZLIB, ZRLE))
        assert winner in (RAW, ZLIB, ZRLE)

    def test_best_encoding_trial_then_encode_byte_identical(self):
        """The satellite-1 regression: a losing (or winning) trial must
        never advance the live zlib stream — encoding after a trial gives
        the exact bytes an untrialled stream would."""
        frames = [RGB888.pack_array(panel_bitmap(64, 48 + 16 * i).pixels)
                  for i in range(3)]
        trialled = EncoderState(RGB888, use_cache=False)
        control = EncoderState(RGB888, use_cache=False)
        for packed in frames:
            best_encoding(trialled, packed, candidates=(HEXTILE, ZLIB, ZRLE))
            assert (encode_rect(trialled, packed, ZRLE)
                    == encode_rect(control, packed, ZRLE))

    def test_best_encoding_cost_model_follows_bearer(self):
        """Same pixels, different bearers, different winners: the phone
        leg minimises wire bytes, the fast link minimises encode cost."""
        from repro.net.link import CELLULAR_PDC, LOOPBACK
        packed = RGB888.pack_array(panel_bitmap(128, 128).pixels)
        state = EncoderState(RGB888, use_cache=False, tier=2)
        phone = best_encoding(state, packed,
                              candidates=(ZRLE, ZLIB, HEXTILE, RAW),
                              profile=CELLULAR_PDC)
        assert phone == ZRLE  # smallest wire payload wins at 9600 bps
        # on loopback the wire is free; a pre-learned CPU price dominates
        costs = {ZRLE: 10.0, ZLIB: 10.0}
        fast = best_encoding(state, packed,
                             candidates=(HEXTILE, ZRLE, ZLIB, RAW),
                             profile=LOOPBACK, encode_costs=costs)
        assert fast in (HEXTILE, RAW)  # priced-out codecs lose the fast leg

    def test_best_encoding_measures_encode_costs(self):
        state = EncoderState(RGB888, use_cache=False)
        packed = RGB888.pack_array(panel_bitmap(64, 64).pixels)
        costs = {}
        best_encoding(state, packed, candidates=(RAW, HEXTILE),
                      encode_costs=costs)
        assert set(costs) == {RAW, HEXTILE}
        assert all(v >= 0.0 for v in costs.values())


class TestCopyRect:
    def test_roundtrip(self):
        payload = encode_copyrect(12, 34)
        assert decode_rect(DecoderState(RGB888), Cursor(payload),
                           10, 10, COPYRECT) == (12, 34)


class TestEncodeCache:
    def test_repeat_encode_hits(self):
        from repro.uip import EncodeCache
        packed = RGB888.pack_array(panel_bitmap().pixels)
        state = EncoderState(RGB888)
        first = encode_rect(state, packed, HEXTILE)
        second = encode_rect(state, packed.copy(), HEXTILE)
        assert first == second
        assert state.cache.hits == 1
        assert state.cache.misses == 1
        assert isinstance(state.cache, EncodeCache)

    def test_zlib_never_cached(self):
        packed = RGB888.pack_array(panel_bitmap().pixels)
        state = EncoderState(RGB888)
        encode_rect(state, packed, ZLIB)
        encode_rect(state, packed, ZLIB)
        assert len(state.cache) == 0
        assert state.cache.hits == 0

    def test_disable_cache(self):
        state = EncoderState(RGB888, use_cache=False)
        packed = RGB888.pack_array(panel_bitmap().pixels)
        assert encode_rect(state, packed, RRE) == encode_rect(
            state, packed, RRE)
        assert state.cache is None

    def test_entry_count_eviction(self):
        from repro.uip import EncodeCache
        state = EncoderState(RGB888, cache=EncodeCache(max_entries=2))
        frames = [RGB888.pack_array(Bitmap(8, 8, fill=(i, 0, 0)).pixels)
                  for i in range(3)]
        for packed in frames:
            encode_rect(state, packed, RRE)
        assert len(state.cache) == 2
        # oldest entry evicted: re-encoding frame 0 misses again
        misses = state.cache.misses
        encode_rect(state, frames[0], RRE)
        assert state.cache.misses == misses + 1

    def test_byte_budget_eviction(self):
        from repro.uip import EncodeCache
        cache = EncodeCache(max_entries=100, max_bytes=64)
        cache.put(("a",), b"x" * 40)
        cache.put(("b",), b"y" * 40)
        assert len(cache) == 1  # first entry evicted to fit the budget
        assert cache.stored_bytes == 40

    def test_oversized_payload_not_stored(self):
        from repro.uip import EncodeCache
        cache = EncodeCache(max_entries=4, max_bytes=16)
        cache.put(("big",), b"z" * 100)
        assert len(cache) == 0

    def test_shared_cache_across_states(self):
        from repro.uip import EncodeCache
        shared = EncodeCache()
        a = EncoderState(RGB888, cache=shared)
        b = EncoderState(RGB888, cache=shared)
        packed = RGB888.pack_array(panel_bitmap().pixels)
        encode_rect(a, packed, HEXTILE)
        encode_rect(b, packed, HEXTILE)
        assert shared.hits == 1 and shared.misses == 1

    def test_cache_respects_pixel_format(self):
        state = EncoderState(RGB565)
        packed = RGB565.pack_array(panel_bitmap().pixels)
        k565 = state.cache_key(packed, RRE)
        state.reset_pixel_format(RGB332)
        assert state.cache_key(packed, RRE) != k565

    def test_trial_encode_not_stored(self):
        state = EncoderState(RGB888)
        packed = RGB888.pack_array(panel_bitmap().pixels)
        encode_rect(state, packed, RRE, trial=True)
        assert len(state.cache) == 0
        assert state.cache.misses == 0  # trials are stats-neutral

    def test_trial_zlib_uses_throwaway_clone(self):
        packed = RGB888.pack_array(panel_bitmap().pixels)
        trialled = EncoderState(RGB888)
        control = EncoderState(RGB888)
        trial = encode_rect(trialled, packed, ZLIB, trial=True)
        real = encode_rect(trialled, packed, ZLIB)
        assert trial == real  # the clone saw the same stream position
        assert real == encode_rect(control, packed, ZLIB)

    def test_trial_zrle_does_not_warm_cache(self):
        packed = RGB888.pack_array(panel_bitmap().pixels)
        state = EncoderState(RGB888)
        encode_rect(state, packed, ZRLE, trial=True)
        assert len(state.cache) == 0
        assert state.cache.misses == 0

    def test_best_encoding_caches_only_winner(self):
        state = EncoderState(RGB888)
        packed = RGB888.pack_array(panel_bitmap().pixels)
        winner = best_encoding(state, packed)
        assert len(state.cache) == 1  # losing candidates stayed out
        assert state.cache.misses == 0
        hits = state.cache.hits
        encode_rect(state, packed, winner)  # the real encode hits
        assert state.cache.hits == hits + 1

    def test_renegotiate_preserves_cache(self):
        packed888 = RGB888.pack_array(panel_bitmap().pixels)
        packed332 = RGB332.pack_array(panel_bitmap().pixels)
        state = EncoderState(RGB888)
        first = encode_rect(state, packed888, HEXTILE)
        state.renegotiate(RGB332)
        encode_rect(state, packed332, HEXTILE)
        state.renegotiate(RGB888)
        hits = state.cache.hits
        assert encode_rect(state, packed888, HEXTILE) == first
        assert state.cache.hits == hits + 1  # payload survived the switch

    def test_renegotiate_resets_zlib_stream(self):
        packed = RGB888.pack_array(panel_bitmap().pixels)
        state = EncoderState(RGB888)
        encode_rect(state, packed, ZLIB)
        state.renegotiate(RGB888)
        # a fresh decoder can parse the first post-renegotiation rect,
        # which only works if the deflate stream restarted
        payload = encode_rect(state, packed, ZLIB)
        out = decode_rect(DecoderState(RGB888), Cursor(payload),
                          packed.shape[1], packed.shape[0], ZLIB)
        assert np.array_equal(out, packed)

    def test_contiguous_reuses_scratch(self):
        state = EncoderState(RGB888)
        base = RGB888.pack_array(panel_bitmap(64, 64).pixels)
        view = base[::, 1:33]  # non-contiguous slice
        assert not view.flags.c_contiguous
        out1 = state.contiguous(view)
        out2 = state.contiguous(base[::, 2:34])
        assert out1 is out2  # same scratch buffer reused
        assert np.array_equal(out2, base[::, 2:34])


class TestCompressionTiers:
    def test_invalid_tier_rejected(self):
        with pytest.raises(ProtocolError):
            EncoderState(RGB888, tier=7)

    def test_tier_sets_zlib_level_and_rle(self):
        for tier, (level, rle) in COMPRESSION_TIERS.items():
            state = EncoderState(RGB888, tier=tier)
            assert (state.level, state.rle) == (level, rle)

    def test_set_tier_before_stream_start_changes_level(self):
        packed = RGB888.pack_array(panel_bitmap().pixels)
        moved = EncoderState(RGB888, use_cache=False, tier=0)
        moved.set_tier(2)
        born = EncoderState(RGB888, use_cache=False, tier=2)
        assert encode_rect(moved, packed, ZRLE) == encode_rect(
            born, packed, ZRLE)

    def test_set_tier_mid_stream_keeps_level(self):
        """zlib cannot change level mid-stream; the deflater must survive
        an escalation untouched so the peer's inflater stays in sync."""
        packed = RGB888.pack_array(panel_bitmap().pixels)
        escalated = EncoderState(RGB888, use_cache=False, tier=1)
        control = EncoderState(RGB888, use_cache=False, tier=1)
        encode_rect(escalated, packed, ZRLE)
        encode_rect(control, packed, ZRLE)
        escalated.set_tier(2)
        second = encode_rect(escalated, packed, ZRLE)
        assert second == encode_rect(control, packed, ZRLE)
        # the escalated stream still decodes end to end
        dec = DecoderState(RGB888)
        h, w = packed.shape[0], packed.shape[1]
        fresh = EncoderState(RGB888, use_cache=False, tier=1)
        first = encode_rect(fresh, packed, ZRLE)
        fresh.set_tier(2)
        later = encode_rect(fresh, packed, ZRLE)
        assert np.array_equal(
            decode_rect(dec, Cursor(first), w, h, ZRLE), packed)
        assert np.array_equal(
            decode_rect(dec, Cursor(later), w, h, ZRLE), packed)

    def test_renegotiate_unpins_level(self):
        state = EncoderState(RGB888, use_cache=False, tier=1)
        packed = RGB888.pack_array(panel_bitmap().pixels)
        encode_rect(state, packed, ZRLE)
        state.set_tier(2)
        state.renegotiate(RGB888)  # stream restarts: new level may apply
        assert state.level == COMPRESSION_TIERS[2][0]

    def test_cache_key_includes_tier(self):
        from repro.uip.encodings import EncodeCache
        cache = EncodeCache()
        packed = RGB888.pack_array(panel_bitmap().pixels)
        low = EncoderState(RGB888, cache=cache, tier=0)
        high = EncoderState(RGB888, cache=cache, tier=2)
        encode_rect(low, packed, ZRLE)
        encode_rect(high, packed, ZRLE)
        # tier 0 (no RLE) and tier 2 (RLE) built different tile streams;
        # a shared key would have served tier 0's stream to tier 2
        assert len(cache) == 2

    def test_zrle_caches_tile_stream_not_payload(self):
        """Unlike ZLIB (never cached), ZRLE caches the position-independent
        tile stream: a second session on the same cache reuses it even
        though its deflate output differs."""
        from repro.uip.encodings import EncodeCache
        cache = EncodeCache()
        packed = RGB888.pack_array(panel_bitmap().pixels)
        first = EncoderState(RGB888, cache=cache)
        encode_rect(first, packed, ZRLE)
        assert len(cache) == 1
        hits = cache.hits
        second = EncoderState(RGB888, cache=cache)
        payload = encode_rect(second, packed, ZRLE)
        assert cache.hits == hits + 1
        out = decode_rect(DecoderState(RGB888), Cursor(payload),
                          packed.shape[1], packed.shape[0], ZRLE)
        assert np.array_equal(out, packed)

    def test_renegotiate_preserves_zrle_tile_stream(self):
        packed = RGB888.pack_array(panel_bitmap().pixels)
        state = EncoderState(RGB888)
        encode_rect(state, packed, ZRLE)
        state.renegotiate(RGB888)
        hits = state.cache.hits
        payload = encode_rect(state, packed, ZRLE)
        assert state.cache.hits == hits + 1  # tile stream survived
        out = decode_rect(DecoderState(RGB888), Cursor(payload),
                          packed.shape[1], packed.shape[0], ZRLE)
        assert np.array_equal(out, packed)

    def test_zrle_panel_much_smaller_than_hextile(self):
        packed = RGB888.pack_array(panel_bitmap(192, 192).pixels)
        state = EncoderState(RGB888, use_cache=False, tier=2)
        zrle = encode_rect(state, packed, ZRLE)
        hextile = encode_rect(EncoderState(RGB888, use_cache=False),
                              packed, HEXTILE)
        assert len(zrle) * 3 < len(hextile)

    def test_zrle_run_longer_than_255(self):
        bitmap = Bitmap(64, 10)
        bitmap.fill((10, 20, 30))
        packed = RGB888.pack_array(bitmap.pixels)
        packed[0, 0] = 0xFFFFFF  # break the solid-tile shortcut
        stream = encode_zrle_tiles(packed, RGB888, rle=True)
        state = EncoderState(RGB888, use_cache=False)
        payload = encode_rect(state, packed, ZRLE)
        out = decode_rect(DecoderState(RGB888), Cursor(payload), 64, 10, ZRLE)
        assert np.array_equal(out, packed)
        assert len(stream) < 64 * 10 * 3  # the long run actually compressed


class TestErrors:
    def test_unknown_encoding_encode(self):
        state = EncoderState(RGB888)
        with pytest.raises(ProtocolError):
            encode_rect(state, RGB888.pack_array(Bitmap(2, 2).pixels), 99)

    def test_unknown_encoding_decode(self):
        with pytest.raises(ProtocolError):
            decode_rect(DecoderState(RGB888), Cursor(b""), 2, 2, 99)

    def test_rre_subrect_out_of_bounds(self):
        from repro.uip.wire import Writer
        bad = (Writer().u32(1).raw(b"\x00" * 4)  # one subrect, bg
               .raw(b"\x01" * 4).u16(5).u16(5).u16(10).u16(10).getvalue())
        with pytest.raises(ProtocolError):
            decode_rect(DecoderState(RGB888), Cursor(bad), 8, 8, RRE)

    def test_non_2d_array_rejected(self):
        state = EncoderState(RGB888)
        with pytest.raises(ProtocolError):
            encode_rect(state, np.zeros((2, 2, 3)), RAW)

"""Unit tests for the HAVi stream manager."""

import pytest

from repro.appliances import Amplifier, DvdPlayer, Television, VideoRecorder
from repro.havi import FcmType, HomeNetwork
from repro.util.errors import HaviError


def home_with(*appliances):
    network = HomeNetwork()
    for appliance in appliances:
        network.attach_device(appliance)
    network.settle()
    return network


class TestConnect:
    def setup_method(self):
        self.tv = Television("TV")
        self.vcr = VideoRecorder("VCR")
        self.network = home_with(self.tv, self.vcr)
        self.display = self.tv.dcm.fcm_by_type(FcmType.DISPLAY)
        self.deck = self.vcr.dcm.fcm_by_type(FcmType.VCR)

    def test_watch_tape_retunes_display(self):
        """Connecting VCR video-out to TV video-in switches the source."""
        assert self.display.get_state("source") == "tuner"
        connection = self.network.streams.connect(
            self.deck.seid, "video-out", self.display.seid, "video-in")
        assert connection.media == "av"
        assert self.display.get_state("source") == "vcr"
        assert self.display.get_state("stream_source") == str(self.deck.seid)

    def test_disconnect_reverts_to_tuner(self):
        connection = self.network.streams.connect(
            self.deck.seid, "video-out", self.display.seid, "video-in")
        self.network.streams.disconnect(connection.connection_id)
        assert self.display.get_state("source") == "tuner"
        assert self.network.streams.connections == []

    def test_direction_validation(self):
        with pytest.raises(HaviError):
            self.network.streams.connect(
                self.display.seid, "video-in", self.deck.seid, "video-out")

    def test_unknown_plug_rejected(self):
        with pytest.raises(HaviError):
            self.network.streams.connect(
                self.deck.seid, "scart", self.display.seid, "video-in")

    def test_sink_exclusivity(self):
        dvd = DvdPlayer("DVD")
        self.network.attach_device(dvd)
        self.network.settle()
        disc = dvd.dcm.fcm_by_type(FcmType.AV_DISC)
        self.network.streams.connect(
            self.deck.seid, "video-out", self.display.seid, "video-in")
        with pytest.raises(HaviError):
            self.network.streams.connect(
                disc.seid, "av-out", self.display.seid, "video-in")

    def test_source_fan_out_allowed(self):
        """One source may feed several sinks (video + audio)."""
        amp = Amplifier("Amp")
        self.network.attach_device(amp)
        self.network.settle()
        amp_fcm = amp.dcm.fcm_by_type(FcmType.AMPLIFIER)
        self.network.streams.connect(
            self.deck.seid, "video-out", self.display.seid, "video-in")
        self.network.streams.connect(
            self.deck.seid, "video-out", amp_fcm.seid, "audio-in")
        assert len(self.network.streams.connections_of(self.deck.seid)) == 2
        assert amp_fcm.get_state("source") == "aux"

    def test_dvd_to_display(self):
        dvd = DvdPlayer("DVD")
        self.network.attach_device(dvd)
        self.network.settle()
        disc = dvd.dcm.fcm_by_type(FcmType.AV_DISC)
        self.network.streams.connect(
            disc.seid, "av-out", self.display.seid, "video-in")
        assert self.display.get_state("source") == "dvd"

    def test_events_posted(self):
        seen = []
        self.network.events.subscribe("stream.",
                                      lambda e: seen.append(e.opcode))
        connection = self.network.streams.connect(
            self.deck.seid, "video-out", self.display.seid, "video-in")
        self.network.streams.disconnect(connection.connection_id)
        self.network.settle()
        assert seen == ["stream.connected", "stream.disconnected"]

    def test_disconnect_unknown_rejected(self):
        with pytest.raises(HaviError):
            self.network.streams.disconnect(99)


class TestHotplugTeardown:
    def test_source_departure_tears_down_connection(self):
        tv = Television("TV")
        vcr = VideoRecorder("VCR")
        network = home_with(tv, vcr)
        display = tv.dcm.fcm_by_type(FcmType.DISPLAY)
        deck = vcr.dcm.fcm_by_type(FcmType.VCR)
        network.streams.connect(deck.seid, "video-out",
                                display.seid, "video-in")
        network.detach_device(vcr.guid)
        network.settle()
        assert network.streams.connections == []
        assert display.get_state("source") == "tuner"

    def test_sink_departure_tears_down_connection(self):
        tv = Television("TV")
        vcr = VideoRecorder("VCR")
        network = home_with(tv, vcr)
        display = tv.dcm.fcm_by_type(FcmType.DISPLAY)
        deck = vcr.dcm.fcm_by_type(FcmType.VCR)
        network.streams.connect(deck.seid, "video-out",
                                display.seid, "video-in")
        network.detach_device(tv.guid)
        network.settle()
        assert network.streams.connections == []

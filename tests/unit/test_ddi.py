"""Unit tests for the HAVi DDI layer."""

import pytest

from repro.appliances import DimmableLight, MicrowaveOven, Television
from repro.havi import FcmType, HomeNetwork, SEID, SoftwareElement
from repro.havi.ddi import (
    DdiController,
    DdiPanel,
    DdiRange,
    DdiToggle,
    build_tree,
    element_from_dict,
    render_text,
)
from repro.util.ids import guid_from_seed


def home_with(*appliances, ddi=True):
    network = HomeNetwork(ddi_enabled=ddi)
    for appliance in appliances:
        network.attach_device(appliance)
    network.settle()
    return network


def controller_for(network, guid):
    controller = DdiController(
        SEID(guid_from_seed("ddi-client"), 0), network.messaging,
        network.events)
    controller.attach()
    server = network.dcm_manager.ddi_server_for(guid)
    assert server is not None
    trees = []
    controller.open(server.seid, on_tree=trees.append)
    network.settle()
    assert controller.tree is not None
    return controller


class TestTreeModel:
    def test_build_tree_reflects_state(self):
        tv = Television("TV")
        network = home_with(tv)
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        tuner.invoke_local("volume.set", {"volume": 60})
        tree = build_tree(tv.dcm)
        power = tree.find("1:power")
        volume = tree.find("1:volume")
        assert isinstance(power, DdiToggle) and power.value is True
        assert isinstance(volume, DdiRange) and volume.value == 60

    def test_dict_roundtrip(self):
        tv = Television("TV")
        home_with(tv)
        tree = build_tree(tv.dcm)
        again = element_from_dict(tree.to_dict())
        assert isinstance(again, DdiPanel)
        assert [e.element_id for e in again.walk()] == [
            e.element_id for e in tree.walk()]

    def test_unknown_fcm_gets_generic_text_tree(self):
        light = DimmableLight("Lamp")
        network = home_with(light)
        from repro.havi.ddi import _generic_spec
        fcm = light.dcm.fcm_by_type(FcmType.LIGHT)
        elements = _generic_spec("9:", fcm)
        assert {e.key for e in elements} == set(fcm.state)

    def test_render_text_lines(self):
        tv = Television("TV")
        home_with(tv)
        lines = render_text(build_tree(tv.dcm))
        assert lines[0].startswith("[TV]")
        assert any("Power" in line for line in lines)
        assert any("Vol" in line for line in lines)

    def test_dynamic_tree_matches_descriptor_names(self):
        tv = Television("TV")
        home_with(tv)
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tree = build_tree(tv.dcm)
        ids = {e.element_id for e in tree.walk()}
        for capability in tuner.capabilities:
            assert f"1:{capability.name}" in ids

    def test_legacy_tree_still_available(self):
        tv = Television("TV")
        home_with(tv)
        tree = build_tree(tv.dcm, dynamic=False)
        assert tree.find("1:ch_up") is not None  # legacy spec id


class TestDdiServerLifecycle:
    def test_server_installed_per_appliance(self):
        tv = Television("TV")
        network = home_with(tv)
        assert network.dcm_manager.ddi_server_for(tv.guid) is not None
        from repro.havi import Comparison
        assert len(network.registry.query(
            Comparison("element.type", "==", "ddi"))) == 1

    def test_server_uninstalled_on_departure(self):
        tv = Television("TV")
        network = home_with(tv)
        network.detach_device(tv.guid)
        network.settle()
        assert network.dcm_manager.ddi_server_for(tv.guid) is None
        from repro.havi import Comparison
        assert network.registry.query(
            Comparison("element.type", "==", "ddi")) == []

    def test_ddi_can_be_disabled(self):
        tv = Television("TV")
        network = home_with(tv, ddi=False)
        assert network.dcm_manager.ddi_server_for(tv.guid) is None


class TestControllerActions:
    def test_toggle_action_drives_appliance(self):
        tv = Television("TV")
        network = home_with(tv)
        controller = controller_for(network, tv.guid)
        controller.action("1:power", verb="toggle")
        network.settle()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        assert tuner.get_state("power") is True

    def test_range_set(self):
        tv = Television("TV")
        network = home_with(tv)
        tv.dcm.fcm_by_type(FcmType.TUNER).invoke_local(
            "power.set", {"on": True})
        controller = controller_for(network, tv.guid)
        controller.action("1:volume", verb="set", value=45)
        network.settle()
        assert tv.dcm.fcm_by_type(FcmType.TUNER).get_state("volume") == 45

    def test_button_press_with_args(self):
        oven = MicrowaveOven("Oven")
        network = home_with(oven)
        controller = controller_for(network, oven.guid)
        controller.action("1:add60", verb="press")  # carries {"seconds": 60}
        controller.action("1:start", verb="press")
        network.scheduler.run_for(1.0)  # settle would skip past the cook
        fcm = oven.dcm.fcm_by_type(FcmType.MICROWAVE)
        assert fcm.get_state("running") is True
        network.settle()
        assert fcm.get_state("cook_count") == 1

    def test_choice_set(self):
        tv = Television("TV")
        network = home_with(tv)
        controller = controller_for(network, tv.guid)
        controller.action("2:source", verb="set", value="dvd")
        network.settle()
        display = tv.dcm.fcm_by_type(FcmType.DISPLAY)
        assert display.get_state("source") == "dvd"

    def test_invalid_verb_rejected(self):
        tv = Television("TV")
        network = home_with(tv)
        controller = controller_for(network, tv.guid)
        replies = []
        controller.action("1:power", verb="set_fire",
                          on_reply=replies.append)
        network.settle()
        assert replies[0].status == "EINVALID_ARG"

    def test_unknown_element_rejected(self):
        tv = Television("TV")
        network = home_with(tv)
        controller = controller_for(network, tv.guid)
        replies = []
        controller.action("9:nothing", on_reply=replies.append)
        network.settle()
        assert replies[0].status == "EUNKNOWN_ELEMENT"

    def test_fcm_error_propagates_status(self):
        tv = Television("TV")
        network = home_with(tv)
        controller = controller_for(network, tv.guid)
        replies = []
        # volume while powered off -> EPOWER_OFF
        controller.action("1:volume", verb="set", value=10,
                          on_reply=replies.append)
        network.settle()
        assert replies[0].status == "EPOWER_OFF"


class TestChangePropagation:
    def test_remote_change_updates_controller_cache(self):
        tv = Television("TV")
        network = home_with(tv)
        controller = controller_for(network, tv.guid)
        changes = []
        controller.on_changed = lambda eid, value: changes.append(
            (eid, value))
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.invoke_local("power.set", {"on": True})
        network.settle()
        assert ("1:power", True) in changes
        assert controller.tree.find("1:power").value is True

    def test_changes_scoped_to_target_device(self):
        tv = Television("TV")
        lamp = DimmableLight("Lamp")
        network = home_with(tv, lamp)
        controller = controller_for(network, tv.guid)
        changes = []
        controller.on_changed = lambda eid, value: changes.append(eid)
        lamp.dcm.fcm_by_type(FcmType.LIGHT).invoke_local("power.toggle")
        network.settle()
        assert changes == []  # the lamp is not our target

    def test_close_stops_updates(self):
        tv = Television("TV")
        network = home_with(tv)
        controller = controller_for(network, tv.guid)
        changes = []
        controller.on_changed = lambda eid, value: changes.append(eid)
        controller.close()
        tv.dcm.fcm_by_type(FcmType.TUNER).invoke_local(
            "power.set", {"on": True})
        network.settle()
        assert changes == []

    def test_bytes_accounted(self):
        tv = Television("TV")
        network = home_with(tv)
        controller = controller_for(network, tv.guid)
        after_tree = controller.bytes_moved
        assert after_tree > 200  # the tree itself
        controller.action("1:power", verb="toggle")
        network.settle()
        assert controller.bytes_moved > after_tree

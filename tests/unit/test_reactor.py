"""Unit tests for the fleet reactor: turn anatomy, fairness, containment,
TCP listeners and reactor-driven socket transports."""

import socket
import time

import pytest

from repro.net import (
    ETHERNET_100,
    Reactor,
    SocketTransport,
    TcpListener,
    connect_tcp,
    make_transport_pair,
)
from repro.util import ReactorError, Scheduler, TransportError


def tcp_pair(reactor, server_sched, client_sched, server_member=None,
             client_member=None):
    """A connected (server_transport, client_transport, listener) triple."""
    accepted = []

    def on_accept(conn, addr):
        transport = SocketTransport(server_sched, conn, ETHERNET_100, "srv")
        transport.attach_reactor(reactor, member=server_member)
        accepted.append(transport)

    listener = TcpListener(reactor, on_accept, member=server_member)
    client = connect_tcp(reactor, client_sched, listener.address,
                         member=client_member)
    assert reactor.run_until(lambda: len(accepted) == 1)
    return accepted[0], client, listener


class TestMembership:
    def test_budget_must_be_positive(self):
        reactor = Reactor()
        with pytest.raises(ReactorError):
            reactor.add_scheduler(Scheduler(), budget=0)

    def test_duplicate_scheduler_rejected(self):
        reactor = Reactor()
        sched = Scheduler()
        reactor.add_scheduler(sched)
        with pytest.raises(ReactorError):
            reactor.add_scheduler(sched)

    def test_duplicate_fd_rejected(self):
        reactor = Reactor()
        a, b = socket.socketpair()
        try:
            reactor.register(a, on_readable=lambda: None)
            with pytest.raises(ReactorError):
                reactor.register(a, on_readable=lambda: None)
        finally:
            a.close()
            b.close()
            reactor.close()

    def test_remove_scheduler_drops_its_handles(self):
        reactor = Reactor()
        sched = Scheduler()
        member = reactor.add_scheduler(sched)
        a, b = socket.socketpair()
        try:
            reactor.register(a, on_readable=lambda: None, member=member)
            assert reactor.handle_count == 1
            reactor.remove_scheduler(member)
            assert reactor.handle_count == 0
        finally:
            a.close()
            b.close()
            reactor.close()

    def test_register_after_close_raises(self):
        reactor = Reactor()
        reactor.close()
        a, b = socket.socketpair()
        try:
            with pytest.raises(ReactorError):
                reactor.register(a, on_readable=lambda: None)
        finally:
            a.close()
            b.close()


class TestTurn:
    def test_budget_caps_a_storming_member_per_turn(self):
        reactor = Reactor()
        stormy, meek = Scheduler(), Scheduler()
        m_storm = reactor.add_scheduler(stormy, "storm", budget=16)
        reactor.add_scheduler(meek, "meek", budget=16)

        def storm():
            stormy.call_soon(storm)

        stormy.call_soon(storm)
        ticks = []
        meek.call_soon(lambda: ticks.append(1))
        reactor.turn()
        assert ticks == [1], "the meek member's event ran this turn"
        assert m_storm.events_fired == 16, "the storm burned exactly its budget"
        reactor.close()

    def test_idle_members_fast_forward_their_clocks(self):
        reactor = Reactor()
        sched = Scheduler()
        reactor.add_scheduler(sched)
        fired = []
        sched.call_later(3600.0, lambda: fired.append(sched.now()))
        start = time.monotonic()
        reactor.run_until_idle()
        assert fired == [3600.0]
        assert sched.now() == 3600.0
        assert time.monotonic() - start < 5.0, "virtual, not wall, time"
        reactor.close()

    def test_clocks_advance_independently(self):
        reactor = Reactor()
        fast, slow = Scheduler(), Scheduler()
        reactor.add_scheduler(fast)
        reactor.add_scheduler(slow)
        fast.call_later(100.0, lambda: None)
        slow.call_later(2.0, lambda: None)
        reactor.run_until_idle()
        assert fast.now() == 100.0
        assert slow.now() == 2.0
        reactor.close()

    def test_run_until_times_out_to_false(self):
        reactor = Reactor()
        reactor.add_scheduler(Scheduler())
        assert reactor.run_until(lambda: False, timeout_s=0.05) is False
        reactor.close()

    def test_close_is_idempotent(self):
        reactor = Reactor()
        reactor.close()
        reactor.close()


class TestContainment:
    def test_raising_event_quarantines_only_its_member(self):
        reactor = Reactor()
        bad_sched, good_sched = Scheduler(), Scheduler()
        seen = []
        bad = reactor.add_scheduler(bad_sched, "bad",
                                    on_error=seen.append)
        good = reactor.add_scheduler(good_sched, "good")

        def boom():
            raise RuntimeError("kaput")

        bad_sched.call_soon(boom)
        ran = []
        good_sched.call_soon(lambda: ran.append(1))
        reactor.run_until_idle()
        assert bad.failed and not good.failed
        assert isinstance(bad.last_error, RuntimeError)
        assert [type(e) for e in seen] == [RuntimeError]
        assert ran == [1]
        assert reactor.failed_members == (bad,)
        reactor.close()

    def test_quarantined_member_stops_firing(self):
        reactor = Reactor()
        sched = Scheduler()
        member = reactor.add_scheduler(sched, "flappy")
        after = []

        def boom():
            sched.call_soon(lambda: after.append(1))
            raise RuntimeError("kaput")

        sched.call_soon(boom)
        reactor.run_until_idle()
        assert member.failed
        assert after == [], "no events fire after quarantine"
        reactor.close()

    def test_raising_io_callback_quarantines_member_and_drops_fds(self):
        reactor = Reactor()
        sched = Scheduler()
        member = reactor.add_scheduler(sched, "io-bad")
        a, b = socket.socketpair()
        a.setblocking(False)
        b.setblocking(False)
        try:
            def explode():
                raise ValueError("bad bytes")

            reactor.register(a, on_readable=explode, member=member)
            b.sendall(b"x")
            reactor.run_until_idle()
            assert member.failed
            assert reactor.handle_count == 0
        finally:
            a.close()
            b.close()
            reactor.close()

    def test_orphan_handle_error_is_recorded_and_unregistered(self):
        reactor = Reactor()
        a, b = socket.socketpair()
        a.setblocking(False)
        b.setblocking(False)
        try:
            def explode():
                raise ValueError("bad bytes")

            reactor.register(a, on_readable=explode)  # no member
            b.sendall(b"x")
            reactor.run_until_idle()
            assert reactor.handle_count == 0
            assert [name for name, _ in reactor.errors] == [None]
        finally:
            a.close()
            b.close()
            reactor.close()


class TestTcpTransport:
    def test_roundtrip_over_real_tcp(self):
        reactor = Reactor()
        ssched, csched = Scheduler(), Scheduler()
        reactor.add_scheduler(ssched)
        reactor.add_scheduler(csched)
        server, client, listener = tcp_pair(reactor, ssched, csched)
        got = []
        server.on_receive = lambda d: got.append(bytes(d))
        client.send([b"uni", b"int"])
        assert reactor.run_until(lambda: b"".join(got) == b"uniint")
        listener.close()
        reactor.close()

    def test_blocked_send_arms_write_interest_and_drains(self):
        # the regression the reactor mode exists for: a kernel buffer
        # full mid-send becomes an EPOLLOUT wait, never a silent stall
        reactor = Reactor()
        ssched, csched = Scheduler(), Scheduler()
        reactor.add_scheduler(ssched)
        reactor.add_scheduler(csched)
        server, client, listener = tcp_pair(reactor, ssched, csched)
        total = [0]
        server.on_receive = lambda d: total.__setitem__(0, total[0] + len(d))
        blob_len = 4 * 1024 * 1024
        client.send(b"z" * blob_len)
        assert client._outbox, "payload must exceed the kernel buffer"
        assert client._reactor_handle.want_write, \
            "continuation armed at stall time"
        assert reactor.run_until(lambda: total[0] == blob_len, timeout_s=30)
        assert not client._outbox
        assert not client._reactor_handle.want_write, \
            "write interest disarmed once drained"
        assert client.queued_bytes == 0, \
            "kernel-accepted bytes release credit in unpeered mode"
        listener.close()
        reactor.close()

    def test_graceful_close_propagates_eof(self):
        reactor = Reactor()
        ssched, csched = Scheduler(), Scheduler()
        reactor.add_scheduler(ssched)
        reactor.add_scheduler(csched)
        server, client, listener = tcp_pair(reactor, ssched, csched)
        closed = []
        server.on_close = lambda: closed.append(True)
        got = []
        server.on_receive = lambda d: got.append(bytes(d))
        client.send(b"goodbye")
        client.close()
        assert reactor.run_until(lambda: closed == [True])
        assert b"".join(got) == b"goodbye", "flush-before-EOF ordering"
        listener.close()
        reactor.close()

    def test_connection_refused_resets_and_releases_credit(self):
        reactor = Reactor()
        sched = Scheduler()
        reactor.add_scheduler(sched)
        # grab an ephemeral port, then close it so nobody listens there
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_address = probe.getsockname()
        probe.close()
        client = connect_tcp(reactor, sched, dead_address)
        client.send(b"into the void")
        assert client.queued_bytes > 0
        assert reactor.run_until(lambda: not client.is_open, timeout_s=10)
        assert client.queued_bytes == 0, "reset returns all charged credit"
        reactor.close()

    def test_connect_to_unroutable_name_raises(self):
        reactor = Reactor()
        sched = Scheduler()
        reactor.add_scheduler(sched)
        with pytest.raises(TransportError):
            connect_tcp(reactor, sched, ("not-a-host.invalid.", 1))
        reactor.close()

    def test_double_attach_rejected(self):
        reactor = Reactor()
        sched = Scheduler()
        reactor.add_scheduler(sched)
        ssched = Scheduler()
        reactor.add_scheduler(ssched)
        server, client, listener = tcp_pair(reactor, ssched, sched)
        with pytest.raises(TransportError):
            client.attach_reactor(reactor)
        listener.close()
        reactor.close()

    def test_tcp_kind_has_no_pair_factory(self):
        with pytest.raises(TransportError):
            make_transport_pair(Scheduler(), kind="tcp")


class TestTcpListener:
    def test_accepts_many_clients(self):
        reactor = Reactor()
        ssched = Scheduler()
        reactor.add_scheduler(ssched)
        conns = []

        def on_accept(conn, addr):
            transport = SocketTransport(ssched, conn, ETHERNET_100)
            transport.attach_reactor(reactor)
            conns.append(transport)

        listener = TcpListener(reactor, on_accept)
        clients = []
        for i in range(5):
            csched = Scheduler()
            reactor.add_scheduler(csched, f"c{i}")
            clients.append(connect_tcp(reactor, csched, listener.address))
        assert reactor.run_until(lambda: len(conns) == 5)
        assert listener.accepted == 5
        for client in clients:
            client.close()
        assert reactor.run_until(
            lambda: all(not t.is_open for t in conns))
        listener.close()
        reactor.close()

    def test_listen_failure_raises_transport_error(self):
        reactor = Reactor()
        with pytest.raises(TransportError):
            TcpListener(reactor, lambda c, a: None, host="203.0.113.1")
        reactor.close()

"""Unit tests for ids, guids and small graphics utilities."""

import pytest

from repro.graphics import Bitmap, default_font
from repro.graphics.bitmap import average_color
from repro.util import IdAllocator, guid_from_seed
from repro.util.errors import GraphicsError


class TestIdAllocator:
    def test_sequential(self):
        ids = IdAllocator("dev")
        assert ids.next() == "dev-1"
        assert ids.next() == "dev-2"
        assert ids.next_int() == 3

    def test_custom_start(self):
        assert IdAllocator("x", start=10).next() == "x-10"

    def test_independent_allocators(self):
        a = IdAllocator("a")
        b = IdAllocator("b")
        a.next()
        assert b.next() == "b-1"


class TestGuids:
    def test_deterministic(self):
        assert guid_from_seed("TV/1") == guid_from_seed("TV/1")

    def test_distinct_seeds_distinct_guids(self):
        assert guid_from_seed("TV/1") != guid_from_seed("TV/2")

    def test_length(self):
        assert len(guid_from_seed("x")) == 16
        assert len(guid_from_seed("x", length=8)) == 8

    def test_hex_charset(self):
        assert all(c in "0123456789abcdef" for c in guid_from_seed("y"))

    def test_length_validation(self):
        with pytest.raises(ValueError):
            guid_from_seed("x", length=0)
        with pytest.raises(ValueError):
            guid_from_seed("x", length=100)


class TestAverageColor:
    def test_single_bitmap(self):
        assert average_color([Bitmap(4, 4, fill=(10, 20, 30))]) == (
            10, 20, 30)

    def test_multiple_bitmaps_weighted_by_pixels(self):
        small_dark = Bitmap(1, 1, fill=(0, 0, 0))
        big_bright = Bitmap(3, 3, fill=(200, 200, 200))
        r, g, b = average_color([small_dark, big_bright])
        assert r == g == b == 180  # 9/10 of pixels are bright

    def test_empty_rejected(self):
        with pytest.raises(GraphicsError):
            average_color([])


class TestFontRender:
    def test_render_produces_exact_size(self):
        font = default_font(2)
        image = font.render("OK", (255, 255, 255))
        assert image.size == font.measure("OK")

    def test_empty_string_has_min_width(self):
        image = default_font(1).render("", (0, 0, 0))
        assert image.width == 1

    def test_line_height_exceeds_glyph_height(self):
        font = default_font(1)
        assert font.line_height > font.glyph_height

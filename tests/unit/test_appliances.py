"""Unit tests for the simulated appliances and their FCM state machines."""

import pytest

from repro.appliances import (
    AirConditioner,
    Amplifier,
    DimmableLight,
    DvdPlayer,
    MicrowaveOven,
    Television,
    VideoRecorder,
)
from repro.havi import Comparison, FcmCommandError, FcmType, HomeNetwork


def installed(appliance):
    """Attach the appliance to a fresh network and settle."""
    network = HomeNetwork()
    network.attach_device(appliance)
    network.settle()
    return network


def fcm_of(appliance, fcm_type):
    fcm = appliance.dcm.fcm_by_type(fcm_type)
    assert fcm is not None
    return fcm


class TestHotplug:
    def test_attach_installs_dcm_and_fcms(self):
        tv = Television("Living Room TV")
        network = installed(tv)
        assert tv.dcm is not None
        assert tv.dcm.installed
        dcms = network.registry.query(Comparison("element.type", "==", "dcm"))
        fcms = network.registry.query(Comparison("element.type", "==", "fcm"))
        assert len(dcms) == 1
        assert len(fcms) == 2  # tuner + display

    def test_detach_uninstalls(self):
        tv = Television("TV")
        network = installed(tv)
        network.detach_device(tv.guid)
        network.settle()
        assert not tv.dcm.installed
        assert len(network.registry) == 0

    def test_install_events_posted(self):
        network = HomeNetwork()
        seen = []
        network.events.subscribe("dcm.", lambda e: seen.append(e.opcode))
        tv = Television("TV")
        network.attach_device(tv)
        network.settle()
        network.detach_device(tv.guid)
        network.settle()
        assert seen == ["dcm.installed", "dcm.uninstalled"]

    def test_burst_attach_coalesces_resets(self):
        network = HomeNetwork()
        for i in range(4):
            network.attach_device(DimmableLight(f"L{i}", unit=i + 1))
        network.settle()
        assert network.bus.reset_count == 1
        assert len(network.dcm_manager.dcms) == 4

    def test_same_model_units_get_distinct_guids(self):
        a = DimmableLight("A", unit=1)
        b = DimmableLight("B", unit=2)
        assert a.guid != b.guid

    def test_guids_are_stable_across_runs(self):
        assert Television("x").guid == Television("y").guid


class TestTelevision:
    def setup_method(self):
        self.tv = Television("TV")
        self.network = installed(self.tv)
        self.tuner = fcm_of(self.tv, FcmType.TUNER)

    def test_power_cycle(self):
        assert self.tuner.get_state("power") is False
        self.tuner.invoke_local("power.set", {"on": True})
        assert self.tuner.get_state("power") is True

    def test_commands_require_power(self):
        with pytest.raises(FcmCommandError) as err:
            self.tuner.invoke_local("channel.set", {"channel": 4})
        assert err.value.status == "EPOWER_OFF"

    def test_channel_bounds(self):
        self.tuner.invoke_local("power.set", {"on": True})
        with pytest.raises(FcmCommandError):
            self.tuner.invoke_local("channel.set", {"channel": 0})
        with pytest.raises(FcmCommandError):
            self.tuner.invoke_local("channel.set", {"channel": 13})

    def test_channel_up_skips_to_next_broadcast(self):
        self.tuner.invoke_local("power.set", {"on": True})
        self.tuner.invoke_local("channel.set", {"channel": 4})
        self.tuner.invoke_local("channel.up")
        assert self.tuner.get_state("channel") == 6
        assert self.tuner.get_state("station") == "TBS"

    def test_channel_wraps(self):
        self.tuner.invoke_local("power.set", {"on": True})
        self.tuner.invoke_local("channel.set", {"channel": 12})
        self.tuner.invoke_local("channel.up")
        assert self.tuner.get_state("channel") == 1

    def test_volume_unmutes(self):
        self.tuner.invoke_local("power.set", {"on": True})
        self.tuner.invoke_local("mute.set", {"on": True})
        self.tuner.invoke_local("volume.set", {"volume": 40})
        assert self.tuner.get_state("mute") is False

    def test_state_change_posts_event(self):
        seen = []
        self.network.events.subscribe("fcm.state.channel",
                                      lambda e: seen.append(e.payload))
        self.tuner.invoke_local("power.set", {"on": True})
        self.tuner.invoke_local("channel.set", {"channel": 8})
        self.network.settle()
        assert seen[-1]["value"] == 8

    def test_display_source_validation(self):
        display = fcm_of(self.tv, FcmType.DISPLAY)
        display.invoke_local("source.set", {"source": "vcr"})
        assert display.get_state("source") == "vcr"
        with pytest.raises(FcmCommandError):
            display.invoke_local("source.set", {"source": "betamax"})

    def test_command_over_message_system(self):
        from repro.havi import SEID, SoftwareElement
        client = SoftwareElement(SEID("1234123412341234", 0),
                                 self.network.messaging)
        client.attach()
        replies = []
        client.send_request(self.tuner.seid, "power.set", {"on": True},
                            on_reply=replies.append)
        self.network.settle()
        assert replies[0].status == "SUCCESS"
        assert self.tuner.get_state("power") is True

    def test_describe_lists_commands(self):
        desc = self.tuner.invoke_local("fcm.describe")
        assert "channel.up" in desc["commands"]
        assert desc["fcm_type"] == "tuner"


class TestVcr:
    def setup_method(self):
        self.vcr = VideoRecorder("Deck")
        self.network = installed(self.vcr)
        self.deck = fcm_of(self.vcr, FcmType.VCR)
        self.deck.invoke_local("power.set", {"on": True})

    def test_play_advances_counter_in_real_time(self):
        self.deck.invoke_local("transport.play")
        self.network.scheduler.run_for(10.0)
        assert self.deck.counter() == pytest.approx(10.0)

    def test_ff_is_faster_than_play(self):
        self.deck.invoke_local("transport.ff")
        self.network.scheduler.run_for(5.0)
        assert self.deck.counter() == pytest.approx(40.0)

    def test_rew_runs_backwards_and_clamps(self):
        self.deck.invoke_local("transport.play")
        self.network.scheduler.run_for(8.0)
        self.deck.invoke_local("transport.rew")
        self.network.scheduler.run_for(100.0)
        assert self.deck.counter() == 0.0

    def test_pause_freezes_counter(self):
        self.deck.invoke_local("transport.play")
        self.network.scheduler.run_for(5.0)
        self.deck.invoke_local("transport.pause")
        self.network.scheduler.run_for(100.0)
        assert self.deck.counter() == pytest.approx(5.0)

    def test_pause_requires_motion(self):
        with pytest.raises(FcmCommandError):
            self.deck.invoke_local("transport.pause")

    def test_eject_requires_stop_first_then_clears_tape(self):
        self.deck.invoke_local("transport.play")
        self.deck.invoke_local("tape.eject")
        assert self.deck.get_state("tape_loaded") is False
        assert self.deck.get_state("transport") == "stop"
        with pytest.raises(FcmCommandError) as err:
            self.deck.invoke_local("transport.play")
        assert err.value.status == "ENO_MEDIA"

    def test_load_resets_counter(self):
        self.deck.invoke_local("transport.play")
        self.network.scheduler.run_for(5.0)
        self.deck.invoke_local("tape.eject")
        self.deck.invoke_local("tape.load")
        assert self.deck.counter() == 0.0

    def test_power_off_stops_transport(self):
        self.deck.invoke_local("transport.play")
        self.deck.invoke_local("power.set", {"on": False})
        assert self.deck.get_state("transport") == "stop"

    def test_vcr_has_its_own_tuner(self):
        assert fcm_of(self.vcr, FcmType.TUNER) is not None


class TestAmplifier:
    def test_tone_controls(self):
        amp = Amplifier("Amp")
        installed(amp)
        fcm = fcm_of(amp, FcmType.AMPLIFIER)
        fcm.invoke_local("power.set", {"on": True})
        fcm.invoke_local("tone.set", {"bass": 5, "treble": -3})
        assert fcm.get_state("bass") == 5
        assert fcm.get_state("treble") == -3
        with pytest.raises(FcmCommandError):
            fcm.invoke_local("tone.set", {"bass": 20})
        with pytest.raises(FcmCommandError):
            fcm.invoke_local("tone.set", {})

    def test_source_selection(self):
        amp = Amplifier("Amp")
        installed(amp)
        fcm = fcm_of(amp, FcmType.AMPLIFIER)
        fcm.invoke_local("power.set", {"on": True})
        fcm.invoke_local("source.set", {"source": "aux"})
        assert fcm.get_state("source") == "aux"


class TestDvd:
    def setup_method(self):
        self.dvd = DvdPlayer("DVD")
        installed(self.dvd)
        self.disc = fcm_of(self.dvd, FcmType.AV_DISC)
        self.disc.invoke_local("power.set", {"on": True})

    def test_play_and_chapters(self):
        self.disc.invoke_local("playback.play")
        self.disc.invoke_local("chapter.next")
        self.disc.invoke_local("chapter.next")
        assert self.disc.get_state("chapter") == 3
        self.disc.invoke_local("chapter.prev")
        assert self.disc.get_state("chapter") == 2

    def test_chapter_bounds_clamp(self):
        self.disc.invoke_local("chapter.set", {"chapter": 12})
        self.disc.invoke_local("chapter.next")
        assert self.disc.get_state("chapter") == 12

    def test_open_tray_stops_playback(self):
        self.disc.invoke_local("playback.play")
        self.disc.invoke_local("tray.open")
        assert self.disc.get_state("playback") == "stop"
        with pytest.raises(FcmCommandError):
            self.disc.invoke_local("playback.play")

    def test_stop_rewinds_to_chapter_one(self):
        self.disc.invoke_local("playback.play")
        self.disc.invoke_local("chapter.set", {"chapter": 5})
        self.disc.invoke_local("playback.stop")
        assert self.disc.get_state("chapter") == 1


class TestAircon:
    def setup_method(self):
        self.ac = AirConditioner("AC")
        self.network = installed(self.ac)
        self.fcm = fcm_of(self.ac, FcmType.AIRCON)

    def test_room_cools_toward_target(self):
        self.fcm.invoke_local("power.set", {"on": True})
        self.fcm.invoke_local("temp.set", {"temp": 20})
        start = self.fcm.room_temp()
        self.network.scheduler.run_for(600.0)
        mid = self.fcm.room_temp()
        self.network.scheduler.run_for(3600.0)
        late = self.fcm.room_temp()
        assert start > mid > late
        assert late == pytest.approx(20.0, abs=0.5)

    def test_off_drifts_back_to_ambient(self):
        self.fcm.invoke_local("power.set", {"on": True})
        self.fcm.invoke_local("temp.set", {"temp": 18})
        self.network.scheduler.run_for(3600.0)
        self.fcm.invoke_local("power.set", {"on": False})
        self.network.scheduler.run_for(7200.0)
        from repro.appliances.aircon import AMBIENT
        assert self.fcm.room_temp() == pytest.approx(AMBIENT, abs=0.5)

    def test_temp_bounds(self):
        self.fcm.invoke_local("power.set", {"on": True})
        with pytest.raises(FcmCommandError):
            self.fcm.invoke_local("temp.set", {"temp": 10})
        with pytest.raises(FcmCommandError):
            self.fcm.invoke_local("temp.set", {"temp": 35})

    def test_mode_validation(self):
        self.fcm.invoke_local("power.set", {"on": True})
        self.fcm.invoke_local("mode.set", {"mode": "heat"})
        assert self.fcm.get_state("mode") == "heat"
        with pytest.raises(FcmCommandError):
            self.fcm.invoke_local("mode.set", {"mode": "arctic"})


class TestLight:
    def test_toggle_and_dim(self):
        light = DimmableLight("Ceiling")
        installed(light)
        fcm = fcm_of(light, FcmType.LIGHT)
        fcm.invoke_local("power.toggle")
        assert fcm.get_state("power") is True
        fcm.invoke_local("brightness.set", {"brightness": 40})
        assert fcm.get_state("brightness") == 40
        fcm.invoke_local("power.toggle")
        assert fcm.get_state("power") is False


class TestMicrowave:
    def setup_method(self):
        self.oven = MicrowaveOven("Oven")
        self.network = installed(self.oven)
        self.fcm = fcm_of(self.oven, FcmType.MICROWAVE)

    def test_cook_countdown_and_ding(self):
        bells = []
        self.network.events.subscribe("appliance.bell",
                                      lambda e: bells.append(e))
        self.fcm.invoke_local("timer.start", {"seconds": 90})
        self.network.scheduler.run_for(30.0)
        assert self.fcm.remaining() == pytest.approx(60.0)
        self.network.scheduler.run_until_idle()
        assert self.fcm.get_state("running") is False
        assert self.fcm.get_state("remaining_s") == 0
        assert self.fcm.get_state("cook_count") == 1
        assert len(bells) == 1

    def test_door_open_interrupts(self):
        self.fcm.invoke_local("timer.start", {"seconds": 60})
        self.network.scheduler.run_for(20.0)
        self.fcm.invoke_local("door.open")
        assert self.fcm.get_state("running") is False
        assert self.fcm.get_state("remaining_s") == pytest.approx(40, abs=1)
        # the cancelled finish event must never ding
        self.network.scheduler.run_until_idle()
        assert self.fcm.get_state("cook_count") == 0

    def test_cannot_start_with_door_open(self):
        self.fcm.invoke_local("door.open")
        with pytest.raises(FcmCommandError) as err:
            self.fcm.invoke_local("timer.start", {"seconds": 10})
        assert err.value.status == "EDOOR_OPEN"

    def test_cannot_start_twice(self):
        self.fcm.invoke_local("timer.start", {"seconds": 10})
        with pytest.raises(FcmCommandError):
            self.fcm.invoke_local("timer.start", {"seconds": 10})

    def test_stop_keeps_remaining(self):
        self.fcm.invoke_local("timer.start", {"seconds": 100})
        self.network.scheduler.run_for(25.0)
        result = self.fcm.invoke_local("timer.stop")
        assert result["remaining_s"] == 75

    def test_power_level_bounds(self):
        self.fcm.invoke_local("power_level.set", {"level": 10})
        assert self.fcm.get_state("power_level") == 10
        with pytest.raises(FcmCommandError):
            self.fcm.invoke_local("power_level.set", {"level": 11})

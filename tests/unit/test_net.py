"""Unit tests for link profiles, pipes and framing."""

import pytest

from repro.net import (
    CELLULAR_PDC,
    ETHERNET_100,
    LOOPBACK,
    WIFI_11B,
    FrameAssembler,
    LinkProfile,
    encode_frame,
    make_pipe,
)
from repro.util import Scheduler, TransportClosed


class TestLinkProfile:
    def test_transmission_time(self):
        link = LinkProfile("t", latency_s=0.0, bandwidth_bps=8000)
        assert link.transmission_time(1000) == pytest.approx(1.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LinkProfile("bad", latency_s=-1, bandwidth_bps=1)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            LinkProfile("bad", latency_s=0, bandwidth_bps=0)

    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            LinkProfile("bad", latency_s=0, bandwidth_bps=1, loss=1.0)

    def test_presets_are_ordered_by_speed(self):
        assert CELLULAR_PDC.bandwidth_bps < WIFI_11B.bandwidth_bps
        assert WIFI_11B.bandwidth_bps < ETHERNET_100.bandwidth_bps
        assert ETHERNET_100.bandwidth_bps < LOOPBACK.bandwidth_bps


class TestPipe:
    def test_roundtrip(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        got = []
        pipe.b.on_receive = got.append
        pipe.a.send(b"hello")
        sched.run_until_idle()
        assert got == [b"hello"]

    def test_duplex(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        got_a, got_b = [], []
        pipe.a.on_receive = got_a.append
        pipe.b.on_receive = got_b.append
        pipe.a.send(b"to-b")
        pipe.b.send(b"to-a")
        sched.run_until_idle()
        assert got_b == [b"to-b"]
        assert got_a == [b"to-a"]

    def test_latency_respected(self):
        sched = Scheduler()
        link = LinkProfile("slow", latency_s=0.5, bandwidth_bps=1e9)
        pipe = make_pipe(sched, link)
        arrivals = []
        pipe.b.on_receive = lambda data: arrivals.append(sched.now())
        pipe.a.send(b"x")
        sched.run_until_idle()
        assert arrivals[0] == pytest.approx(0.5, abs=1e-3)

    def test_bandwidth_serialisation_delay(self):
        sched = Scheduler()
        link = LinkProfile("thin", latency_s=0.0, bandwidth_bps=8000)
        pipe = make_pipe(sched, link)
        arrivals = []
        pipe.b.on_receive = lambda data: arrivals.append(sched.now())
        pipe.a.send(b"\x00" * 1000)  # 1 second of serialisation
        pipe.a.send(b"\x00" * 1000)  # queued behind the first
        sched.run_until_idle()
        assert arrivals[0] == pytest.approx(1.0)
        assert arrivals[1] == pytest.approx(2.0)

    def test_fifo_order_with_jitter(self):
        sched = Scheduler()
        link = LinkProfile("jittery", latency_s=0.01, bandwidth_bps=1e9,
                           jitter_s=0.05)
        pipe = make_pipe(sched, link, seed=42)
        got = []
        pipe.b.on_receive = got.append
        for i in range(20):
            pipe.a.send(bytes([i]))
        sched.run_until_idle()
        assert got == [bytes([i]) for i in range(20)]

    def test_loss_drops_messages_deterministically(self):
        sched = Scheduler()
        link = LinkProfile("lossy", latency_s=0.0, bandwidth_bps=1e9, loss=0.5)
        pipe = make_pipe(sched, link, seed=7)
        got = []
        pipe.b.on_receive = got.append
        for i in range(100):
            pipe.a.send(bytes([i]))
        sched.run_until_idle()
        assert 20 < len(got) < 80
        assert pipe.a.stats.messages_dropped == 100 - len(got)
        # Determinism: same seed, same delivery set.
        sched2 = Scheduler()
        pipe2 = make_pipe(sched2, link, seed=7)
        got2 = []
        pipe2.b.on_receive = got2.append
        for i in range(100):
            pipe2.a.send(bytes([i]))
        sched2.run_until_idle()
        assert got2 == got

    def test_send_after_close_raises(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        pipe.close()
        with pytest.raises(TransportClosed):
            pipe.a.send(b"x")

    def test_close_notifies_peer(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        closed = []
        pipe.b.on_close = lambda: closed.append(True)
        pipe.a.close()
        sched.run_until_idle()
        assert closed == [True]

    def test_data_buffered_until_callback_set(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        pipe.a.send(b"early")
        sched.run_until_idle()
        got = []
        pipe.b.on_receive = got.append
        assert got == [b"early"]

    def test_stats_counters(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        pipe.b.on_receive = lambda data: None
        pipe.a.send(b"12345")
        sched.run_until_idle()
        assert pipe.a.stats.bytes_sent == 5
        assert pipe.b.stats.bytes_received == 5
        assert pipe.total_bytes == 5

    def test_non_bytes_payload_rejected(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        with pytest.raises(TypeError):
            pipe.a.send("not bytes")  # type: ignore[arg-type]


class TestFraming:
    def test_roundtrip_single(self):
        frames = []
        asm = FrameAssembler(on_frame=frames.append)
        asm.feed(encode_frame(b"payload"))
        assert frames == [b"payload"]

    def test_split_across_chunks(self):
        frames = []
        asm = FrameAssembler(on_frame=frames.append)
        data = encode_frame(b"abcdef")
        for i in range(len(data)):
            asm.feed(data[i:i + 1])
        assert frames == [b"abcdef"]

    def test_multiple_frames_per_chunk(self):
        asm = FrameAssembler()
        out = asm.feed(encode_frame(b"a") + encode_frame(b"bb") +
                       encode_frame(b"ccc"))
        assert out == [b"a", b"bb", b"ccc"]

    def test_empty_frame(self):
        asm = FrameAssembler()
        assert asm.feed(encode_frame(b"")) == [b""]

    def test_buffered_bytes_reported(self):
        asm = FrameAssembler()
        data = encode_frame(b"abcdef")
        asm.feed(data[:5])
        assert asm.buffered_bytes == 5

    def test_oversize_frame_rejected(self):
        from repro.net.framing import MAX_FRAME_SIZE
        from repro.util.errors import TransportError
        asm = FrameAssembler()
        bad_header = (MAX_FRAME_SIZE + 1).to_bytes(4, "big")
        with pytest.raises(TransportError):
            asm.feed(bad_header)

    def test_over_pipe(self):
        sched = Scheduler()
        pipe = make_pipe(sched)
        frames = []
        asm = FrameAssembler(on_frame=frames.append)
        pipe.b.on_receive = asm.feed
        pipe.a.send(encode_frame(b"one"))
        pipe.a.send(encode_frame(b"two"))
        sched.run_until_idle()
        assert frames == [b"one", b"two"]

"""Unit tests for the application layer: handles, panels, composer."""

import pytest

from repro.app import ApplianceHandle, FcmHandle, build_fcm_panel, compose_ui
from repro.app.panels import PANEL_BUILDERS
from repro.havi import HomeNetwork, SEID, SoftwareElement
from repro.havi.events import HaviEvent
from repro.toolkit import Column, Label, Panel, TabPanel, UIWindow
from repro.util.ids import guid_from_seed


def make_handle(fcm_type="tuner", state=None):
    network = HomeNetwork()
    app = SoftwareElement(SEID(guid_from_seed("test-app"), 0),
                          network.messaging)
    app.attach()
    handle = FcmHandle(app, SEID(guid_from_seed("test-dev"), 1), {
        "fcm.type": fcm_type,
        "device.guid": guid_from_seed("test-dev"),
        "device.name": "Test Device",
        "device.class": "tv",
    })
    handle.state.update(state or {})
    return network, handle


class TestFcmHandle:
    def test_listeners_fire_on_new_value(self):
        network, handle = make_handle()
        seen = []
        handle.listeners.append(lambda k, v: seen.append((k, v)))
        handle._set("power", True)
        handle._set("power", True)   # duplicate: no event
        handle._set("power", False)
        assert seen == [("power", True), ("power", False)]

    def test_on_event_absorbs_payload(self):
        network, handle = make_handle()
        handle.on_event(HaviEvent(
            source=handle.seid, opcode="fcm.state.volume",
            payload={"key": "volume", "value": 42}))
        assert handle.get("volume") == 42

    def test_command_records_errors(self):
        network, handle = make_handle()
        handle.command("whatever.op")  # destination does not exist
        network.settle()
        assert handle.commands_sent == 1
        assert any("EUNKNOWN_ELEMENT" in e for e in handle.errors)

    def test_get_default(self):
        network, handle = make_handle()
        assert handle.get("missing", "fallback") == "fallback"


class TestApplianceHandle:
    def test_fcm_by_type(self):
        network, tuner = make_handle("tuner")
        _, display = make_handle("display")
        appliance = ApplianceHandle("guid", "TV", "tv")
        appliance.add(tuner)
        appliance.add(display)
        assert appliance.fcm_by_type("tuner") is tuner
        assert appliance.fcm_by_type("vcr") is None


class TestPanelBuilders:
    @pytest.mark.parametrize("fcm_type", sorted(PANEL_BUILDERS))
    def test_every_builder_produces_renderable_panel(self, fcm_type):
        network, handle = make_handle(fcm_type)
        panel = build_fcm_panel(handle)
        assert isinstance(panel, Panel)
        window = UIWindow(320, 400)
        root = Column()
        root.add(panel)
        window.set_root(root)
        region = window.render()
        assert not region.is_empty

    def test_unknown_type_gets_generic_panel(self):
        network, handle = make_handle("teleporter", state={"charge": 3})
        panel = build_fcm_panel(handle)
        window = UIWindow(320, 200)
        root = Column()
        root.add(panel)
        window.set_root(root)
        window.render()
        state_label = panel.find(f"{handle.device_guid[:8]}"
                                 f".teleporter.state")
        assert "charge=3" in state_label.text

    def test_panel_widgets_follow_state(self):
        network, handle = make_handle("tuner", state={"volume": 10})
        panel = build_fcm_panel(handle)
        window = UIWindow(320, 200)
        root = Column()
        root.add(panel)
        window.set_root(root)
        volume = panel.find(f"{handle.device_guid[:8]}.tuner.volume")
        assert volume.value == 10
        handle._set("volume", 77)
        assert volume.value == 77

    def test_panel_widget_sends_command(self):
        network, handle = make_handle("light")
        panel = build_fcm_panel(handle)
        window = UIWindow(320, 200)
        root = Column()
        root.add(panel)
        window.set_root(root)
        power = panel.find(f"{handle.device_guid[:8]}.light.power")
        power.toggle()
        assert handle.commands_sent == 1


class TestComposer:
    def _appliance(self, name, *fcm_types):
        appliance = ApplianceHandle(guid_from_seed(name), name, "x")
        for fcm_type in fcm_types:
            _, handle = make_handle(fcm_type)
            appliance.add(handle)
        return appliance

    def test_empty_home(self):
        root = compose_ui([])
        assert root.find("no-appliances") is not None

    def test_single_appliance_no_tabs(self):
        root = compose_ui([self._appliance("TV", "tuner", "display")])
        assert not isinstance(root, TabPanel)
        assert len(root.children) == 2  # two FCM panels stacked

    def test_multiple_appliances_tabbed(self):
        root = compose_ui([
            self._appliance("TV", "tuner"),
            self._appliance("VCR", "vcr"),
            self._appliance("Amp", "amplifier"),
        ])
        assert isinstance(root, TabPanel)
        assert root.titles == ["TV", "VCR", "Amp"]
        assert root.active == 0

    def test_pages_carry_guid_ids(self):
        appliance = self._appliance("TV", "tuner")
        root = compose_ui([appliance, self._appliance("VCR", "vcr")])
        assert root.find(f"page.{appliance.guid[:8]}") is not None

"""Unit tests for the ascii renderer and the event trace."""

import json

import numpy as np
import pytest

from repro import Home
from repro.appliances import Television
from repro.context import UserSituation
from repro.devices import CellPhone
from repro.graphics import Bitmap, Rect
from repro.havi import FcmType
from repro.tools import EventTrace, bitmap_to_ascii, luma_to_ascii


class TestAsciiRenderer:
    def test_dark_and_light(self):
        dark = luma_to_ascii(np.zeros((10, 10)), width=10)
        light = luma_to_ascii(np.full((10, 10), 255.0), width=10)
        assert set(dark.replace("\n", "")) == {" "}
        assert set(light.replace("\n", "")) == {"@"}

    def test_width_respected(self):
        art = bitmap_to_ascii(Bitmap(100, 50, fill=(128, 128, 128)),
                              width=40)
        assert all(len(line) <= 40 for line in art.split("\n"))

    def test_aspect_halves_rows(self):
        art = luma_to_ascii(np.zeros((100, 100)), width=50)
        assert len(art.split("\n")) == 25

    def test_gradient_monotonic(self):
        gradient = np.tile(np.linspace(0, 255, 64), (16, 1))
        art = luma_to_ascii(gradient, width=64)
        first_row = art.split("\n")[0]
        from repro.tools.ascii import RAMP
        indices = [RAMP.index(c) for c in first_row]
        assert indices == sorted(indices)

    def test_rejects_rgb_array(self):
        with pytest.raises(ValueError):
            luma_to_ascii(np.zeros((4, 4, 3)))


class TestEventTrace:
    def _home(self):
        home = Home()
        trace = EventTrace().attach(home)
        home.add_appliance(Television("TV"))
        home.settle()
        return home, trace

    def test_records_dcm_and_state_events(self):
        home, trace = self._home()
        tv = home.appliances["TV"]
        tv.dcm.fcm_by_type(FcmType.TUNER).invoke_local(
            "power.set", {"on": True})
        home.settle()
        categories = [r.category for r in trace.records]
        assert "dcm.installed" in categories
        assert "fcm.state.power" in categories

    def test_records_context_switches(self):
        home, trace = self._home()
        home.add_device(CellPhone("k", home.scheduler))
        home.context.set_situation(UserSituation.cooking())
        home.settle()
        switches = trace.filter("context.switch")
        assert switches
        assert switches[-1].detail["location"] == "kitchen"

    def test_filter_by_prefix(self):
        home, trace = self._home()
        assert all(r.category.startswith("dcm.")
                   for r in trace.filter("dcm."))

    def test_jsonl_output_parses(self):
        home, trace = self._home()
        for line in trace.to_jsonl().splitlines():
            record = json.loads(line)
            assert "t" in record and "category" in record

    def test_detach_stops_recording(self):
        home, trace = self._home()
        count = len(trace)
        trace.detach()
        tv = home.appliances["TV"]
        tv.dcm.fcm_by_type(FcmType.TUNER).invoke_local(
            "power.set", {"on": True})
        home.settle()
        assert len(trace) == count

    def test_double_attach_rejected(self):
        home, trace = self._home()
        with pytest.raises(RuntimeError):
            trace.attach(home)

    def test_format_is_deterministic(self):
        def run():
            home = Home()
            trace = EventTrace().attach(home)
            home.add_appliance(Television("TV"))
            home.settle()
            return trace.format()

        assert run() == run()

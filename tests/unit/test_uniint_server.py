"""Unit tests for the UniInt server sessions."""

import pytest

from repro.graphics import RGB332, RGB888, Rect
from repro.net import ETHERNET_100, make_pipe
from repro.proxy.upstream import UniIntClient
from repro.server import UniIntServer
from repro.toolkit import Button, Column, Label, UIWindow
from repro.uip import DESKTOP_SIZE, HEXTILE, RAW, RRE, ZLIB, ZRLE
from repro.uip.messages import SetEncodings
from repro.util import Scheduler
from repro.windows import DisplayServer


def make_server(width=160, height=120, secret=None, **server_kwargs):
    scheduler = Scheduler()
    display = DisplayServer(width, height)
    window = UIWindow(width, height)
    col = Column()
    label = col.add(Label("hello"))
    label.widget_id = "label"
    col.add(Button("Go"))
    window.set_root(col)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler, name="test-home",
                          secret=secret, **server_kwargs)
    return scheduler, display, window, server


def connect(scheduler, server, **kwargs):
    pipe = make_pipe(scheduler, ETHERNET_100, name="c")
    server.accept(pipe.a)
    client = UniIntClient(pipe.b, **kwargs)
    return client


class TestSessions:
    def test_multiple_clients_share_one_display(self):
        scheduler, display, window, server = make_server()
        a = connect(scheduler, server)
        b = connect(scheduler, server)
        scheduler.run_until_idle()
        assert len(server.sessions) == 2
        assert a.framebuffer == b.framebuffer == display.framebuffer

    def test_client_sees_changes_made_by_other_client(self):
        scheduler, display, window, server = make_server()
        a = connect(scheduler, server)
        b = connect(scheduler, server)
        scheduler.run_until_idle()
        # a clicks the button; b's mirror updates too
        button = window.root.children[1]
        cx, cy = button.abs_rect().center
        a.click(cx, cy)
        scheduler.run_until_idle()
        assert b.framebuffer == display.framebuffer

    def test_session_close_removes_it(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        client.close()
        scheduler.run_until_idle()
        assert server.sessions == []

    def test_server_name_transmitted(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        assert client.server_name == "test-home"

    def test_secret_required(self):
        scheduler, display, window, server = make_server(secret="hunter2")
        good = connect(scheduler, server, secret="hunter2")
        scheduler.run_until_idle()
        assert good.ready

    def test_wrong_secret_rejected(self):
        from repro.util.errors import ProtocolError
        scheduler, display, window, server = make_server(secret="hunter2")
        bad = connect(scheduler, server, secret="wrong")
        with pytest.raises(ProtocolError):
            scheduler.run_until_idle()

    def test_stats_track_events(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        client.press_key(0xFF0D)
        client.click(10, 10)
        scheduler.run_until_idle()
        session = server.sessions[0]
        assert session.key_events == 2     # down + up
        assert session.pointer_events == 2
        assert session.updates_sent >= 1


class TestEncodingsNegotiation:
    @pytest.mark.parametrize("encodings", [
        (RAW,), (RRE, RAW), (HEXTILE, RAW), (ZLIB, RAW)])
    def test_each_encoding_produces_identical_mirror(self, encodings):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server, encodings=encodings)
        scheduler.run_until_idle()
        assert client.framebuffer == display.framebuffer
        window.root.find("label").text = "changed!"
        scheduler.run_until_idle()
        assert client.framebuffer == display.framebuffer

    def test_unsupported_encodings_fall_back_to_raw(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server, encodings=(777,))
        scheduler.run_until_idle()
        assert server.sessions[0].encodings == (RAW,)
        assert client.framebuffer == display.framebuffer

    def test_low_depth_wire_format(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server, pixel_format=RGB332)
        scheduler.run_until_idle()
        assert client.framebuffer is not None
        # lossy but bounded error
        import numpy as np
        err = np.abs(client.framebuffer.pixels.astype(int)
                     - display.framebuffer.pixels.astype(int))
        assert err.max() <= 40  # half an RGB332 blue step


class TestSessionStats:
    def test_stats_carries_link_health(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        session = server.sessions[0]
        window.root.find("label").text = "changed!"
        scheduler.run_until_idle()
        stats = session.stats()
        assert stats["session_id"] == session.session_id
        assert stats["updates_sent"] == session.updates_sent >= 1
        assert stats["rects_sent"] == session.rects_sent
        assert sum(stats["rects_by_encoding"].values()) == session.rects_sent
        health = stats["link_health"]
        assert health.profile == ETHERNET_100.name
        assert health.tier == 1  # non-adaptive servers stay on the default
        assert health.active_encoding in session.encodings
        assert health.updates_coalesced == 0
        assert health.bytes_suppressed == 0
        assert health.backlog_s == 0.0

    def test_zrle_session_mirror_and_accounting(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server, encodings=(ZRLE, RAW))
        scheduler.run_until_idle()
        session = server.sessions[0]
        window.root.find("label").text = "changed!"
        scheduler.run_until_idle()
        assert client.framebuffer == display.framebuffer
        assert session.stats()["rects_by_encoding"].get(ZRLE, 0) > 0
        assert session.link_health().active_encoding == ZRLE


class TestSharedEncodeBroadcast:
    def test_same_config_sessions_share_one_encode(self):
        scheduler, display, window, server = make_server()
        clients = [connect(scheduler, server) for _ in range(4)]
        scheduler.run_until_idle()
        window.root.find("label").text = "broadcast!"
        hits_before = server.shared_encode_hits
        scheduler.run_until_idle()
        for client in clients:
            assert client.framebuffer == display.framebuffer
        # one session encoded, the other three got the same bytes
        assert server.shared_encode_hits >= hits_before + 3

    def test_pack_shared_across_sessions(self):
        scheduler, display, window, server = make_server()
        for _ in range(3):
            connect(scheduler, server)
        scheduler.run_until_idle()
        window.root.find("label").text = "pack once"
        packs_before = server.pack_misses
        scheduler.run_until_idle()
        assert server.pack_hits >= 2
        # the damaged rects were packed once, not once per session
        assert server.pack_misses - packs_before <= server.max_update_rects

    def test_mixed_pixel_formats_group_separately(self):
        import numpy as np
        scheduler, display, window, server = make_server()
        a = connect(scheduler, server)
        b = connect(scheduler, server, pixel_format=RGB332)
        c = connect(scheduler, server)
        scheduler.run_until_idle()
        window.root.find("label").text = "mixed!"
        scheduler.run_until_idle()
        assert a.framebuffer == c.framebuffer == display.framebuffer
        err = np.abs(b.framebuffer.pixels.astype(int)
                     - display.framebuffer.pixels.astype(int))
        assert err.max() <= 40  # RGB332 is lossy but must track content

    def test_zlib_sessions_bypass_shared_path(self):
        scheduler, display, window, server = make_server()
        a = connect(scheduler, server, encodings=(ZLIB, RAW))
        b = connect(scheduler, server, encodings=(ZLIB, RAW))
        scheduler.run_until_idle()
        hits_initial = server.shared_encode_hits
        window.root.find("label").text = "private streams"
        scheduler.run_until_idle()
        assert server.shared_encode_hits == hits_initial
        assert a.framebuffer == b.framebuffer == display.framebuffer

    def test_shared_encode_disabled_still_correct(self):
        scheduler, display, window, server = make_server(shared_encode=False)
        clients = [connect(scheduler, server) for _ in range(3)]
        scheduler.run_until_idle()
        window.root.find("label").text = "per-session"
        scheduler.run_until_idle()
        assert server.shared_encode_hits == 0
        assert server.shared_encode_misses == 0
        for client in clients:
            assert client.framebuffer == display.framebuffer

    def test_broadcast_bytes_identical_on_the_wire(self):
        scheduler, display, window, server = make_server()
        a = connect(scheduler, server)
        b = connect(scheduler, server)
        scheduler.run_until_idle()
        a_before = a.endpoint.stats.bytes_received
        b_before = b.endpoint.stats.bytes_received
        window.root.find("label").text = "identical"
        scheduler.run_until_idle()
        assert (a.endpoint.stats.bytes_received - a_before
                == b.endpoint.stats.bytes_received - b_before)

    def test_direct_composite_invalidates_caches(self):
        """Regression: composite() called outside the server's flush path
        (Home.screenshot) must not leave stale pack/encode cache entries."""
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        window.root.find("label").text = "fresh content"
        display.composite()  # consumes the damage behind the server's back
        client.request_update(incremental=False)
        scheduler.run_until_idle()
        assert client.framebuffer == display.framebuffer

    def test_update_rect_count_capped(self):
        scheduler, display, window, server = make_server(max_update_rects=4)
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        rects_before = server.sessions[0].rects_sent
        # scatter damage widely: many disjoint fragments of real change
        for i in range(12):
            spot = Rect(i * 13 % 140, (i * 29) % 100, 5, 5)
            window.bitmap.fill_rect(spot, (255, 40, (i * 20) % 255))
            display._note_damage(spot)
        scheduler.run_until_idle()
        sent = server.sessions[0].rects_sent - rects_before
        assert 0 < sent <= 4
        assert client.framebuffer == display.framebuffer


class TestTileDiffIntegration:
    def test_unchanged_redraw_sends_nothing(self):
        """A full repaint with identical pixels must cost zero wire bytes."""
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        received = client.endpoint.stats.bytes_received
        dropped_before = server.diff_tiles_dropped
        window.root.find("label").invalidate()  # repaint, same pixels
        scheduler.run_until_idle()
        assert client.endpoint.stats.bytes_received == received
        assert server.diff_tiles_dropped > dropped_before
        assert client.framebuffer == display.framebuffer

    def test_ablation_toggle_preserves_old_behaviour(self):
        scheduler, display, window, server = make_server(tile_diff=False)
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        received = client.endpoint.stats.bytes_received
        window.root.find("label").invalidate()
        scheduler.run_until_idle()
        # without the differ the redraw is re-encoded and re-sent
        assert client.endpoint.stats.bytes_received > received
        assert server.diff_tiles_dropped == 0
        assert client.framebuffer == display.framebuffer

    def test_real_change_shrinks_to_changed_tiles(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        checked = server.diff_tiles_checked
        window.root.find("label").text = "x"
        scheduler.run_until_idle()
        assert server.diff_tiles_checked > checked
        assert client.framebuffer == display.framebuffer

    def test_mixed_changed_and_unchanged_damage(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server)
        scheduler.run_until_idle()
        # one real change and one identical repaint in the same flush
        window.bitmap.fill_rect(Rect(100, 80, 10, 10), (9, 200, 30))
        display._note_damage(Rect(100, 80, 10, 10))
        window.root.find("label").invalidate()
        scheduler.run_until_idle()
        assert client.framebuffer == display.framebuffer
        assert client.framebuffer.get_pixel(104, 84) == (9, 200, 30)

    def test_resize_with_differ_still_mirrors(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server,
                         encodings=(HEXTILE, RAW, DESKTOP_SIZE))
        scheduler.run_until_idle()
        display.resize(208, 144)
        display.map_fullscreen(window)
        scheduler.run_until_idle()
        assert client.framebuffer.size == (208, 144)
        assert client.framebuffer == display.framebuffer


class TestDesktopResize:
    def test_resize_propagates_when_negotiated(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server,
                         encodings=(HEXTILE, RAW, DESKTOP_SIZE))
        scheduler.run_until_idle()
        sizes = []
        client.on_resize = lambda w, h: sizes.append((w, h))
        display.resize(200, 160)
        display.map_fullscreen(window)
        scheduler.run_until_idle()
        assert sizes == [(200, 160)]
        assert client.framebuffer.size == (200, 160)
        assert client.framebuffer == display.framebuffer

    def test_resize_without_negotiation_sends_full_frames(self):
        scheduler, display, window, server = make_server()
        client = connect(scheduler, server, encodings=(RAW,))
        scheduler.run_until_idle()
        display.resize(200, 160)
        display.map_fullscreen(window)
        scheduler.run_until_idle()
        # client was never told about the resize; it keeps the old geometry
        assert client.framebuffer.size == (160, 120)

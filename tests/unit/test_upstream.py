"""Unit tests for the UniIntClient (the proxy's upstream face)."""

import numpy as np
import pytest

from repro.graphics import RGB888, Bitmap, Rect
from repro.net import make_pipe
from repro.proxy.upstream import UniIntClient
from repro.uip import (
    COPYRECT,
    EncoderState,
    FramebufferUpdate,
    RAW,
    RectUpdate,
)
from repro.uip.handshake import ServerHandshake
from repro.util import Scheduler


class FakeServer:
    """A scripted UIP server: handshake + canned updates."""

    def __init__(self, scheduler, endpoint, width=64, height=48):
        self.endpoint = endpoint
        self.handshake = ServerHandshake(width, height, RGB888, "fake")
        self.encoder = EncoderState(RGB888)
        self.requests = 0
        endpoint.on_receive = self._on_bytes
        endpoint.send(self.handshake.outgoing())

    def _on_bytes(self, data):
        if not self.handshake.done:
            self.handshake.feed(data)
            out = self.handshake.outgoing()
            if out:
                self.endpoint.send(out)
            return
        # count every update request byte-block; no parsing needed for tests
        self.requests += 1

    def push(self, update: FramebufferUpdate):
        self.endpoint.send(update.encode(self.encoder))


def connected_pair():
    scheduler = Scheduler()
    pipe = make_pipe(scheduler)
    server = FakeServer(scheduler, pipe.a)
    client = UniIntClient(pipe.b)
    scheduler.run_until_idle()
    assert client.ready
    return scheduler, server, client


class TestApplyUpdates:
    def test_raw_update_paints_mirror(self):
        scheduler, server, client = connected_pair()
        patch = Bitmap(8, 8, fill=(200, 10, 10))
        server.push(FramebufferUpdate((RectUpdate(
            Rect(4, 4, 8, 8), RAW, RGB888.pack_array(patch.pixels)),)))
        regions = []
        client.on_update = regions.append
        scheduler.run_until_idle()
        assert client.framebuffer.get_pixel(4, 4) == (200, 10, 10)
        assert client.framebuffer.get_pixel(0, 0) == (0, 0, 0)
        assert regions[-1].bounds() == Rect(4, 4, 8, 8)

    def test_copyrect_moves_pixels(self):
        scheduler, server, client = connected_pair()
        patch = Bitmap(8, 8, fill=(1, 2, 3))
        server.push(FramebufferUpdate((RectUpdate(
            Rect(0, 0, 8, 8), RAW, RGB888.pack_array(patch.pixels)),)))
        scheduler.run_until_idle()
        server.push(FramebufferUpdate((RectUpdate(
            Rect(20, 20, 8, 8), COPYRECT, (0, 0)),)))
        scheduler.run_until_idle()
        assert client.framebuffer.get_pixel(20, 20) == (1, 2, 3)
        assert client.framebuffer.get_pixel(27, 27) == (1, 2, 3)

    def test_each_update_triggers_next_request(self):
        scheduler, server, client = connected_pair()
        base = server.requests
        patch = Bitmap(4, 4)
        for _ in range(3):
            server.push(FramebufferUpdate((RectUpdate(
                Rect(0, 0, 4, 4), RAW, RGB888.pack_array(patch.pixels)),)))
            scheduler.run_until_idle()
        assert server.requests == base + 3
        assert client.updates_received == 3

    def test_bell_callback(self):
        from repro.uip import Bell
        scheduler, server, client = connected_pair()
        bells = []
        client.on_bell = lambda: bells.append(1)
        server.endpoint.send(Bell().encode())
        scheduler.run_until_idle()
        assert bells == [1]

    def test_server_cut_text_ignored(self):
        from repro.uip import ServerCutText
        scheduler, server, client = connected_pair()
        server.endpoint.send(ServerCutText("clipboard").encode())
        scheduler.run_until_idle()  # no exception

    def test_close_is_idempotent(self):
        scheduler, server, client = connected_pair()
        client.close()
        client.close()
        assert client.closed
        assert not client.ready

    def test_input_helpers_encode_correct_events(self):
        scheduler, server, client = connected_pair()
        sent = []
        original = client.endpoint.send
        client.endpoint.send = lambda data: sent.append(data)
        client.press_key(0x41)
        client.click(10, 20)
        assert len(sent) == 4  # key down/up + pointer down/up
        from repro.uip import ClientMessageDecoder, KeyEvent, PointerEvent
        decoder = ClientMessageDecoder()
        messages = []
        for blob in sent:
            messages.extend(decoder.feed(blob))
        assert messages == [
            KeyEvent(True, 0x41), KeyEvent(False, 0x41),
            PointerEvent(1, 10, 20), PointerEvent(0, 10, 20)]

"""Unit tests for the display server (window system substrate)."""

import pytest

from repro.graphics import Rect
from repro.toolkit import Button, Column, Label, UIWindow
from repro.uip import keysyms
from repro.windows import DisplayServer
from repro.util.errors import ToolkitError


def simple_window(width=100, height=80, label="win"):
    window = UIWindow(width, height)
    col = Column()
    col.add(Label(label))
    col.add(Button(label.upper()))
    window.set_root(col)
    return window


class TestMapping:
    def test_initial_composite_covers_screen(self):
        server = DisplayServer(320, 240)
        region = server.composite()
        assert region.bounds() == server.framebuffer.bounds

    def test_map_window_draws_content(self):
        server = DisplayServer(320, 240)
        server.composite()
        window = simple_window()
        server.map_window(window, 10, 10)
        region = server.composite()
        assert not region.is_empty
        # window face colour shows at its position
        assert server.framebuffer.get_pixel(50, 50) != server.wallpaper

    def test_unmap_restores_wallpaper(self):
        server = DisplayServer(320, 240)
        window = simple_window()
        managed = server.map_window(window, 10, 10)
        server.composite()
        server.unmap_window(managed)
        server.composite()
        assert server.framebuffer.get_pixel(50, 50) == server.wallpaper

    def test_unmap_unknown_raises(self):
        server = DisplayServer(100, 100)
        window = simple_window()
        managed = server.map_window(window)
        server.unmap_window(managed)
        with pytest.raises(ToolkitError):
            server.unmap_window(managed)

    def test_fullscreen_resizes_window(self):
        server = DisplayServer(320, 240)
        window = simple_window(50, 50)
        server.map_fullscreen(window)
        assert window.bitmap.size == (320, 240)

    def test_stacking_top_window_wins(self):
        server = DisplayServer(200, 200)
        bottom = server.map_window(simple_window(100, 100, "a"), 0, 0)
        top = server.map_window(simple_window(100, 100, "b"), 0, 0)
        server.composite()
        assert server.top_window is top
        server.raise_window(bottom)
        assert server.top_window is bottom

    def test_move_window_damages_both_areas(self):
        server = DisplayServer(300, 200)
        managed = server.map_window(simple_window(), 0, 0)
        server.composite()
        server.move_window(managed, 150, 50)
        region = server.composite()
        assert region.contains_point(5, 5)        # old position
        assert region.contains_point(155, 55)     # new position
        assert server.framebuffer.get_pixel(5, 5) == server.wallpaper

    def test_composite_idempotent(self):
        server = DisplayServer(100, 100)
        server.map_window(simple_window())
        server.composite()
        assert server.composite().is_empty

    def test_has_pending_damage(self):
        server = DisplayServer(100, 100)
        window = simple_window()
        server.map_window(window)
        assert server.has_pending_damage()
        server.composite()
        assert not server.has_pending_damage()
        window.root.children[0].text = "changed"
        assert server.has_pending_damage()

    def test_damage_callback_fires(self):
        server = DisplayServer(100, 100)
        calls = []
        server.on_damage = lambda: calls.append(1)
        server.map_window(simple_window())
        assert calls


class TestInput:
    def test_key_goes_to_top_window(self):
        server = DisplayServer(200, 200)
        w1 = simple_window(100, 100, "a")
        w2 = simple_window(100, 100, "b")
        server.map_window(w1, 0, 0)
        server.map_window(w2, 100, 100)
        server.composite()
        # w2 is top; its button has focus
        clicked = []
        button = w2.root.children[1]
        button.on_activate = lambda w: clicked.append("b")
        server.inject_key(keysyms.RETURN, True)
        server.inject_key(keysyms.RETURN, False)
        assert clicked == ["b"]

    def test_pointer_routed_by_position(self):
        server = DisplayServer(300, 100)
        w1 = simple_window(100, 100, "a")
        w2 = simple_window(100, 100, "b")
        server.map_window(w1, 0, 0)
        server.map_window(w2, 200, 0)
        server.composite()
        clicked = []
        w1.root.children[1].on_activate = lambda w: clicked.append("a")
        w2.root.children[1].on_activate = lambda w: clicked.append("b")
        bx = w1.root.children[1].abs_rect().center
        server.inject_pointer(bx[0], bx[1], 1)
        server.inject_pointer(bx[0], bx[1], 0)
        assert clicked == ["a"]

    def test_pointer_miss_returns_false(self):
        server = DisplayServer(300, 100)
        server.map_window(simple_window(100, 100), 0, 0)
        server.composite()
        assert server.inject_pointer(250, 50, 1) is False
        server.inject_pointer(250, 50, 0)

    def test_pointer_grab_follows_window(self):
        server = DisplayServer(300, 100)
        w1 = simple_window(100, 100, "a")
        server.map_window(w1, 0, 0)
        server.composite()
        slider_like = w1.root.children[1]
        events = []
        slider_like.handle_pointer = lambda e: events.append(e.kind) or True
        center = slider_like.abs_rect().center
        server.inject_pointer(center[0], center[1], 1)
        # drag outside the window: still delivered to w1 (grab)
        server.inject_pointer(250, 50, 1)
        server.inject_pointer(250, 50, 0)
        kinds = [k.value for k in events]
        assert kinds == ["down", "move", "up"]

    def test_key_with_no_windows(self):
        server = DisplayServer(100, 100)
        assert server.inject_key(keysyms.RETURN, True) is False

    def test_resize_damages_everything(self):
        server = DisplayServer(100, 100)
        server.map_window(simple_window())
        server.composite()
        server.resize(200, 150)
        assert server.framebuffer.size == (200, 150)
        region = server.composite()
        assert region.bounds() == server.framebuffer.bounds

    def test_bad_display_size(self):
        with pytest.raises(ToolkitError):
            DisplayServer(0, 100)

"""Unit tests for proxy descriptors, plug-in machinery and registration."""

import pytest

from repro.devices import CellPhone, Pda, TvDisplay, VoiceInput
from repro.graphics import Bitmap
from repro.net import make_pipe
from repro.proxy import (
    DeviceDescriptor,
    DeviceImage,
    ScreenSpec,
    SessionContext,
    UniIntProxy,
    ViewTransform,
)
from repro.util import Scheduler
from repro.util.errors import PluginError, ProxyError


class TestScreenSpec:
    def test_bits_per_pixel(self):
        assert ScreenSpec(10, 10, "mono1").bits_per_pixel == 1
        assert ScreenSpec(10, 10, "gray4").bits_per_pixel == 2
        assert ScreenSpec(10, 10, "rgb565").bits_per_pixel == 16
        assert ScreenSpec(10, 10, "rgb888").bits_per_pixel == 24

    def test_validation(self):
        with pytest.raises(ProxyError):
            ScreenSpec(0, 10, "mono1")
        with pytest.raises(ProxyError):
            ScreenSpec(10, 10, "cmyk")


class TestDeviceDescriptor:
    def test_roles(self):
        pda = Pda("p", Scheduler()).descriptor
        assert pda.is_input and pda.is_output
        voice = VoiceInput("v", Scheduler()).descriptor
        assert voice.is_input and not voice.is_output
        tv = TvDisplay("t", Scheduler()).descriptor
        assert tv.is_output and not tv.is_input

    def test_useless_device_rejected(self):
        with pytest.raises(ProxyError):
            DeviceDescriptor(device_id="x", kind="brick")

    def test_empty_id_rejected(self):
        with pytest.raises(ProxyError):
            DeviceDescriptor(device_id="", kind="pda",
                             input_modes=frozenset({"touch"}))


class TestDeviceImage:
    def test_roundtrip(self):
        image = DeviceImage(4, 3, "gray4", b"\x12" * 6)
        again = DeviceImage.decode(image.encode())
        assert again == image

    @pytest.mark.parametrize("fmt", ["mono1", "gray4", "rgb565", "rgb888"])
    def test_all_formats(self, fmt):
        image = DeviceImage(2, 2, fmt, b"\x00" * 12)
        assert DeviceImage.decode(image.encode()).format == fmt

    def test_unknown_format_rejected(self):
        with pytest.raises(PluginError):
            DeviceImage(1, 1, "hdr", b"").encode()

    def test_truncated_rejected(self):
        image = DeviceImage(4, 3, "mono1", b"\xFF" * 3)
        blob = image.encode()
        with pytest.raises(PluginError):
            DeviceImage.decode(blob[:-1])

    def test_garbage_rejected(self):
        with pytest.raises(PluginError):
            DeviceImage.decode(b"\x00\x01")


class TestViewTransform:
    def test_roundtrip_identity_scale(self):
        view = ViewTransform(1.0, 0, 0, 100, 100)
        assert view.to_server(*view.to_device(40, 60)) == (40, 60)

    def test_letterboxed_mapping(self):
        view = ViewTransform(0.5, 10, 20, 200, 100)
        assert view.to_device(100, 50) == (60, 45)
        assert view.to_server(60, 45) == (100, 50)

    def test_server_coordinates_clamped(self):
        view = ViewTransform(0.5, 10, 20, 200, 100)
        x, y = view.to_server(0, 0)
        assert 0 <= x < 200
        assert 0 <= y < 100

    def test_degenerate_scale_rejected(self):
        view = ViewTransform(0.0, 0, 0, 10, 10)
        with pytest.raises(PluginError):
            view.to_server(1, 1)


class TestOutputPluginGeometry:
    def test_fit_view_letterboxes_and_records_context(self):
        device = Pda("p", Scheduler())
        context = SessionContext()
        plugin = device.output_plugin_factory(device.descriptor, context)
        frame = Bitmap(480, 360)  # 4:3 onto 320x240 (4:3): full fit
        view = plugin.fit_view(frame)
        assert context.view is view
        assert view.offset_x == 0 and view.offset_y == 0
        wide = Bitmap(480, 120)  # 4:1 onto 4:3: vertical letterbox
        view = plugin.fit_view(wide)
        assert view.offset_y > 0
        assert view.offset_x == 0

    def test_fit_view_never_upscales_past_native(self):
        """A 1024x768 wall panel showing a 480x360 window: scale clamps to
        1.0 and the frame is re-centred pixel-for-pixel, not blown up."""
        from repro.devices import WallDisplay
        wall = WallDisplay("wall", Scheduler())
        context = SessionContext()
        plugin = wall.output_plugin_factory(wall.descriptor, context)
        frame = Bitmap(480, 360)
        view = plugin.fit_view(frame)
        assert view.scale == 1.0
        assert view.offset_x == (1024 - 480) // 2 == 272
        assert view.offset_y == (768 - 360) // 2 == 204
        # the inverse mapping still lands inside the server window
        assert view.to_server(*view.to_device(479, 359)) == (479, 359)
        # and the rendered device image keeps the frame at native size
        image = plugin.process(frame, frame.bounds)
        assert (image.width, image.height) == (1024, 768)

    def test_output_plugin_requires_screen(self):
        voice = VoiceInput("v", Scheduler())
        pda = Pda("p", Scheduler())
        with pytest.raises(PluginError):
            pda.output_plugin_factory(voice.descriptor, SessionContext())


class TestProxyRegistration:
    def _proxy(self):
        return UniIntProxy(Scheduler())

    def test_register_and_list(self):
        proxy = self._proxy()
        scheduler = proxy.scheduler
        Pda("pda", scheduler).connect(proxy)
        VoiceInput("voice", scheduler).connect(proxy)
        TvDisplay("tv", scheduler).connect(proxy)
        assert [d.device_id for d in proxy.list_devices()] == [
            "pda", "tv", "voice"]
        assert [d.device_id
                for d in proxy.list_devices(require_input=True)] == [
            "pda", "voice"]
        assert [d.device_id
                for d in proxy.list_devices(require_output=True)] == [
            "pda", "tv"]

    def test_duplicate_id_rejected(self):
        proxy = self._proxy()
        Pda("pda", proxy.scheduler).connect(proxy)
        with pytest.raises(ProxyError):
            CellPhone("pda", proxy.scheduler).connect(proxy)

    def test_double_connect_rejected(self):
        proxy = self._proxy()
        pda = Pda("pda", proxy.scheduler)
        pda.connect(proxy)
        with pytest.raises(ProxyError):
            pda.connect(proxy)

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ProxyError):
            self._proxy().unregister_device("ghost")

    def test_selection_requires_session(self):
        proxy = self._proxy()
        Pda("pda", proxy.scheduler).connect(proxy)
        with pytest.raises(ProxyError):
            proxy.select_input("pda")

    def test_device_disconnect_deselects(self):
        from repro.net import ETHERNET_100
        from repro.server import UniIntServer
        from repro.toolkit import Column, UIWindow
        from repro.windows import DisplayServer
        scheduler = Scheduler()
        display = DisplayServer(100, 100)
        window = UIWindow(100, 100)
        window.set_root(Column())
        display.map_fullscreen(window)
        server = UniIntServer(display, scheduler)
        proxy = UniIntProxy(scheduler)
        pipe = make_pipe(scheduler, ETHERNET_100)
        server.accept(pipe.a)
        proxy.connect(pipe.b)
        pda = Pda("pda", scheduler)
        pda.connect(proxy)
        proxy.select_input("pda")
        proxy.select_output("pda")
        scheduler.run_until_idle()
        pda.disconnect()
        scheduler.run_until_idle()
        assert proxy.current_input is None
        assert proxy.current_output is None
        assert "pda" not in proxy.devices

    def test_input_role_validation(self):
        proxy = self._proxy()
        from repro.net import ETHERNET_100
        from repro.server import UniIntServer
        from repro.toolkit import Column, UIWindow
        from repro.windows import DisplayServer
        display = DisplayServer(100, 100)
        window = UIWindow(100, 100)
        window.set_root(Column())
        display.map_fullscreen(window)
        server = UniIntServer(display, proxy.scheduler)
        pipe = make_pipe(proxy.scheduler, ETHERNET_100)
        server.accept(pipe.a)
        proxy.connect(pipe.b)
        TvDisplay("tv", proxy.scheduler).connect(proxy)
        VoiceInput("voice", proxy.scheduler).connect(proxy)
        with pytest.raises(ProxyError):
            proxy.select_input("tv")      # output-only device
        with pytest.raises(ProxyError):
            proxy.select_output("voice")  # input-only device

"""Unit tests for the fault-injection harness (repro.net.faults)."""

import errno

import pytest

from repro.net import (
    ETHERNET_100,
    FaultInjector,
    FaultPlan,
    FaultyTransport,
    LOOPBACK,
    Reactor,
    SocketTransport,
    TcpListener,
    connect_tcp,
    inject_socket_faults,
    make_socket_transport_pair,
    make_transport_pair,
)
from repro.util import Scheduler, TransportError


def faulty_pair(plan, kind="pipe"):
    """(faulty wrapper over a, b, scheduler) with received bytes captured."""
    sched = Scheduler()
    pair = make_transport_pair(sched, LOOPBACK, name="chaos", kind=kind)
    faulty = FaultyTransport(pair.a, plan, sched)
    got = []
    pair.b.on_receive = lambda data: got.append(bytes(data))
    return faulty, pair, sched, got


class TestFaultPlan:
    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(TransportError):
            FaultPlan(drop=0.5, duplicate=0.3, delay=0.2, truncate=0.1)

    def test_rates_must_be_probabilities(self):
        with pytest.raises(TransportError):
            FaultPlan(partial=1.5)
        with pytest.raises(TransportError):
            FaultPlan(drop=-0.1)

    def test_errno_at_validates_side_and_chains(self):
        plan = FaultPlan().errno_at(0, errno.EINTR).errno_at(
            10, errno.ECONNRESET, side="recv")
        assert plan.syscall_faults == [("send", 0, errno.EINTR),
                                       ("recv", 10, errno.ECONNRESET)]
        with pytest.raises(TransportError):
            plan.errno_at(0, errno.EINTR, side="sideways")

    def test_rng_streams_are_per_name_and_reproducible(self):
        plan = FaultPlan(seed=7)
        a1 = [plan.rng_for("a").random() for _ in range(3)]
        a2 = [plan.rng_for("a").random() for _ in range(3)]
        b = [plan.rng_for("b").random() for _ in range(3)]
        assert a1 == a2
        assert a1 != b


class TestFaultyTransport:
    def test_drop_all(self):
        faulty, pair, sched, got = faulty_pair(FaultPlan(drop=1.0))
        for i in range(5):
            faulty.send(b"x%d" % i)
        sched.run_until_idle()
        assert got == []
        assert faulty.frames_dropped == 5

    def test_duplicate_all(self):
        faulty, pair, sched, got = faulty_pair(FaultPlan(duplicate=1.0))
        faulty.send(b"ping")
        sched.run_until_idle()
        assert got == [b"ping", b"ping"]
        assert faulty.frames_duplicated == 1

    def test_delay_holds_then_delivers(self):
        plan = FaultPlan(delay=1.0, delay_s=0.5)
        faulty, pair, sched, got = faulty_pair(plan)
        faulty.send(b"late")
        sched.run_ready()
        assert got == []
        sched.run_until_idle()
        assert got == [b"late"]
        assert sched.now() >= 0.5
        assert faulty.frames_delayed == 1

    def test_truncate_sends_strict_prefix(self):
        faulty, pair, sched, got = faulty_pair(FaultPlan(truncate=1.0))
        faulty.send(b"0123456789")
        sched.run_until_idle()
        assert len(got) == 1
        assert b"0123456789".startswith(got[0])
        assert 0 < len(got[0]) < 10
        assert faulty.frames_truncated == 1

    def test_clean_plan_passes_everything(self):
        faulty, pair, sched, got = faulty_pair(FaultPlan())
        payloads = [b"a", b"bb", b"ccc"]
        for payload in payloads:
            faulty.send(payload)
        sched.run_until_idle()
        assert got == payloads
        assert faulty.frames_passed == 3

    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            faulty, pair, sched, got = faulty_pair(
                FaultPlan(seed=seed, drop=0.3, duplicate=0.2))
            for i in range(40):
                faulty.send(b"m%02d" % i)
            sched.run_until_idle()
            return (faulty.frames_dropped, faulty.frames_duplicated, got)

        assert run(3) == run(3)
        assert run(3)[:2] != run(4)[:2]

    def test_stall_buffers_then_flushes_in_order(self):
        faulty, pair, sched, got = faulty_pair(FaultPlan())
        faulty.stall()
        faulty.send(b"one")
        faulty.send(b"two")
        sched.run_until_idle()
        assert got == []
        assert faulty.frames_stalled == 2
        faulty.unstall()
        sched.run_until_idle()
        assert got == [b"one", b"two"]

    def test_timed_stall_lifts_itself(self):
        faulty, pair, sched, got = faulty_pair(FaultPlan())
        faulty.stall(2.0)
        faulty.send(b"held")
        sched.run_until_idle()   # the one-shot unstall fires at t=2
        assert got == [b"held"]
        assert sched.now() >= 2.0
        assert not faulty.stalled

    def test_delegation_quacks_like_a_transport(self):
        faulty, pair, sched, got = faulty_pair(FaultPlan())
        assert faulty.is_open and faulty.writable
        assert faulty.name == pair.a.name
        assert faulty.queued_bytes == pair.a.queued_bytes
        seen = []
        faulty.on_close = lambda: seen.append("closed")
        faulty.close()
        sched.run_until_idle()
        assert not faulty.is_open
        assert seen == ["closed"]


class TestFaultySocket:
    def test_eintr_on_send_is_masked_by_the_pump(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        plan = FaultPlan().errno_at(0, errno.EINTR)
        wrapper = inject_socket_faults(pair.a, plan)
        got = []
        pair.b.on_receive = lambda data: got.append(bytes(data))
        pair.a.send(b"survives")
        sched.run_until_idle()
        assert b"".join(got) == b"survives"
        assert wrapper.faults_fired == 1

    def test_eagain_then_recovery(self):
        # a spurious send-side EAGAIN parks the outbox until the next
        # write stimulus (like a real full buffer would); recv-side EAGAIN
        # is masked entirely by the level-style recv pump
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        wrapper = inject_socket_faults(
            pair.a, FaultPlan().errno_at(0, errno.EAGAIN))
        wrapper_b = inject_socket_faults(
            pair.b, FaultPlan().errno_at(0, errno.EAGAIN, side="recv"))
        got = []
        pair.b.on_receive = lambda data: got.append(bytes(data))
        pair.a.send(b"back")
        sched.run_until_idle()
        pair.a.send(b"off")   # next send re-pumps the parked outbox
        sched.run_until_idle()
        assert b"".join(got) == b"backoff"
        assert wrapper.faults_fired == 1
        assert wrapper_b.faults_fired == 1

    def test_econnreset_surfaces_as_close(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        plan = FaultPlan().errno_at(0, errno.ECONNRESET, side="recv")
        inject_socket_faults(pair.b, plan)
        closed = []
        pair.b.on_close = lambda: closed.append(True)
        pair.a.send(b"doomed")
        sched.run_until_idle()
        assert closed == [True]
        assert not pair.b.is_open

    def test_partial_writes_preserve_byte_stream(self):
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        inject_socket_faults(pair.a, FaultPlan(seed=11, partial=1.0))
        got = []
        pair.b.on_receive = lambda data: got.append(bytes(data))
        blob = bytes(range(256)) * 64
        pair.a.send(blob)
        sched.run_until_idle()
        assert b"".join(got) == blob
        assert pair.a.queued_bytes == 0

    def test_schedules_are_private_per_socket(self):
        plan = FaultPlan().errno_at(0, errno.EINTR)
        sched = Scheduler()
        pair = make_socket_transport_pair(sched)
        w1 = inject_socket_faults(pair.a, plan, name="a")
        w2 = inject_socket_faults(pair.b, plan, name="b")
        got = []
        pair.b.on_receive = lambda data: got.append(bytes(data))
        pair.a.send(b"hello")
        pair.b.send(b"yo")
        sched.run_until_idle()
        # both wrappers fired their own copy of the same one-shot
        assert w1.faults_fired == 1
        assert w2.faults_fired == 1


class TestFaultInjector:
    def test_rst_kills_both_halves(self):
        sched = Scheduler()
        pair = make_transport_pair(sched, ETHERNET_100, name="victim")
        closed = []
        pair.a.on_close = lambda: closed.append("a")
        pair.b.on_close = lambda: closed.append("b")
        chaos = FaultInjector()
        chaos.rst(pair.a)
        sched.run_until_idle()
        assert sorted(closed) == ["a", "b"]
        assert not pair.a.is_open and not pair.b.is_open
        assert chaos.log == [("rst", "victim.a")]

    def test_partition_goes_deaf_then_heals_on_schedule(self):
        reactor = Reactor()
        server_sched, client_sched = Scheduler(), Scheduler()
        server_member = reactor.add_scheduler(server_sched, name="srv")
        client_member = reactor.add_scheduler(client_sched, name="cli")
        accepted = []

        def on_accept(conn, addr):
            transport = SocketTransport(server_sched, conn, ETHERNET_100,
                                        "srv")
            transport.attach_reactor(reactor, member=server_member)
            accepted.append(transport)

        listener = TcpListener(reactor, on_accept, member=server_member)
        client = connect_tcp(reactor, client_sched, listener.address,
                             member=client_member)
        assert reactor.run_until(lambda: len(accepted) == 1)
        got = []
        accepted[0].on_receive = lambda data: got.append(bytes(data))

        chaos = FaultInjector()
        chaos.partition(reactor, client_member, seconds=1.0,
                        scheduler=client_sched)
        assert reactor.is_partitioned(client_member)
        assert client_member.partitioned
        client.send(b"through the wall")
        reactor.run_until_idle()   # heal timer fires at t=1 client-time
        assert not reactor.is_partitioned(client_member)
        assert b"".join(got) == b"through the wall"
        assert [a for a, _ in chaos.log] == ["partition", "heal"]
        listener.close()
        reactor.close()

    def test_crash_detonates_in_the_targets_loop(self):
        reactor = Reactor()
        sched = Scheduler()
        member = reactor.add_scheduler(sched, name="bomb")
        chaos = FaultInjector()
        chaos.crash(sched, "boom", exc_type=ValueError)
        reactor.run_until_idle()
        assert member.failed
        assert isinstance(member.last_error, ValueError)
        assert "boom" in str(member.last_error)
        reactor.close()

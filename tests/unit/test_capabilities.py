"""Unit tests for typed capability descriptors and their cache."""

import pytest

from repro.appliances import APPLIANCE_CLASSES, Refrigerator, Television
from repro.havi import (
    Capability,
    CapabilityDescriptor,
    CapabilityError,
    DescriptorCache,
    FcmType,
    HomeNetwork,
    MAIN_COMPONENT,
)
from repro.util.errors import FcmError


def home_with(*appliances):
    network = HomeNetwork()
    for appliance in appliances:
        network.attach_device(appliance)
    network.settle()
    return network


class TestCapabilityValidation:
    def test_needs_name(self):
        with pytest.raises(CapabilityError):
            Capability(kind="switch", name="", command="x.set")

    def test_needs_kind(self):
        with pytest.raises(CapabilityError):
            Capability(kind="", name="power", command="x.set")

    def test_range_needs_bounds(self):
        with pytest.raises(CapabilityError):
            Capability(kind="range", name="volume", command="volume.set")

    def test_range_bounds_must_be_nonempty(self):
        with pytest.raises(CapabilityError):
            Capability(kind="range", name="volume", command="volume.set",
                       minimum=10, maximum=10)

    def test_choice_needs_choices(self):
        with pytest.raises(CapabilityError):
            Capability(kind="choice", name="mode", command="mode.set")

    def test_writable_needs_command(self):
        with pytest.raises(CapabilityError):
            Capability(kind="switch", name="power")

    def test_text_is_implicitly_read_only_friendly(self):
        cap = Capability(kind="text", name="status", attribute="status",
                         read_only=True)
        assert cap.command == ""

    def test_display_label_falls_back_to_name(self):
        cap = Capability(kind="button", name="quick-cool",
                         command="x.set")
        assert cap.display_label == "quick cool"
        assert Capability(kind="button", name="go", label="GO!",
                          command="x").display_label == "GO!"


class TestCapabilityRoundTrip:
    def test_full_round_trip(self):
        cap = Capability(kind="range", name="target", label="Set",
                         attribute="target_temp", command="temp.set",
                         arg_name="temp", minimum=16, maximum=30, step=2,
                         unit="C", component="zone1", fmt="{value}C")
        assert Capability.from_dict(cap.to_dict()) == cap

    def test_defaults_are_omitted_on_the_wire(self):
        cap = Capability(kind="switch", name="power", command="power.set",
                         arg_name="on", attribute="power")
        data = cap.to_dict()
        assert "step" not in data and "component" not in data
        assert "read_only" not in data and "choices" not in data

    def test_button_args_survive(self):
        cap = Capability(kind="button", name="add60", command="timer.add",
                         args={"seconds": 60})
        assert Capability.from_dict(cap.to_dict()).args == {"seconds": 60}


class TestDescriptor:
    def _descriptor(self):
        return CapabilityDescriptor(fcm_type="tuner", version=3,
                                    capabilities=(
            Capability(kind="switch", name="power", command="power.set",
                       attribute="power"),
            Capability(kind="text", name="station", attribute="station",
                       read_only=True),
        ))

    def test_duplicate_names_rejected(self):
        with pytest.raises(CapabilityError):
            CapabilityDescriptor(fcm_type="x", capabilities=(
                Capability(kind="text", name="a", read_only=True),
                Capability(kind="text", name="a", read_only=True),
            ))

    def test_round_trip(self):
        descriptor = self._descriptor()
        again = CapabilityDescriptor.from_dict(descriptor.to_dict())
        assert again == descriptor
        assert again.version == 3

    def test_lookup_helpers(self):
        descriptor = self._descriptor()
        assert descriptor.by_name("power").kind == "switch"
        assert descriptor.by_name("nope") is None
        assert descriptor.commands() == {"power.set"}
        assert descriptor.attributes() == {"power", "station"}
        assert descriptor.components() == [MAIN_COMPONENT]

    def test_components_in_declared_order(self):
        fridge = Refrigerator("Fridge")
        home_with(fridge)
        fcm = fridge.dcm.fcm_by_type(FcmType.REFRIGERATOR)
        descriptor = fcm.capability_descriptor()
        assert descriptor.components() == ["fridge", "freezer", "icemaker"]
        assert [c.name for c in descriptor.for_component("icemaker")] == [
            "ice-mode", "ice-level", "ice-dispense"]


class TestDeclarationApi:
    def test_declaration_registers_command_and_state(self):
        tv = Television("TV")
        home_with(tv)
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        descriptor = tuner.capability_descriptor()
        for capability in descriptor:
            if capability.command:
                assert capability.command in tuner.commands
            if capability.attribute:
                assert capability.attribute in tuner.state

    def test_duplicate_declaration_rejected(self):
        tv = Television("TV")
        home_with(tv)
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        with pytest.raises(FcmError):
            tuner.declare_switch("power", command="power.set")

    def test_version_bumps_per_declaration(self):
        tv = Television("TV")
        home_with(tv)
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        before = tuner.descriptor_version
        tuner.declare_text("extra", initial="x")
        assert tuner.descriptor_version == before + 1

    def test_validate_catches_drift(self):
        tv = Television("TV")
        home_with(tv)
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        tuner.validate_capabilities()  # declared set is consistent
        tuner._capabilities.append(Capability(
            kind="button", name="ghost", command="no.such.verb"))
        with pytest.raises(FcmError):
            tuner.validate_capabilities()

    def test_every_appliance_validates(self):
        for name, cls in sorted(APPLIANCE_CLASSES.items()):
            appliance = cls(name)
            home_with(appliance)
            for fcm in appliance.dcm.fcms:
                fcm.validate_capabilities()

    def test_registry_advertises_version(self):
        tv = Television("TV")
        network = home_with(tv)
        from repro.havi import Comparison
        seids = network.registry.query(
            Comparison("fcm.type", "==", "tuner"))
        attrs = network.registry.get_attributes(seids[0])
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        assert attrs["capability.version"] == tuner.descriptor_version > 0


class TestCapabilitiesGetOpcode:
    def test_fetch_over_messaging(self):
        tv = Television("TV")
        network = home_with(tv)
        from repro.havi import SEID, SoftwareElement
        from repro.util.ids import guid_from_seed
        client = SoftwareElement(SEID(guid_from_seed("cap-client"), 0),
                                 network.messaging)
        client.attach()
        tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
        replies = []
        client.send_request(tuner.seid, "capabilities.get", {},
                            on_reply=replies.append)
        network.settle()
        assert replies[0].status == "SUCCESS"
        descriptor = CapabilityDescriptor.from_dict(
            replies[0].payload["descriptor"])
        assert descriptor == tuner.capability_descriptor()
        assert replies[0].payload["version"] == tuner.descriptor_version


class TestDescriptorCache:
    def _descriptor(self, version=1):
        return CapabilityDescriptor(fcm_type="light", version=version,
                                    capabilities=(
            Capability(kind="switch", name="power", command="power.set",
                       attribute="power"),
        ))

    def test_miss_then_hit(self):
        cache = DescriptorCache()
        assert cache.get("g", 1, 1) is None
        cache.put("g", 1, 1, self._descriptor())
        assert cache.get("g", 1, 1) is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_version_is_part_of_the_key(self):
        cache = DescriptorCache()
        cache.put("g", 1, 1, self._descriptor(1))
        assert cache.get("g", 1, 2) is None  # new shape misses

    def test_invalidate_guid_drops_all_handles(self):
        cache = DescriptorCache()
        cache.put("g", 1, 1, self._descriptor())
        cache.put("g", 2, 1, self._descriptor())
        cache.put("other", 1, 1, self._descriptor())
        assert cache.invalidate_guid("g") == 2
        assert len(cache) == 1
        assert cache.invalidations == 2
        assert cache.get("other", 1, 1) is not None

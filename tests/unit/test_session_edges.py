"""Edge cases in proxy session wiring and pointer hover routing."""

import pytest

from repro.devices import Pda, TvDisplay, VoiceInput
from repro.net import make_pipe
from repro.proxy import UniIntProxy
from repro.server import UniIntServer
from repro.toolkit import Column, Label, Slider, ToggleButton, UIWindow
from repro.toolkit.events import PointerKind
from repro.util import Scheduler
from repro.util.errors import ProxyError
from repro.windows import DisplayServer


def stack():
    scheduler = Scheduler()
    display = DisplayServer(200, 150)
    window = UIWindow(200, 150)
    col = Column()
    col.add(ToggleButton("Power")).widget_id = "power"
    col.add(Slider(0, 100, value=50)).widget_id = "slider"
    col.add(Label("label"))
    window.set_root(col)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler)
    proxy = UniIntProxy(scheduler)
    pipe = make_pipe(scheduler)
    server.accept(pipe.a)
    session = proxy.connect(pipe.b)
    scheduler.run_until_idle()
    return scheduler, display, window, proxy, session


class TestSessionEdges:
    def test_reselecting_same_device_is_noop(self):
        scheduler, display, window, proxy, session = stack()
        pda = Pda("pda", scheduler)
        pda.connect(proxy)
        proxy.select_input("pda")
        proxy.select_output("pda")
        count = session.switch_count
        proxy.select_input("pda")
        proxy.select_output("pda")
        assert session.switch_count == count

    def test_clearing_selection_with_none(self):
        scheduler, display, window, proxy, session = stack()
        pda = Pda("pda", scheduler)
        pda.connect(proxy)
        proxy.select_output("pda")
        scheduler.run_until_idle()
        proxy.select_output(None)
        assert proxy.current_output is None
        # UI changes with no output device must be safe
        window.root.find("power").toggle()
        scheduler.run_until_idle()

    def test_second_connect_rejected(self):
        scheduler, display, window, proxy, session = stack()
        pipe = make_pipe(scheduler, name="second")
        with pytest.raises(ProxyError):
            proxy.connect(pipe.b)

    def test_unknown_device_selection_rejected(self):
        scheduler, display, window, proxy, session = stack()
        with pytest.raises(ProxyError):
            proxy.select_input("ghost")

    def test_session_close_clears_plugins(self):
        scheduler, display, window, proxy, session = stack()
        pda = Pda("pda", scheduler)
        pda.connect(proxy)
        proxy.select_input("pda")
        proxy.select_output("pda")
        session.close()
        assert session.input_plugin is None
        assert session.output_plugin is None

    def test_output_only_frames_still_flow_without_input(self):
        scheduler, display, window, proxy, session = stack()
        tv = TvDisplay("tv", scheduler)
        tv.connect(proxy)
        proxy.select_output("tv")
        scheduler.run_until_idle()
        before = tv.frames_received
        window.root.find("power").toggle()
        scheduler.run_until_idle()
        assert tv.frames_received > before


class TestDeviceCloseReentrancy:
    """unregister -> endpoint.close() -> _on_device_closed must converge.

    The close callback fires on a later scheduler tick, after the binding
    was already popped: it must not double-deselect, raise, or resurrect
    the device.
    """

    def test_unregister_then_close_event_is_idempotent(self):
        scheduler, display, window, proxy, session = stack()
        pda = Pda("pda", scheduler)
        pda.connect(proxy)
        proxy.select_input("pda")
        proxy.select_output("pda")
        scheduler.run_until_idle()
        switches_before = session.switch_count
        proxy.unregister_device("pda")
        assert proxy.current_input is None
        assert proxy.current_output is None
        # the deferred on_close event (from endpoint.close()) fires now:
        # the pop already happened, so it must be a no-op
        scheduler.run_until_idle()
        assert proxy.current_input is None
        assert proxy.current_output is None
        assert "pda" not in proxy.devices
        # exactly one deselect per role, not two
        assert session.switch_count == switches_before + 2

    def test_device_side_close_then_unregister_before_settle(self):
        """The device hangs up; the app unregisters before the close event
        lands.  Both cleanup paths run; neither may raise."""
        scheduler, display, window, proxy, session = stack()
        pda = Pda("pda", scheduler)
        pda.connect(proxy)
        proxy.select_output("pda")
        scheduler.run_until_idle()
        pda.disconnect()                      # close event now in flight
        proxy.unregister_device("pda")        # beat it to the cleanup
        scheduler.run_until_idle()            # in-flight close: no-op
        assert proxy.current_output is None
        assert "pda" not in proxy.devices

    def test_hot_unplug_selected_output_mid_frame_push(self):
        """The selected output device vanishes while damage is still being
        pushed/deferred on its link: the session must drop the frames on
        the floor, not raise."""
        from repro.devices import CellPhone
        scheduler, display, window, proxy, session = stack()
        phone = CellPhone("keitai", scheduler)
        phone.connect(proxy)
        proxy.select_output("keitai")
        scheduler.run_until_idle()
        # saturate the 9600 bps bearer so damage defers mid-push
        for i in range(6):
            window.root.find("power").toggle()
            scheduler.run_for(0.01)
        binding = proxy.binding("keitai")
        assert not binding.endpoint.writable or not session._deferred_push.is_empty
        phone.disconnect()                    # hot unplug, frames in flight
        window.root.find("power").toggle()    # more damage while closing
        scheduler.run_until_idle()
        assert proxy.current_output is None
        assert "keitai" not in proxy.devices
        # and a fresh device can take over cleanly afterwards
        tv = TvDisplay("tv", scheduler)
        tv.connect(proxy)
        proxy.select_output("tv")
        scheduler.run_until_idle()
        assert tv.frames_received >= 1


class TestPointerHover:
    def test_move_without_buttons_routed(self):
        scheduler, display, window, proxy, session = stack()
        seen = []
        slider = window.root.find("slider")
        original = slider.handle_pointer
        slider.handle_pointer = (
            lambda e: seen.append(e.kind) or original(e))
        cx, cy = slider.abs_rect().center
        session.upstream.send_pointer(cx, cy, 0)  # hover, no buttons
        scheduler.run_until_idle()
        assert PointerKind.MOVE in seen

    def test_drag_value_follows_through_pipeline(self):
        scheduler, display, window, proxy, session = stack()
        slider = window.root.find("slider")
        rect = slider.abs_rect()
        y = rect.center[1]
        session.upstream.send_pointer(rect.x + 5, y, 1)
        session.upstream.send_pointer(rect.x2 - 5, y, 1)
        session.upstream.send_pointer(rect.x2 - 5, y, 0)
        scheduler.run_until_idle()
        assert slider.value > 80

"""Unit tests for portable user profiles (multi-space consistency)."""

import pytest

from repro import Home
from repro.appliances import DimmableLight, Television
from repro.context import Activity, UserProfile, UserSituation
from repro.context.profiles import declarative_rule, situation_matches
from repro.devices import CellPhone, Pda, TvDisplay, VoiceInput, WallDisplay
from repro.util.errors import ContextError


class TestSituationMatching:
    def test_field_match(self):
        cooking = UserSituation.cooking()
        assert situation_matches({"location": "kitchen"}, cooking)
        assert situation_matches({"activity": "cooking"}, cooking)
        assert situation_matches({"activity": Activity.COOKING}, cooking)
        assert not situation_matches({"location": "office"}, cooking)

    def test_multi_field_is_conjunction(self):
        cooking = UserSituation.cooking()
        assert situation_matches(
            {"location": "kitchen", "hands_busy": True}, cooking)
        assert not situation_matches(
            {"location": "kitchen", "seated": True}, cooking)

    def test_unknown_field_rejected(self):
        with pytest.raises(ContextError):
            situation_matches({"mood": "hungry"}, UserSituation())
        with pytest.raises(ContextError):
            declarative_rule("bad", {"mood": "hungry"}, {})


class TestProfileAuthoring:
    def test_prefer_and_rule_chain(self):
        profile = (UserProfile("ken")
                   .prefer("pda", 2.0)
                   .rule("voice while cooking", {"activity": "cooking"},
                         voice=5.0))
        cooking = UserSituation.cooking()
        assert profile.preferences.score("pda", cooking) == 2.0
        assert profile.preferences.score("voice", cooking) == 5.0
        assert profile.preferences.score("voice", UserSituation()) == 0.0


class TestSerialisation:
    def _profile(self):
        profile = UserProfile("yuki",
                              default_situation=UserSituation.on_the_sofa())
        profile.prefer("phone", 1.5)
        profile.prefer("voice", -1.0)
        profile.rule("gesture in the office", {"location": "office"},
                     gesture=4.0)
        return profile

    def test_json_roundtrip_preserves_scores(self):
        original = self._profile()
        restored = UserProfile.from_json(original.to_json())
        office = UserSituation(location="office")
        sofa = UserSituation.on_the_sofa()
        for kind in ("phone", "voice", "gesture", "pda"):
            for situation in (office, sofa):
                assert (restored.preferences.score(kind, situation)
                        == original.preferences.score(kind, situation))
        assert restored.default_situation == original.default_situation
        assert restored.name == "yuki"

    def test_code_rules_are_skipped_with_note(self):
        profile = self._profile()
        profile.preferences.rule("opaque code rule",
                                 lambda s: s.noise > 0.5, voice=-9.0)
        data = profile.to_dict()
        assert data["skipped_code_rules"] == ["opaque code rule"]
        assert len(data["rules"]) == 1


class TestMultiSpaceConsistency:
    """Paper §1: consistent selection in any space."""

    def test_same_profile_same_choice_across_spaces(self):
        profile = UserProfile("ken").prefer("voice", 6.0)
        # two spaces with different appliance and device fleets
        home1 = Home()
        home1.add_appliance(Television("TV"))
        for device in (CellPhone("ph1", home1.scheduler),
                       VoiceInput("mic1", home1.scheduler),
                       TvDisplay("tv1", home1.scheduler)):
            home1.add_device(device, reselect=False)
        home2 = Home()
        home2.add_appliance(DimmableLight("Desk lamp"))
        for device in (Pda("pda2", home2.scheduler),
                       VoiceInput("mic2", home2.scheduler),
                       WallDisplay("wall2", home2.scheduler)):
            home2.add_device(device, reselect=False)
        profile.install(home1)
        profile.install(home2)
        home1.settle()
        home2.settle()
        # the voice preference wins in both spaces, over different fleets
        assert home1.proxy.current_input == "mic1"
        assert home2.proxy.current_input == "mic2"

    def test_profile_transported_as_json(self):
        """Serialise at home, restore at the office, same behaviour."""
        authored = UserProfile("ken").prefer("pda", 8.0)
        blob = authored.to_json()
        office = Home()
        office.add_appliance(Television("Office TV"))
        for device in (CellPhone("ph", office.scheduler),
                       Pda("pda", office.scheduler)):
            office.add_device(device, reselect=False)
        UserProfile.from_json(blob).install(
            office, UserSituation(location="office"))
        office.settle()
        assert office.proxy.current_input == "pda"

    def test_install_reselects_immediately(self):
        home = Home()
        home.add_appliance(Television("TV"))
        phone = CellPhone("ph", home.scheduler)
        voice = VoiceInput("mic", home.scheduler)
        home.add_device(phone)
        home.add_device(voice)
        home.settle()
        first = home.proxy.current_input
        profile = UserProfile("v-lover").prefer("voice", 9.0)
        profile.install(home)
        home.settle()
        assert home.proxy.current_input == "mic"

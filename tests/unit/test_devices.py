"""Unit tests for device plug-ins: keypad maps, voice model, gestures."""

import math

import pytest

from repro.devices import (
    CellPhone,
    GesturePad,
    Pda,
    RemoteControl,
    VoiceInput,
)
from repro.devices.gesture import classify_stroke
from repro.proxy.plugins import SessionContext, ViewTransform
from repro.uip import keysyms
from repro.uip.messages import KeyEvent, PointerEvent
from repro.util import Scheduler
from repro.util.errors import PluginError


def plugin_for(device, view=True):
    context = SessionContext()
    if view:
        context.view = ViewTransform(0.5, 0, 0, 480, 360)
    return device.input_plugin_factory(device.descriptor, context), context


class TestPdaTouchPlugin:
    def test_tap_maps_through_view(self):
        pda = Pda("p", Scheduler())
        plugin, context = plugin_for(pda)
        down = plugin.translate(
            {"type": "touch", "action": "down", "x": 100, "y": 50})
        assert down == [PointerEvent(1, 200, 100)]
        up = plugin.translate(
            {"type": "touch", "action": "up", "x": 100, "y": 50})
        assert up == [PointerEvent(0, 200, 100)]

    def test_no_view_drops_events(self):
        pda = Pda("p", Scheduler())
        plugin, _ = plugin_for(pda, view=False)
        assert plugin.translate(
            {"type": "touch", "action": "down", "x": 1, "y": 1}) == []

    def test_bad_action_rejected(self):
        pda = Pda("p", Scheduler())
        plugin, _ = plugin_for(pda)
        with pytest.raises(PluginError):
            plugin.translate({"type": "touch", "action": "hover",
                              "x": 0, "y": 0})

    def test_foreign_event_ignored(self):
        pda = Pda("p", Scheduler())
        plugin, _ = plugin_for(pda)
        assert plugin.translate({"type": "key", "key": "5"}) == []

    def test_process_counts(self):
        pda = Pda("p", Scheduler())
        plugin, _ = plugin_for(pda)
        plugin.process({"type": "touch", "action": "down", "x": 1, "y": 1})
        assert plugin.events_in == 1
        assert plugin.events_out == 1


class TestPhoneKeypadPlugin:
    def _plugin(self):
        phone = CellPhone("k", Scheduler())
        return plugin_for(phone)[0]

    @pytest.mark.parametrize("key,keysym", [
        ("2", keysyms.UP), ("8", keysyms.DOWN), ("4", keysyms.LEFT),
        ("6", keysyms.RIGHT), ("5", keysyms.RETURN), ("0", keysyms.SPACE),
        ("#", keysyms.ESCAPE), ("*", keysyms.TAB), ("7", keysyms.HOME),
    ])
    def test_simple_keys(self, key, keysym):
        out = self._plugin().translate({"type": "key", "key": key})
        assert out == [KeyEvent(True, keysym), KeyEvent(False, keysym)]

    def test_reverse_focus_chord(self):
        out = self._plugin().translate({"type": "key", "key": "1"})
        assert [e.keysym for e in out] == [
            keysyms.SHIFT_L, keysyms.TAB, keysyms.TAB, keysyms.SHIFT_L]
        assert [e.down for e in out] == [True, True, False, False]

    def test_unknown_key_rejected(self):
        with pytest.raises(PluginError):
            self._plugin().translate({"type": "key", "key": "A"})


class TestVoice:
    def test_vocabulary_mapping(self):
        voice = VoiceInput("v", Scheduler())
        plugin = plugin_for(voice)[0]
        out = plugin.translate({"type": "voice", "word": "select"})
        assert out == [KeyEvent(True, keysyms.RETURN),
                       KeyEvent(False, keysyms.RETURN)]

    def test_out_of_vocabulary_silent(self):
        voice = VoiceInput("v", Scheduler())
        plugin = plugin_for(voice)[0]
        assert plugin.translate({"type": "voice", "word": "frobnicate"}) == []

    def test_case_insensitive(self):
        voice = VoiceInput("v", Scheduler())
        plugin = plugin_for(voice)[0]
        assert len(plugin.translate({"type": "voice", "word": "SELECT"})) == 2

    def test_previous_is_chord(self):
        voice = VoiceInput("v", Scheduler())
        plugin = plugin_for(voice)[0]
        out = plugin.translate({"type": "voice", "word": "previous"})
        assert len(out) == 4

    def test_error_model_deterministic(self):
        results = []
        for _ in range(2):
            voice = VoiceInput("v", Scheduler(), seed=5, accuracy=0.5)
            heard = [voice._recognise("select") for _ in range(50)]
            results.append(heard)
        assert results[0] == results[1]

    def test_error_model_rate(self):
        voice = VoiceInput("v", Scheduler(), seed=1, accuracy=0.8)
        trials = 1000
        correct = sum(1 for _ in range(trials)
                      if voice._recognise("up") == "up")
        assert 0.75 * trials < correct < 0.85 * trials

    def test_perfect_accuracy_never_errs(self):
        voice = VoiceInput("v", Scheduler(), accuracy=1.0)
        assert all(voice._recognise("ok") == "ok" for _ in range(100))

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            VoiceInput("v", Scheduler(), accuracy=1.5)


class TestRemotePlugin:
    def test_buttons(self):
        remote = RemoteControl("r", Scheduler())
        plugin = plugin_for(remote)[0]
        out = plugin.translate({"type": "button", "button": "ok"})
        assert out[0].keysym == keysyms.RETURN
        out = plugin.translate({"type": "button", "button": "7"})
        assert out[0].keysym == ord("7")

    def test_unknown_button_rejected(self):
        remote = RemoteControl("r", Scheduler())
        plugin = plugin_for(remote)[0]
        with pytest.raises(PluginError):
            plugin.translate({"type": "button", "button": "warp"})


class TestGestureClassification:
    def test_swipes(self):
        line = lambda dx, dy: [(50 + dx * i / 8, 50 + dy * i / 8)
                               for i in range(9)]
        assert classify_stroke(line(80, 0)) == "swipe-right"
        assert classify_stroke(line(-80, 0)) == "swipe-left"
        assert classify_stroke(line(0, -80)) == "swipe-up"
        assert classify_stroke(line(0, 80)) == "swipe-down"

    def test_tap(self):
        assert classify_stroke([(50, 50)]) == "tap"
        assert classify_stroke([(50, 50), (51, 51), (50, 50)]) == "tap"

    def test_circle(self):
        points = [(50 + 20 * math.cos(i / 16 * 2 * math.pi),
                   50 + 20 * math.sin(i / 16 * 2 * math.pi))
                  for i in range(17)]
        assert classify_stroke(points) == "circle"

    def test_ambiguous_returns_none(self):
        # medium displacement, no rotation: between tap and swipe
        points = [(50 + 2 * i, 50) for i in range(9)]
        assert classify_stroke(points) is None

    def test_empty_stroke(self):
        assert classify_stroke([]) is None

    def test_plugin_emits_keys(self):
        pad = GesturePad("g", Scheduler())
        plugin = plugin_for(pad)[0]
        out = plugin.translate({
            "type": "stroke",
            "points": [[50 + 10 * i, 50] for i in range(9)]})
        assert out[0].keysym == keysyms.TAB

    def test_swipe_left_is_chord(self):
        pad = GesturePad("g", Scheduler())
        plugin = plugin_for(pad)[0]
        out = plugin.translate({
            "type": "stroke",
            "points": [[50 - 10 * i, 50] for i in range(9)]})
        assert len(out) == 4

    def test_jitter_does_not_break_swipe(self):
        pad = GesturePad("g", Scheduler(), seed=3, jitter=2.0)
        noisy = pad._noisy([(50 + 10 * i, 50) for i in range(9)])
        assert classify_stroke(noisy) == "swipe-right"


class TestDeviceBase:
    def test_send_event_requires_connection(self):
        from repro.util.errors import ProxyError
        pda = Pda("p", Scheduler())
        with pytest.raises(ProxyError):
            pda.send_event({"type": "touch"})

    def test_screen_luma_requires_frame(self):
        from repro.util.errors import ProxyError
        pda = Pda("p", Scheduler())
        with pytest.raises(ProxyError):
            pda.screen_luma()


class TestDeviceTransportLeg:
    """The device<->proxy leg rides the flow-controlled Transport stack."""

    def _proxy(self, scheduler=None, proxy_id="uniint-proxy"):
        from repro.proxy import UniIntProxy
        return UniIntProxy(scheduler if scheduler is not None
                           else Scheduler(), proxy_id=proxy_id)

    def test_scheduler_mismatch_rejected(self):
        from repro.util.errors import ProxyError
        proxy = self._proxy(Scheduler())
        pda = Pda("p", Scheduler())  # a different clock
        with pytest.raises(ProxyError, match="different scheduler"):
            pda.connect(proxy)
        assert not pda.connected
        assert "p" not in proxy.devices

    def test_credit_watermarks_come_from_the_bearer(self):
        from repro.net.transport import credit_watermarks
        proxy = self._proxy()
        phone = CellPhone("k", proxy.scheduler)
        phone.connect(proxy)
        high, _low = credit_watermarks(phone.descriptor.link)
        assert phone.endpoint_for("uniint-proxy").credit_limit == high
        assert proxy.binding("k").endpoint.credit_limit == high

    def test_socket_transport_leg(self):
        proxy = self._proxy()
        pda = Pda("p", proxy.scheduler)
        pda.connect(proxy, transport="socket")
        pda.send_event({"type": "touch", "action": "down", "x": 1, "y": 1})
        proxy.scheduler.run_until_idle()
        binding = proxy.binding("p")
        assert binding.endpoint.stats.bytes_received > 0

    def test_unknown_transport_rejected(self):
        from repro.util.errors import TransportError
        proxy = self._proxy()
        pda = Pda("p", proxy.scheduler)
        with pytest.raises(TransportError, match="unknown transport"):
            pda.connect(proxy, transport="carrier-pigeon")
        assert not pda.connected

    def test_multi_proxy_connect_and_broadcast(self):
        scheduler = Scheduler()
        proxy_a = self._proxy(scheduler, proxy_id="proxy-a")
        proxy_b = self._proxy(scheduler, proxy_id="proxy-b")
        pda = Pda("p", scheduler)
        pda.connect(proxy_a)
        pda.connect(proxy_b)
        assert pda.connected_proxies == ("proxy-a", "proxy-b")
        assert pda._pipe is None  # legacy accessor is ambiguous now
        pda.send_event({"type": "touch", "action": "down", "x": 1, "y": 1})
        scheduler.run_until_idle()
        # both proxies heard the event on their own leg
        assert proxy_a.binding("p").endpoint.stats.bytes_received > 0
        assert proxy_b.binding("p").endpoint.stats.bytes_received > 0
        assert pda.link_stats_for("proxy-a").bytes_sent > 0
        from repro.util.errors import ProxyError
        with pytest.raises(ProxyError, match="use link_stats_for"):
            pda.link_stats

    def test_disconnect_single_leg_keeps_the_other(self):
        scheduler = Scheduler()
        proxy_a = self._proxy(scheduler, proxy_id="proxy-a")
        proxy_b = self._proxy(scheduler, proxy_id="proxy-b")
        pda = Pda("p", scheduler)
        pda.connect(proxy_a)
        pda.connect(proxy_b)
        pda.disconnect("proxy-a")
        scheduler.run_until_idle()
        assert pda.connected_proxies == ("proxy-b",)
        assert "p" not in proxy_a.devices   # proxy side saw the close
        assert "p" in proxy_b.devices

    def test_failed_registration_rolls_back_the_link(self):
        from repro.util.errors import ProxyError
        proxy = self._proxy()
        pda = Pda("p", proxy.scheduler)
        pda.connect(proxy)
        ghost = Pda("p", proxy.scheduler)  # same device id: rejected
        with pytest.raises(ProxyError, match="already registered"):
            ghost.connect(proxy)
        assert not ghost.connected
        assert ghost.connected_proxies == ()

"""Unit tests: credit backpressure and slow-client update coalescing.

The slow-device scenario: a panel churning at UI speed serves a client
behind a 9600 bps cellular bearer.  Without flow control every churn tick
queues another full update behind the link and the client drowns in stale
frames; with credit backpressure the session folds new damage into its
pending region and the client receives one merged, freshest update per
link drain.
"""

import pytest

from repro.devices import CellPhone
from repro.net import CELLULAR_PDC, ETHERNET_100, make_pipe
from repro.proxy import UniIntProxy
from repro.proxy.upstream import UniIntClient
from repro.server import UniIntServer
from repro.toolkit import Column, Label, UIWindow
from repro.util import Scheduler
from repro.windows import DisplayServer


def phone_stack(backpressure: bool):
    scheduler = Scheduler()
    display = DisplayServer(480, 360)
    window = UIWindow(480, 360)
    column = Column()
    labels = [column.add(Label(f"row {i}")) for i in range(12)]
    window.set_root(column)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler, backpressure=backpressure)
    pipe = make_pipe(scheduler, CELLULAR_PDC, name="phone-link")
    session = server.accept(pipe.a)
    client = UniIntClient(pipe.b)
    scheduler.run_until_idle()
    return scheduler, labels, server, session, client


def drive_churn(scheduler, labels, client, seconds=12.0,
                poll_every=0.05, churn_every=0.1):
    """Panel churn plus an eager polling viewer (pipelined requests).

    Both drivers stop at the deadline, so a later ``run_until_idle`` can
    drain the link and converge.
    """
    deadline = scheduler.now() + seconds

    def poll():
        if client.ready:
            client.request_update(True)
        if scheduler.now() + poll_every <= deadline:
            scheduler.call_later(poll_every, poll)

    rounds = {"n": 0}

    def churn():
        rounds["n"] += 1
        for i, label in enumerate(labels):
            label.text = f"round {rounds['n']} v{(rounds['n'] * 37 + i) % 997}"
        if scheduler.now() + churn_every <= deadline:
            scheduler.call_later(churn_every, churn)

    scheduler.call_later(poll_every, poll)
    scheduler.call_later(churn_every, churn)
    scheduler.run_for(seconds)


class TestServerSessionBackpressure:
    def test_queue_bounded_by_credit(self):
        scheduler, labels, server, session, client = phone_stack(True)
        drive_churn(scheduler, labels, client)
        endpoint = session.endpoint
        # bounded: never more than the credit limit plus one update deep
        assert endpoint.stats.peak_queued_bytes < 4 * endpoint.credit_limit
        assert session.updates_coalesced > 0
        assert session.bytes_suppressed > 0

    def test_without_backpressure_queue_grows_unbounded(self):
        scheduler, labels, server, session, client = phone_stack(False)
        drive_churn(scheduler, labels, client)
        endpoint = session.endpoint
        assert endpoint.stats.peak_queued_bytes > 10 * endpoint.credit_limit
        assert session.updates_coalesced == 0

    def test_coalesced_updates_deliver_fresh_content(self):
        scheduler, labels, server, session, client = phone_stack(True)
        drive_churn(scheduler, labels, client)
        # stop churning, let the link fully drain: the mirror must converge
        # on the *latest* content even though most updates were withheld
        scheduler.run_until_idle()
        assert client.framebuffer == server.display.framebuffer

    def test_backpressure_sends_fewer_but_equivalent_updates(self):
        results = {}
        for flag in (False, True):
            scheduler, labels, server, session, client = phone_stack(flag)
            drive_churn(scheduler, labels, client)
            scheduler.run_until_idle()
            assert client.framebuffer == server.display.framebuffer
            results[flag] = session.updates_sent
        assert results[True] < results[False]

    def test_fast_link_never_coalesces(self):
        scheduler = Scheduler()
        display = DisplayServer(480, 360)
        window = UIWindow(480, 360)
        column = Column()
        labels = [column.add(Label(f"row {i}")) for i in range(12)]
        window.set_root(column)
        display.map_fullscreen(window)
        server = UniIntServer(display, scheduler, backpressure=True)
        pipe = make_pipe(scheduler, ETHERNET_100, name="lan-link")
        session = server.accept(pipe.a)
        client = UniIntClient(pipe.b)
        scheduler.run_until_idle()
        for round_no in range(20):
            for i, label in enumerate(labels):
                label.text = f"round {round_no} value {i}"
            scheduler.run_until_idle()
        assert session.updates_coalesced == 0
        assert client.framebuffer == display.framebuffer


class TestProxyPushBackpressure:
    def _stack(self, backpressure: bool):
        # server + proxy over Ethernet, with a cellular phone as the
        # output device: the slow bearer is the *device* link
        scheduler = Scheduler()
        display = DisplayServer(160, 120)
        window = UIWindow(160, 120)
        column = Column()
        label = column.add(Label("tick"))
        window.set_root(column)
        display.map_fullscreen(window)
        server = UniIntServer(display, scheduler)
        proxy = UniIntProxy(scheduler, backpressure=backpressure)
        pipe = make_pipe(scheduler, ETHERNET_100, name="server-link")
        server.accept(pipe.a)
        session = proxy.connect(pipe.b)
        phone = CellPhone("keitai", scheduler)
        phone.connect(proxy)
        scheduler.run_until_idle()
        proxy.select_output("keitai")
        scheduler.run_until_idle()
        return scheduler, label, session

    def _churn(self, scheduler, label, ticks=80, step=0.05):
        for tick in range(ticks):
            label.text = f"tick {tick}"
            scheduler.run_for(step)

    def test_device_push_coalesces_on_saturated_bearer(self):
        scheduler, label, session = self._stack(True)
        self._churn(scheduler, label)
        device_ep = session.output_binding.endpoint
        assert session.updates_coalesced > 0
        assert device_ep.stats.peak_queued_bytes < 4 * device_ep.credit_limit
        # draining the link flushes the deferred damage as one fresh frame
        scheduler.run_until_idle()
        assert session._deferred_push.is_empty

    def test_device_push_floods_without_backpressure(self):
        scheduler, label, session = self._stack(False)
        self._churn(scheduler, label)
        device_ep = session.output_binding.endpoint
        assert session.updates_coalesced == 0
        assert (device_ep.stats.peak_queued_bytes
                > 4 * device_ep.credit_limit)

"""Property tests for the DDI element model."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.havi.ddi import (
    DdiButton,
    DdiChoice,
    DdiPanel,
    DdiRange,
    DdiText,
    DdiToggle,
    element_from_dict,
    render_text,
)

ident = st.text(alphabet="abcdefgh123:", min_size=1, max_size=8)
label = st.text(alphabet=st.characters(min_codepoint=0x20,
                                       max_codepoint=0x7E), max_size=12)

leaf_elements = st.one_of(
    st.builds(DdiText, ident, label, key=st.text(max_size=6),
              value=st.one_of(st.none(), st.integers(), st.text(max_size=6),
                              st.booleans())),
    st.builds(DdiButton, ident, label, command=st.text(max_size=10),
              args=st.dictionaries(st.text(max_size=4), st.integers(),
                                   max_size=2)),
    st.builds(DdiToggle, ident, label, key=st.text(max_size=6),
              command=st.text(max_size=10), value=st.booleans()),
    st.builds(DdiRange, ident, label, key=st.text(max_size=6),
              command=st.text(max_size=10), minimum=st.integers(-5, 0),
              maximum=st.integers(1, 100), step=st.integers(1, 10),
              value=st.integers(-5, 100)),
    st.builds(DdiChoice, ident, label, key=st.text(max_size=6),
              command=st.text(max_size=10),
              options=st.tuples(st.text(max_size=4), st.text(max_size=4)),
              value=st.one_of(st.none(), st.text(max_size=4))),
)


@st.composite
def panels(draw, depth=2):
    panel = DdiPanel(draw(ident), draw(label))
    n_children = draw(st.integers(0, 4))
    for _ in range(n_children):
        if depth > 0 and draw(st.booleans()):
            panel.children.append(draw(panels(depth=depth - 1)))
        else:
            panel.children.append(draw(leaf_elements))
    return panel


class TestDdiTreeProperties:
    @given(panels())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dict_roundtrip_preserves_structure(self, tree):
        rebuilt = element_from_dict(tree.to_dict())
        assert rebuilt.to_dict() == tree.to_dict()

    @given(panels())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_walk_covers_every_node(self, tree):
        ids = [element.element_id for element in tree.walk()]
        data = tree.to_dict()

        def count(node):
            total = 1
            for child in node.get("children", []):
                total += count(child)
            return total

        assert len(ids) == count(data)

    @given(panels())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_find_locates_every_element(self, tree):
        for element in tree.walk():
            found = tree.find(element.element_id)
            assert found is not None
            assert found.element_id == element.element_id

    @given(panels(), st.integers(10, 40))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_render_text_line_per_element_and_width(self, tree, width):
        lines = render_text(tree, width=width)
        assert len(lines) == len(list(tree.walk()))
        assert all(len(line) <= width for line in lines)

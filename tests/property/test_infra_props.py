"""Property-based tests for scheduler, pipes, registry and messaging."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.havi import Comparison, QueryAnd, QueryNot, QueryOr, Registry, SEID
from repro.net import LinkProfile, make_pipe
from repro.util import Scheduler


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), max_size=30))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sched = Scheduler()
        fired = []
        for delay in delays:
            sched.call_later(delay, lambda: fired.append(sched.now()))
        sched.run_until_idle()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=20),
           st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_run_until_partitions_events_exactly(self, delays, cut):
        sched = Scheduler()
        early, late = [], []
        for delay in delays:
            target = early if delay <= cut else late
            sched.call_later(delay, lambda t=target: t.append(1))
        fired = sched.run_until(cut)
        assert fired == len(early)
        sched.run_until_idle()
        assert len(late) == len(delays) - fired

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_cancellation_removes_exactly_those(self, keep, cancel):
        sched = Scheduler()
        fired = []
        events = []
        for i in range(keep):
            sched.call_later(1.0, fired.append, i)
        for i in range(cancel):
            events.append(sched.call_later(1.0, fired.append, 100 + i))
        for event in events:
            event.cancel()
        sched.run_until_idle()
        assert len(fired) == keep
        assert all(v < 100 for v in fired)


class TestPipeProperties:
    @given(st.lists(st.binary(min_size=1, max_size=64), max_size=30),
           st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_lossless_links_preserve_order_and_content(self, payloads, seed):
        sched = Scheduler()
        link = LinkProfile("p", latency_s=0.01, bandwidth_bps=1e6,
                           jitter_s=0.02)
        pipe = make_pipe(sched, link, seed=seed)
        got = []
        pipe.b.on_receive = got.append
        for payload in payloads:
            pipe.a.send(payload)
        sched.run_until_idle()
        assert got == payloads

    @given(st.lists(st.binary(min_size=1, max_size=32), max_size=20),
           st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_lossy_links_deliver_a_subsequence(self, payloads, seed):
        sched = Scheduler()
        link = LinkProfile("l", latency_s=0.0, bandwidth_bps=1e6, loss=0.3)
        pipe = make_pipe(sched, link, seed=seed)
        got = []
        pipe.b.on_receive = got.append
        for payload in payloads:
            pipe.a.send(payload)
        sched.run_until_idle()
        # delivered messages are a subsequence of what was sent
        it = iter(payloads)
        assert all(any(p == g for p in it) for g in got)


attr_names = st.sampled_from(["type", "class", "volume", "zone"])
attr_values = st.one_of(st.integers(0, 5),
                        st.sampled_from(["a", "b", "c"]))
attributes = st.dictionaries(attr_names, attr_values, max_size=4)
comparisons = st.builds(
    Comparison,
    attribute=attr_names,
    op=st.sampled_from(["==", "!=", ">", "<", ">=", "<=", "exists"]),
    value=attr_values,
)

queries = st.recursive(
    comparisons,
    lambda children: st.one_of(
        st.builds(lambda a, b: QueryAnd([a, b]), children, children),
        st.builds(lambda a, b: QueryOr([a, b]), children, children),
        st.builds(QueryNot, children),
    ),
    max_leaves=6,
)


class TestRegistryProperties:
    @given(st.lists(attributes, max_size=10), queries)
    @settings(max_examples=80)
    def test_query_matches_predicate_semantics(self, entries, query):
        registry = Registry()
        seids = []
        for i, attrs in enumerate(entries):
            seid = SEID(f"{i:016x}", 0)
            registry.register(seid, attrs)
            seids.append((seid, attrs))
        result = set(registry.query(query))
        for seid, attrs in seids:
            assert (seid in result) == query.matches(attrs)

    @given(st.lists(attributes, max_size=8), queries)
    @settings(max_examples=60)
    def test_demorgan_not_and(self, entries, query):
        registry = Registry()
        for i, attrs in enumerate(entries):
            registry.register(SEID(f"{i:016x}", 0), attrs)
        everything = set(registry.query())
        matched = set(registry.query(query))
        complement = set(registry.query(QueryNot(query)))
        assert matched | complement == everything
        assert matched & complement == set()

    @given(st.lists(attributes, max_size=8), queries, queries)
    @settings(max_examples=60)
    def test_and_is_intersection_or_is_union(self, entries, q1, q2):
        registry = Registry()
        for i, attrs in enumerate(entries):
            registry.register(SEID(f"{i:016x}", 0), attrs)
        a = set(registry.query(q1))
        b = set(registry.query(q2))
        assert set(registry.query(QueryAnd([q1, q2]))) == a & b
        assert set(registry.query(QueryOr([q1, q2]))) == a | b

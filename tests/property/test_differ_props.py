"""Property tests for the tile-grid frame differ.

The safety property is *soundness*: whatever damage the differ drops must
be damage whose pixels a downstream consumer already has.  We model the
consumer explicitly — a mirror bitmap updated only from the differ's
refined rects — and require it to equal the framebuffer after every round.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphics import Bitmap, Rect, TileDiffer

W, H = 70, 52  # deliberately not multiples of 16


@st.composite
def damage_rounds(draw):
    """Rounds of (damage rect, mutation sub-rect or None) pairs.

    The mutation always lies inside its damage rect (the damage-tracking
    discipline); a ``None`` mutation models an unchanged redraw.
    """
    rounds = []
    for _ in range(draw(st.integers(1, 5))):
        rects = []
        for _ in range(draw(st.integers(1, 4))):
            x = draw(st.integers(0, W - 2))
            y = draw(st.integers(0, H - 2))
            w = draw(st.integers(1, W - x))
            h = draw(st.integers(1, H - y))
            damage = Rect(x, y, w, h)
            if draw(st.booleans()):
                mx = draw(st.integers(0, w - 1))
                my = draw(st.integers(0, h - 1))
                mutation = Rect(x + mx, y + my,
                                draw(st.integers(1, w - mx)),
                                draw(st.integers(1, h - my)))
                color = (draw(st.integers(0, 255)),
                         draw(st.integers(0, 255)),
                         draw(st.integers(0, 255)))
            else:
                mutation, color = None, None
            rects.append((damage, mutation, color))
        rounds.append(rects)
    return rounds


class TestDifferSoundness:
    @given(damage_rounds())
    @settings(max_examples=60, deadline=None)
    def test_refined_region_covers_every_changed_pixel(self, rounds):
        fb = Bitmap(W, H, fill=(7, 7, 7))
        differ = TileDiffer()
        differ.refine(fb, [fb.bounds])  # prime the shadow
        mirror = fb.copy()              # the modelled downstream consumer
        for rects in rounds:
            for damage, mutation, color in rects:
                if mutation is not None:
                    fb.fill_rect(mutation, color)
            refined = differ.refine(fb, [d for d, _, _ in rects])
            for rect in refined:
                mirror.blit(fb.crop(rect), rect.x, rect.y)
            # soundness: the mirror fed only refined rects tracks exactly
            assert mirror == fb

    @given(damage_rounds())
    @settings(max_examples=40, deadline=None)
    def test_refined_rects_stay_inside_reported_damage(self, rounds):
        fb = Bitmap(W, H, fill=(3, 3, 3))
        differ = TileDiffer()
        differ.refine(fb, [fb.bounds])
        for rects in rounds:
            for damage, mutation, color in rects:
                if mutation is not None:
                    fb.fill_rect(mutation, color)
            damage_rects = [d for d, _, _ in rects]
            for rect in differ.refine(fb, damage_rects):
                assert not rect.is_empty
                assert any(d.contains_rect(rect) for d in damage_rects)

    def test_unchanged_redraw_drops_everything(self):
        fb = Bitmap(W, H, fill=(50, 60, 70))
        differ = TileDiffer()
        differ.refine(fb, [fb.bounds])
        assert differ.refine(fb, [fb.bounds]) == []
        assert differ.tiles_dropped > 0

    def test_single_pixel_change_shrinks_to_one_tile(self):
        fb = Bitmap(64, 64)
        differ = TileDiffer()
        differ.refine(fb, [fb.bounds])
        fb.set_pixel(20, 20, (255, 0, 0))
        refined = differ.refine(fb, [fb.bounds])
        assert refined == [Rect(16, 16, 16, 16)]

    def test_resize_reprimes_the_shadow(self):
        fb = Bitmap(32, 32, fill=(1, 1, 1))
        differ = TileDiffer()
        differ.refine(fb, [fb.bounds])
        bigger = Bitmap(48, 48, fill=(1, 1, 1))
        # a new geometry passes damage through unrefined (fresh shadow)
        assert differ.refine(bigger, [bigger.bounds]) == [bigger.bounds]
        assert differ.refine(bigger, [bigger.bounds]) == []

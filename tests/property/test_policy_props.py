"""Property tests for the device selection policy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import PreferenceStore, SelectionPolicy, UserSituation
from repro.context.model import LOCATIONS, Activity
from repro.devices import (
    CellPhone,
    GesturePad,
    Pda,
    RemoteControl,
    TvDisplay,
    VoiceInput,
    WallDisplay,
)
from repro.util import Scheduler

_SCHEDULER = Scheduler()
ALL_DESCRIPTORS = [
    Pda("pda", _SCHEDULER).descriptor,
    CellPhone("phone", _SCHEDULER).descriptor,
    VoiceInput("voice", _SCHEDULER).descriptor,
    RemoteControl("remote", _SCHEDULER).descriptor,
    TvDisplay("tv-panel", _SCHEDULER).descriptor,
    WallDisplay("wall", _SCHEDULER).descriptor,
    GesturePad("wrist", _SCHEDULER).descriptor,
]

situations = st.builds(
    UserSituation,
    location=st.sampled_from(LOCATIONS),
    activity=st.sampled_from(list(Activity)),
    hands_busy=st.booleans(),
    eyes_busy=st.booleans(),
    seated=st.booleans(),
    noise=st.floats(0.0, 1.0, allow_nan=False),
)

device_subsets = st.lists(st.sampled_from(ALL_DESCRIPTORS), min_size=0,
                          max_size=7, unique_by=lambda d: d.device_id)


class TestPolicyProperties:
    @given(situations, device_subsets)
    @settings(max_examples=80)
    def test_choice_is_deterministic(self, situation, devices):
        policy = SelectionPolicy()
        assert (policy.choose(devices, situation)
                == policy.choose(list(reversed(devices)), situation))

    @given(situations, device_subsets)
    @settings(max_examples=80)
    def test_choice_respects_roles(self, situation, devices):
        policy = SelectionPolicy()
        input_id, output_id = policy.choose(devices, situation)
        by_id = {d.device_id: d for d in devices}
        if input_id is not None:
            assert by_id[input_id].is_input
        if output_id is not None:
            assert by_id[output_id].is_output

    @given(situations)
    @settings(max_examples=60)
    def test_full_fleet_always_yields_both_roles(self, situation):
        policy = SelectionPolicy()
        input_id, output_id = policy.choose(ALL_DESCRIPTORS, situation)
        assert input_id is not None
        assert output_id is not None

    @given(situations, st.sampled_from(
        [d.kind for d in ALL_DESCRIPTORS if d.is_input]),
        st.floats(0.1, 20.0, allow_nan=False))
    @settings(max_examples=80)
    def test_preference_is_monotone(self, situation, kind, boost):
        """Raising a kind's weight never lowers its rank."""
        plain = SelectionPolicy()
        prefs = PreferenceStore()
        prefs.prefer(kind, boost)
        boosted = SelectionPolicy(prefs)

        def rank(policy):
            order = [s.kind for s in policy.rank_inputs(ALL_DESCRIPTORS,
                                                        situation)]
            return order.index(kind)

        assert rank(boosted) <= rank(plain)

    @given(situations)
    @settings(max_examples=60)
    def test_scores_explain_their_totals(self, situation):
        policy = SelectionPolicy()
        for descriptor in ALL_DESCRIPTORS:
            if descriptor.is_input:
                scored = policy.score_input(descriptor, situation)
                assert scored.score == sum(d for _, d in scored.reasons)
            if descriptor.is_output:
                scored = policy.score_output(descriptor, situation)
                assert scored.score == sum(d for _, d in scored.reasons)

    @given(situations, device_subsets)
    @settings(max_examples=60)
    def test_ranking_sorted_descending(self, situation, devices):
        policy = SelectionPolicy()
        for ranked in (policy.rank_inputs(devices, situation),
                       policy.rank_outputs(devices, situation)):
            scores = [s.score for s in ranked]
            assert scores == sorted(scores, reverse=True)

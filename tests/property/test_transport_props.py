"""Property tests: framing/decoder split-point invariance and robustness.

A byte stream has no message boundaries: a transport may deliver any
re-segmentation of the sent bytes (the scatter-gather wire path actively
exploits this — one logical update arrives as several chunks).  These
properties pin the contract that makes that safe: feeding *any* partition
of a stream into :class:`FrameAssembler`, :class:`ClientMessageDecoder`
or :class:`ServerMessageDecoder` yields exactly the same messages, and a
poisoned length prefix fails loudly without corrupting decoder state.

The hostile-kernel properties at the end drive a real
:class:`SocketTransport` pair through a syscall shim that injects EINTR
and partial writes at random points, pinning the pump loops' liveness:
every byte arrives in order, framed-message counters stay in parity, and
all credit comes back — no matter where the kernel "fails".
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.graphics import RGB565, RGB888, Rect
from repro.net.framing import MAX_FRAME_SIZE, FrameAssembler, encode_frame
from repro.uip import (
    Bell,
    ClientCutText,
    ClientMessageDecoder,
    DecoderState,
    EncoderState,
    FramebufferUpdateRequest,
    HEXTILE,
    KeyEvent,
    PointerEvent,
    RAW,
    RRE,
    ServerCutText,
    ServerMessageDecoder,
    SetEncodings,
    ZLIB,
)
from repro.uip.messages import FramebufferUpdate, RectUpdate
from repro.util.errors import TransportError

from tests.helpers import HostileSocket, partition, split_points


# -- FrameAssembler ----------------------------------------------------------


frame_payloads = st.lists(st.binary(min_size=0, max_size=200), min_size=1,
                          max_size=8)


@given(payloads=frame_payloads, data=st.data())
@settings(max_examples=60, deadline=None)
def test_frame_assembler_split_point_invariant(payloads, data):
    stream = b"".join(encode_frame(p) for p in payloads)
    cuts = data.draw(split_points(len(stream)))
    assembler = FrameAssembler()
    frames = []
    for chunk in partition(stream, cuts):
        frames.extend(assembler.feed(chunk))
    assert frames == payloads
    assert assembler.buffered_bytes == 0


@given(payloads=frame_payloads)
@settings(max_examples=30, deadline=None)
def test_frame_assembler_byte_at_a_time(payloads):
    stream = b"".join(encode_frame(p) for p in payloads)
    assembler = FrameAssembler()
    frames = []
    for i in range(len(stream)):
        frames.extend(assembler.feed(stream[i:i + 1]))
    assert frames == payloads


def test_oversized_frame_raises_without_corrupting_buffer():
    import struct
    assembler = FrameAssembler()
    # a good frame followed by a poisoned header
    good = encode_frame(b"fine")
    poison = struct.pack(">I", MAX_FRAME_SIZE + 1) + b"junk"
    assert assembler.feed(good) == [b"fine"]
    before = assembler.buffered_bytes
    with pytest.raises(TransportError):
        assembler.feed(poison)
    # nothing was consumed: state is stable and the error reproduces
    assert assembler.buffered_bytes == before + len(poison)
    with pytest.raises(TransportError):
        assembler.feed(b"")
    assert assembler.buffered_bytes == before + len(poison)


# -- client message stream -----------------------------------------------------


client_messages = st.lists(
    st.one_of(
        st.builds(KeyEvent, st.booleans(), st.integers(0, 2**32 - 1)),
        st.builds(PointerEvent, st.integers(0, 255),
                  st.integers(0, 65535), st.integers(0, 65535)),
        st.builds(ClientCutText,
                  st.text(st.characters(min_codepoint=0, max_codepoint=255),
                          max_size=40)),
        st.builds(
            FramebufferUpdateRequest, st.booleans(),
            st.builds(Rect, st.integers(0, 100), st.integers(0, 100),
                      st.integers(1, 100), st.integers(1, 100))),
        st.builds(SetEncodings,
                  st.lists(st.sampled_from([RAW, RRE, HEXTILE, ZLIB]),
                           min_size=1, max_size=4).map(tuple)),
    ),
    min_size=1, max_size=10,
)


@given(messages=client_messages, data=st.data())
@settings(max_examples=60, deadline=None)
def test_client_decoder_split_point_invariant(messages, data):
    stream = b"".join(m.encode() for m in messages)
    cuts = data.draw(split_points(len(stream)))
    decoder = ClientMessageDecoder()
    decoded = []
    for chunk in partition(stream, cuts):
        decoded.extend(decoder.feed(chunk))
    assert decoded == messages
    assert decoder.buffered_bytes == 0


@given(messages=client_messages)
@settings(max_examples=20, deadline=None)
def test_client_decoder_byte_at_a_time_matches_whole_feed(messages):
    stream = b"".join(m.encode() for m in messages)
    whole = ClientMessageDecoder().feed(stream)
    trickle = ClientMessageDecoder()
    dribbled = []
    for i in range(len(stream)):
        dribbled.extend(trickle.feed(stream[i:i + 1]))
    assert dribbled == whole == messages


# -- server message stream ------------------------------------------------------


@st.composite
def server_streams(draw):
    """(pixel format, [messages]) with pixel-rect framebuffer updates."""
    fmt = draw(st.sampled_from([RGB888, RGB565]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    messages = []
    for _ in range(draw(st.integers(1, 5))):
        kind = draw(st.sampled_from(["update", "bell", "cut"]))
        if kind == "bell":
            messages.append(Bell())
        elif kind == "cut":
            messages.append(ServerCutText(draw(st.text(
                st.characters(min_codepoint=0, max_codepoint=255),
                max_size=24))))
        else:
            rects = []
            for _ in range(draw(st.integers(1, 3))):
                w, h = draw(st.integers(1, 12)), draw(st.integers(1, 12))
                x, y = draw(st.integers(0, 40)), draw(st.integers(0, 40))
                packed = rng.integers(0, 4, size=(h, w)).astype(fmt.dtype)
                encoding = draw(st.sampled_from([RAW, RRE, HEXTILE, ZLIB]))
                rects.append(RectUpdate(Rect(x, y, w, h), encoding, packed))
            messages.append(FramebufferUpdate(tuple(rects)))
    return fmt, messages


def _rects_equal(a, b):
    if a.rect != b.rect or a.encoding != b.encoding:
        return False
    return np.array_equal(a.payload, b.payload)


@given(stream=server_streams(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_server_decoder_split_point_invariant(stream, data):
    fmt, messages = stream
    encoder = EncoderState(fmt)
    wire = b"".join(m.encode(encoder) if isinstance(m, FramebufferUpdate)
                    else m.encode() for m in messages)
    cuts = data.draw(split_points(len(wire)))
    decoder = ServerMessageDecoder(DecoderState(fmt))
    decoded = []
    for chunk in partition(wire, cuts):
        decoded.extend(decoder.feed(chunk))
    assert len(decoded) == len(messages)
    for got, want in zip(decoded, messages):
        if isinstance(want, FramebufferUpdate):
            assert isinstance(got, FramebufferUpdate)
            assert len(got.rects) == len(want.rects)
            assert all(_rects_equal(g, w)
                       for g, w in zip(got.rects, want.rects))
        else:
            assert got == want
    assert decoder.buffered_bytes == 0


# -- hostile-kernel socket pumps ---------------------------------------------
# (the HostileSocket shim lives in tests/helpers/hostile.py so the
# fault-injection property suite can drive the same hostile kernel)


@given(messages=st.lists(st.binary(min_size=0, max_size=200_000),
                         min_size=1, max_size=10),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_socket_pumps_survive_eintr_and_partial_writes(messages, seed):
    import random

    from repro.net import make_socket_transport_pair
    from repro.util import Scheduler

    sched = Scheduler()
    pair = make_socket_transport_pair(sched)
    rng = random.Random(seed)
    pair.a._sock = HostileSocket(pair.a._sock, rng)
    pair.b._sock = HostileSocket(pair.b._sock, rng)
    got = []
    pair.b.on_receive = lambda data: got.append(bytes(data))
    for message in messages:
        pair.a.send(message)
    sched.run_until_idle()
    assert b"".join(got) == b"".join(messages)
    assert not pair.a._outbox
    assert pair.a.queued_bytes == 0, "all credit must come back"
    assert pair.a.stats.messages_sent == len(messages)
    assert pair.b.stats.messages_received == len(messages)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_hostile_kernel_duplex_big_transfer(seed):
    import random

    from repro.net import make_socket_transport_pair
    from repro.util import Scheduler

    sched = Scheduler()
    pair = make_socket_transport_pair(sched)
    rng = random.Random(seed)
    pair.a._sock = HostileSocket(pair.a._sock, rng)
    pair.b._sock = HostileSocket(pair.b._sock, rng)
    blob_ab = bytes(range(256)) * 2048  # 512 KiB each way
    blob_ba = bytes(reversed(range(256))) * 2048
    got_a, got_b = [], []
    pair.a.on_receive = lambda data: got_a.append(bytes(data))
    pair.b.on_receive = lambda data: got_b.append(bytes(data))
    pair.a.send(blob_ab)
    pair.b.send(blob_ba)
    sched.run_until_idle()
    assert b"".join(got_b) == blob_ab
    assert b"".join(got_a) == blob_ba
    assert pair.a.queued_bytes == 0 and pair.b.queued_bytes == 0


@given(stream=server_streams())
@settings(max_examples=20, deadline=None)
def test_server_decoder_chunked_encode_matches_flat(stream):
    """The scatter-gather chunk list decodes identically to the flat
    encode — wire compatibility of the vectored send path."""
    fmt, messages = stream
    flat_enc, chunk_enc = EncoderState(fmt), EncoderState(fmt)
    flat_dec = ServerMessageDecoder(DecoderState(fmt))
    chunk_dec = ServerMessageDecoder(DecoderState(fmt))
    for message in messages:
        if isinstance(message, FramebufferUpdate):
            flat_wire = message.encode(flat_enc)
            chunks = message.encode_chunks(chunk_enc)
            assert b"".join(chunks) == flat_wire
            flat_out = flat_dec.feed(flat_wire)
            chunk_out = []
            for chunk in chunks:  # deliver chunk-by-chunk, as pipes do
                chunk_out.extend(chunk_dec.feed(chunk))
            assert len(flat_out) == len(chunk_out) == 1
            assert all(_rects_equal(g, w) for g, w in
                       zip(chunk_out[0].rects, flat_out[0].rects))

"""Stateful property tests of the whole thin-client pipeline.

The central invariant of the universal interaction protocol: after any
sequence of input events and UI activity, once the network quiesces the
proxy's framebuffer mirror is *pixel-identical* to the server's composited
framebuffer (with a lossless wire format).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphics import RGB888
from repro.net import ETHERNET_100, make_pipe
from repro.proxy import UniIntProxy
from repro.server import UniIntServer
from repro.toolkit import (
    Button,
    Column,
    Label,
    ListBox,
    Slider,
    ToggleButton,
    UIWindow,
)
from repro.uip import HEXTILE, RAW, RRE, ZLIB, keysyms
from repro.util import Scheduler
from repro.windows import DisplayServer


def build(encodings):
    scheduler = Scheduler()
    display = DisplayServer(240, 200)
    window = UIWindow(240, 200)
    col = Column()
    label = col.add(Label("status"))
    label.widget_id = "status"
    col.add(ToggleButton("Power"))
    col.add(Button("Go"))
    col.add(Slider(0, 100, value=50))
    col.add(ListBox(["one", "two", "three", "four"]))
    window.set_root(col)
    display.map_fullscreen(window)
    server = UniIntServer(display, scheduler)
    proxy = UniIntProxy(scheduler)
    pipe = make_pipe(scheduler, ETHERNET_100)
    server.accept(pipe.a)
    session = proxy.connect(pipe.b, pixel_format=RGB888,
                            encodings=encodings)
    scheduler.run_until_idle()
    return scheduler, display, window, session


KEYS = [keysyms.TAB, keysyms.RETURN, keysyms.SPACE, keysyms.UP,
        keysyms.DOWN, keysyms.LEFT, keysyms.RIGHT, keysyms.HOME,
        keysyms.END, keysyms.PAGE_DOWN]

actions = st.one_of(
    st.tuples(st.just("key"), st.sampled_from(KEYS)),
    st.tuples(st.just("click"),
              st.tuples(st.integers(0, 239), st.integers(0, 199))),
    st.tuples(st.just("label"), st.text(
        alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
        max_size=12)),
)

encoding_sets = st.sampled_from([
    (RAW,), (RRE, RAW), (HEXTILE, RAW), (ZLIB, RAW),
    (HEXTILE, ZLIB, RRE, RAW),
])


class TestMirrorInvariant:
    @given(st.lists(actions, max_size=15), encoding_sets)
    @settings(max_examples=25, deadline=None)
    def test_mirror_equals_framebuffer_after_quiescence(self, sequence,
                                                        encodings):
        scheduler, display, window, session = build(encodings)
        for kind, value in sequence:
            if kind == "key":
                session.upstream.press_key(value)
            elif kind == "click":
                session.upstream.click(value[0], value[1])
            else:
                window.root.find("status").text = value
            scheduler.run_until_idle()
            assert session.upstream.framebuffer == display.framebuffer

    @given(st.lists(actions, max_size=10), encoding_sets)
    @settings(max_examples=15, deadline=None)
    def test_burst_then_single_settle(self, sequence, encodings):
        """Events fired back-to-back (no settle between) still converge."""
        scheduler, display, window, session = build(encodings)
        for kind, value in sequence:
            if kind == "key":
                session.upstream.press_key(value)
            elif kind == "click":
                session.upstream.click(value[0], value[1])
            else:
                window.root.find("status").text = value
        scheduler.run_until_idle()
        assert session.upstream.framebuffer == display.framebuffer

    @given(st.lists(actions, max_size=10))
    @settings(max_examples=10, deadline=None)
    def test_two_clients_converge_identically(self, sequence):
        """Two clients with different encodings both track the server."""
        from repro.proxy.upstream import UniIntClient
        scheduler = Scheduler()
        display = DisplayServer(240, 200)
        window = UIWindow(240, 200)
        col = Column()
        label = col.add(Label("status"))
        label.widget_id = "status"
        col.add(ToggleButton("Power"))
        window.set_root(col)
        display.map_fullscreen(window)
        server = UniIntServer(display, scheduler)
        clients = []
        for encodings in ((RAW,), (ZLIB, HEXTILE, RAW)):
            pipe = make_pipe(scheduler, ETHERNET_100,
                             name=f"c{len(clients)}")
            server.accept(pipe.a)
            clients.append(UniIntClient(pipe.b, encodings=encodings))
        scheduler.run_until_idle()
        for kind, value in sequence:
            if kind == "key":
                clients[0].press_key(value)
            elif kind == "click":
                clients[1].click(value[0], value[1])
            else:
                window.root.find("status").text = value
            scheduler.run_until_idle()
            assert clients[0].framebuffer == display.framebuffer
            assert clients[1].framebuffer == display.framebuffer


class TestDeterminism:
    def test_identical_runs_produce_identical_pixels(self):
        def run():
            scheduler, display, window, session = build((HEXTILE, RAW))
            for key in (keysyms.RETURN, keysyms.TAB, keysyms.RETURN,
                        keysyms.TAB, keysyms.RIGHT, keysyms.RIGHT):
                session.upstream.press_key(key)
                scheduler.run_until_idle()
            return (display.framebuffer.to_ppm(), scheduler.now(),
                    scheduler.fired_count)

        first = run()
        second = run()
        assert first == second

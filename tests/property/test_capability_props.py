"""Property tests for capability descriptors and the surfaces they drive.

Three contracts:

* descriptor wire round-trip is lossless for every valid capability,
* :func:`build_capability_panel` renders any valid descriptor and gives
  every capability a locatable widget,
* descriptor-derived DDI trees are semantically equivalent to the legacy
  hand-authored :data:`DDI_SPECS` — every legacy command/state binding is
  still reachable, with identical bounds and option sets.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app.handles import FcmHandle
from repro.app.panels import build_capability_panel
from repro.appliances import APPLIANCE_CLASSES
from repro.havi import (
    CAPABILITY_KINDS,
    Capability,
    CapabilityDescriptor,
    HomeNetwork,
    SEID,
    SoftwareElement,
)
from repro.havi.ddi import (
    DDI_SPECS,
    DdiChoice,
    DdiRange,
    DdiToggle,
    ddi_elements_from_descriptor,
)
from repro.toolkit import Column, UIWindow
from repro.util.ids import guid_from_seed

name_chars = "abcdefghijklmnopqrstuvwxyz0123456789-_"
names = st.text(alphabet=name_chars, min_size=1, max_size=12)
labels = st.text(alphabet=st.characters(min_codepoint=0x20,
                                        max_codepoint=0x7E), max_size=10)
kinds = st.sampled_from(CAPABILITY_KINDS + ("hologram", "gesture"))


@st.composite
def capabilities(draw, name=None):
    kind = draw(kinds)
    name = name if name is not None else draw(names)
    bounded = kind in ("range", "progress", "number")
    minimum = draw(st.integers(-50, 50)) if bounded else None
    maximum = (minimum + draw(st.integers(1, 100))) if bounded else None
    read_only = kind in ("text", "progress") or draw(st.booleans())
    command = "" if read_only else f"{name}.set"
    return Capability(
        kind=kind, name=name, label=draw(labels),
        attribute=draw(st.one_of(st.just(""), st.just(name))),
        command=command,
        arg_name=draw(st.sampled_from(("", "value", "on"))),
        args=draw(st.dictionaries(st.text(name_chars, min_size=1,
                                          max_size=4),
                                  st.integers(), max_size=2)),
        minimum=minimum, maximum=maximum,
        step=draw(st.integers(1, 10)),
        choices=(tuple(draw(st.lists(names, min_size=1, max_size=4,
                                     unique=True)))
                 if kind == "choice" else ()),
        unit=draw(st.sampled_from(("", "C", "%"))),
        read_only=read_only,
        component=draw(st.sampled_from(("main", "upper", "lower"))),
        fmt=draw(st.sampled_from(("", "{value}", "Ch {value}"))),
    )


@st.composite
def descriptors(draw):
    unique_names = draw(st.lists(names, min_size=1, max_size=6,
                                 unique=True))
    return CapabilityDescriptor(
        fcm_type=draw(names), version=draw(st.integers(1, 99)),
        capabilities=tuple(draw(capabilities(name=n))
                           for n in unique_names))


class TestWireRoundTrip:
    @given(capabilities())
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_capability_round_trip(self, capability):
        assert Capability.from_dict(capability.to_dict()) == capability

    @given(descriptors())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_descriptor_round_trip(self, descriptor):
        again = CapabilityDescriptor.from_dict(descriptor.to_dict())
        assert again == descriptor
        assert again.to_dict() == descriptor.to_dict()


class TestGeneratedPanels:
    def _handle(self, descriptor):
        network = HomeNetwork()
        element = SoftwareElement(SEID(guid_from_seed("prop-app"), 0),
                                  network.messaging)
        element.attach()
        handle = FcmHandle(element, SEID(guid_from_seed("prop-dev"), 1), {
            "fcm.type": descriptor.fcm_type,
            "device.guid": guid_from_seed("prop-dev"),
            "device.name": "Prop Device",
            "device.class": "x",
        })
        handle.descriptor = descriptor
        return handle

    @given(descriptors())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_valid_descriptor_builds_and_renders(self, descriptor):
        handle = self._handle(descriptor)
        panel = build_capability_panel(handle)
        prefix = handle.guid_prefix
        for capability in descriptor:
            wid = f"{prefix}.{descriptor.fcm_type}.{capability.name}"
            assert panel.find(wid) is not None, f"no widget for {wid}"
        window = UIWindow(360, 480)
        root = Column()
        root.add(panel)
        window.set_root(root)
        window.render()
        window.set_root(Column())  # teardown must detach every listener
        assert handle.listeners == []


class TestApplianceContracts:
    def test_generated_commands_accepted_by_their_fcm(self):
        """For every shipped appliance: each descriptor command is a
        registered verb and each attribute an existing state key."""
        network = HomeNetwork()
        appliances = [APPLIANCE_CLASSES[kind](kind)
                      for kind in sorted(APPLIANCE_CLASSES)]
        for appliance in appliances:
            network.attach_device(appliance)
        network.settle()
        for appliance in appliances:
            for fcm in appliance.dcm.fcms:
                descriptor = fcm.capability_descriptor()
                for capability in descriptor:
                    if capability.command:
                        assert capability.command in fcm.commands
                    if capability.attribute:
                        assert capability.attribute in fcm.state


class TestDdiSemanticEquivalence:
    """Descriptor-derived DDI trees must not regress the legacy specs."""

    def _spec_pairs(self):
        network = HomeNetwork()
        appliances = [APPLIANCE_CLASSES[kind](kind)
                      for kind in sorted(APPLIANCE_CLASSES)]
        for appliance in appliances:
            network.attach_device(appliance)
        network.settle()
        for appliance in appliances:
            for fcm in appliance.dcm.fcms:
                spec = DDI_SPECS.get(fcm.fcm_type.value)
                if spec is None or not fcm.capabilities:
                    continue
                legacy = spec("1:", fcm)
                dynamic = []
                for element in ddi_elements_from_descriptor("1:", fcm):
                    if hasattr(element, "walk"):
                        dynamic.extend(element.walk())
                    else:
                        dynamic.append(element)
                yield fcm, legacy, dynamic

    def test_every_legacy_command_still_reachable(self):
        checked = 0
        for fcm, legacy, dynamic in self._spec_pairs():
            dynamic_commands = {getattr(e, "command", "")
                                for e in dynamic} - {""}
            for element in legacy:
                command = getattr(element, "command", "")
                if command:
                    checked += 1
                    assert command in dynamic_commands, (
                        f"{fcm.fcm_type.value}: legacy command "
                        f"{command!r} lost in dynamic tree")
        assert checked > 20  # the sweep actually covered the gallery

    def test_every_legacy_interactive_key_still_bound(self):
        for fcm, legacy, dynamic in self._spec_pairs():
            dynamic_keys = {getattr(e, "key", "") for e in dynamic} - {""}
            for element in legacy:
                if isinstance(element, (DdiToggle, DdiRange, DdiChoice)):
                    assert element.key in dynamic_keys, (
                        f"{fcm.fcm_type.value}: key {element.key!r} "
                        f"unbound in dynamic tree")

    def test_matching_controls_keep_bounds_and_options(self):
        for fcm, legacy, dynamic in self._spec_pairs():
            by_command = {getattr(e, "command", ""): e for e in dynamic
                          if getattr(e, "command", "")}
            for element in legacy:
                twin = by_command.get(getattr(element, "command", ""))
                if twin is None:
                    continue
                if isinstance(element, DdiRange) and isinstance(twin,
                                                                DdiRange):
                    assert (twin.minimum, twin.maximum) == (
                        element.minimum, element.maximum), (
                        f"{fcm.fcm_type.value}: {element.element_id} "
                        f"bounds drifted")
                    assert twin.arg_name == element.arg_name
                if isinstance(element, DdiChoice) and isinstance(
                        twin, DdiChoice):
                    assert twin.options == element.options
                    assert twin.arg_name == element.arg_name
                if isinstance(element, DdiToggle) and isinstance(
                        twin, DdiToggle):
                    assert twin.arg_name == element.arg_name
                    assert twin.key == element.key

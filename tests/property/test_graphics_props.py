"""Property-based tests for the graphics substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphics import RGB332, RGB565, RGB888, Rect, Region
from repro.graphics import ops

rect_strategy = st.builds(
    Rect,
    x=st.integers(-50, 50),
    y=st.integers(-50, 50),
    w=st.integers(0, 60),
    h=st.integers(0, 60),
)

small_rect = st.builds(
    Rect,
    x=st.integers(0, 30),
    y=st.integers(0, 30),
    w=st.integers(0, 20),
    h=st.integers(0, 20),
)


class TestRectProperties:
    @given(rect_strategy, rect_strategy)
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(rect_strategy, rect_strategy)
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersect(b)
        if not inter.is_empty:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rect_strategy)
    def test_self_intersection_identity(self, r):
        if not r.is_empty:
            assert r.intersect(r) == r

    @given(rect_strategy, rect_strategy)
    def test_union_bounds_contains_both(self, a, b):
        u = a.union_bounds(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rect_strategy, rect_strategy)
    def test_subtract_area_conservation(self, a, b):
        pieces = a.subtract(b)
        overlap = a.intersect(b).area
        assert sum(p.area for p in pieces) == a.area - overlap

    @given(rect_strategy, rect_strategy)
    def test_subtract_pieces_disjoint_from_other(self, a, b):
        for piece in a.subtract(b):
            assert piece.intersect(b).is_empty
            assert a.contains_rect(piece)

    @given(small_rect, st.integers(3, 17), st.integers(3, 17))
    @settings(deadline=None)
    def test_tiles_partition_rect(self, r, tw, th):
        tiles = list(r.split_tiles(tw, th))
        assert sum(t.area for t in tiles) == r.area
        for i, a in enumerate(tiles):
            for b in tiles[i + 1:]:
                assert not a.intersects(b)


class TestRegionProperties:
    @given(st.lists(small_rect, max_size=8))
    def test_rects_always_disjoint(self, rects):
        region = Region(rects)
        stored = region.rects()
        for i, a in enumerate(stored):
            for b in stored[i + 1:]:
                assert not a.intersects(b)

    @given(st.lists(small_rect, max_size=8))
    def test_membership_matches_union(self, rects):
        region = Region(rects)
        # sample a grid of points and compare membership
        for px in range(0, 51, 7):
            for py in range(0, 51, 7):
                expected = any(r.contains_point(px, py) for r in rects)
                assert region.contains_point(px, py) == expected

    @given(st.lists(small_rect, max_size=8))
    def test_area_never_exceeds_sum(self, rects):
        region = Region(rects)
        assert region.area <= sum(r.area for r in rects)

    @given(st.lists(small_rect, max_size=6), small_rect)
    def test_add_is_idempotent(self, rects, extra):
        region = Region(rects)
        region.add(extra)
        area_once = region.area
        region.add(extra)
        assert region.area == area_once

    @given(st.lists(small_rect, max_size=6), small_rect)
    def test_subtract_removes_membership(self, rects, hole):
        region = Region(rects)
        region.subtract(hole)
        for px in range(0, 51, 9):
            for py in range(0, 51, 9):
                if hole.contains_point(px, py):
                    assert not region.contains_point(px, py)


class TestCoalesceProperties:
    @given(st.lists(small_rect, max_size=10))
    def test_coalesced_covers_exactly_the_same_pixels(self, rects):
        """The coalesced cover is pixel-for-pixel the raw rect list union."""
        region = Region(rects)
        coalesced = region.coalesced()
        for px in range(0, 51, 3):
            for py in range(0, 51, 3):
                expected = any(r.contains_point(px, py) for r in rects)
                got = any(c.contains_point(px, py) for c in coalesced)
                assert got == expected

    @given(st.lists(small_rect, max_size=10))
    def test_coalesced_is_disjoint_and_area_preserving(self, rects):
        region = Region(rects)
        coalesced = region.coalesced()
        assert sum(c.area for c in coalesced) == region.area
        for i, a in enumerate(coalesced):
            for b in coalesced[i + 1:]:
                assert not a.intersects(b)

    @given(st.lists(small_rect, max_size=10))
    def test_coalesced_never_more_fragmented(self, rects):
        region = Region(rects)
        assert len(region.coalesced()) <= max(len(region.rects()), 0)

    @given(st.lists(small_rect, max_size=10), st.integers(1, 6))
    def test_capped_cover_is_superset_within_cap(self, rects, cap):
        """With a cap: never more than cap rects, never a lost pixel."""
        region = Region(rects)
        capped = region.coalesced(cap)
        assert len(capped) <= cap
        for i, a in enumerate(capped):
            for b in capped[i + 1:]:
                assert not a.intersects(b)
        for px in range(0, 51, 3):
            for py in range(0, 51, 3):
                if region.contains_point(px, py):
                    assert any(c.contains_point(px, py) for c in capped)


rgb_arrays = st.integers(1, 12).flatmap(
    lambda w: st.integers(1, 12).map(
        lambda h: np.random.default_rng(w * 100 + h).integers(
            0, 256, size=(h, w, 3), dtype=np.uint8
        )
    )
)


class TestPixelFormatProperties:
    @given(rgb_arrays)
    @settings(max_examples=40)
    def test_rgb888_roundtrip_exact(self, rgb):
        out = RGB888.unpack(RGB888.pack(rgb), rgb.shape[1], rgb.shape[0])
        assert np.array_equal(out, rgb)

    @given(rgb_arrays, st.sampled_from([RGB565, RGB332]))
    @settings(max_examples=40)
    def test_quantise_idempotent(self, rgb, fmt):
        once = fmt.quantise(rgb)
        assert np.array_equal(fmt.quantise(once), once)

    @given(rgb_arrays, st.sampled_from([RGB888, RGB565, RGB332]))
    @settings(max_examples=40)
    def test_quantise_error_bounded(self, rgb, fmt):
        out = fmt.quantise(rgb)
        max_err = np.abs(out.astype(int) - rgb.astype(int)).max()
        # worst channel step: 255 / min_channel_max, half-step rounding
        step = 255 / min(fmt.red_max, fmt.green_max, fmt.blue_max)
        assert max_err <= step / 2 + 1


gray_arrays = st.integers(1, 16).flatmap(
    lambda w: st.integers(1, 16).map(
        lambda h: np.random.default_rng(w * 31 + h).uniform(
            0, 255, size=(h, w)
        )
    )
)


class TestDitherProperties:
    @given(gray_arrays, st.integers(2, 8))
    @settings(max_examples=30)
    def test_ordered_dither_levels(self, gray, levels):
        out = ops.ordered_dither(gray, levels)
        allowed = {round(i * 255.0 / (levels - 1), 6) for i in range(levels)}
        assert {round(v, 6) for v in np.unique(out)} <= allowed

    @given(gray_arrays, st.integers(2, 8))
    @settings(max_examples=30)
    def test_floyd_steinberg_levels(self, gray, levels):
        out = ops.floyd_steinberg(gray, levels)
        allowed = {round(i * 255.0 / (levels - 1), 6) for i in range(levels)}
        assert {round(v, 6) for v in np.unique(out)} <= allowed

    @given(gray_arrays)
    @settings(max_examples=30)
    def test_mono_pack_roundtrip(self, gray):
        hard = np.where(gray > 127.5, 255.0, 0.0)
        out = ops.unpack_mono(ops.pack_mono(gray), gray.shape[1],
                              gray.shape[0])
        assert np.array_equal(out, hard)

    @given(gray_arrays)
    @settings(max_examples=30)
    def test_gray4_pack_roundtrip(self, gray):
        quantised = np.clip(np.rint(gray / 85.0), 0, 3) * 85.0
        out = ops.unpack_gray4(ops.pack_gray4(gray), gray.shape[1],
                               gray.shape[0])
        assert np.array_equal(out, quantised)

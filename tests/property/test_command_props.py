"""Property tests for the command spine.

The core contract: for ANY interleaving of widget/DDI-style activations —
mixed opcodes, mixed origins, scripted replies (success, failure,
silence), settles sprinkled anywhere — once the home settles, the
commands partition cleanly:

* every command reaches exactly one terminal state,
* the log's terminal counters sum to the number submitted,
* coalescing never loses the *last* write of a burst (last-write-wins),
* non-idempotent opcodes are never coalesced (every one hits the wire).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app.commands import CommandSpine, CommandState, TERMINAL_STATES
from repro.havi import SEID, SoftwareElement
from repro.havi.messaging import MessageSystem
from repro.util import Scheduler
from repro.util.ids import guid_from_seed


class ScriptedFcm(SoftwareElement):
    """Replies according to opcode: ``ok.*`` succeed, ``bad.*`` fail,
    ``mute.*`` never answer (timeout territory)."""

    def __init__(self, seid, messaging):
        super().__init__(seid, messaging)
        self.received = []

    def handle_request(self, message):
        self.received.append((message.opcode, dict(message.payload)))
        if message.opcode.startswith("bad."):
            self.reply(message, {"detail": "scripted"}, status="EFAIL")
        elif not message.opcode.startswith("mute."):
            self.reply(message, {"echo": message.opcode})


#: The activation alphabet: coalescible writes, non-idempotent verbs,
#: failures and black holes.
OPCODES = ("ok.volume.set", "ok.power.set", "ok.timer.add",
           "ok.channel.up", "bad.mode.set", "bad.tray.open",
           "mute.probe.set")
ORIGINS = ("widget", "ddi", "voice", "api")

activations = st.lists(
    st.tuples(st.sampled_from(OPCODES), st.sampled_from(ORIGINS),
              st.integers(0, 100), st.booleans()),
    min_size=1, max_size=40)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=activations)
def test_any_activation_sequence_partitions_cleanly(script):
    scheduler = Scheduler()
    messaging = MessageSystem(scheduler)
    app = SoftwareElement(SEID(guid_from_seed("prop-app"), 0), messaging)
    app.attach()
    fcm = ScriptedFcm(SEID(guid_from_seed("prop-fcm"), 1), messaging)
    fcm.attach()
    spine = CommandSpine(app, timeout_s=0.5)

    commands = []
    for opcode, origin, value, settle in script:
        commands.append(spine.submit(fcm.seid, opcode, {"value": value},
                                     origin=origin))
        if settle:
            scheduler.run_until_idle()
    scheduler.run_until_idle()

    # 1. every command reached exactly one terminal state
    for command in commands:
        assert command.state in TERMINAL_STATES
        assert command.finished_s is not None
    # 2. counters partition: every submit accounted for exactly once
    stats = spine.log.stats()
    assert stats["submitted"] == len(commands)
    assert sum(stats["terminal"].values()) == len(commands)
    assert spine.inflight_count == 0
    # 3. terminal kind matches the script's intent
    for command in commands:
        if command.state is CommandState.SUPERSEDED:
            assert command.opcode.endswith(".set")
            assert command.superseded_by is not None
        elif command.opcode.startswith("ok."):
            assert command.state is CommandState.DONE
        elif command.opcode.startswith("bad."):
            assert command.state is CommandState.FAILED
        else:
            assert command.state is CommandState.TIMED_OUT
    # 4. non-idempotent opcodes all hit the wire, in submission order
    for opcode in ("ok.timer.add", "ok.channel.up", "bad.tray.open"):
        sent = [o for o, _ in fcm.received if o == opcode]
        asked = [c for c in commands if c.opcode == opcode]
        assert len(sent) == len(asked)
    # 5. last-write-wins: the final write of every coalescible opcode
    #    reached the appliance last for that opcode
    for opcode in ("ok.volume.set", "ok.power.set"):
        asked = [c for c in commands if c.opcode == opcode]
        if not asked:
            continue
        sent = [p for o, p in fcm.received if o == opcode]
        assert sent and sent[-1] == asked[-1].payload
    # 6. origins tallied exactly
    assert sum(stats["by_origin"].values()) == len(commands)

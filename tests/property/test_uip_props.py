"""Property-based tests for the universal interaction protocol."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphics import RGB332, RGB565, RGB888, PixelFormat, Rect
from repro.uip import (
    ClientCutText,
    ClientMessageDecoder,
    DecoderState,
    EncoderState,
    FramebufferUpdateRequest,
    HEXTILE,
    KeyEvent,
    PointerEvent,
    RAW,
    RRE,
    STATEFUL_ENCODINGS,
    SetEncodings,
    ZLIB,
    ZRLE,
    decode_rect,
    encode_rect,
)
from repro.uip.messages import (
    FramebufferUpdate,
    RectUpdate,
    ServerMessageDecoder,
)
from repro.uip.wire import Cursor

#: Big-endian variants — the vectorised encoders must respect wire order.
BE565 = PixelFormat(16, 16, True, 31, 63, 31, 11, 5, 0)
BE888 = PixelFormat(32, 24, True, 255, 255, 255, 16, 8, 0)

formats = st.sampled_from([RGB888, RGB565, RGB332, BE565])
codecs = st.sampled_from([RAW, RRE, HEXTILE, ZLIB, ZRLE])


@st.composite
def packed_arrays(draw, fmt):
    """Random packed pixel arrays biased toward flat regions (GUI-like)."""
    width = draw(st.integers(1, 40))
    height = draw(st.integers(1, 40))
    seed = draw(st.integers(0, 2**31))
    palette_size = draw(st.integers(1, 6))
    rng = np.random.default_rng(seed)
    palette = rng.integers(0, 256, size=(palette_size, 3), dtype=np.uint8)
    indices = rng.integers(0, palette_size, size=(height, width))
    rgb = palette[indices]
    return fmt.pack_array(rgb)


class TestEncodingRoundTrip:
    @given(st.data(), formats, codecs)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_exact(self, data, fmt, encoding):
        packed = data.draw(packed_arrays(fmt))
        enc_state = EncoderState(fmt)
        dec_state = DecoderState(fmt)
        payload = encode_rect(enc_state, packed, encoding)
        out = decode_rect(dec_state, Cursor(payload), packed.shape[1],
                          packed.shape[0], encoding)
        assert out.dtype == packed.dtype
        assert np.array_equal(out, packed)

    @given(st.data(),
           st.sampled_from([RGB888, RGB565, RGB332, BE565, BE888]),
           st.sampled_from([RRE, HEXTILE]),
           st.sampled_from([15, 16, 17, 31, 32, 33, 47, 48]),
           st.sampled_from([15, 16, 17, 31, 32, 33]))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_at_tile_boundaries(self, data, fmt, encoding,
                                          width, height):
        """The batched tile pipeline must be exact on edge tiles, in both
        byte orders, at every size straddling the 16-pixel grid."""
        seed = data.draw(st.integers(0, 2**31))
        palette_size = data.draw(st.integers(1, 5))
        rng = np.random.default_rng(seed)
        palette = rng.integers(0, 256, size=(palette_size, 3),
                               dtype=np.uint8)
        rgb = palette[rng.integers(0, palette_size, size=(height, width))]
        packed = fmt.pack_array(rgb)
        payload = encode_rect(EncoderState(fmt), packed, encoding)
        out = decode_rect(DecoderState(fmt), Cursor(payload), width, height,
                          encoding)
        assert out.dtype == packed.dtype
        assert np.array_equal(out, packed)

    @given(st.data(),
           st.sampled_from([RGB888, RGB565, RGB332, BE565, BE888]),
           st.sampled_from([1, 7, 63, 64, 65, 127, 128, 130]),
           st.sampled_from([1, 63, 64, 65, 129]),
           st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_zrle_roundtrip_at_tile_boundaries(self, data, fmt, width,
                                               height, rle):
        """Every ZRLE subencoding, at sizes straddling the 64-pixel grid,
        in both byte orders.  Palette size drives the subencoding choice:
        1 colour -> solid, few -> packed palette / palette RLE, many ->
        plain RLE or raw."""
        seed = data.draw(st.integers(0, 2**31))
        palette_size = data.draw(st.sampled_from([1, 2, 3, 5, 17, 64]))
        rng = np.random.default_rng(seed)
        palette = rng.integers(0, 256, size=(palette_size, 3),
                               dtype=np.uint8)
        rgb = palette[rng.integers(0, palette_size, size=(height, width))]
        packed = fmt.pack_array(rgb)
        state = EncoderState(fmt, use_cache=False, tier=1 if rle else 0)
        payload = encode_rect(state, packed, ZRLE)
        out = decode_rect(DecoderState(fmt), Cursor(payload), width, height,
                          ZRLE)
        assert out.dtype == packed.dtype
        assert np.array_equal(out, packed)

    @given(st.data(), formats)
    @settings(max_examples=30, deadline=None)
    def test_hextile_never_catastrophically_larger(self, data, fmt):
        packed = data.draw(packed_arrays(fmt))
        state = EncoderState(fmt)
        raw = encode_rect(state, packed, RAW)
        hextile = encode_rect(state, packed, HEXTILE)
        n_tiles = ((packed.shape[0] + 15) // 16) * ((packed.shape[1] + 15) // 16)
        assert len(hextile) <= len(raw) + n_tiles


class TestEncodeCacheRoundTrip:
    """The content-keyed encode cache must be invisible on the wire."""

    @given(st.data(), formats, codecs)
    @settings(max_examples=60, deadline=None)
    def test_cached_and_fresh_payloads_decode_identically(self, data, fmt,
                                                          encoding):
        packed = data.draw(packed_arrays(fmt))
        cached_state = EncoderState(fmt)
        fresh_state = EncoderState(fmt, use_cache=False)
        assert fresh_state.cache is None
        first = encode_rect(cached_state, packed, encoding)
        second = encode_rect(cached_state, packed.copy(), encoding)
        fresh = encode_rect(fresh_state, packed, encoding)
        if encoding not in STATEFUL_ENCODINGS:
            # second encode is a cache hit and byte-identical to both
            assert cached_state.cache.hits >= 1
            assert second == first == fresh
        height, width = packed.shape
        dec_state = DecoderState(fmt)
        for payload in (first, second):
            out = decode_rect(dec_state, Cursor(payload), width, height,
                              encoding)
            assert np.array_equal(out, packed)
        fresh_out = decode_rect(DecoderState(fmt), Cursor(fresh), width,
                                height, encoding)
        assert np.array_equal(fresh_out, packed)

    @given(st.data(), formats, st.sampled_from([RAW, RRE, HEXTILE]))
    @settings(max_examples=30, deadline=None)
    def test_cache_distinguishes_content(self, data, fmt, encoding):
        packed = data.draw(packed_arrays(fmt))
        state = EncoderState(fmt)
        encode_rect(state, packed, encoding)
        flipped = packed.copy()
        flipped[0, 0] = flipped[0, 0] ^ 1  # one-pixel change
        payload = encode_rect(state, flipped, encoding)
        out = decode_rect(DecoderState(fmt), Cursor(payload),
                          packed.shape[1], packed.shape[0], encoding)
        assert np.array_equal(out, flipped)

    @given(st.data(), st.sampled_from([RAW, RRE, HEXTILE]))
    @settings(max_examples=20, deadline=None)
    def test_cache_distinguishes_pixel_formats(self, data, encoding):
        # same pixel *bytes* under two formats must not share cache entries
        packed = data.draw(packed_arrays(RGB565))
        state = EncoderState(RGB565)
        first = encode_rect(state, packed, encoding)
        state.reset_pixel_format(RGB332)
        key_565 = (encoding, RGB565, packed.shape)
        key_332 = (encoding, RGB332, packed.shape)
        assert state.cache_key(packed, encoding)[:3] == key_332 != key_565
        out = decode_rect(DecoderState(RGB565), Cursor(first),
                          packed.shape[1], packed.shape[0], encoding)
        assert np.array_equal(out, packed)


client_messages = st.one_of(
    st.builds(KeyEvent, down=st.booleans(),
              keysym=st.integers(0x20, 0xFFFF)),
    st.builds(PointerEvent, buttons=st.integers(0, 255),
              x=st.integers(0, 65535), y=st.integers(0, 65535)),
    st.builds(
        FramebufferUpdateRequest,
        incremental=st.booleans(),
        rect=st.builds(Rect, x=st.integers(0, 1000), y=st.integers(0, 1000),
                       w=st.integers(0, 2000), h=st.integers(0, 2000)),
    ),
    st.builds(SetEncodings,
              encodings=st.tuples(st.sampled_from([RAW, RRE, HEXTILE, ZLIB]))),
    st.builds(ClientCutText, text=st.text(
        alphabet=st.characters(min_codepoint=0x20, max_codepoint=0xFF),
        max_size=40)),
)


class TestStreamDecoding:
    @given(st.data(), st.integers(1, 17))
    @settings(max_examples=40, deadline=None)
    def test_zrle_stream_split_point_invariance(self, data, chunk):
        """A sequence of ZRLE updates must decode identically no matter
        where the transport fragments the byte stream: the persistent
        inflater sees each compressed byte exactly once even when the
        message parser retries on NeedMore."""
        fmt = RGB888
        enc_state = EncoderState(fmt, use_cache=False)
        frames = []
        stream = bytearray()
        for _ in range(data.draw(st.integers(1, 4))):
            packed = data.draw(packed_arrays(fmt))
            h, w = packed.shape
            update = FramebufferUpdate(
                (RectUpdate(Rect(0, 0, w, h), ZRLE, packed),))
            stream.extend(update.encode(enc_state))
            frames.append(packed)
        decoder = ServerMessageDecoder(DecoderState(fmt))
        decoded = []
        for i in range(0, len(stream), chunk):
            for message in decoder.feed(bytes(stream[i:i + chunk])):
                decoded.append(message.rects[0].payload)
        assert len(decoded) == len(frames)
        for out, packed in zip(decoded, frames):
            assert np.array_equal(out, packed)


    @given(st.lists(client_messages, max_size=12), st.integers(1, 17))
    @settings(max_examples=60, deadline=None)
    def test_any_fragmentation_reassembles(self, messages, chunk):
        stream = b"".join(m.encode() for m in messages)
        decoder = ClientMessageDecoder()
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[i:i + chunk]))
        assert out == messages
        assert decoder.buffered_bytes == 0

"""Property tests: transport/decoder contracts hold under injected faults.

The split-point-invariance properties in ``test_transport_props`` prove
the decoders against arbitrary *benign* re-segmentation.  These push the
same contracts through the fault-injection harness: a hostile kernel
(random EINTR/partial writes via the shared :class:`HostileSocket` shim)
stacked with *scheduled* faults (:class:`FaultySocket` one-shot errnos,
seeded partial writes) must still deliver every byte in order, and the
frame/decoder layers above must reproduce exactly the sent messages —
the kernel-level faults are just another re-segmentation.  Frame-level
faults (:class:`FaultyTransport` drop/duplicate/delay) on a framed leg
must never corrupt framing: every received frame is a sent frame.
"""

import errno
import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphics import RGB565, RGB888, Rect
from repro.net import (
    FaultPlan,
    FaultyTransport,
    LOOPBACK,
    inject_socket_faults,
    make_socket_transport_pair,
    make_transport_pair,
)
from repro.net.framing import FrameAssembler, encode_frame
from repro.uip import (
    DecoderState,
    EncoderState,
    HEXTILE,
    RAW,
    RRE,
    ServerMessageDecoder,
    ZLIB,
)
from repro.uip.messages import FramebufferUpdate, RectUpdate
from repro.util import Scheduler

from tests.helpers import HostileSocket


def hostile_faulted_pair(seed, offsets):
    """A socket transport pair: side a gets the hostile kernel *and* a
    scheduled fault plan; side b gets the hostile kernel."""
    sched = Scheduler()
    pair = make_socket_transport_pair(sched)
    rng = random.Random(seed)
    pair.a._sock = HostileSocket(pair.a._sock, rng)
    pair.b._sock = HostileSocket(pair.b._sock, rng)
    plan = FaultPlan(seed=seed, partial=0.5)
    for offset in offsets:
        plan.errno_at(offset, errno.EINTR)
        plan.errno_at(offset, errno.EINTR, side="recv")
    inject_socket_faults(pair.a, plan)
    inject_socket_faults(pair.b, plan)
    return sched, pair


@given(payloads=st.lists(st.binary(min_size=0, max_size=5000),
                         min_size=1, max_size=8),
       seed=st.integers(0, 2**32 - 1),
       offsets=st.lists(st.integers(0, 20_000), max_size=4))
@settings(max_examples=25, deadline=None)
def test_framed_stream_survives_stacked_kernel_faults(payloads, seed,
                                                      offsets):
    sched, pair = hostile_faulted_pair(seed, offsets)
    assembler = FrameAssembler()
    got = []
    pair.b.on_receive = lambda data: got.extend(assembler.feed(bytes(data)))
    for payload in payloads:
        pair.a.send(encode_frame(payload))
    sched.run_until_idle()
    assert got == payloads
    assert assembler.buffered_bytes == 0
    assert pair.a.queued_bytes == 0, "all credit must come back"


@st.composite
def update_streams(draw):
    """(pixel format, [FramebufferUpdate]) small pixel-rect updates."""
    fmt = draw(st.sampled_from([RGB888, RGB565]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    messages = []
    for _ in range(draw(st.integers(1, 4))):
        rects = []
        for _ in range(draw(st.integers(1, 3))):
            w, h = draw(st.integers(1, 10)), draw(st.integers(1, 10))
            x, y = draw(st.integers(0, 30)), draw(st.integers(0, 30))
            packed = rng.integers(0, 4, size=(h, w)).astype(fmt.dtype)
            encoding = draw(st.sampled_from([RAW, RRE, HEXTILE, ZLIB]))
            rects.append(RectUpdate(Rect(x, y, w, h), encoding, packed))
        messages.append(FramebufferUpdate(tuple(rects)))
    return fmt, messages


def _rects_equal(a, b):
    if a.rect != b.rect or a.encoding != b.encoding:
        return False
    return np.array_equal(a.payload, b.payload)


@given(stream=update_streams(),
       seed=st.integers(0, 2**32 - 1),
       offsets=st.lists(st.integers(0, 50_000), max_size=3))
@settings(max_examples=20, deadline=None)
def test_uip_stream_decodes_identically_under_kernel_faults(stream, seed,
                                                            offsets):
    """Kernel faults are just another re-segmentation of the UIP byte
    stream: the server decoder must yield exactly the sent updates."""
    fmt, messages = stream
    sched, pair = hostile_faulted_pair(seed, offsets)
    encoder = EncoderState(fmt)
    decoder = ServerMessageDecoder(DecoderState(fmt))
    decoded = []
    pair.b.on_receive = lambda data: decoded.extend(decoder.feed(bytes(data)))
    for message in messages:
        pair.a.send(message.encode(encoder))
    sched.run_until_idle()
    assert len(decoded) == len(messages)
    for got, want in zip(decoded, messages):
        assert len(got.rects) == len(want.rects)
        assert all(_rects_equal(g, w)
                   for g, w in zip(got.rects, want.rects))
    assert decoder.buffered_bytes == 0


@given(payloads=st.lists(st.binary(min_size=0, max_size=300),
                         min_size=1, max_size=20),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_frame_faults_never_corrupt_framing(payloads, seed):
    """Drop/duplicate/delay on a framed leg: every frame that arrives is
    a frame that was sent (whole, uncorrupted), the assembler ends
    aligned, and the counters explain the arithmetic exactly."""
    plan = FaultPlan(seed=seed, drop=0.25, duplicate=0.25, delay=0.25,
                     delay_s=0.01)
    sched = Scheduler()
    pair = make_transport_pair(sched, LOOPBACK, name="leg", kind="pipe")
    faulty = FaultyTransport(pair.a, plan, sched)
    assembler = FrameAssembler()
    got = []
    pair.b.on_receive = lambda data: got.extend(assembler.feed(bytes(data)))
    # tag payloads so identical binaries stay distinguishable
    tagged = [i.to_bytes(4, "big") + p for i, p in enumerate(payloads)]
    for frame in tagged:
        faulty.send(encode_frame(frame))
    sched.run_until_idle()
    sent = set(tagged)
    assert all(frame in sent for frame in got)
    assert len(got) == (len(tagged) - faulty.frames_dropped
                        + faulty.frames_duplicated)
    assert assembler.buffered_bytes == 0


@given(payload=st.binary(min_size=2, max_size=400),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_truncation_yields_no_phantom_frames(payload, seed):
    """A truncated frame models corruption: the assembler may buffer the
    torso forever, but it must never hallucinate a complete frame."""
    plan = FaultPlan(seed=seed, truncate=1.0)
    sched = Scheduler()
    pair = make_transport_pair(sched, LOOPBACK, name="leg", kind="pipe")
    faulty = FaultyTransport(pair.a, plan, sched)
    assembler = FrameAssembler()
    got = []
    pair.b.on_receive = lambda data: got.extend(assembler.feed(bytes(data)))
    faulty.send(encode_frame(payload))
    sched.run_until_idle()
    assert got == []
    assert faulty.frames_truncated == 1

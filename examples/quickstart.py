#!/usr/bin/env python3
"""Quickstart: a TV, a PDA, and universal interaction between them.

Builds a one-appliance home, connects a PDA, turns the TV on by tapping
its on-screen power toggle *through the universal interaction pipeline*
(PDA touch -> input plug-in -> universal pointer event -> UniInt server ->
window system -> widget -> HAVi command -> TV), and saves screenshots of
both the application framebuffer and the PDA's dithered 4-grey screen.

Run:  python examples/quickstart.py
"""

import os

from repro import Home
from repro.appliances import Television
from repro.devices import Pda
from repro.graphics import ops
from repro.havi import FcmType

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)

    # 1. Assemble the home and plug in a TV.
    home = Home(width=480, height=360)
    tv = home.add_appliance(Television("Living Room TV"))
    home.settle()
    print(f"appliances discovered: "
          f"{[a.name for a in home.app.appliances]}")

    # 2. Connect a PDA; the context manager selects it for both roles.
    pda = Pda("my-pda", home.scheduler)
    home.add_device(pda)
    home.settle()
    print(f"selected input:  {home.proxy.current_input}")
    print(f"selected output: {home.proxy.current_output}")
    print(f"PDA screen: {pda.screen_image.width}x"
          f"{pda.screen_image.height} {pda.screen_image.format}, "
          f"{len(pda.screen_image.data)} bytes/frame")

    # 3. Tap the TV's power toggle on the PDA (through the view transform).
    tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
    print(f"\nTV power before tap: {tuner.get_state('power')}")
    power = home.window.root.find(f"{tv.guid[:8]}.tuner.power")
    cx, cy = power.abs_rect().center
    dx, dy = home.session.context.view.to_device(cx, cy)
    pda.tap(dx, dy)
    home.settle()
    print(f"TV power after tap:  {tuner.get_state('power')}")

    # 4. Surf up two channels with two more taps on CH+.
    ch_up = home.window.root.find(f"{tv.guid[:8]}.tuner.ch-up")
    cx, cy = ch_up.abs_rect().center
    dx, dy = home.session.context.view.to_device(cx, cy)
    pda.tap(dx, dy)
    pda.tap(dx, dy)
    home.settle()
    print(f"TV channel now: {tuner.get_state('channel')} "
          f"({tuner.get_state('station')})")

    # 5. Screenshots: the app framebuffer and the PDA's dithered screen.
    shot = home.screenshot().bitmap
    shot.save_ppm(os.path.join(OUT_DIR, "quickstart_app.ppm"))
    ops.gray_bitmap(pda.screen_luma()).save_ppm(
        os.path.join(OUT_DIR, "quickstart_pda.ppm"))
    print(f"\nscreenshots written to {OUT_DIR}/")
    print(f"simulated time elapsed: {home.scheduler.now():.3f}s")
    print(f"bytes over the PDA link: {pda.link_stats.bytes_received} down, "
          f"{pda.link_stats.bytes_sent} up")


if __name__ == "__main__":
    main()

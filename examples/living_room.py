#!/usr/bin/env python3
"""The living-room scenario: composed GUIs and the TV as output device.

The paper's §2.2 example: the application shows the TV panel when only the
TV is on the network, and *composes* a TV + VCR GUI when the VCR hotplugs.
The user sits on the sofa with the IR remote; the GUI is displayed on the
television panel itself (TV as output interaction device).

Run:  python examples/living_room.py
"""

import os

from repro import Home
from repro.appliances import Television, VideoRecorder
from repro.context import UserSituation
from repro.devices import RemoteControl, TvDisplay
from repro.havi import FcmType

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)

    home = Home(width=480, height=360)
    tv = home.add_appliance(Television("TV"))
    home.settle()

    remote = RemoteControl("sofa-remote", home.scheduler)
    panel = TvDisplay("tv-panel", home.scheduler)
    home.add_device(remote)
    home.add_device(panel)
    home.context.set_situation(UserSituation.on_the_sofa())
    home.settle()
    print(f"on the sofa: input={home.proxy.current_input!r} "
          f"output={home.proxy.current_output!r}")
    print(f"UI root: single panel for {home.app.appliances[0].name!r}")

    # power the TV on from the remote (first focused widget = power toggle)
    remote.press("ok")
    home.settle()
    tuner = tv.dcm.fcm_by_type(FcmType.TUNER)
    print(f"TV power: {tuner.get_state('power')}")
    home.screenshot().bitmap.save_ppm(
        os.path.join(OUT_DIR, "living_room_tv_only.ppm"))

    # -- the VCR arrives: composed GUI ----------------------------------------
    print("\nPlugging the VCR into the home bus...")
    vcr = home.add_appliance(VideoRecorder("VCR"))
    home.settle()
    tabs = home.window.root
    print(f"composed GUI tabs: {tabs.titles}")
    assert sorted(tabs.titles) == ["TV", "VCR"]

    # navigate to the VCR tab with the remote and start playback
    remote.press("right")      # tab panel has focus: switch to VCR tab
    home.settle()
    print(f"active tab: {tabs.titles[tabs.active]!r}")
    remote.press("next")       # focus the deck power toggle
    remote.press("ok")         # power on
    home.settle()
    deck = vcr.dcm.fcm_by_type(FcmType.VCR)
    print(f"VCR power: {deck.get_state('power')}")

    # walk focus to the PLAY button and press it
    for _ in range(10):
        focused = home.window.focus
        if focused is not None and (focused.widget_id or "").endswith(
                ".play"):
            break
        remote.press("next")
        home.settle()
    remote.press("ok")
    home.settle()
    print(f"VCR transport: {deck.get_state('transport')}")

    # let the tape roll for half a minute of simulated time
    home.run_for(30.0)
    counter = deck.invoke_local("counter.get")["counter"]
    home.settle()
    print(f"tape counter after 30s: {counter}")

    home.screenshot().bitmap.save_ppm(
        os.path.join(OUT_DIR, "living_room_composed.ppm"))

    # the TV panel (as an output device) received every frame
    print(f"\nframes pushed to the TV panel: {panel.frames_received}")
    print(f"bytes over the panel link: "
          f"{panel.link_stats.bytes_received}")

    # -- the VCR leaves again ---------------------------------------------------
    print("\nUnplugging the VCR...")
    home.remove_appliance("VCR")
    home.settle()
    print(f"UI is back to a single panel: "
          f"{home.app.appliances[0].name!r} only")


if __name__ == "__main__":
    main()

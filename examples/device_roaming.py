#!/usr/bin/env python3
"""Device roaming: the interface follows the user around the house.

The paper positions universal interaction as the moving-desktop idea
(Harter et al.'s context-aware teleporting) generalised to appliances: as
the user walks from room to room, the context manager re-targets the same
session to whatever devices are at hand.  The appliance application never
notices; appliance state carries over seamlessly.

Run:  python examples/device_roaming.py
"""

from repro import Home
from repro.appliances import AirConditioner, Television
from repro.context import Activity, UserSituation
from repro.devices import (
    CellPhone,
    Pda,
    RemoteControl,
    TvDisplay,
    VoiceInput,
    WallDisplay,
)
from repro.havi import FcmType


def show(home: Home, where: str) -> None:
    print(f"  {where:<22} -> input={home.proxy.current_input!r:>14} "
          f"output={home.proxy.current_output!r}")


def main() -> None:
    home = Home(width=480, height=360)
    ac = home.add_appliance(AirConditioner("Bedroom AC"))
    home.add_appliance(Television("TV"))
    home.settle()

    # the full device fleet of this home
    for device in (
        CellPhone("keitai", home.scheduler),
        Pda("pda", home.scheduler),
        VoiceInput("mic", home.scheduler),
        RemoteControl("sofa-remote", home.scheduler),
        TvDisplay("tv-panel", home.scheduler),
        WallDisplay("kitchen-wall", home.scheduler),
    ):
        home.add_device(device, reselect=False)

    print("A day of moving through the house:\n")

    tour = [
        ("sofa, watching TV", UserSituation.on_the_sofa()),
        ("kitchen, cooking", UserSituation.cooking()),
        ("bedroom, reading", UserSituation(location="bedroom",
                                           activity=Activity.READING,
                                           seated=True)),
        ("office, working", UserSituation(location="office",
                                          activity=Activity.WORKING,
                                          seated=True)),
        ("heading outside", UserSituation(location="outside")),
    ]
    for where, situation in tour:
        home.context.set_situation(situation)
        home.settle()
        show(home, where)

    print(f"\ntotal device switches: {home.context.switch_count}")
    print(f"proxy session survived all of them: "
          f"switch_count={home.session.switch_count}, "
          f"still connected={home.session.upstream.ready}")

    # prove state continuity: set the AC from the bedroom, check from outside
    print("\nState continuity across roaming:")
    home.context.set_situation(UserSituation(location="bedroom"))
    home.settle()
    fcm = ac.dcm.fcm_by_type(FcmType.AIRCON)
    fcm.invoke_local("power.set", {"on": True})
    fcm.invoke_local("temp.set", {"temp": 21})
    home.settle()
    home.context.set_situation(UserSituation(location="outside"))
    home.settle()
    print(f"  set from the bedroom: target="
          f"{fcm.get_state('target_temp')}C")
    print(f"  still visible from outside on "
          f"{home.proxy.current_output!r}: power={fcm.get_state('power')}")
    home.run_for(1800.0)
    print(f"  room temperature after 30 simulated minutes: "
          f"{fcm.room_temp():.1f}C")

    print("\nSwitch history:")
    for record in home.context.history:
        if record.changed:
            print(f"  t={record.time:8.3f}s  "
                  f"{record.situation.location:<12} "
                  f"in={record.input_device!r:>16} "
                  f"out={record.output_device!r}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Watch a tape: HAVi streams + DDI + universal interaction together.

The full home-theatre flow the HAVi substrate enables:

1. the stream manager routes the VCR's video output into the TV's display
   input (the TV retunes itself to the VCR),
2. the tape is started *through the universal interaction pipeline* from
   the sofa remote,
3. a DDI controller (a native HAVi client, e.g. a vendor remote app)
   watches the same appliances semantically and sees every change,
4. the whole session is recorded by an event trace, and "what the TV
   panel shows" is rendered as ASCII art.

Run:  python examples/watch_tape.py
"""

from repro import Home
from repro.appliances import Television, VideoRecorder
from repro.context import UserSituation
from repro.devices import RemoteControl, TvDisplay
from repro.havi import FcmType, SEID
from repro.havi.ddi import DdiController, render_text, build_tree
from repro.tools import EventTrace, bitmap_to_ascii
from repro.util.ids import guid_from_seed


def main() -> None:
    home = Home(width=480, height=360)
    trace = EventTrace().attach(home, event_prefix="stream.")
    tv = home.add_appliance(Television("TV"))
    vcr = home.add_appliance(VideoRecorder("VCR"))
    home.settle()

    remote = RemoteControl("sofa-remote", home.scheduler)
    panel = TvDisplay("tv-panel", home.scheduler)
    home.add_device(remote)
    home.add_device(panel)
    home.context.set_situation(UserSituation.on_the_sofa())
    home.settle()

    display = tv.dcm.fcm_by_type(FcmType.DISPLAY)
    deck = vcr.dcm.fcm_by_type(FcmType.VCR)

    # -- 1. route the stream ------------------------------------------------
    print("Connecting VCR video-out -> TV video-in via the stream manager")
    connection = home.network.streams.connect(
        deck.seid, "video-out", display.seid, "video-in")
    home.settle()
    print(f"  connection #{connection.connection_id}; "
          f"TV source is now {display.get_state('source')!r}")

    # -- 2. roll the tape from the sofa ---------------------------------------
    print("\nStarting playback from the sofa remote (universal events):")
    home.app.show_appliance("VCR")
    home.settle()
    remote.press("next")   # focus the deck power toggle
    remote.press("ok")     # power on
    home.settle()
    # walk to PLAY and press it
    for _ in range(10):
        focused = home.window.focus
        if focused is not None and (focused.widget_id or "").endswith(
                ".play"):
            break
        remote.press("next")
        home.settle()
    remote.press("ok")
    home.settle()
    print(f"  deck transport: {deck.get_state('transport')}")

    # -- 3. a native DDI client watches the same state -------------------------
    controller = DdiController(SEID(guid_from_seed("vendor-app"), 0),
                               home.network.messaging, home.network.events)
    controller.attach()
    server = home.network.dcm_manager.ddi_server_for(vcr.guid)
    controller.open(server.seid)
    changes = []
    controller.on_changed = lambda eid, value: changes.append((eid, value))
    home.run_for(30.0)          # half a minute of tape rolls by
    deck.invoke_local("counter.get")
    home.settle()
    print(f"\nDDI controller saw {len(changes)} change(s); "
          f"cached counter = "
          f"{controller.tree.find('1:counter').value}")
    print("DDI text rendering of the VCR (as a vendor app would show it):")
    for line in render_text(build_tree(vcr.dcm))[:8]:
        print(f"    {line}")

    # -- 4. what the TV panel shows ------------------------------------------------
    print("\nThe TV panel (output device), as ASCII art:")
    home.screenshot()
    print(bitmap_to_ascii(home.window.bitmap, width=64))

    print("\nStream events recorded by the trace:")
    print(trace.format() or "  (none)")

    # tidy up: stop the deck, tear the stream down
    deck.invoke_local("transport.stop")
    home.network.streams.disconnect(connection.connection_id)
    home.settle()
    print(f"\nafter disconnect, TV source: {display.get_state('source')!r}")


if __name__ == "__main__":
    main()

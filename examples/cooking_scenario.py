#!/usr/bin/env python3
"""The paper's motivating scenario (§1): cooking hands-free.

"if a user is cooking a dish, s/he likes to control appliances via voices,
but if s/he is watching TV on a sofa, a remote controller may be better."

A resident starts in the living room controlling the microwave and lights
from their phone.  They start cooking — hands busy, eyes on the pan — and
the context manager switches input to the voice device and output to the
kitchen wall display, *mid-session*, without restarting anything.  The
resident then drives the microwave entirely by voice.

Run:  python examples/cooking_scenario.py
"""

import os

from repro import Home
from repro.appliances import DimmableLight, MicrowaveOven
from repro.context import UserSituation
from repro.devices import CellPhone, VoiceInput, WallDisplay
from repro.havi import FcmType

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def show_selection(home: "Home", moment: str) -> None:
    print(f"  [{moment}] input={home.proxy.current_input!r} "
          f"output={home.proxy.current_output!r}")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)

    home = Home(width=480, height=360)
    oven = home.add_appliance(MicrowaveOven("Microwave"))
    home.add_appliance(DimmableLight("Kitchen Light"))
    home.settle()

    phone = CellPhone("keitai", home.scheduler)
    voice = VoiceInput("headset-mic", home.scheduler, accuracy=0.98)
    wall = WallDisplay("kitchen-wall", home.scheduler)
    for device in (phone, voice, wall):
        home.add_device(device)

    print("Evening at home.  Devices available: "
          f"{[d.device_id for d in home.proxy.list_devices()]}")

    # -- scene 1: relaxing, phone in hand ---------------------------------
    home.context.set_situation(UserSituation())
    home.settle()
    show_selection(home, "idle in living room")

    # bring up the microwave tab and add a minute via the phone keypad
    home.app.show_appliance("Microwave")
    home.settle()

    # -- scene 2: cooking starts ------------------------------------------
    print("\nThe resident starts cooking; both hands are busy.")
    record = home.context.set_situation(UserSituation.cooking())
    home.settle()
    show_selection(home, "cooking")
    assert home.proxy.current_input == "headset-mic"
    assert home.proxy.current_output == "kitchen-wall"
    print(f"  switch was recorded at t={record.time:.4f}s "
          f"(session switches so far: {home.session.switch_count})")

    # -- scene 3: drive the microwave by voice ----------------------------
    # The composed UI is focus-navigable: "next" hops widgets, "select"
    # activates.  Walk to +1m, press it twice, then walk to Start.
    print("\nVoice-driving the microwave: two minutes, then start.")
    fcm = oven.dcm.fcm_by_type(FcmType.MICROWAVE)

    def focused_id() -> str:
        widget = home.window.focus
        return widget.widget_id or type(widget).__name__

    # focus starts on the first widget of the active tab
    for _ in range(12):  # find the +1m button
        if (home.window.focus is not None
                and (home.window.focus.widget_id or "").endswith("add60")):
            break
        voice.say("next")
        home.settle()
    print(f"  focus: {focused_id()}")
    voice.say("select")
    voice.say("select")  # 2 x (+1m)
    home.settle()

    for _ in range(12):  # find Start
        if (home.window.focus is not None
                and (home.window.focus.widget_id or "").endswith("start")):
            break
        voice.say("next")
        home.settle()
    print(f"  focus: {focused_id()}")
    dings = []
    home.on_bell = lambda event: dings.append(event)
    voice.say("select")
    home.run_for(10.0)  # ten seconds into the cook

    remaining = fcm.invoke_local("timer.remaining")
    print(f"  microwave running={fcm.get_state('running')} "
          f"remaining={remaining['remaining_s']}s")

    # snapshot of the kitchen wall display mid-cook
    home.screenshot().bitmap.save_ppm(
        os.path.join(OUT_DIR, "cooking_wall_display.ppm"))

    # -- scene 4: dinner is ready -------------------------------------------
    home.settle()  # fast-forward the virtual clock through the cook
    print(f"\n*ding* x{len(dings)} — cook_count="
          f"{fcm.get_state('cook_count')}, "
          f"t={home.scheduler.now():.1f}s simulated")
    print(f"the wall display beeped too: "
          f"bells_received={wall.bells_received}")
    print(f"voice utterances: {voice.utterances} "
          f"(misrecognised: {voice.misrecognitions})")


if __name__ == "__main__":
    main()

"""UniInt server implementation.

Update pipeline (the damage-tracking fast path):

1. ``DisplayServer`` accumulates draw damage and hands back a *coalesced*
   region per composite — adjacent fragments fused, fragmentation capped.
2. Each session clips + coalesces its pending damage and packs pixels via a
   server-wide pack cache, so N sessions sharing a pixel format pack each
   damaged rect once per frame.
3. Whole ``FramebufferUpdate`` payloads for stateless encodings are encoded
   once per (pixel format, rect list) per frame and the encoded *chunk
   list* fanned out to every session with that configuration
   (*shared-encode broadcast*) — transports take the list vectored, so the
   update is never concatenated.  ZLIB sessions keep per-session streams
   and skip the shared path.
4. Sessions honour transport credit (*backpressure*): while a slow link
   is saturated past its bandwidth-delay-derived watermark, new damage is
   folded back into the session's pending region instead of queueing a
   stale update, and one merged freshest update goes out when the link
   drains (``on_writable``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphics.differ import TileDiffer
from repro.graphics.pixelformat import RGB888, PixelFormat
from repro.graphics.region import Rect, Region
from repro.net.transport import Transport
from repro.uip import encodings as enc
from repro.uip.handshake import ServerHandshake
from repro.uip.messages import (
    Bell,
    ClientCutText,
    ClientMessageDecoder,
    FramebufferUpdate,
    FramebufferUpdateRequest,
    KeyEvent,
    PointerEvent,
    RectUpdate,
    SetEncodings,
    SetPixelFormat,
)
from repro.util.scheduler import Scheduler
from repro.windows.server import DisplayServer

#: Encodings the server can produce, in its own preference order.
SUPPORTED_ENCODINGS = (enc.HEXTILE, enc.ZLIB, enc.RRE, enc.RAW)

#: Encodings whose payload depends only on (pixel format, pixels) — safe to
#: encode once and broadcast to every session with the same configuration.
SHAREABLE_ENCODINGS = frozenset(
    (enc.RAW, enc.RRE, enc.HEXTILE, enc.DESKTOP_SIZE))


class ServerSession:
    """One connected UIP client (normally a UniInt proxy)."""

    def __init__(self, server: "UniIntServer", endpoint: Transport,
                 session_id: int) -> None:
        self.server = server
        self.endpoint = endpoint
        self.session_id = session_id
        display = server.display
        self._handshake = ServerHandshake(
            display.framebuffer.width, display.framebuffer.height,
            RGB888, server.name, secret=server.secret)
        self.pixel_format: PixelFormat = RGB888
        self._encoder = enc.EncoderState(RGB888)
        self.encodings: tuple[int, ...] = (enc.RAW,)
        self._decoder = ClientMessageDecoder()
        self._pending = Region()
        self._update_requested = False
        self._known_size = display.framebuffer.size
        self.closed = False
        # statistics for the bandwidth experiments (E7)
        self.updates_sent = 0
        self.rects_sent = 0
        self.key_events = 0
        self.pointer_events = 0
        # backpressure statistics (bench_backpressure): sends withheld
        # because the link was saturated, and the raw-equivalent bytes of
        # the damage folded back into ``_pending`` at each withholding.
        self.updates_coalesced = 0
        self.bytes_suppressed = 0
        endpoint.on_receive = self._on_bytes
        endpoint.on_close = self._on_close
        endpoint.on_writable = self._on_writable
        self._flush_handshake()

    # -- connection plumbing ----------------------------------------------------

    def _flush_handshake(self) -> None:
        out = self._handshake.outgoing()
        if out and self.endpoint.is_open:
            self.endpoint.send(out)

    def _on_bytes(self, data: bytes) -> None:
        if self.closed:
            return
        if not self._handshake.done:
            if self._handshake.failed is not None:
                self.close()
                return
            self._handshake.feed(data)
            self._flush_handshake()
            if self._handshake.failed is not None:
                self.close()
                return
            if self._handshake.done:
                # everything changed is dirty for a new client
                self._pending.add(self.server.display.framebuffer.bounds)
                data = self._handshake.leftover()
                if not data:
                    return
            else:
                return
        for message in self._decoder.feed(data):
            self._handle(message)

    def _on_close(self) -> None:
        self.closed = True
        self.server._drop_session(self)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.endpoint.close()
        self.server._drop_session(self)

    @property
    def ready(self) -> bool:
        return self._handshake.done and not self.closed

    # -- client messages -----------------------------------------------------------

    def _handle(self, message) -> None:
        if isinstance(message, SetPixelFormat):
            self.pixel_format = message.pixel_format
            # Keep the encoder (and its content-keyed cache: keys include
            # the pixel format, so nothing stale can hit); only the
            # position-dependent zlib stream must restart.
            self._encoder.renegotiate(message.pixel_format)
            self._pending.add(self.server.display.framebuffer.bounds)
        elif isinstance(message, SetEncodings):
            wanted = [e for e in message.encodings
                      if e in SUPPORTED_ENCODINGS or e == enc.DESKTOP_SIZE]
            self.encodings = tuple(wanted) if wanted else (enc.RAW,)
        elif isinstance(message, FramebufferUpdateRequest):
            if not message.incremental:
                self._pending.add(message.rect.intersect(
                    self.server.display.framebuffer.bounds))
            self._update_requested = True
            self.server._composite_and_distribute()
            self._try_send()
        elif isinstance(message, KeyEvent):
            self.key_events += 1
            self.server.display.inject_key(message.keysym, message.down)
            self.server._composite_and_distribute()
            self._try_send()
        elif isinstance(message, PointerEvent):
            self.pointer_events += 1
            self.server.display.inject_pointer(message.x, message.y,
                                               message.buttons)
            self.server._composite_and_distribute()
            self._try_send()
        elif isinstance(message, ClientCutText):
            pass  # clipboard is accepted and ignored
        else:  # pragma: no cover - decoder only yields the types above
            raise AssertionError(f"unexpected message {message!r}")

    # -- update generation ------------------------------------------------------------

    def _note_damage(self, rects) -> None:
        for rect in rects:
            self._pending.add(rect)

    def _pick_encoding(self) -> int:
        for encoding in self.encodings:
            if encoding in SUPPORTED_ENCODINGS:
                return encoding
        return enc.RAW

    def _encode_rect(self, packed) -> tuple[int, object]:
        """(encoding, payload-array) for one rect, honouring adaptive mode.

        Adaptive mode trials the client's non-ZLIB pixel encodings per rect
        and keeps the smallest (ZLIB is excluded because trial encodings
        would corrupt its persistent stream).
        """
        if self.server.adaptive:
            candidates = tuple(
                e for e in self.encodings
                if e in (enc.RAW, enc.RRE, enc.HEXTILE)) or (enc.RAW,)
            return (enc.best_encoding(self._encoder, packed, candidates),
                    packed)
        return (self._pick_encoding(), packed)

    def _on_writable(self) -> None:
        """Link credit freed up: retry a send deferred by backpressure."""
        self._try_send()

    def _suppressed_estimate(self) -> int:
        """Raw-equivalent wire bytes of the currently withheld damage.

        An estimate (the real update would be encoded and smaller): the
        pixel area of the pending region at the negotiated depth, i.e.
        what one more queued stale update would roughly have cost.
        """
        return self._pending.area * self.pixel_format.bytes_per_pixel

    def _try_send(self) -> None:
        if not self.ready or not self._update_requested:
            return
        display = self.server.display
        resized = (display.framebuffer.size != self._known_size
                   and enc.DESKTOP_SIZE in self.encodings)
        if self._pending.is_empty and not resized:
            return
        if self.server.backpressure and not self.endpoint.writable:
            # The link is saturated past its credit: withhold this update
            # and leave the damage in ``_pending``, where subsequent frames
            # merge into it.  When the transport drains below its low
            # watermark, ``on_writable`` re-enters here and the client gets
            # one coalesced update with the freshest content instead of a
            # queue of stale intermediates.
            self.updates_coalesced += 1
            self.bytes_suppressed += self._suppressed_estimate()
            return
        rects: list[RectUpdate] = []
        if resized:
            width, height = display.framebuffer.size
            rects.append(RectUpdate(Rect(0, 0, width, height),
                                    enc.DESKTOP_SIZE))
            self._known_size = display.framebuffer.size
            self._pending = Region([display.framebuffer.bounds])
        bounds = display.framebuffer.bounds
        for rect in self._pending.coalesced(self.server.max_update_rects):
            clipped = rect.intersect(bounds)
            if clipped.is_empty:
                continue
            packed = self.server._packed_for(clipped, self.pixel_format)
            encoding, payload = self._encode_rect(packed)
            rects.append(RectUpdate(clipped, encoding, payload))
        self._pending = Region()
        self._update_requested = False
        if not rects:
            return
        update = FramebufferUpdate(tuple(rects))
        chunks = self.server._encode_update(self, update)
        if self.endpoint.is_open:
            self.endpoint.send(chunks)
            self.updates_sent += 1
            self.rects_sent += len(rects)


class UniIntServer:
    """Accepts UIP connections on behalf of one display server."""

    def __init__(self, display: DisplayServer, scheduler: Scheduler,
                 name: str = "home-appliances",
                 secret: Optional[str] = None,
                 adaptive: bool = False,
                 shared_encode: bool = True,
                 tile_diff: bool = True,
                 backpressure: bool = True,
                 max_update_rects: int = 16) -> None:
        self.display = display
        self.scheduler = scheduler
        self.name = name
        self.secret = secret
        #: Per-rect best-of trial encoding (ablation: see bench_ablations).
        self.adaptive = adaptive
        #: Encode each update once per (pixel format, rect list) and fan the
        #: bytes out to every session sharing that config (ablation toggle).
        self.shared_encode = shared_encode
        #: Refine composite damage to the 16x16 tiles whose pixels actually
        #: changed before distributing it (ablation toggle): geometric
        #: damage from unchanged redraws never reaches the encoders.
        self.tile_diff = tile_diff
        #: Honour transport credit (ablation toggle): saturated sessions
        #: fold new damage into their pending region instead of queueing
        #: ever-staler updates behind a slow link.
        self.backpressure = backpressure
        self._differ = TileDiffer()
        #: Fragmentation cap applied when coalescing per-session damage.
        self.max_update_rects = max_update_rects
        self.sessions: list[ServerSession] = []
        self._next_session = 1
        self._flush_scheduled = False
        # Per-frame caches, valid only for one display.frame_version: the
        # display owns the content version (anyone may call composite()
        # directly, e.g. Home.screenshot), so validity is checked lazily.
        self._cached_version = display.frame_version
        self._pack_cache: dict[tuple, object] = {}
        self._update_cache: dict[tuple, list[bytes]] = {}
        # Persistent per-(pixel format, rect) pack output buffers: the same
        # rects get damaged frame after frame (widget churn), so the pack
        # result is written into a reused scratch array instead of a fresh
        # allocation.  Entries outlive the per-frame caches above; the
        # dict is emptied wholesale when either the entry or the byte cap
        # would be exceeded (varying damage geometry must not accrete
        # full-frame-sized buffers).
        self._pack_scratch: dict[tuple, np.ndarray] = {}
        self._pack_scratch_bytes = 0
        self._pack_scratch_cap = 256
        self._pack_scratch_max_bytes = 16 * 1024 * 1024
        # statistics for the scale experiments (bench_home_scale)
        self.pack_hits = 0
        self.pack_misses = 0
        self.shared_encode_hits = 0
        self.shared_encode_misses = 0
        display.on_damage = self._schedule_flush

    # -- accepting clients ------------------------------------------------------

    def accept(self, endpoint: Transport) -> ServerSession:
        """Take ownership of a server-side endpoint; starts the handshake."""
        session = ServerSession(self, endpoint, self._next_session)
        self._next_session += 1
        self.sessions.append(session)
        return session

    def _drop_session(self, session: ServerSession) -> None:
        if session in self.sessions:
            self.sessions.remove(session)

    def ring_bell(self) -> None:
        """Send a Bell to every connected client (e.g. a microwave ding)."""
        payload = Bell().encode()
        for session in self.sessions:
            if session.ready and session.endpoint.is_open:
                session.endpoint.send(payload)

    # -- damage propagation --------------------------------------------------------

    def _schedule_flush(self) -> None:
        # coalesce bursts of damage into one composite per scheduler tick
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        self.scheduler.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        self._composite_and_distribute()
        for session in list(self.sessions):
            session._try_send()

    def _composite_and_distribute(self) -> None:
        if not self.display.has_pending_damage():
            return
        region = self.display.composite()
        if region.is_empty:
            return
        rects: list[Rect] = list(region)
        if self.tile_diff:
            rects = self._differ.refine(self.display.framebuffer, rects)
            if not rects:
                return
            if len(rects) > self.max_update_rects:
                # Tile refinement can shatter one damaged label row into
                # dozens of 16x16 shards.  The merged cover is identical
                # for every session, so coalesce once here rather than
                # letting N sessions re-merge the same shards in their
                # _try_send — per-session coalescing then only handles
                # cross-frame deferral leftovers (a multi-user home pays
                # one merge per frame, not one per resident).
                rects = Region(rects).coalesced(self.max_update_rects)
        for session in self.sessions:
            session._note_damage(rects)

    @property
    def diff_tiles_dropped(self) -> int:
        """Tiles the frame differ proved unchanged and withheld."""
        return self._differ.tiles_dropped

    @property
    def diff_tiles_checked(self) -> int:
        return self._differ.tiles_checked

    @property
    def updates_coalesced(self) -> int:
        """Sends withheld by backpressure across live sessions."""
        return sum(s.updates_coalesced for s in self.sessions)

    @property
    def bytes_suppressed(self) -> int:
        """Raw-equivalent bytes kept off saturated links (live sessions)."""
        return sum(s.bytes_suppressed for s in self.sessions)

    # -- shared-encode broadcast -----------------------------------------------

    def _sync_caches(self) -> None:
        """Drop the per-frame caches if the framebuffer content moved on."""
        if self._cached_version != self.display.frame_version:
            self._cached_version = self.display.frame_version
            self._pack_cache.clear()
            self._update_cache.clear()

    def _packed_for(self, rect: Rect, pixel_format) -> object:
        """The packed pixels of ``rect``, shared across sessions.

        Every session with the same negotiated pixel format reuses one
        ``pack_array`` result per damaged rect per frame.
        """
        self._sync_caches()
        key = (pixel_format, rect)
        packed = self._pack_cache.get(key)
        if packed is None:
            rgb = self.display.framebuffer.view(rect)  # zero-copy subarray
            packed = pixel_format.pack_array(rgb, out=self._scratch_for(key))
            self._pack_cache[key] = packed
            self.pack_misses += 1
        else:
            self.pack_hits += 1
        return packed

    def _scratch_for(self, key: tuple):
        """The persistent pack output buffer for one (format, rect) key.

        Safe to reuse across frames: packed arrays are only referenced
        within the flush that packs them (payloads leave as bytes), and
        the per-frame ``_pack_cache`` is dropped on every content change.
        """
        scratch = self._pack_scratch.get(key)
        if scratch is None:
            pixel_format, rect = key
            scratch = np.empty((rect.h, rect.w), dtype=pixel_format.dtype)
            if (len(self._pack_scratch) >= self._pack_scratch_cap
                    or (self._pack_scratch_bytes + scratch.nbytes
                        > self._pack_scratch_max_bytes)):
                self._pack_scratch.clear()
                self._pack_scratch_bytes = 0
            self._pack_scratch[key] = scratch
            self._pack_scratch_bytes += scratch.nbytes
        return scratch

    def _encode_update(self, session: ServerSession,
                       update: FramebufferUpdate) -> list[bytes]:
        """Wire chunks for ``update``, encoded once per session config.

        Returns a scatter-gather chunk list (see
        :meth:`FramebufferUpdate.encode_chunks`): the update is never
        concatenated server-side, and sessions whose rect list, encodings
        and pixel format all match share one encode — the same cached
        chunk list is handed to every such session's transport, so a
        broadcast frame is materialised zero times per extra session.  Any
        ZLIB rect forces the per-session path (its persistent stream makes
        the payload session-specific), as does disabling
        :attr:`shared_encode`.
        """
        shareable = self.shared_encode and all(
            r.encoding in SHAREABLE_ENCODINGS for r in update.rects)
        if not shareable:
            return update.encode_chunks(session._encoder)
        self._sync_caches()
        key = (session.pixel_format,
               tuple((r.rect, r.encoding) for r in update.rects))
        chunks = self._update_cache.get(key)
        if chunks is None:
            chunks = update.encode_chunks(session._encoder)
            self._update_cache[key] = chunks
            self.shared_encode_misses += 1
        else:
            self.shared_encode_hits += 1
        return chunks

"""UniInt server implementation.

Update pipeline (the damage-tracking fast path):

1. Each :class:`~repro.windows.DisplayServer` the server multiplexes is
   wrapped in a :class:`ServerSurface`.  A surface accumulates draw damage
   and hands back a *coalesced* region per composite — adjacent fragments
   fused, fragmentation capped — **once per surface per frame**, no matter
   how many sessions watch it.
2. Each session binds to exactly one surface.  It clips + coalesces its
   pending damage and packs pixels via a per-surface pack cache, so N
   sessions sharing a (surface, pixel format) pack each damaged rect once
   per frame.
3. Whole ``FramebufferUpdate`` payloads for stateless encodings are encoded
   once per (surface, pixel format, rect list) per frame and the encoded
   *chunk list* fanned out to every session with that configuration
   (*shared-encode broadcast*) — transports take the list vectored, so the
   update is never concatenated.  Sessions on different surfaces never
   share (or pay for) each other's frames; ZLIB sessions keep per-session
   streams and skip the shared path.
4. Sessions honour transport credit (*backpressure*): while a slow link
   is saturated past its bandwidth-delay-derived watermark, new damage is
   folded back into the session's pending region instead of queueing a
   stale update, and one merged freshest update goes out when the link
   drains (``on_writable``).

A server built the classic way — ``UniIntServer(display, scheduler)`` —
has a single *default surface* wrapping that display, and every legacy
entry point (``accept``, ``ring_bell``, ``server.display``) operates on
it unchanged.  ``add_surface`` turns the same server into a multi-head
one: a multi-user home gives each resident their own surface so input and
frames stay isolated per user.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphics.differ import TileDiffer
from repro.graphics.pixelformat import RGB888, PixelFormat
from repro.graphics.region import Rect, Region
from repro.net.link import compression_tier
from repro.net.transport import Transport
from repro.uip import encodings as enc
from repro.uip.handshake import VERSION_1_1, ServerHandshake
from repro.uip.messages import (
    Bell,
    ClientCutText,
    ClientMessageDecoder,
    FramebufferUpdate,
    FramebufferUpdateRequest,
    KeyEvent,
    Ping,
    PointerEvent,
    Pong,
    RectUpdate,
    ResumeSession,
    SessionGrant,
    SetEncodings,
    SetPixelFormat,
)
from repro.util.errors import ProtocolError
from repro.util.scheduler import Scheduler
from repro.windows.server import DisplayServer

#: Encodings the server can produce, in its own preference order.
SUPPORTED_ENCODINGS = (enc.HEXTILE, enc.ZRLE, enc.ZLIB, enc.RRE, enc.RAW)

#: Encodings whose payload depends only on (pixel format, pixels) — safe to
#: encode once and broadcast to every session with the same configuration.
#: ZLIB/ZRLE final payloads ride per-session streams and stay out; ZRLE
#: still shares its tile-stream analysis through the surface's
#: :class:`~repro.uip.encodings.EncodeCache`, so only the deflate is paid
#: per session.
SHAREABLE_ENCODINGS = frozenset(
    (enc.RAW, enc.RRE, enc.HEXTILE, enc.DESKTOP_SIZE))

#: Link-adaptive candidate preference per compression tier, best first.
#: Intersected with the client's offered encodings; cost-model ties
#: resolve to this order.  Tier 0 (wire is free) never trials — the first
#: match wins outright; tier 2 leads with the heavy compressors.
_TIER_CANDIDATES = {
    0: (enc.HEXTILE, enc.RRE, enc.RAW),
    1: (enc.HEXTILE, enc.ZRLE, enc.RRE, enc.ZLIB, enc.RAW),
    2: (enc.ZRLE, enc.ZLIB, enc.HEXTILE, enc.RRE, enc.RAW),
}

#: Sends withheld at one tier before a link-adaptive session escalates.
_ESCALATE_AFTER = 3


@dataclass(frozen=True)
class LinkHealth:
    """One session's link condition, in one structure.

    The adaptive re-evaluation reads this to decide whether to shift
    toward heavier compression, and it is what dashboards should export:
    the bearer's identity, the session's current compression posture, and
    the accumulated backpressure evidence (sends withheld, raw-equivalent
    bytes kept off the wire, seconds of line time currently queued).
    """

    profile: str
    bandwidth_bps: float
    tier: int
    active_encoding: Optional[int]
    updates_coalesced: int
    bytes_suppressed: int
    backlog_s: float
    reevaluations: int


@dataclass
class ParkedSession:
    """Negotiated state held for a dead session's grace window.

    When a session's transport dies unexpectedly (RST, partition, crashed
    proxy) while the server has ``resume_grace_s > 0``, this is what
    survives: the surface binding and the negotiated wire configuration.
    A reconnecting client presenting the matching token gets all of it
    back and pays exactly one non-incremental update (its own resync
    request) instead of a cold renegotiation.  The ZLIB stream does *not*
    survive — both ends restart their streams on the fresh connection,
    which is why parking stores no encoder state.
    """

    token: int
    surface: "ServerSurface"
    pixel_format: PixelFormat
    encodings: tuple[int, ...]
    parked_at: float


class ServerSurface:
    """One display the server multiplexes, with everything scoped to it.

    Sessions bind to a surface; its damage is composited and tile-refined
    once per frame and distributed only to those sessions, and the
    per-frame pack/update caches backing the shared-encode broadcast live
    here — so sessions on *different* surfaces never share cache keys and
    never pay for each other's frames.
    """

    def __init__(self, server: "UniIntServer", display: DisplayServer,
                 surface_id: int) -> None:
        self.server = server
        self.display = display
        self.surface_id = surface_id
        self.sessions: list["ServerSession"] = []
        self._differ = TileDiffer()
        # Per-frame caches, valid only for one display.frame_version: the
        # display owns the content version (anyone may call composite()
        # directly, e.g. Home.screenshot), so validity is checked lazily.
        self._cached_version = display.frame_version
        self._pack_cache: dict[tuple, object] = {}
        self._update_cache: dict[tuple, list[bytes]] = {}
        # One content-keyed encode cache shared by every session on this
        # surface: stateless payloads and ZRLE tile streams (keys include
        # pixel format and, for tiered codecs, the tier) are encoded once
        # per surface, however many sessions — and at whatever tiers —
        # watch it.
        self.encode_cache = enc.EncodeCache()
        display.on_damage = self._on_display_damage

    def _on_display_damage(self) -> None:
        self.server._schedule_flush()

    # -- damage propagation ---------------------------------------------------

    def _composite_and_distribute(self) -> None:
        """Composite this surface once and note damage to its sessions."""
        if not self.display.has_pending_damage():
            return
        region = self.display.composite()
        if region.is_empty:
            return
        rects: list[Rect] = list(region)
        if self.server.tile_diff:
            rects = self._differ.refine(self.display.framebuffer, rects)
            if not rects:
                return
            if len(rects) > self.server.max_update_rects:
                # Tile refinement can shatter one damaged label row into
                # dozens of 16x16 shards.  The merged cover is identical
                # for every session on this surface, so coalesce once here
                # rather than letting N sessions re-merge the same shards
                # in their _try_send — per-session coalescing then only
                # handles cross-frame deferral leftovers (a multi-session
                # surface pays one merge per frame, not one per viewer).
                rects = Region(rects).coalesced(self.server.max_update_rects)
        for session in self.sessions:
            session._note_damage(rects)

    # -- shared-encode broadcast ----------------------------------------------

    def _sync_caches(self) -> None:
        """Drop the per-frame caches if the framebuffer content moved on."""
        if self._cached_version != self.display.frame_version:
            self._cached_version = self.display.frame_version
            self._pack_cache.clear()
            self._update_cache.clear()

    def _packed_for(self, rect: Rect, pixel_format) -> object:
        """The packed pixels of ``rect``, shared across this surface.

        Every session with the same negotiated pixel format reuses one
        ``pack_array`` result per damaged rect per frame.
        """
        self._sync_caches()
        key = (pixel_format, rect)
        packed = self._pack_cache.get(key)
        if packed is None:
            rgb = self.display.framebuffer.view(rect)  # zero-copy subarray
            packed = pixel_format.pack_array(
                rgb, out=self.server._scratch_for(self.surface_id, key))
            self._pack_cache[key] = packed
            self.server.pack_misses += 1
        else:
            self.server.pack_hits += 1
        return packed

    def _encode_update(self, session: "ServerSession",
                       update: FramebufferUpdate) -> list[bytes]:
        """Wire chunks for ``update``, encoded once per session config.

        Returns a scatter-gather chunk list (see
        :meth:`FramebufferUpdate.encode_chunks`): the update is never
        concatenated server-side, and sessions whose surface, rect list,
        encodings and pixel format all match share one encode — the same
        cached chunk list is handed to every such session's transport, so
        a broadcast frame is materialised zero times per extra session.
        Any ZLIB rect forces the per-session path (its persistent stream
        makes the payload session-specific), as does disabling
        :attr:`UniIntServer.shared_encode`.
        """
        shareable = self.server.shared_encode and all(
            r.encoding in SHAREABLE_ENCODINGS for r in update.rects)
        if not shareable:
            return update.encode_chunks(session._encoder)
        self._sync_caches()
        # The tier keys the group: sessions at different compression tiers
        # never alias each other's chunk lists (today's shareable payloads
        # are tier-independent, but the grouping is (surface, pixel format,
        # encoding tier) by contract).
        key = (session.pixel_format, session._encoder.tier,
               tuple((r.rect, r.encoding) for r in update.rects))
        chunks = self._update_cache.get(key)
        if chunks is None:
            chunks = update.encode_chunks(session._encoder)
            self._update_cache[key] = chunks
            self.server.shared_encode_misses += 1
        else:
            self.server.shared_encode_hits += 1
        return chunks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ServerSurface #{self.surface_id} "
                f"{self.display.framebuffer.width}x"
                f"{self.display.framebuffer.height} "
                f"sessions={len(self.sessions)}>")


class ServerSession:
    """One connected UIP client (normally a UniInt proxy), bound to one
    surface: its input lands on that surface's display, and only that
    surface's damage reaches it."""

    def __init__(self, server: "UniIntServer", endpoint: Transport,
                 session_id: int, surface: ServerSurface) -> None:
        self.server = server
        self.endpoint = endpoint
        self.session_id = session_id
        self.surface = surface
        display = surface.display
        self._handshake = ServerHandshake(
            display.framebuffer.width, display.framebuffer.height,
            RGB888, server.name, secret=server.secret)
        self.pixel_format: PixelFormat = RGB888
        #: The bearer this session rides — the adaptive cost model's input.
        self.link_profile = endpoint.profile
        #: Compression tier (see enc.COMPRESSION_TIERS).  Link-adaptive
        #: servers seed it from the bearer: cheap CPU on Ethernet/loopback,
        #: max compression on the 9600 bps phone leg; otherwise the
        #: tier-1 default preserves the classic level-6 zlib stream.
        self._tier = (compression_tier(self.link_profile)
                      if server.link_adaptive else 1)
        self._encoder = enc.EncoderState(RGB888, cache=surface.encode_cache,
                                         tier=self._tier)
        self.encodings: tuple[int, ...] = (enc.RAW,)
        #: Link-adaptive candidate order (tier preference ∩ client offer).
        self._candidates: tuple[int, ...] = (enc.RAW,)
        #: Measured per-encoding encode seconds (EMA), the cost model's
        #: CPU term.
        self._encode_costs: dict[int, float] = {}
        #: True once backpressure proved the declared profile optimistic:
        #: selection then minimises wire bytes outright.
        self._wire_constrained = False
        #: updates_coalesced watermark the escalation logic last acted at.
        self._tier_baseline = 0
        #: Times the adaptive selection re-seeded (tier escalations).
        self.reevaluations = 0
        #: Rects sent per encoding (what the link actually got).
        self.rects_by_encoding: Counter[int] = Counter()
        self._decoder = ClientMessageDecoder()
        self._pending = Region()
        self._update_requested = False
        self._known_size = display.framebuffer.size
        self.closed = False
        #: Token under which this session's state may be resumed after a
        #: transport fault (granted post-handshake when parking is on).
        self.resume_token: Optional[int] = None
        #: True once this session took over a parked predecessor's state.
        self.resumed = False
        # statistics for the bandwidth experiments (E7)
        self.updates_sent = 0
        self.rects_sent = 0
        self.key_events = 0
        self.pointer_events = 0
        self.pings_answered = 0
        # backpressure statistics (bench_backpressure): sends withheld
        # because the link was saturated, and the raw-equivalent bytes of
        # the damage folded back into ``_pending`` at each withholding.
        self.updates_coalesced = 0
        self.bytes_suppressed = 0
        endpoint.on_receive = self._on_bytes
        endpoint.on_close = self._on_close
        endpoint.on_writable = self._on_writable
        self._flush_handshake()

    # -- connection plumbing ----------------------------------------------------

    def _flush_handshake(self) -> None:
        out = self._handshake.outgoing()
        if out and self.endpoint.is_open:
            self.endpoint.send(out)

    def _on_bytes(self, data: bytes) -> None:
        if self.closed:
            return
        if not self._handshake.done:
            if self._handshake.failed is not None:
                self.close()
                return
            self._handshake.feed(data)
            self._flush_handshake()
            if self._handshake.failed is not None:
                self.close()
                return
            if self._handshake.done:
                # everything changed is dirty for a new client
                self._pending.add(self.surface.display.framebuffer.bounds)
                if self.server.resume_grace_s > 0:
                    self.resume_token = self.server._grant_token(self)
                    self.endpoint.send(
                        SessionGrant(self.resume_token).encode())
                data = self._handshake.leftover()
                if not data:
                    return
            else:
                return
        for message in self._decoder.feed(data):
            self._handle(message)

    def _on_close(self) -> None:
        """The transport died under us (peer close, RST, partition).

        Unlike :meth:`close` (deliberate teardown) this is where parking
        hooks in: a handshaken session whose server keeps a grace window
        leaves its negotiated state behind for a resuming successor.
        """
        if self.closed:
            return
        self.closed = True
        self.server._lost_session(self)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.endpoint.close()
        self.server._discard_token(self)
        self.server._drop_session(self)

    @property
    def ready(self) -> bool:
        return self._handshake.done and not self.closed

    # -- client messages -----------------------------------------------------------

    def _handle(self, message) -> None:
        if isinstance(message, SetPixelFormat):
            self.pixel_format = message.pixel_format
            # Keep the encoder (and its content-keyed cache: keys include
            # the pixel format, so nothing stale can hit); only the
            # position-dependent zlib stream must restart.
            self._encoder.renegotiate(message.pixel_format)
            self._pending.add(self.surface.display.framebuffer.bounds)
        elif isinstance(message, SetEncodings):
            wanted = [e for e in message.encodings
                      if e in SUPPORTED_ENCODINGS or e == enc.DESKTOP_SIZE]
            if (self._handshake.result is not None
                    and self._handshake.result.version < VERSION_1_1):
                # a 001.000 peer cannot decode ZRLE, whatever it offered
                wanted = [e for e in wanted if e != enc.ZRLE]
            self.encodings = tuple(wanted) if wanted else (enc.RAW,)
            self._seed_candidates()
        elif isinstance(message, FramebufferUpdateRequest):
            if not message.incremental:
                self._pending.add(message.rect.intersect(
                    self.surface.display.framebuffer.bounds))
            self._update_requested = True
            self.surface._composite_and_distribute()
            self._try_send()
        elif isinstance(message, KeyEvent):
            self.key_events += 1
            self.surface.display.inject_key(message.keysym, message.down)
            self.surface._composite_and_distribute()
            self._try_send()
        elif isinstance(message, PointerEvent):
            self.pointer_events += 1
            self.surface.display.inject_pointer(message.x, message.y,
                                                message.buttons)
            self.surface._composite_and_distribute()
            self._try_send()
        elif isinstance(message, ClientCutText):
            pass  # clipboard is accepted and ignored
        elif isinstance(message, Ping):
            self.pings_answered += 1
            if self.endpoint.is_open:
                self.endpoint.send(Pong(message.seq).encode())
        elif isinstance(message, ResumeSession):
            self.server._resume_session(self, message.token)
        else:  # pragma: no cover - decoder only yields the types above
            raise AssertionError(f"unexpected message {message!r}")

    # -- update generation ------------------------------------------------------------

    def _note_damage(self, rects) -> None:
        for rect in rects:
            self._pending.add(rect)

    def _pick_encoding(self) -> int:
        for encoding in self.encodings:
            if encoding in SUPPORTED_ENCODINGS:
                return encoding
        return enc.RAW

    def _seed_candidates(self) -> None:
        """Re-derive the link-adaptive candidate order.

        Tier preference intersected with what the client offered; called
        whenever either side changes (SetEncodings, resume, escalation).
        """
        offered = set(self.encodings)
        self._candidates = tuple(
            e for e in _TIER_CANDIDATES[self._tier] if e in offered
        ) or (enc.RAW,)

    def _encode_rect(self, packed) -> tuple[int, object]:
        """(encoding, payload-array) for one rect, honouring adaptive modes.

        Link-adaptive mode scores the tier's candidates with the bearer
        cost model (wire seconds + measured encode seconds); stateful
        codecs are trialled on stream clones, so losing trials never touch
        the live zlib stream.  Tier 0 skips the trials entirely — on a
        link where bytes are free, the first preferred codec wins outright.
        Classic adaptive mode keeps its original smallest-of-stateless
        behaviour.
        """
        if self.server.link_adaptive:
            candidates = self._candidates
            if len(candidates) == 1 or self._tier == 0:
                return (candidates[0], packed)
            profile = (None if self._wire_constrained else self.link_profile)
            return (enc.best_encoding(self._encoder, packed, candidates,
                                      profile=profile,
                                      encode_costs=self._encode_costs),
                    packed)
        if self.server.adaptive:
            candidates = tuple(
                e for e in self.encodings
                if e in (enc.RAW, enc.RRE, enc.HEXTILE)) or (enc.RAW,)
            return (enc.best_encoding(self._encoder, packed, candidates),
                    packed)
        return (self._pick_encoding(), packed)

    def _on_writable(self) -> None:
        """Link credit freed up: retry a send deferred by backpressure."""
        self._try_send()

    def _suppressed_estimate(self) -> int:
        """Raw-equivalent wire bytes of the currently withheld damage.

        An estimate (the real update would be encoded and smaller): the
        pixel area of the pending region at the negotiated depth, i.e.
        what one more queued stale update would roughly have cost.
        """
        return self._pending.area * self.pixel_format.bytes_per_pixel

    def _try_send(self) -> None:
        if not self.ready or not self._update_requested:
            return
        display = self.surface.display
        resized = (display.framebuffer.size != self._known_size
                   and enc.DESKTOP_SIZE in self.encodings)
        if self._pending.is_empty and not resized:
            return
        if self.server.backpressure and not self.endpoint.writable:
            # The link is saturated past its credit: withhold this update
            # and leave the damage in ``_pending``, where subsequent frames
            # merge into it.  When the transport drains below its low
            # watermark, ``on_writable`` re-enters here and the client gets
            # one coalesced update with the freshest content instead of a
            # queue of stale intermediates.
            self.updates_coalesced += 1
            self.bytes_suppressed += self._suppressed_estimate()
            if self.server.link_adaptive:
                self._maybe_escalate()
            return
        rects: list[RectUpdate] = []
        if resized:
            width, height = display.framebuffer.size
            rects.append(RectUpdate(Rect(0, 0, width, height),
                                    enc.DESKTOP_SIZE))
            self._known_size = display.framebuffer.size
            self._pending = Region([display.framebuffer.bounds])
        bounds = display.framebuffer.bounds
        for rect in self._pending.coalesced(self.server.max_update_rects):
            clipped = rect.intersect(bounds)
            if clipped.is_empty:
                continue
            packed = self.surface._packed_for(clipped, self.pixel_format)
            encoding, payload = self._encode_rect(packed)
            rects.append(RectUpdate(clipped, encoding, payload))
        self._pending = Region()
        self._update_requested = False
        if not rects:
            return
        update = FramebufferUpdate(tuple(rects))
        chunks = self.surface._encode_update(self, update)
        if self.endpoint.is_open:
            self.endpoint.send(chunks)
            self.updates_sent += 1
            self.rects_sent += len(rects)
            for rect_update in rects:
                self.rects_by_encoding[rect_update.encoding] += 1

    # -- link health & adaptive re-evaluation -----------------------------------

    def link_health(self) -> LinkHealth:
        """This session's bearer condition as one snapshot (see
        :class:`LinkHealth`)."""
        active = None
        if self.rects_by_encoding:
            active = max(self.rects_by_encoding,
                         key=self.rects_by_encoding.__getitem__)
        backlog = (self.endpoint.backlog_seconds()
                   if self.endpoint.is_open else 0.0)
        return LinkHealth(
            profile=self.link_profile.name,
            bandwidth_bps=self.link_profile.bandwidth_bps,
            tier=self._tier,
            active_encoding=active,
            updates_coalesced=self.updates_coalesced,
            bytes_suppressed=self.bytes_suppressed,
            backlog_s=backlog,
            reevaluations=self.reevaluations,
        )

    def stats(self) -> dict:
        """Session counters plus the :class:`LinkHealth` snapshot."""
        return {
            "session_id": self.session_id,
            "updates_sent": self.updates_sent,
            "rects_sent": self.rects_sent,
            "key_events": self.key_events,
            "pointer_events": self.pointer_events,
            "pings_answered": self.pings_answered,
            "rects_by_encoding": dict(self.rects_by_encoding),
            "link_health": self.link_health(),
        }

    def _maybe_escalate(self) -> None:
        """Shift toward heavier compression when the link keeps choking.

        Reads the :class:`LinkHealth` snapshot the stats surface exposes:
        once enough sends have been withheld since the last decision, the
        session climbs one tier, re-seeds its candidate order, and marks
        itself wire-constrained — the declared bearer profile evidently
        understates the real byte cost, so selection now minimises wire
        bytes outright.
        """
        health = self.link_health()
        if health.updates_coalesced - self._tier_baseline < _ESCALATE_AFTER:
            return
        self._tier_baseline = health.updates_coalesced
        changed = not self._wire_constrained
        self._wire_constrained = True
        if self._tier < max(enc.COMPRESSION_TIERS):
            self._tier += 1
            self._encoder.set_tier(self._tier)
            changed = True
        if changed:
            self.reevaluations += 1
            self._seed_candidates()


class UniIntServer:
    """Accepts UIP connections on behalf of one or more display servers.

    The classic construction ``UniIntServer(display, scheduler)`` wraps
    the display in a default surface; :meth:`add_surface` attaches further
    displays (per-user views in a multi-user home), each with independent
    sessions, damage coalescing and shared-encode cache domain.
    """

    def __init__(self, display: Optional[DisplayServer],
                 scheduler: Scheduler,
                 name: str = "home-appliances",
                 secret: Optional[str] = None,
                 adaptive: bool = False,
                 link_adaptive: bool = False,
                 shared_encode: bool = True,
                 tile_diff: bool = True,
                 backpressure: bool = True,
                 max_update_rects: int = 16,
                 resume_grace_s: float = 0.0) -> None:
        self.scheduler = scheduler
        self.name = name
        self.secret = secret
        #: Seconds (virtual) a dead session's state is parked awaiting a
        #: ResumeSession.  0 disables parking entirely (the default): a
        #: lost transport is then a lost session, exactly the pre-PR-7
        #: behaviour.  There is no free-running expiry sweep — entries are
        #: validated lazily on resume and reaped opportunistically on each
        #: park (or explicitly via :meth:`reap_stale_sessions`), so an
        #: idle server stays idle.
        self.resume_grace_s = resume_grace_s
        self._parked: dict[int, ParkedSession] = {}
        self._tokens: dict[int, "ServerSession"] = {}
        self._next_token = 1
        # resilience statistics (bench_resilience reads these)
        self.sessions_parked = 0
        self.sessions_resumed = 0
        self.sessions_expired = 0
        self.resume_misses = 0
        #: Per-rect best-of trial encoding (ablation: see bench_ablations).
        self.adaptive = adaptive
        #: Per-link adaptive encoder selection: each session seeds its
        #: compression tier and candidate order from its transport's
        #: LinkProfile, scores candidates with the bearer cost model
        #: (trialling stateful codecs on stream clones), and escalates
        #: tiers as backpressure accumulates.  Off by default: wire
        #: behaviour is then bit-identical to the pre-tier server.
        self.link_adaptive = link_adaptive
        #: Encode each update once per (surface, pixel format, rect list)
        #: and fan the bytes out to every session sharing that config
        #: (ablation toggle).
        self.shared_encode = shared_encode
        #: Refine composite damage to the 16x16 tiles whose pixels actually
        #: changed before distributing it (ablation toggle): geometric
        #: damage from unchanged redraws never reaches the encoders.
        self.tile_diff = tile_diff
        #: Honour transport credit (ablation toggle): saturated sessions
        #: fold new damage into their pending region instead of queueing
        #: ever-staler updates behind a slow link.
        self.backpressure = backpressure
        #: Fragmentation cap applied when coalescing per-session damage.
        self.max_update_rects = max_update_rects
        #: The multiplexed surfaces, in attach order; ``surfaces[0]`` is
        #: the default surface legacy single-display entry points use.
        self.surfaces: list[ServerSurface] = []
        self._next_session = 1
        self._next_surface = 1
        self._flush_scheduled = False
        # Persistent per-(surface, pixel format, rect) pack output buffers:
        # the same rects get damaged frame after frame (widget churn), so
        # the pack result is written into a reused scratch array instead of
        # a fresh allocation.  Entries outlive the surfaces' per-frame
        # caches; the dict is emptied wholesale when either the entry or
        # the byte cap would be exceeded (varying damage geometry must not
        # accrete full-frame-sized buffers).  Server-wide so the memory
        # ceiling does not multiply with the number of surfaces.
        self._pack_scratch: dict[tuple, np.ndarray] = {}
        self._pack_scratch_bytes = 0
        self._pack_scratch_cap = 256
        self._pack_scratch_max_bytes = 16 * 1024 * 1024
        # statistics for the scale experiments (bench_home_scale);
        # aggregated across surfaces so ablation benches read one number
        self.pack_hits = 0
        self.pack_misses = 0
        self.shared_encode_hits = 0
        self.shared_encode_misses = 0
        if display is not None:
            self.add_surface(display)

    # -- surfaces ---------------------------------------------------------------

    def add_surface(self, display: DisplayServer) -> ServerSurface:
        """Multiplex another display; returns its surface handle.

        The surface owns the display's ``on_damage`` hook from here on and
        flushes its damage to exactly the sessions accepted onto it.
        """
        for surface in self.surfaces:
            if surface.display is display:
                raise ProtocolError("display already has a surface")
        surface = ServerSurface(self, display, self._next_surface)
        self._next_surface += 1
        self.surfaces.append(surface)
        return surface

    def remove_surface(self, surface: ServerSurface) -> None:
        """Detach a surface: close its sessions, release its display."""
        if surface not in self.surfaces:
            raise ProtocolError(f"surface #{surface.surface_id} "
                                f"is not attached to this server")
        self.surfaces.remove(surface)
        for session in list(surface.sessions):
            session.close()
        if surface.display.on_damage == surface._on_display_damage:
            surface.display.on_damage = None
        stale = [key for key in self._pack_scratch
                 if key[0] == surface.surface_id]
        for key in stale:
            self._pack_scratch_bytes -= self._pack_scratch[key].nbytes
            del self._pack_scratch[key]

    @property
    def default_surface(self) -> ServerSurface:
        if not self.surfaces:
            raise ProtocolError("server has no surfaces")
        return self.surfaces[0]

    @property
    def display(self) -> DisplayServer:
        """The default surface's display (legacy single-display API)."""
        return self.default_surface.display

    def _scratch_for(self, surface_id: int, key: tuple):
        """The persistent pack output buffer for one (surface, format,
        rect) key.

        Safe to reuse across frames: packed arrays are only referenced
        within the flush that packs them (payloads leave as bytes), and
        each surface's per-frame ``_pack_cache`` is dropped on every
        content change.  Surface ids are never reused, so keys of removed
        surfaces can only go stale, not alias.
        """
        skey = (surface_id, *key)
        scratch = self._pack_scratch.get(skey)
        if scratch is None:
            pixel_format, rect = key
            scratch = np.empty((rect.h, rect.w), dtype=pixel_format.dtype)
            if (len(self._pack_scratch) >= self._pack_scratch_cap
                    or (self._pack_scratch_bytes + scratch.nbytes
                        > self._pack_scratch_max_bytes)):
                self._pack_scratch.clear()
                self._pack_scratch_bytes = 0
            self._pack_scratch[skey] = scratch
            self._pack_scratch_bytes += scratch.nbytes
        return scratch

    # -- accepting clients ------------------------------------------------------

    def accept(self, endpoint: Transport,
               surface: Optional[ServerSurface] = None) -> ServerSession:
        """Take ownership of a server-side endpoint; starts the handshake.

        The session binds to ``surface`` (default: the default surface):
        its input lands on that surface's display and only that surface's
        damage is pushed to it.
        """
        if surface is None:
            surface = self.default_surface
        elif surface not in self.surfaces:
            raise ProtocolError(f"surface #{surface.surface_id} "
                                f"is not attached to this server")
        session = ServerSession(self, endpoint, self._next_session, surface)
        self._next_session += 1
        surface.sessions.append(session)
        return session

    def listen(self, reactor, member=None, surface_for=None,
               host: str = "127.0.0.1", port: int = 0,
               profile=None):
        """Accept UIP clients over a real TCP listening socket.

        Each accepted connection becomes a reactor-registered
        :class:`~repro.net.transport.SocketTransport` handed straight to
        :meth:`accept`; ``surface_for(conn, addr)`` (optional) picks the
        surface the new session binds to.  Returns the
        :class:`~repro.net.reactor.TcpListener` (its ``.address`` is the
        dial target for :func:`~repro.net.reactor.connect_tcp`).
        """
        from repro.net.link import ETHERNET_100
        from repro.net.reactor import TcpListener
        from repro.net.transport import SocketTransport

        link_profile = profile if profile is not None else ETHERNET_100

        def on_accept(conn, addr):
            transport = SocketTransport(
                self.scheduler, conn, link_profile,
                name=f"{self.name}-tcp-{addr[1]}")
            transport.attach_reactor(reactor, member=member)
            surface = (surface_for(conn, addr)
                       if surface_for is not None else None)
            self.accept(transport, surface=surface)

        return TcpListener(reactor, on_accept, host=host, port=port,
                           member=member)

    def _drop_session(self, session: ServerSession) -> None:
        if session in session.surface.sessions:
            session.surface.sessions.remove(session)

    # -- session parking & resumption ----------------------------------------

    def _grant_token(self, session: ServerSession) -> int:
        token = self._next_token
        self._next_token += 1
        self._tokens[token] = session
        return token

    def _discard_token(self, session: ServerSession) -> None:
        """Deliberate close: nothing to come back to."""
        if session.resume_token is not None:
            self._tokens.pop(session.resume_token, None)
            self._parked.pop(session.resume_token, None)

    def _lost_session(self, session: ServerSession) -> None:
        """A session's transport died unexpectedly: park or drop."""
        self._drop_session(session)
        if (self.resume_grace_s > 0 and session._handshake.done
                and session.resume_token is not None):
            self._park_session(session)
        else:
            self._discard_token(session)

    def _park_session(self, session: ServerSession) -> None:
        token = session.resume_token
        assert token is not None
        self._tokens.pop(token, None)
        self._parked[token] = ParkedSession(
            token=token,
            surface=session.surface,
            pixel_format=session.pixel_format,
            encodings=session.encodings,
            parked_at=self.scheduler.now())
        self.sessions_parked += 1
        self.reap_stale_sessions()

    def _resume_session(self, session: ServerSession, token: int) -> None:
        """A fresh session presented a resume token: restore its past.

        Three cases: the token's old session still *looks* live (its
        reset hasn't dispatched yet) — the new connection wins, taking
        over the state directly; the token is parked within the grace
        window — restore it; anything else (expired, bogus, already
        resumed) — the session simply continues as the cold fresh session
        it already is.
        """
        live = self._tokens.get(token)
        if live is not None and live is not session and not live.closed:
            # takeover: park the zombie's state, then kill it silently
            self._park_session(live)
            live.closed = True
            self._drop_session(live)
            if live.endpoint.is_open:
                live.endpoint.close()
        parked = self._parked.pop(token, None)
        if parked is None:
            self.resume_misses += 1
            return
        if self.scheduler.now() - parked.parked_at > self.resume_grace_s:
            self.sessions_expired += 1
            self.resume_misses += 1
            return
        session.pixel_format = parked.pixel_format
        session._encoder.renegotiate(parked.pixel_format)
        session.encodings = parked.encodings
        session._seed_candidates()
        target = parked.surface
        if target is not session.surface and target in self.surfaces:
            session.surface.sessions.remove(session)
            session.surface = target
            target.sessions.append(session)
            # share the adopted surface's encode cache, not the old one's
            session._encoder.cache = target.encode_cache
        session.resumed = True
        self.sessions_resumed += 1

    def reap_stale_sessions(self,
                            grace_s: Optional[float] = None) -> int:
        """Drop parked sessions older than the grace window; returns the
        number reaped.  Called opportunistically on every park — call it
        explicitly to bound memory on a server that stopped parking."""
        grace = grace_s if grace_s is not None else self.resume_grace_s
        now = self.scheduler.now()
        stale = [token for token, parked in self._parked.items()
                 if now - parked.parked_at > grace]
        for token in stale:
            del self._parked[token]
            self.sessions_expired += 1
        return len(stale)

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    @property
    def sessions(self) -> list[ServerSession]:
        """Every live session, across all surfaces (attach order)."""
        return [session for surface in self.surfaces
                for session in surface.sessions]

    def ring_bell(self, surface: Optional[ServerSurface] = None) -> None:
        """Send a Bell to connected clients (e.g. a microwave ding).

        With ``surface`` the bell reaches only that surface's sessions —
        the per-user routing a multi-view home uses so each resident hears
        one ding per event; without it, every session on every surface.
        """
        payload = Bell().encode()
        sessions = (self.sessions if surface is None
                    else list(surface.sessions))
        for session in sessions:
            if session.ready and session.endpoint.is_open:
                session.endpoint.send(payload)

    # -- damage propagation --------------------------------------------------------

    def _schedule_flush(self) -> None:
        # coalesce bursts of damage into one composite per scheduler tick
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        self.scheduler.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        self._composite_and_distribute()
        for session in list(self.sessions):
            session._try_send()

    def _composite_and_distribute(self) -> None:
        """Composite every dirty surface once and distribute its damage."""
        for surface in self.surfaces:
            surface._composite_and_distribute()

    @property
    def diff_tiles_dropped(self) -> int:
        """Tiles the frame differs proved unchanged and withheld."""
        return sum(s._differ.tiles_dropped for s in self.surfaces)

    @property
    def diff_tiles_checked(self) -> int:
        return sum(s._differ.tiles_checked for s in self.surfaces)

    @property
    def updates_coalesced(self) -> int:
        """Sends withheld by backpressure across live sessions."""
        return sum(s.updates_coalesced for s in self.sessions)

    @property
    def bytes_suppressed(self) -> int:
        """Raw-equivalent bytes kept off saturated links (live sessions)."""
        return sum(s.bytes_suppressed for s in self.sessions)

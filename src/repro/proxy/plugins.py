"""Plug-in model: the code devices upload into the proxy (paper §2.2).

"The input plug-in module contains a code to translate events received from
the input device to mouse or keyboard events.  The output plug-in module
contains a code to convert bitmap images received from a UniInt server to
images that can be displayed on the screen of the target output device."

Both plug-ins of one session share a :class:`SessionContext`: the output
plug-in records the :class:`ViewTransform` it used (scale + letterbox
offsets), and the input plug-in uses the *inverse* transform to map device
touch coordinates back into server framebuffer coordinates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.graphics.bitmap import Bitmap
from repro.graphics.region import Rect
from repro.proxy.descriptors import DeviceDescriptor, ScreenSpec
from repro.uip.messages import KeyEvent, PointerEvent
from repro.util.errors import PluginError

#: What input plug-ins produce: universal input events.
UniversalEvent = Union[KeyEvent, PointerEvent]

_IMAGE_HEADER = struct.Struct(">HHBI")
_FORMAT_CODES = {"mono1": 1, "gray4": 2, "rgb565": 3, "rgb888": 4}
_FORMAT_NAMES = {v: k for k, v in _FORMAT_CODES.items()}

#: Device-link frame tags (proxy -> device direction): a frame is one tag
#: byte followed by the payload.
LINK_TAG_IMAGE = 0x01
LINK_TAG_BELL = 0x02


@dataclass(frozen=True)
class DeviceImage:
    """A device-ready frame: packed pixels in the device's native format."""

    width: int
    height: int
    format: str
    data: bytes

    def encode(self) -> bytes:
        """Wire form for the proxy -> device link."""
        code = _FORMAT_CODES.get(self.format)
        if code is None:
            raise PluginError(f"unknown image format {self.format!r}")
        return _IMAGE_HEADER.pack(self.width, self.height, code,
                                  len(self.data)) + self.data

    @classmethod
    def decode(cls, blob: bytes) -> "DeviceImage":
        if len(blob) < _IMAGE_HEADER.size:
            raise PluginError("device image blob truncated")
        width, height, code, length = _IMAGE_HEADER.unpack_from(blob)
        data = blob[_IMAGE_HEADER.size:]
        if len(data) != length:
            raise PluginError(
                f"device image payload is {len(data)} bytes, header says "
                f"{length}")
        name = _FORMAT_NAMES.get(code)
        if name is None:
            raise PluginError(f"unknown image format code {code}")
        return cls(width, height, name, data)


@dataclass(frozen=True)
class ViewTransform:
    """How the server framebuffer maps onto a device screen.

    device = server * scale + offset;  the inverse maps device taps back.
    """

    scale: float
    offset_x: int
    offset_y: int
    server_width: int
    server_height: int

    def to_device(self, x: int, y: int) -> tuple[int, int]:
        return (int(x * self.scale) + self.offset_x,
                int(y * self.scale) + self.offset_y)

    def to_server(self, x: int, y: int) -> tuple[int, int]:
        if self.scale <= 0:
            raise PluginError(f"degenerate view scale {self.scale}")
        sx = round((x - self.offset_x) / self.scale)
        sy = round((y - self.offset_y) / self.scale)
        sx = max(0, min(self.server_width - 1, sx))
        sy = max(0, min(self.server_height - 1, sy))
        return (sx, sy)


@dataclass
class SessionContext:
    """State shared between the two plug-ins of one proxy session."""

    input_descriptor: Optional[DeviceDescriptor] = None
    output_descriptor: Optional[DeviceDescriptor] = None
    view: Optional[ViewTransform] = None
    #: Sticky modifier state for plug-ins that synthesise Shift, etc.
    modifiers: set = field(default_factory=set)


class InputPlugin:
    """Translates device-native events into universal input events.

    Subclasses implement :meth:`translate`; returning an empty list drops
    the event (e.g. an unrecognised voice utterance).
    """

    def __init__(self, descriptor: DeviceDescriptor,
                 context: SessionContext) -> None:
        self.descriptor = descriptor
        self.context = context
        self.events_in = 0
        self.events_out = 0

    def translate(self, event: dict) -> Sequence[UniversalEvent]:
        raise NotImplementedError

    def process(self, event: dict) -> list[UniversalEvent]:
        """Bookkeeping wrapper around :meth:`translate`."""
        self.events_in += 1
        out = list(self.translate(event))
        self.events_out += len(out)
        return out


class OutputPlugin:
    """Converts server bitmaps into device-native images.

    Subclasses implement :meth:`transform`, and must keep
    ``context.view`` up to date so the input plug-in can invert the
    geometry.
    """

    def __init__(self, descriptor: DeviceDescriptor,
                 context: SessionContext) -> None:
        if descriptor.screen is None:
            raise PluginError(
                f"device {descriptor.device_id!r} has no screen")
        self.descriptor = descriptor
        self.screen: ScreenSpec = descriptor.screen
        self.context = context
        self.frames_out = 0
        self.bytes_out = 0

    def transform(self, frame: Bitmap, dirty: Rect) -> DeviceImage:
        raise NotImplementedError

    def process(self, frame: Bitmap, dirty: Rect) -> DeviceImage:
        """Bookkeeping wrapper around :meth:`transform`."""
        image = self.transform(frame, dirty)
        self.frames_out += 1
        self.bytes_out += len(image.data)
        return image

    def fit_view(self, frame: Bitmap) -> ViewTransform:
        """Standard letterboxed aspect-preserving fit; updates the context.

        Scale is clamped to 1.0: a screen larger than the server window
        shows the frame pixel-for-pixel, centred, instead of a blurry
        upscale past native resolution.
        """
        scale = min(1.0,
                    self.screen.width / frame.width,
                    self.screen.height / frame.height)
        out_w = max(1, int(frame.width * scale))
        out_h = max(1, int(frame.height * scale))
        view = ViewTransform(
            scale=scale,
            offset_x=(self.screen.width - out_w) // 2,
            offset_y=(self.screen.height - out_h) // 2,
            server_width=frame.width,
            server_height=frame.height,
        )
        self.context.view = view
        return view

"""Device descriptors: the capability envelope a device presents.

When an interaction device registers with the proxy it presents a
descriptor: what it can display (if anything), what events it can produce
(if any), which network bearer it sits on, and *modality tags* the
context-driven selection policy matches against user situations (e.g. a
voice input is ``hands_free``, a TV display is ``fixed`` and ``shared``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.link import LinkProfile
from repro.util.errors import ProxyError

#: Device-side image formats an output plug-in may produce.
IMAGE_FORMATS = ("mono1", "gray4", "rgb565", "rgb888")


@dataclass(frozen=True)
class ScreenSpec:
    """Display capability of an output-capable device."""

    width: int
    height: int
    format: str  # one of IMAGE_FORMATS

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ProxyError(f"screen size must be positive: "
                             f"{self.width}x{self.height}")
        if self.format not in IMAGE_FORMATS:
            raise ProxyError(f"unknown image format {self.format!r}")

    @property
    def bits_per_pixel(self) -> int:
        return {"mono1": 1, "gray4": 2, "rgb565": 16, "rgb888": 24}[
            self.format]


@dataclass(frozen=True)
class DeviceDescriptor:
    """Everything the proxy needs to know about an interaction device."""

    device_id: str
    kind: str  # "pda", "phone", "voice", "remote", "tv-display", ...
    #: Display, or None for input-only devices (voice, remote, gesture).
    screen: Optional[ScreenSpec] = None
    #: Input modalities: subset of {"touch", "keypad", "voice", "ir",
    #: "gesture"}; empty for output-only devices.
    input_modes: frozenset = frozenset()
    #: The bearer this device talks over.
    link: Optional[LinkProfile] = None
    #: Tags the selection policy scores against user situations.
    tags: frozenset = frozenset()

    def __post_init__(self) -> None:
        if not self.device_id:
            raise ProxyError("device_id must be non-empty")
        if self.screen is None and not self.input_modes:
            raise ProxyError(
                f"device {self.device_id!r} is neither input nor output")
        object.__setattr__(self, "input_modes", frozenset(self.input_modes))
        object.__setattr__(self, "tags", frozenset(self.tags))

    @property
    def is_input(self) -> bool:
        return bool(self.input_modes)

    @property
    def is_output(self) -> bool:
        return self.screen is not None

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

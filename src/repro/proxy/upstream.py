"""The proxy's upstream face: a universal-interaction-protocol client.

:class:`UniIntClient` replaces the stock thin-client *viewer* (paper §2.2):
it keeps a faithful RGB mirror of the server framebuffer and reports which
region changed after every update, but never draws to a screen itself — the
output plug-in decides what the current output device sees.

Flow control follows the thin-client convention: exactly one framebuffer
update request is outstanding at any time, so a slow device link
back-pressures the server instead of flooding the pipe.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.graphics.bitmap import Bitmap
from repro.graphics.pixelformat import RGB888, PixelFormat
from repro.graphics.region import Rect, Region
from repro.net.transport import Transport
from repro.uip import encodings as enc
from repro.uip.handshake import VERSION_1_1, ClientHandshake
from repro.uip.messages import (
    Bell,
    FramebufferUpdate,
    FramebufferUpdateRequest,
    KeyEvent,
    Ping,
    PointerEvent,
    Pong,
    ResumeSession,
    ServerCutText,
    ServerMessageDecoder,
    SessionGrant,
    SetEncodings,
    SetPixelFormat,
)
from repro.util.errors import ProtocolError

#: Default encodings offered, best first.  HEXTILE stays first (the
#: non-adaptive server honours client order), with the zlib-stream family
#: behind it for link-adaptive servers to promote when the bearer warrants.
DEFAULT_ENCODINGS = (enc.HEXTILE, enc.ZRLE, enc.ZLIB, enc.RRE, enc.RAW,
                     enc.DESKTOP_SIZE)


class UniIntClient:
    """Maintains the framebuffer mirror; forwards universal input events."""

    def __init__(self, endpoint: Transport, secret: Optional[str] = None,
                 pixel_format: PixelFormat = RGB888,
                 encodings: tuple[int, ...] = DEFAULT_ENCODINGS,
                 damage_cap: int = 16,
                 resume_from: Optional[int] = None) -> None:
        self.endpoint = endpoint
        self.secret = secret
        self.pixel_format = pixel_format
        self.encodings = encodings
        #: Fragmentation cap for the coalesced region handed to on_update.
        self.damage_cap = damage_cap
        self._handshake = ClientHandshake(secret=secret)
        self._decoder: Optional[ServerMessageDecoder] = None
        self.framebuffer: Optional[Bitmap] = None
        self.server_name: Optional[str] = None
        self.closed = False
        self.updates_received = 0
        self.rects_received = 0
        #: Resume a parked server session instead of renegotiating: after
        #: the handshake this client sends ResumeSession(resume_from) and
        #: one non-incremental update request (the single full-frame
        #: resync) in place of SetPixelFormat/SetEncodings.
        self.resume_from = resume_from
        #: The token the server granted *this* connection (SessionGrant);
        #: what a future reconnect should present.
        self.resume_token: Optional[int] = None
        # liveness accounting: pings awaiting a pong.  Any pong clears the
        # whole debt (sequence numbers are monotonic, a later answer
        # proves the link end-to-end).
        self.pings_sent = 0
        self.pongs_received = 0
        self.outstanding_pings = 0
        #: Fired once after the handshake and the initial full update request.
        self.on_ready: Optional[Callable[[], None]] = None
        #: Fired after each applied update with the changed region.
        self.on_update: Optional[Callable[[Region], None]] = None
        #: Fired when the server resizes the desktop.
        self.on_resize: Optional[Callable[[int, int], None]] = None
        #: Fired on a server bell (e.g. microwave ding surfaced by an app).
        self.on_bell: Optional[Callable[[], None]] = None
        #: Fired when a pong lands (the heartbeat loop listens here).
        self.on_pong: Optional[Callable[[int], None]] = None
        #: Fired when the transport closes under the session (the
        #: reconnect machinery listens here; distinct from the deliberate
        #: :meth:`close`, which never fires it).
        self.on_session_close: Optional[Callable[[], None]] = None
        #: Fired with the reason when the handshake fails.  When unset the
        #: failure raises (legacy behaviour); a reconnect loop sets it so
        #: a garbled redial is one more retry, not an escaped exception
        #: quarantining the whole home.
        self.on_error: Optional[Callable[[str], None]] = None
        endpoint.on_receive = self._on_bytes
        endpoint.on_close = self._on_close

    # -- connection ---------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self._handshake.done and not self.closed

    def _on_close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.on_session_close is not None:
            self.on_session_close()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.endpoint.close()

    def _send(self, payload: bytes) -> None:
        if self.endpoint.is_open:
            self.endpoint.send(payload)

    def _on_bytes(self, data: bytes) -> None:
        if self.closed:
            return
        if not self._handshake.done:
            self._handshake.feed(data)
            out = self._handshake.outgoing()
            if out:
                self._send(out)
            if self._handshake.failed is not None:
                if self.on_error is not None:
                    reason = self._handshake.failed
                    self.close()
                    self.on_error(reason)
                    return
                raise ProtocolError(
                    f"UIP handshake failed: {self._handshake.failed}")
            if not self._handshake.done:
                return
            self._session_start()
            data = self._handshake.leftover()
            if not data:
                return
        assert self._decoder is not None
        for message in self._decoder.feed(data):
            self._handle(message)

    def _session_start(self) -> None:
        result = self._handshake.result
        assert result is not None
        self.server_name = result.name
        self.framebuffer = Bitmap(result.width, result.height)
        self._decoder = ServerMessageDecoder(
            enc.DecoderState(self.pixel_format))
        if self.resume_from is not None:
            # warm resume: the parked server state already holds our pixel
            # format and encodings — present the token and ask for the one
            # full-frame resync instead of renegotiating from scratch
            self._send(ResumeSession(self.resume_from).encode())
        else:
            if self.pixel_format != result.pixel_format:
                self._send(SetPixelFormat(self.pixel_format).encode())
            offered = self.encodings
            if result.version < VERSION_1_1:
                # a 001.000 server would reject (or worse, ignore) ZRLE
                offered = tuple(e for e in offered if e != enc.ZRLE)
            self._send(SetEncodings(offered).encode())
        self.request_update(incremental=False)
        if self.on_ready is not None:
            self.on_ready()

    # -- requests & input ------------------------------------------------------

    def request_update(self, incremental: bool = True) -> None:
        assert self.framebuffer is not None
        self._send(FramebufferUpdateRequest(
            incremental, self.framebuffer.bounds).encode())

    def send_key(self, keysym: int, down: bool) -> None:
        self._send(KeyEvent(down, keysym).encode())

    def press_key(self, keysym: int) -> None:
        """Full press + release."""
        self.send_key(keysym, True)
        self.send_key(keysym, False)

    def send_pointer(self, x: int, y: int, buttons: int) -> None:
        self._send(PointerEvent(buttons, x, y).encode())

    def ping(self) -> int:
        """Send one liveness probe; returns its sequence number.

        The answer (any later pong) clears :attr:`outstanding_pings`; a
        growing debt is the heartbeat loop's miss-based death signal.
        """
        self.pings_sent += 1
        self.outstanding_pings += 1
        self._send(Ping(self.pings_sent).encode())
        return self.pings_sent

    def click(self, x: int, y: int, button: int = 1) -> None:
        """Full press + release at (x, y)."""
        self.send_pointer(x, y, button)
        self.send_pointer(x, y, 0)

    # -- server messages ----------------------------------------------------------

    def _handle(self, message) -> None:
        if isinstance(message, FramebufferUpdate):
            region = self._apply_update(message)
            self.updates_received += 1
            if self.on_update is not None and not region.is_empty:
                # coalesce only when someone listens: passive mirrors skip
                # the cost on every applied update
                region.coalesce(self.damage_cap)
                self.on_update(region)
            # keep exactly one incremental request outstanding
            self.request_update(incremental=True)
        elif isinstance(message, Bell):
            if self.on_bell is not None:
                self.on_bell()
        elif isinstance(message, Pong):
            self.pongs_received += 1
            self.outstanding_pings = 0
            if self.on_pong is not None:
                self.on_pong(message.seq)
        elif isinstance(message, SessionGrant):
            self.resume_token = message.token
        elif isinstance(message, ServerCutText):
            pass  # clipboard ignored
        else:  # pragma: no cover - decoder only yields the types above
            raise AssertionError(f"unexpected message {message!r}")

    def _apply_update(self, update: FramebufferUpdate) -> Region:
        assert self.framebuffer is not None
        region = Region()
        self.rects_received += len(update.rects)
        for rect_update in update.rects:
            rect = rect_update.rect
            if rect_update.encoding == enc.DESKTOP_SIZE:
                width, height = rect_update.payload  # type: ignore[misc]
                self.framebuffer = Bitmap(max(width, 1), max(height, 1))
                region = Region([self.framebuffer.bounds])
                if self.on_resize is not None:
                    self.on_resize(width, height)
                continue
            if rect_update.encoding == enc.COPYRECT:
                src_x, src_y = rect_update.payload  # type: ignore[misc]
                src = Rect(src_x, src_y, rect.w, rect.h)
                dirty = self.framebuffer.copy_rect(src, rect.x, rect.y)
                region.add(dirty)
                continue
            packed = rect_update.payload
            rgb = self.pixel_format.unpack(
                packed.tobytes(), rect.w, rect.h)  # type: ignore[union-attr]
            patch = Bitmap.from_array(rgb)
            region.add(self.framebuffer.blit(patch, rect.x, rect.y))
        return region

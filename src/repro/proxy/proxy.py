"""UniIntProxy: device registration, plug-in hosting, session management."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.graphics.pixelformat import RGB888, PixelFormat
from repro.net.framing import FrameAssembler
from repro.net.transport import Transport
from repro.proxy.descriptors import DeviceDescriptor
from repro.proxy.session import ProxySession
from repro.proxy.upstream import DEFAULT_ENCODINGS, UniIntClient
from repro.util.errors import ProxyError
from repro.util.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devices.base import InteractionDevice


@dataclass
class DeviceBinding:
    """The proxy's record of one registered device.

    Registration is the paper's "plug-in upload": the device hands over
    its descriptor plus the input/output plug-in code the proxy will
    instantiate when the device is selected.
    """

    device_id: str
    descriptor: DeviceDescriptor
    endpoint: Transport
    input_plugin_factory: Optional[type]
    output_plugin_factory: Optional[type]
    frames: FrameAssembler = field(default_factory=FrameAssembler)


class UniIntProxy:
    """The universal interaction proxy.

    One proxy serves one user: it tracks that user's reachable devices and
    maintains one session to whichever UniInt server the user currently
    controls.  (A home deploys one proxy per user.)
    """

    def __init__(self, scheduler: Scheduler,
                 proxy_id: str = "uniint-proxy",
                 backpressure: bool = True) -> None:
        self.scheduler = scheduler
        self.proxy_id = proxy_id
        #: Honour device-link credit when pushing frames (ablation toggle):
        #: a saturated output device gets one merged, freshest frame once
        #: its link drains instead of a queue of stale ones.
        self.backpressure = backpressure
        self.devices: dict[str, DeviceBinding] = {}
        self.session: Optional[ProxySession] = None
        #: Fired after every device registration.  The self-healing home
        #: listens here to re-run device selection when a bounced device
        #: leg re-registers (its old binding was dropped on close).
        self.on_device_registered: Optional[
            Callable[[DeviceBinding], None]] = None

    # -- device registration ---------------------------------------------------

    def register_device(self, device: "InteractionDevice",
                        endpoint: Transport) -> DeviceBinding:
        """Register a device and take its plug-in upload."""
        descriptor = device.descriptor
        if descriptor.device_id in self.devices:
            raise ProxyError(
                f"device {descriptor.device_id!r} already registered")
        binding = DeviceBinding(
            device_id=descriptor.device_id,
            descriptor=descriptor,
            endpoint=endpoint,
            input_plugin_factory=device.input_plugin_factory,
            output_plugin_factory=device.output_plugin_factory,
        )
        binding.frames.on_frame = (
            lambda blob, b=binding: self._on_device_frame(b, blob))
        endpoint.on_receive = binding.frames.feed
        endpoint.on_close = (
            lambda device_id=descriptor.device_id:
            self._on_device_closed(device_id))
        self.devices[descriptor.device_id] = binding
        if self.on_device_registered is not None:
            self.on_device_registered(binding)
        return binding

    def unregister_device(self, device_id: str) -> None:
        binding = self.devices.pop(device_id, None)
        if binding is None:
            raise ProxyError(f"no device {device_id!r} registered")
        if self.session is not None:
            self.session.deselect_device(binding)
        if binding.endpoint.is_open:
            binding.endpoint.close()

    def _on_device_closed(self, device_id: str) -> None:
        binding = self.devices.pop(device_id, None)
        if binding is not None and self.session is not None:
            self.session.deselect_device(binding)

    def binding(self, device_id: str) -> DeviceBinding:
        binding = self.devices.get(device_id)
        if binding is None:
            raise ProxyError(f"no device {device_id!r} registered")
        return binding

    def list_devices(self, require_input: bool = False,
                     require_output: bool = False) -> list[DeviceDescriptor]:
        """Registered device descriptors, optionally filtered by role."""
        out = []
        for binding in sorted(self.devices.values(),
                              key=lambda b: b.device_id):
            if require_input and not binding.descriptor.is_input:
                continue
            if require_output and not binding.descriptor.is_output:
                continue
            out.append(binding.descriptor)
        return out

    # -- device traffic ------------------------------------------------------------

    def _on_device_frame(self, binding: DeviceBinding, blob: bytes) -> None:
        if self.session is not None:
            self.session.handle_device_event(binding, blob)

    # -- sessions ----------------------------------------------------------------------

    def connect(self, server_endpoint: Transport,
                secret: Optional[str] = None,
                pixel_format: PixelFormat = RGB888,
                encodings: tuple[int, ...] = DEFAULT_ENCODINGS,
                input_device: Optional[str] = None,
                output_device: Optional[str] = None) -> ProxySession:
        """Open a session to a UniInt server over the given endpoint.

        The wire pixel format is fixed per session (a mid-stream format
        change would desynchronise the persistent ZLIB streams); the proxy
        picks it for the expected device mix and adapts per device with
        output plug-ins.
        """
        if self.session is not None:
            raise ProxyError("proxy already has an active session")
        upstream = UniIntClient(server_endpoint, secret=secret,
                                pixel_format=pixel_format,
                                encodings=encodings)
        self.session = ProxySession(self, upstream)
        if input_device is not None:
            self.select_input(input_device)
        if output_device is not None:
            self.select_output(output_device)
        return self.session

    def disconnect(self) -> None:
        if self.session is not None:
            self.session.close()
            self.session = None

    def _require_session(self) -> ProxySession:
        if self.session is None:
            raise ProxyError("proxy has no active session")
        return self.session

    # -- device selection (the dynamic switch) --------------------------------------------

    def select_input(self, device_id: Optional[str]) -> None:
        """Switch the session's input device (None clears it)."""
        session = self._require_session()
        session.select_input(
            self.binding(device_id) if device_id is not None else None)

    def select_output(self, device_id: Optional[str]) -> None:
        """Switch the session's output device (None clears it)."""
        session = self._require_session()
        session.select_output(
            self.binding(device_id) if device_id is not None else None)

    @property
    def current_input(self) -> Optional[str]:
        if self.session is None or self.session.input_binding is None:
            return None
        return self.session.input_binding.device_id

    @property
    def current_output(self) -> Optional[str]:
        if self.session is None or self.session.output_binding is None:
            return None
        return self.session.output_binding.device_id

"""The UniInt proxy (paper §2.2, component 3) — "the most important
component in our system".

The proxy sits between the UniInt server and the interaction devices:

* **upstream** it is a universal-interaction-protocol client holding a
  mirror of the server framebuffer (:class:`UniIntClient`),
* **downstream** it hosts one *input plug-in* and one *output plug-in* —
  code supplied by the currently selected devices — that translate device
  events into universal key/pointer events and server bitmaps into
  device-displayable images,
* it **switches** devices dynamically: the pairing of input and output
  device can change mid-session without disturbing the appliance
  application (paper §2.1, second characteristic).
"""

from repro.proxy.descriptors import DeviceDescriptor, ScreenSpec
from repro.proxy.plugins import (
    DeviceImage,
    InputPlugin,
    OutputPlugin,
    SessionContext,
    ViewTransform,
)
from repro.proxy.upstream import UniIntClient
from repro.proxy.session import ProxySession
from repro.proxy.proxy import UniIntProxy

__all__ = [
    "DeviceDescriptor",
    "DeviceImage",
    "InputPlugin",
    "OutputPlugin",
    "ProxySession",
    "ScreenSpec",
    "SessionContext",
    "UniIntClient",
    "UniIntProxy",
    "ViewTransform",
]

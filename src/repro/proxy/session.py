"""ProxySession: one user's live path from devices to an appliance UI.

The session owns the upstream framebuffer mirror and the *currently
selected* input/output plug-in pair.  Selecting a different device swaps
the plug-in (and re-pushes the whole frame to a new output device) without
touching the upstream connection — the appliance application never notices
a switch, which is the paper's dynamic-selection property.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional

from repro.graphics.region import Region
from repro.net.framing import frame_chunks
from repro.proxy.plugins import (
    LINK_TAG_BELL,
    LINK_TAG_IMAGE,
    InputPlugin,
    OutputPlugin,
    SessionContext,
)
from repro.proxy.upstream import UniIntClient
from repro.util.errors import ProxyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.proxy.proxy import DeviceBinding, UniIntProxy


class ProxySession:
    """Wires an upstream UIP client to one input and one output device."""

    def __init__(self, proxy: "UniIntProxy", upstream: UniIntClient) -> None:
        self.proxy = proxy
        self.upstream = upstream
        self.context = SessionContext()
        self.input_binding: Optional["DeviceBinding"] = None
        self.output_binding: Optional["DeviceBinding"] = None
        self.input_plugin: Optional[InputPlugin] = None
        self.output_plugin: Optional[OutputPlugin] = None
        self.switch_count = 0
        self.frames_pushed = 0
        self.events_forwarded = 0
        #: Coalesced damage rects observed on the upstream mirror, and the
        #: pixel area actually pushed — the damage-tracking trajectory the
        #: bandwidth benchmarks record.
        self.damage_rects_seen = 0
        self.damage_area_pushed = 0
        #: Damage awaiting a saturated output link: merged here instead of
        #: queueing stale frames, flushed when the transport drains.
        self._deferred_push = Region()
        #: Frame pushes withheld by device-link backpressure, and the
        #: pixel area of the damage withheld at each deferral (an upper
        #: bound on the device-frame bytes a queued stale push would have
        #: cost — exact bytes depend on the output plug-in's format).
        self.updates_coalesced = 0
        self.bytes_suppressed = 0
        #: Device events the input plug-in rejected (malformed payloads).
        self.plugin_errors: list[str] = []
        upstream.on_update = self._on_update
        upstream.on_ready = self._push_full_frame
        upstream.on_resize = lambda w, h: self._push_full_frame()
        upstream.on_bell = self._on_bell

    # -- device selection ----------------------------------------------------

    def select_input(self, binding: Optional["DeviceBinding"]) -> None:
        """Install (or clear) the input device; uploads its plug-in."""
        if binding is self.input_binding:
            return
        if binding is not None:
            if not binding.descriptor.is_input:
                raise ProxyError(
                    f"device {binding.device_id!r} is not an input device")
            if binding.input_plugin_factory is None:
                raise ProxyError(
                    f"device {binding.device_id!r} supplied no input plug-in")
        if self.input_binding is not None:
            self.switch_count += 1
        self.input_binding = binding
        self.context.input_descriptor = (binding.descriptor
                                         if binding else None)
        self.input_plugin = (
            binding.input_plugin_factory(binding.descriptor, self.context)
            if binding is not None else None)

    def select_output(self, binding: Optional["DeviceBinding"]) -> None:
        """Install (or clear) the output device; re-pushes the full frame."""
        if binding is self.output_binding:
            return
        if binding is not None:
            if not binding.descriptor.is_output:
                raise ProxyError(
                    f"device {binding.device_id!r} is not an output device")
            if binding.output_plugin_factory is None:
                raise ProxyError(
                    f"device {binding.device_id!r} supplied no output "
                    f"plug-in")
        if self.output_binding is not None:
            self.switch_count += 1
            self.output_binding.endpoint.on_writable = None
        self.output_binding = binding
        self._deferred_push.clear()
        self.context.output_descriptor = (binding.descriptor
                                          if binding else None)
        self.context.view = None
        self.output_plugin = (
            binding.output_plugin_factory(binding.descriptor, self.context)
            if binding is not None else None)
        if binding is not None:
            binding.endpoint.on_writable = self._on_output_writable
            self._push_full_frame()

    def deselect_device(self, binding: "DeviceBinding") -> None:
        """Clear the device from whichever role it holds (on unregister)."""
        if self.input_binding is binding:
            self.select_input(None)
        if self.output_binding is binding:
            self.select_output(None)

    # -- device -> upstream ---------------------------------------------------------

    def handle_device_event(self, binding: "DeviceBinding",
                            blob: bytes) -> None:
        """A framed native event arrived from a registered device.

        A malformed event (bad JSON, plug-in rejection) is recorded and
        dropped — one broken device report must never take the session
        down.
        """
        if binding is not self.input_binding or self.input_plugin is None:
            return  # unselected devices are heard but ignored
        try:
            event = json.loads(blob.decode("utf-8"))
            messages = self.input_plugin.process(event)
        except (ValueError, ProxyError) as error:
            self.plugin_errors.append(
                f"{binding.device_id}: {error}")
            return
        for message in messages:
            self.events_forwarded += 1
            if self.upstream.endpoint.is_open:
                self.upstream.endpoint.send(message.encode())

    # -- upstream -> device -----------------------------------------------------------

    def _on_update(self, region: Region) -> None:
        self._push_frame(region)

    def _push_full_frame(self) -> None:
        if self.upstream.framebuffer is not None:
            self._push_frame(Region([self.upstream.framebuffer.bounds]))

    def _on_output_writable(self) -> None:
        """The output device's link drained: flush any deferred damage."""
        if not self._deferred_push.is_empty:
            self._push_frame(Region())

    def _push_frame(self, region: Region) -> None:
        if (self.output_plugin is None or self.output_binding is None
                or self.upstream.framebuffer is None):
            return
        for rect in region:
            self._deferred_push.add(rect)
        if self._deferred_push.is_empty:
            return
        endpoint = self.output_binding.endpoint
        if self.proxy.backpressure and not endpoint.writable:
            # The device bearer is saturated (a phone link mid-frame):
            # hold the damage merged in ``_deferred_push``; the endpoint's
            # on_writable flushes one fresh frame once the link drains.
            self.updates_coalesced += 1
            self.bytes_suppressed += self._deferred_push.bounds().area
            return
        bounds = self._deferred_push.bounds()
        self.damage_rects_seen += len(self._deferred_push)
        self.damage_area_pushed += bounds.area
        self._deferred_push = Region()
        image = self.output_plugin.process(self.upstream.framebuffer,
                                           bounds)
        if endpoint.is_open:
            endpoint.send(frame_chunks(
                (bytes([LINK_TAG_IMAGE]), image.encode())))
            self.frames_pushed += 1

    def _on_bell(self) -> None:
        """Forward a server bell to the output device as a beep."""
        if (self.output_binding is not None
                and self.output_binding.endpoint.is_open):
            self.output_binding.endpoint.send(frame_chunks(
                bytes([LINK_TAG_BELL])))

    # -- teardown -----------------------------------------------------------------------

    def close(self) -> None:
        self.upstream.close()
        self.select_input(None)
        if self.output_binding is not None:
            self.output_binding.endpoint.on_writable = None
        self.output_plugin = None
        self.output_binding = None

"""ProxySession: one user's live path from devices to an appliance UI.

The session owns the upstream framebuffer mirror and the *currently
selected* input/output plug-in pair.  Selecting a different device swaps
the plug-in (and re-pushes the whole frame to a new output device) without
touching the upstream connection — the appliance application never notices
a switch, which is the paper's dynamic-selection property.
"""

from __future__ import annotations

import json
import random
from typing import TYPE_CHECKING, Callable, Optional

from repro.graphics.region import Region
from repro.net.framing import frame_chunks
from repro.net.transport import Transport
from repro.proxy.plugins import (
    LINK_TAG_BELL,
    LINK_TAG_IMAGE,
    InputPlugin,
    OutputPlugin,
    SessionContext,
)
from repro.proxy.upstream import UniIntClient
from repro.util.errors import ProxyError, TransportError
from repro.util.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.proxy.proxy import DeviceBinding, UniIntProxy


class SessionResilience:
    """Self-healing for one session's upstream leg.

    Two death signals feed one recovery path:

    * the transport closes under the session (RST, EOF) — immediate;
    * an activity-gated heartbeat finds ``max_misses`` pings unanswered
      (a stalled or partitioned link that never delivered a FIN).

    Recovery redials with exponential backoff, jitter and a cap, presents
    the server's resume token, and adopts the fresh
    :class:`~repro.proxy.upstream.UniIntClient` in place — plug-ins,
    device bindings and selection survive; the cost is exactly one
    full-frame resync (the non-incremental request a resuming client
    sends).

    Heartbeats are *dormant-by-default*: a session that is idle for
    ``dormant_after`` consecutive beats stops probing until device events
    or updates wake it.  Every timer here is one-shot, so
    ``run_until_idle``/``settle`` still terminate — an idle healthy home
    goes quiet instead of beating forever.
    """

    def __init__(self, session: "ProxySession", scheduler: Scheduler,
                 dial: Callable[[], Transport], *,
                 heartbeat_s: float = 0.5, max_misses: int = 3,
                 backoff_base_s: float = 0.2, backoff_cap_s: float = 5.0,
                 max_attempts: int = 8, attempt_timeout_s: float = 2.0,
                 dormant_after: int = 2, seed: int = 0) -> None:
        self.session = session
        self.scheduler = scheduler
        self.dial = dial
        self.heartbeat_s = heartbeat_s
        self.max_misses = max_misses
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.max_attempts = max_attempts
        self.attempt_timeout_s = attempt_timeout_s
        self.dormant_after = dormant_after
        self._rng = random.Random(repr(("resilience", seed)))
        self.enabled = True
        self.reconnecting = False
        self.failed_permanently = False
        # -- observability ------------------------------------------------
        self.heartbeats_sent = 0
        self.reconnect_count = 0
        #: Virtual seconds from death detection to session readiness, one
        #: entry per successful reconnect (the bench's p50/p99 source).
        self.reconnect_latencies: list[float] = []
        self.death_reasons: list[str] = []
        self.attempt_failures: list[str] = []
        self.give_up_reason: Optional[str] = None
        # -- internals ----------------------------------------------------
        self._hb_event = None
        self._retry_event = None
        self._attempt_timer = None
        self._pending_upstream: Optional[UniIntClient] = None
        self._idle_beats = 0
        self._attempt = 0
        self._death_at: Optional[float] = None
        self._last_activity = self._activity()
        self._hook(session.upstream)
        self._arm_heartbeat()

    # -- liveness ---------------------------------------------------------

    def _activity(self) -> tuple[int, int]:
        up = self.session.upstream
        return (up.updates_received, self.session.events_forwarded)

    def _hook(self, upstream: UniIntClient) -> None:
        upstream.on_session_close = self._on_lost

    def _arm_heartbeat(self) -> None:
        if (not self.enabled or self.reconnecting
                or self._hb_event is not None):
            return
        self._hb_event = self.scheduler.call_later(self.heartbeat_s,
                                                   self._beat)

    def wake(self) -> None:
        """Traffic observed: make sure a dormant heartbeat is re-armed."""
        self._idle_beats = 0
        self._arm_heartbeat()

    def _beat(self) -> None:
        self._hb_event = None
        if not self.enabled or self.reconnecting:
            return
        up = self.session.upstream
        if up.closed:
            return  # the close handler drives recovery
        if up.outstanding_pings >= self.max_misses:
            self._declare_dead(
                f"{up.outstanding_pings} unanswered pings")
            return
        activity = self._activity()
        if activity != self._last_activity:
            self._last_activity = activity
            self._idle_beats = 0
        else:
            self._idle_beats += 1
            if (self._idle_beats > self.dormant_after
                    and up.outstanding_pings == 0):
                return  # healthy and idle: go dormant until woken
        if up.ready:
            up.ping()
            self.heartbeats_sent += 1
        self._arm_heartbeat()

    def _declare_dead(self, reason: str) -> None:
        up = self.session.upstream
        self.death_reasons.append(reason)
        self._death_at = self.scheduler.now()
        # Hard-kill the zombie leg (RST) so the server parks the session
        # now instead of holding a half-open peer through the grace window.
        up.on_session_close = None
        up.closed = True
        if up.endpoint.is_open:
            up.endpoint.abort()
        self._begin_reconnect()

    def _on_lost(self) -> None:
        """The transport died under us (reset or EOF)."""
        if not self.enabled or self.reconnecting:
            return
        self.death_reasons.append("transport closed")
        self._death_at = self.scheduler.now()
        self._begin_reconnect()

    # -- reconnect --------------------------------------------------------

    def _begin_reconnect(self) -> None:
        if not self.enabled or self.failed_permanently:
            return
        self.reconnecting = True
        self._cancel(("_hb_event",))
        self._attempt = 0
        self._schedule_attempt(0.0)

    def _schedule_attempt(self, delay: float) -> None:
        self._retry_event = self.scheduler.call_later(delay,
                                                      self._try_attempt)

    def _try_attempt(self) -> None:
        self._retry_event = None
        if not self.enabled:
            return
        if self._attempt >= self.max_attempts:
            self.failed_permanently = True
            self.reconnecting = False
            self.give_up_reason = (
                f"gave up after {self.max_attempts} attempts: "
                f"{self.death_reasons[-1] if self.death_reasons else '?'}")
            return
        self._attempt += 1
        old = self.session.upstream
        try:
            endpoint = self.dial()
        except (TransportError, OSError) as error:
            self._retry_later(f"dial failed: {error}")
            return
        upstream = UniIntClient(
            endpoint, secret=old.secret, pixel_format=old.pixel_format,
            encodings=old.encodings, damage_cap=old.damage_cap,
            resume_from=old.resume_token)
        upstream.on_error = self._on_attempt_error
        upstream.on_session_close = self._on_attempt_close
        upstream.on_ready = self._on_reconnected
        self._pending_upstream = upstream
        self._attempt_timer = self.scheduler.call_later(
            self.attempt_timeout_s, self._on_attempt_timeout)

    def _retry_later(self, reason: str) -> None:
        self.attempt_failures.append(f"attempt {self._attempt}: {reason}")
        backoff = min(self.backoff_cap_s,
                      self.backoff_base_s * (2 ** (self._attempt - 1)))
        backoff *= self._rng.uniform(0.5, 1.5)  # de-sync a redialing fleet
        self._schedule_attempt(backoff)

    def _abandon_attempt(self) -> None:
        self._cancel(("_attempt_timer",))
        up, self._pending_upstream = self._pending_upstream, None
        if up is not None:
            up.on_ready = up.on_error = up.on_session_close = None
            up.closed = True
            if up.endpoint.is_open:
                up.endpoint.abort()

    def _on_attempt_timeout(self) -> None:
        self._attempt_timer = None
        self._abandon_attempt()
        self._retry_later("attempt timed out")

    def _on_attempt_close(self) -> None:
        self._cancel(("_attempt_timer",))
        self._pending_upstream = None
        self._retry_later("connection died mid-handshake")

    def _on_attempt_error(self, reason: str) -> None:
        self._cancel(("_attempt_timer",))
        self._pending_upstream = None
        self._retry_later(f"handshake failed: {reason}")

    def _on_reconnected(self) -> None:
        upstream, self._pending_upstream = self._pending_upstream, None
        self._cancel(("_attempt_timer",))
        assert upstream is not None
        self.reconnecting = False
        self.reconnect_count += 1
        if self._death_at is not None:
            self.reconnect_latencies.append(
                self.scheduler.now() - self._death_at)
            self._death_at = None
        self.session._adopt_upstream(upstream)
        upstream.on_ready = None
        self._hook(upstream)
        self._last_activity = self._activity()
        self._idle_beats = 0
        self._arm_heartbeat()

    # -- teardown ---------------------------------------------------------

    def _cancel(self, names: tuple[str, ...]) -> None:
        for name in names:
            event = getattr(self, name)
            if event is not None:
                event.cancel()
                setattr(self, name, None)

    def disable(self) -> None:
        """Stop all timers and abandon any in-flight redial."""
        if not self.enabled:
            return
        self.enabled = False
        self.reconnecting = False
        self._cancel(("_hb_event", "_retry_event"))
        self._abandon_attempt()


class ProxySession:
    """Wires an upstream UIP client to one input and one output device."""

    def __init__(self, proxy: "UniIntProxy", upstream: UniIntClient) -> None:
        self.proxy = proxy
        self.upstream = upstream
        self.context = SessionContext()
        self.input_binding: Optional["DeviceBinding"] = None
        self.output_binding: Optional["DeviceBinding"] = None
        self.input_plugin: Optional[InputPlugin] = None
        self.output_plugin: Optional[OutputPlugin] = None
        self.switch_count = 0
        self.frames_pushed = 0
        self.events_forwarded = 0
        #: Coalesced damage rects observed on the upstream mirror, and the
        #: pixel area actually pushed — the damage-tracking trajectory the
        #: bandwidth benchmarks record.
        self.damage_rects_seen = 0
        self.damage_area_pushed = 0
        #: Damage awaiting a saturated output link: merged here instead of
        #: queueing stale frames, flushed when the transport drains.
        self._deferred_push = Region()
        #: Frame pushes withheld by device-link backpressure, and the
        #: pixel area of the damage withheld at each deferral (an upper
        #: bound on the device-frame bytes a queued stale push would have
        #: cost — exact bytes depend on the output plug-in's format).
        self.updates_coalesced = 0
        self.bytes_suppressed = 0
        #: Device events the input plug-in rejected (malformed payloads).
        self.plugin_errors: list[str] = []
        #: Self-healing machinery; installed by :meth:`enable_resilience`.
        self.resilience: Optional[SessionResilience] = None
        upstream.on_update = self._on_update
        upstream.on_ready = self._push_full_frame
        upstream.on_resize = lambda w, h: self._push_full_frame()
        upstream.on_bell = self._on_bell

    # -- self-healing --------------------------------------------------------

    def enable_resilience(self, scheduler: Scheduler,
                          dial: Callable[[], Transport],
                          **kwargs) -> SessionResilience:
        """Arm heartbeats and automatic reconnect for the upstream leg.

        ``dial`` must return a fresh connected transport to the same
        UniInt server each time it is called (it will be called once per
        reconnect attempt).
        """
        if self.resilience is not None:
            raise ProxyError("session resilience already enabled")
        self.resilience = SessionResilience(self, scheduler, dial, **kwargs)
        return self.resilience

    def _adopt_upstream(self, upstream: UniIntClient) -> None:
        """Swap in a reconnected upstream client, keeping session state.

        Plug-ins, bindings and selection are untouched; the frame content
        arrives via the resuming client's single non-incremental update,
        which flows through :meth:`_on_update` like any other damage.
        """
        old = self.upstream
        if old is not upstream:
            old.on_update = None
            old.on_ready = None
            old.on_resize = None
            old.on_bell = None
            old.on_session_close = None
        self.upstream = upstream
        upstream.on_update = self._on_update
        upstream.on_resize = lambda w, h: self._push_full_frame()
        upstream.on_bell = self._on_bell

    # -- device selection ----------------------------------------------------

    def select_input(self, binding: Optional["DeviceBinding"]) -> None:
        """Install (or clear) the input device; uploads its plug-in."""
        if binding is self.input_binding:
            return
        if binding is not None:
            if not binding.descriptor.is_input:
                raise ProxyError(
                    f"device {binding.device_id!r} is not an input device")
            if binding.input_plugin_factory is None:
                raise ProxyError(
                    f"device {binding.device_id!r} supplied no input plug-in")
        if self.input_binding is not None:
            self.switch_count += 1
        self.input_binding = binding
        self.context.input_descriptor = (binding.descriptor
                                         if binding else None)
        self.input_plugin = (
            binding.input_plugin_factory(binding.descriptor, self.context)
            if binding is not None else None)

    def select_output(self, binding: Optional["DeviceBinding"]) -> None:
        """Install (or clear) the output device; re-pushes the full frame."""
        if binding is self.output_binding:
            return
        if binding is not None:
            if not binding.descriptor.is_output:
                raise ProxyError(
                    f"device {binding.device_id!r} is not an output device")
            if binding.output_plugin_factory is None:
                raise ProxyError(
                    f"device {binding.device_id!r} supplied no output "
                    f"plug-in")
        if self.output_binding is not None:
            self.switch_count += 1
            self.output_binding.endpoint.on_writable = None
        self.output_binding = binding
        self._deferred_push.clear()
        self.context.output_descriptor = (binding.descriptor
                                          if binding else None)
        self.context.view = None
        self.output_plugin = (
            binding.output_plugin_factory(binding.descriptor, self.context)
            if binding is not None else None)
        if binding is not None:
            binding.endpoint.on_writable = self._on_output_writable
            self._push_full_frame()

    def deselect_device(self, binding: "DeviceBinding") -> None:
        """Clear the device from whichever role it holds (on unregister)."""
        if self.input_binding is binding:
            self.select_input(None)
        if self.output_binding is binding:
            self.select_output(None)

    # -- device -> upstream ---------------------------------------------------------

    def handle_device_event(self, binding: "DeviceBinding",
                            blob: bytes) -> None:
        """A framed native event arrived from a registered device.

        A malformed event (bad JSON, plug-in rejection) is recorded and
        dropped — one broken device report must never take the session
        down.
        """
        if self.resilience is not None:
            self.resilience.wake()
        if binding is not self.input_binding or self.input_plugin is None:
            return  # unselected devices are heard but ignored
        try:
            event = json.loads(blob.decode("utf-8"))
            messages = self.input_plugin.process(event)
        except (ValueError, ProxyError) as error:
            self.plugin_errors.append(
                f"{binding.device_id}: {error}")
            return
        for message in messages:
            self.events_forwarded += 1
            if self.upstream.endpoint.is_open:
                self.upstream.endpoint.send(message.encode())

    # -- upstream -> device -----------------------------------------------------------

    def _on_update(self, region: Region) -> None:
        if self.resilience is not None:
            self.resilience.wake()
        self._push_frame(region)

    def _push_full_frame(self) -> None:
        if self.upstream.framebuffer is not None:
            self._push_frame(Region([self.upstream.framebuffer.bounds]))

    def _on_output_writable(self) -> None:
        """The output device's link drained: flush any deferred damage."""
        if not self._deferred_push.is_empty:
            self._push_frame(Region())

    def _push_frame(self, region: Region) -> None:
        if (self.output_plugin is None or self.output_binding is None
                or self.upstream.framebuffer is None):
            return
        for rect in region:
            self._deferred_push.add(rect)
        if self._deferred_push.is_empty:
            return
        endpoint = self.output_binding.endpoint
        if self.proxy.backpressure and not endpoint.writable:
            # The device bearer is saturated (a phone link mid-frame):
            # hold the damage merged in ``_deferred_push``; the endpoint's
            # on_writable flushes one fresh frame once the link drains.
            self.updates_coalesced += 1
            self.bytes_suppressed += self._deferred_push.bounds().area
            return
        bounds = self._deferred_push.bounds()
        self.damage_rects_seen += len(self._deferred_push)
        self.damage_area_pushed += bounds.area
        self._deferred_push = Region()
        image = self.output_plugin.process(self.upstream.framebuffer,
                                           bounds)
        if endpoint.is_open:
            endpoint.send(frame_chunks(
                (bytes([LINK_TAG_IMAGE]), image.encode())))
            self.frames_pushed += 1

    def _on_bell(self) -> None:
        """Forward a server bell to the output device as a beep."""
        if (self.output_binding is not None
                and self.output_binding.endpoint.is_open):
            self.output_binding.endpoint.send(frame_chunks(
                bytes([LINK_TAG_BELL])))

    # -- teardown -----------------------------------------------------------------------

    def close(self) -> None:
        if self.resilience is not None:
            self.resilience.disable()
        self.upstream.close()
        self.select_input(None)
        if self.output_binding is not None:
            self.output_binding.endpoint.on_writable = None
        self.output_plugin = None
        self.output_binding = None

"""The simulated home bus (IEEE-1394 style) with hotplug.

Appliances attach to and detach from the bus at runtime; each change
triggers a *bus reset* after a short settle delay, and reset observers see
the new device set.  The :class:`~repro.havi.manager.DcmManager` is the main
observer: it installs/uninstalls DCMs to mirror the bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.util.errors import HaviError
from repro.util.scheduler import Scheduler

#: Bus settle time between a topology change and the reset notification.
RESET_DELAY = 0.005


@dataclass(frozen=True)
class DeviceInfo:
    """Identity plate of a physical device on the bus."""

    guid: str
    device_class: str
    manufacturer: str
    model: str
    name: str


class BusDevice(Protocol):
    """What the bus requires of an attachable device."""

    @property
    def info(self) -> DeviceInfo: ...  # pragma: no cover - protocol


ResetObserver = Callable[[list[DeviceInfo]], None]


class HomeBus:
    """Hotplug bus: tracks attached devices, fires coalesced bus resets."""

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler
        self._devices: dict[str, BusDevice] = {}
        self._observers: list[ResetObserver] = []
        self._reset_pending = False
        self.reset_count = 0
        #: Observer callbacks that raised during a reset (isolation: one
        #: faulty observer never starves the rest of the notification).
        self.observer_errors = 0
        self.last_observer_error: Optional[BaseException] = None

    # -- topology ------------------------------------------------------------

    def attach(self, device: BusDevice) -> None:
        guid = device.info.guid
        if guid in self._devices:
            raise HaviError(f"device {guid} already on the bus")
        self._devices[guid] = device
        self._schedule_reset()

    def detach(self, guid: str) -> None:
        if guid not in self._devices:
            raise HaviError(f"device {guid} is not on the bus")
        del self._devices[guid]
        self._schedule_reset()

    def device(self, guid: str) -> Optional[BusDevice]:
        return self._devices.get(guid)

    @property
    def devices(self) -> list[DeviceInfo]:
        return sorted((d.info for d in self._devices.values()),
                      key=lambda info: info.guid)

    def __len__(self) -> int:
        return len(self._devices)

    # -- resets ----------------------------------------------------------------

    def observe_resets(self, observer: ResetObserver) -> None:
        self._observers.append(observer)

    def unobserve_resets(self, observer: ResetObserver) -> None:
        """Stop notifying ``observer`` (safe to call mid-reset)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def _schedule_reset(self) -> None:
        # rapid attach/detach bursts coalesce into a single reset,
        # as on a real 1394 bus
        if self._reset_pending:
            return
        self._reset_pending = True
        self.scheduler.call_later(RESET_DELAY, self._fire_reset)

    def _fire_reset(self) -> None:
        # ``_reset_pending`` drops *before* observers run, so an observer
        # that attaches/detaches devices mid-reset schedules a fresh reset
        # instead of being swallowed by the coalescing flag.
        self._reset_pending = False
        self.reset_count += 1
        snapshot = self.devices
        first_error: Optional[BaseException] = None
        for observer in list(self._observers):
            # snapshot of the observer list: observers that subscribe or
            # unsubscribe mid-reset never skip (or double-notify) others
            try:
                observer(snapshot)
            except Exception as exc:
                # isolate per-observer failures: everyone still sees this
                # reset, then the first error surfaces to the scheduler
                # (``last_observer_error`` keeps the most recent one)
                self.observer_errors += 1
                self.last_observer_error = exc
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

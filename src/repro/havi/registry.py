"""The HAVi registry: attribute-based software element lookup.

Software elements register a table of attributes (device class, FCM type,
manufacturer, ...).  Clients find them with a query tree of comparisons
combined with AND/OR/NOT — this is how the home appliance application
discovers "every FCM currently on the network" to build its control panel
(paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.havi.seid import SEID
from repro.util.errors import RegistryError

#: Attribute values are plain scalars or strings.
AttrValue = object


@dataclass(frozen=True)
class Attribute:
    """One (name, value) attribute in a registration."""

    name: str
    value: AttrValue


class Query:
    """Base query node; subclasses implement :meth:`matches`."""

    def matches(self, attributes: dict[str, AttrValue]) -> bool:
        raise NotImplementedError

    # composition sugar
    def __and__(self, other: "Query") -> "Query":
        return QueryAnd([self, other])

    def __or__(self, other: "Query") -> "Query":
        return QueryOr([self, other])

    def __invert__(self) -> "Query":
        return QueryNot(self)


_OPS: dict[str, Callable[[AttrValue, AttrValue], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">": lambda a, b: a > b,       # type: ignore[operator]
    "<": lambda a, b: a < b,       # type: ignore[operator]
    ">=": lambda a, b: a >= b,     # type: ignore[operator]
    "<=": lambda a, b: a <= b,     # type: ignore[operator]
    "contains": lambda a, b: b in a,  # type: ignore[operator]
    "exists": lambda a, b: True,
}


@dataclass(frozen=True)
class Comparison(Query):
    """Leaf query: compare one attribute against a value."""

    attribute: str
    op: str
    value: AttrValue = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise RegistryError(f"unknown comparison op {self.op!r}")

    def matches(self, attributes: dict[str, AttrValue]) -> bool:
        if self.attribute not in attributes:
            return False
        try:
            return _OPS[self.op](attributes[self.attribute], self.value)
        except TypeError:
            return False


@dataclass(frozen=True)
class QueryAnd(Query):
    children: tuple[Query, ...]

    def __init__(self, children: Iterable[Query]) -> None:
        object.__setattr__(self, "children", tuple(children))
        if not self.children:
            raise RegistryError("AND query needs at least one child")

    def matches(self, attributes: dict[str, AttrValue]) -> bool:
        return all(child.matches(attributes) for child in self.children)


@dataclass(frozen=True)
class QueryOr(Query):
    children: tuple[Query, ...]

    def __init__(self, children: Iterable[Query]) -> None:
        object.__setattr__(self, "children", tuple(children))
        if not self.children:
            raise RegistryError("OR query needs at least one child")

    def matches(self, attributes: dict[str, AttrValue]) -> bool:
        return any(child.matches(attributes) for child in self.children)


@dataclass(frozen=True)
class QueryNot(Query):
    child: Query

    def matches(self, attributes: dict[str, AttrValue]) -> bool:
        return not self.child.matches(attributes)


@dataclass
class Registration:
    seid: SEID
    attributes: dict[str, AttrValue]


class Registry:
    """The network-wide element directory.

    ``on_change`` observers fire after every register/unregister — the event
    manager bridges these into HAVi events so applications can track
    appliance arrival/departure.
    """

    def __init__(self) -> None:
        self._entries: dict[SEID, Registration] = {}
        self.on_change: list[Callable[[str, Registration], None]] = []

    def register(self, seid: SEID,
                 attributes: dict[str, AttrValue]) -> None:
        if seid in self._entries:
            raise RegistryError(f"SEID {seid} already in registry")
        entry = Registration(seid, dict(attributes))
        self._entries[seid] = entry
        for observer in list(self.on_change):
            observer("registered", entry)

    def unregister(self, seid: SEID) -> None:
        entry = self._entries.pop(seid, None)
        if entry is None:
            raise RegistryError(f"SEID {seid} not in registry")
        for observer in list(self.on_change):
            observer("unregistered", entry)

    def update_attributes(self, seid: SEID,
                          attributes: dict[str, AttrValue]) -> None:
        entry = self._entries.get(seid)
        if entry is None:
            raise RegistryError(f"SEID {seid} not in registry")
        entry.attributes.update(attributes)
        for observer in list(self.on_change):
            observer("updated", entry)

    def get_attributes(self, seid: SEID) -> dict[str, AttrValue]:
        entry = self._entries.get(seid)
        if entry is None:
            raise RegistryError(f"SEID {seid} not in registry")
        return dict(entry.attributes)

    def contains(self, seid: SEID) -> bool:
        return seid in self._entries

    def query(self, query: Optional[Query] = None) -> list[SEID]:
        """SEIDs matching the query (all entries when query is None)."""
        if query is None:
            return sorted(self._entries)
        return sorted(
            seid for seid, entry in self._entries.items()
            if query.matches(entry.attributes)
        )

    def __len__(self) -> int:
        return len(self._entries)

"""HAVi DDI — Data-Driven Interaction.

HAVi's own answer to device UIs: a DCM exports an *abstract element tree*
(panels, buttons, toggles, ranges, text) and controllers render it natively
and send back semantic actions.  The paper's universal interaction takes
the opposite route (ship pixels, accept raw key/pointer events) precisely
because DDI requires every controller to implement the DDI renderer and
every appliance vendor to author DDI trees.

Implementing both lets the reproduction *measure* the trade the paper only
argues: DDI moves ~100 bytes per interaction where the thin-client moves a
frame (`benchmarks/bench_ddi_vs_uip.py`), but the thin-client needs zero
appliance-side UI description and works with unmodified GUI applications.

Components:

* element model (:class:`DdiPanel`, :class:`DdiButton`, :class:`DdiToggle`,
  :class:`DdiRange`, :class:`DdiChoice`, :class:`DdiText`) with dict/JSON
  round-tripping,
* per-FCM-type tree builders (:data:`DDI_SPECS`),
* :class:`DdiServer` — one per DCM, answers ``ddi.get_tree`` /
  ``ddi.action``, posts ``ddi.changed`` events when FCM state moves,
* :class:`DdiController` — client-side cache + action sender,
* :func:`render_text` — a 2002-phone-style text renderer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.app.commands import Command, CommandLog, CommandSpine
from repro.havi.dcm import Dcm
from repro.havi.element import SoftwareElement
from repro.havi.events import EventManager, HaviEvent
from repro.havi.fcm import Fcm, FcmCommandError
from repro.havi.messaging import HaviMessage, MessageSystem
from repro.havi.registry import Registry
from repro.havi.seid import SEID
from repro.util.errors import HaviError

#: Handle offset for DDI servers on a device (FCMs use 1..; DCM uses 0).
DDI_HANDLE = 200


# -- element model -----------------------------------------------------------


@dataclass
class DdiElement:
    """Base element: a stable id plus a human label."""

    element_id: str
    label: str

    kind = "element"

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "id": self.element_id,
                "label": self.label}
        data.update(self._extra())
        return data

    def _extra(self) -> dict:
        return {}


@dataclass
class DdiText(DdiElement):
    """Read-only status text bound to an FCM state key."""

    key: str = ""
    value: object = None

    kind = "text"

    def _extra(self) -> dict:
        return {"key": self.key, "value": self.value}


@dataclass
class DdiButton(DdiElement):
    """Press-able action bound to an FCM command."""

    command: str = ""
    args: dict = field(default_factory=dict)

    kind = "button"

    def _extra(self) -> dict:
        return {"command": self.command, "args": self.args}


@dataclass
class DdiToggle(DdiElement):
    """Boolean control bound to a state key and a setter command."""

    key: str = ""
    command: str = ""
    arg_name: str = "on"
    value: bool = False

    kind = "toggle"

    def _extra(self) -> dict:
        return {"key": self.key, "command": self.command,
                "arg": self.arg_name, "value": self.value}


@dataclass
class DdiRange(DdiElement):
    """Bounded integer control."""

    key: str = ""
    command: str = ""
    arg_name: str = "value"
    minimum: int = 0
    maximum: int = 100
    step: int = 1
    value: int = 0

    kind = "range"

    def _extra(self) -> dict:
        return {"key": self.key, "command": self.command,
                "arg": self.arg_name, "min": self.minimum,
                "max": self.maximum, "step": self.step,
                "value": self.value}


@dataclass
class DdiChoice(DdiElement):
    """One-of-N control."""

    key: str = ""
    command: str = ""
    arg_name: str = "value"
    options: tuple = ()
    value: Optional[str] = None

    kind = "choice"

    def _extra(self) -> dict:
        return {"key": self.key, "command": self.command,
                "arg": self.arg_name, "options": list(self.options),
                "value": self.value}


@dataclass
class DdiPanel(DdiElement):
    """Grouping container."""

    children: list = field(default_factory=list)

    kind = "panel"

    def _extra(self) -> dict:
        return {"children": [child.to_dict() for child in self.children]}

    def walk(self):
        yield self
        for child in self.children:
            if isinstance(child, DdiPanel):
                yield from child.walk()
            else:
                yield child

    def find(self, element_id: str) -> Optional[DdiElement]:
        for element in self.walk():
            if element.element_id == element_id:
                return element
        return None


def element_from_dict(data: dict) -> DdiElement:
    """Inverse of ``to_dict`` (controllers rebuild received trees)."""
    kind = data.get("kind")
    ident = data["id"]
    label = data.get("label", "")
    if kind == "panel":
        panel = DdiPanel(ident, label)
        panel.children = [element_from_dict(c)
                          for c in data.get("children", [])]
        return panel
    if kind == "text":
        return DdiText(ident, label, key=data.get("key", ""),
                       value=data.get("value"))
    if kind == "button":
        return DdiButton(ident, label, command=data.get("command", ""),
                         args=dict(data.get("args", {})))
    if kind == "toggle":
        return DdiToggle(ident, label, key=data.get("key", ""),
                         command=data.get("command", ""),
                         arg_name=data.get("arg", "on"),
                         value=bool(data.get("value", False)))
    if kind == "range":
        return DdiRange(ident, label, key=data.get("key", ""),
                        command=data.get("command", ""),
                        arg_name=data.get("arg", "value"),
                        minimum=int(data.get("min", 0)),
                        maximum=int(data.get("max", 100)),
                        step=int(data.get("step", 1)),
                        value=int(data.get("value", 0)))
    if kind == "choice":
        return DdiChoice(ident, label, key=data.get("key", ""),
                         command=data.get("command", ""),
                         arg_name=data.get("arg", "value"),
                         options=tuple(data.get("options", ())),
                         value=data.get("value"))
    raise HaviError(f"unknown DDI element kind {kind!r}")


# -- per-FCM-type tree builders -------------------------------------------------


def _tuner_spec(prefix, fcm):
    return [
        DdiToggle(f"{prefix}power", "Power", key="power",
                  command="power.set", arg_name="on"),
        DdiText(f"{prefix}station", "Station", key="station"),
        DdiButton(f"{prefix}ch_up", "CH+", command="channel.up"),
        DdiButton(f"{prefix}ch_down", "CH-", command="channel.down"),
        DdiRange(f"{prefix}volume", "Volume", key="volume",
                 command="volume.set", arg_name="volume",
                 minimum=0, maximum=100, step=5),
        DdiToggle(f"{prefix}mute", "Mute", key="mute",
                  command="mute.set", arg_name="on"),
    ]


def _display_spec(prefix, fcm):
    return [
        DdiChoice(f"{prefix}source", "Source", key="source",
                  command="source.set", arg_name="source",
                  options=("tuner", "vcr", "dvd")),
        DdiRange(f"{prefix}brightness", "Brightness", key="brightness",
                 command="brightness.set", arg_name="brightness",
                 minimum=0, maximum=100, step=10),
    ]


def _vcr_spec(prefix, fcm):
    return [
        DdiToggle(f"{prefix}power", "Power", key="power",
                  command="power.set", arg_name="on"),
        DdiText(f"{prefix}transport", "Transport", key="transport"),
        DdiText(f"{prefix}counter", "Counter", key="counter"),
        DdiButton(f"{prefix}play", "Play", command="transport.play"),
        DdiButton(f"{prefix}stop", "Stop", command="transport.stop"),
        DdiButton(f"{prefix}pause", "Pause", command="transport.pause"),
        DdiButton(f"{prefix}rew", "Rew", command="transport.rew"),
        DdiButton(f"{prefix}ff", "FF", command="transport.ff"),
        DdiButton(f"{prefix}rec", "Rec", command="transport.record"),
    ]


def _amplifier_spec(prefix, fcm):
    return [
        DdiToggle(f"{prefix}power", "Power", key="power",
                  command="power.set", arg_name="on"),
        DdiRange(f"{prefix}volume", "Volume", key="volume",
                 command="volume.set", arg_name="volume",
                 minimum=0, maximum=100, step=5),
        DdiToggle(f"{prefix}mute", "Mute", key="mute",
                  command="mute.set", arg_name="on"),
        DdiChoice(f"{prefix}source", "Source", key="source",
                  command="source.set", arg_name="source",
                  options=("cd", "tuner", "aux", "tv")),
    ]


def _av_disc_spec(prefix, fcm):
    return [
        DdiToggle(f"{prefix}power", "Power", key="power",
                  command="power.set", arg_name="on"),
        DdiText(f"{prefix}playback", "State", key="playback"),
        DdiText(f"{prefix}chapter", "Chapter", key="chapter"),
        DdiButton(f"{prefix}play", "Play", command="playback.play"),
        DdiButton(f"{prefix}stop", "Stop", command="playback.stop"),
        DdiButton(f"{prefix}next", "Next", command="chapter.next"),
        DdiButton(f"{prefix}prev", "Prev", command="chapter.prev"),
    ]


def _aircon_spec(prefix, fcm):
    return [
        DdiToggle(f"{prefix}power", "Power", key="power",
                  command="power.set", arg_name="on"),
        DdiRange(f"{prefix}target", "Set temp", key="target_temp",
                 command="temp.set", arg_name="temp",
                 minimum=16, maximum=30),
        DdiChoice(f"{prefix}mode", "Mode", key="mode",
                  command="mode.set", arg_name="mode",
                  options=("cool", "heat", "dry", "fan")),
        DdiText(f"{prefix}room", "Room temp", key="room_temp"),
    ]


def _light_spec(prefix, fcm):
    return [
        DdiToggle(f"{prefix}power", "Power", key="power",
                  command="power.set", arg_name="on"),
        DdiRange(f"{prefix}brightness", "Dim", key="brightness",
                 command="brightness.set", arg_name="brightness",
                 minimum=0, maximum=100, step=10),
    ]


def _microwave_spec(prefix, fcm):
    return [
        DdiText(f"{prefix}running", "Cooking", key="running"),
        DdiText(f"{prefix}remaining", "Remaining", key="remaining_s"),
        DdiRange(f"{prefix}level", "Power", key="power_level",
                 command="power_level.set", arg_name="level",
                 minimum=1, maximum=10),
        DdiButton(f"{prefix}cook30", "+30s cook", command="timer.start",
                  args={"seconds": 30}),
        DdiButton(f"{prefix}cook120", "2m cook", command="timer.start",
                  args={"seconds": 120}),
        DdiButton(f"{prefix}stop", "Stop", command="timer.stop"),
    ]


def _generic_spec(prefix, fcm):
    return [DdiText(f"{prefix}{key}", key, key=key)
            for key in sorted(fcm.state)]


#: Hand-authored per-type specs, kept as the legacy path (and as the
#: reference the descriptor-equivalence property test compares against).
DDI_SPECS: dict[str, Callable] = {
    "tuner": _tuner_spec,
    "display": _display_spec,
    "vcr": _vcr_spec,
    "amplifier": _amplifier_spec,
    "av_disc": _av_disc_spec,
    "aircon": _aircon_spec,
    "light": _light_spec,
    "microwave": _microwave_spec,
}


def ddi_elements_from_descriptor(prefix: str, fcm: Fcm) -> list:
    """Derive DDI elements from the FCM's capability descriptor.

    Same metadata, different surface: the GUI panel builder maps
    capability kinds to widgets, this maps them to DDI elements.
    Multi-component FCMs get one sub-panel per component.
    """
    def convert(cap) -> DdiElement:
        eid = f"{prefix}{cap.name}"
        label = cap.display_label
        if cap.kind == "switch":
            return DdiToggle(eid, label, key=cap.attribute,
                             command=cap.command, arg_name=cap.arg_name)
        if cap.kind in ("range", "number"):
            return DdiRange(eid, label, key=cap.attribute,
                            command=cap.command, arg_name=cap.arg_name,
                            minimum=int(cap.minimum),
                            maximum=int(cap.maximum), step=int(cap.step))
        if cap.kind == "choice":
            return DdiChoice(eid, label, key=cap.attribute,
                             command=cap.command, arg_name=cap.arg_name,
                             options=tuple(cap.choices))
        if cap.kind == "button":
            return DdiButton(eid, label, command=cap.command,
                             args=dict(cap.args))
        # text, progress and any future kind degrade to status text
        return DdiText(eid, label, key=cap.attribute)

    descriptor = fcm.capability_descriptor()
    components = descriptor.components()
    if len(components) <= 1:
        return [convert(cap) for cap in descriptor]
    sections = []
    for component in components:
        section = DdiPanel(f"{prefix}component:{component}",
                           component.capitalize())
        section.children = [convert(cap)
                            for cap in descriptor.for_component(component)]
        sections.append(section)
    return sections


def build_tree(dcm: Dcm, dynamic: bool = True) -> DdiPanel:
    """The DDI tree for one appliance, with current state filled in.

    By default the tree derives from each FCM's capability descriptor;
    ``dynamic=False`` selects the legacy hand-authored :data:`DDI_SPECS`.
    """
    root = DdiPanel(f"dcm:{dcm.guid[:8]}", dcm.name)
    for fcm in dcm.fcms:
        prefix = f"{fcm.seid.handle}:"
        panel = DdiPanel(f"{prefix}panel",
                         f"{dcm.name} {fcm.fcm_type.value}")
        if dynamic and fcm.capabilities:
            panel.children = ddi_elements_from_descriptor(prefix, fcm)
        else:
            builder = DDI_SPECS.get(fcm.fcm_type.value, _generic_spec)
            panel.children = builder(prefix, fcm)
        for element in panel.walk():
            key = getattr(element, "key", "")
            if key:
                value = fcm.get_state(key)
                if isinstance(element, DdiToggle):
                    element.value = bool(value)
                elif isinstance(element, DdiRange):
                    element.value = int(value or 0)
                else:
                    element.value = value
        root.children.append(panel)
    return root


# -- server side ------------------------------------------------------------------


class DdiServer(SoftwareElement):
    """The DDI face of one DCM: tree export + semantic action handling."""

    element_type = "ddi"

    def __init__(self, dcm: Dcm, messaging: MessageSystem,
                 events: EventManager, registry: Registry) -> None:
        super().__init__(SEID(dcm.guid, DDI_HANDLE), messaging)
        self.dcm = dcm
        self.events = events
        self.registry = registry
        self._fcm_by_handle = {fcm.seid.handle: fcm for fcm in dcm.fcms}
        self._subscription: Optional[int] = None
        self.actions_handled = 0

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> None:
        self.attach()
        self.registry.register(self.seid, {
            "element.type": "ddi",
            "device.guid": self.dcm.guid,
            "device.name": self.dcm.name,
        })
        self._subscription = self.events.subscribe(
            "fcm.state.", self._on_fcm_state)

    def uninstall(self) -> None:
        if self._subscription is not None:
            self.events.unsubscribe(self._subscription)
            self._subscription = None
        self.registry.unregister(self.seid)
        self.detach()

    # -- requests -------------------------------------------------------------------

    def handle_request(self, message: HaviMessage) -> None:
        if message.opcode == "ddi.get_tree":
            self.reply(message, {"tree": build_tree(self.dcm).to_dict()})
            return
        if message.opcode == "ddi.action":
            self._handle_action(message)
            return
        super().handle_request(message)

    def _handle_action(self, message: HaviMessage) -> None:
        element_id = str(message.payload.get("element", ""))
        verb = str(message.payload.get("verb", "press"))
        tree = build_tree(self.dcm)
        element = tree.find(element_id)
        if element is None:
            self.reply(message, {"detail": f"no element {element_id!r}"},
                       status="EUNKNOWN_ELEMENT")
            return
        handle = int(element_id.split(":", 1)[0])
        fcm = self._fcm_by_handle.get(handle)
        if fcm is None:
            self.reply(message, status="EUNKNOWN_ELEMENT")
            return
        try:
            result = self._dispatch(fcm, element, verb,
                                    message.payload.get("value"))
        except FcmCommandError as error:
            self.reply(message, {"detail": str(error)}, status=error.status)
            return
        self.actions_handled += 1
        self.reply(message, result)

    def _dispatch(self, fcm: Fcm, element: DdiElement, verb: str,
                  value) -> dict:
        if isinstance(element, DdiButton) and verb == "press":
            return fcm.invoke_local(element.command, dict(element.args))
        if isinstance(element, DdiToggle) and verb in ("toggle", "set"):
            target = (not bool(fcm.get_state(element.key))
                      if verb == "toggle" else bool(value))
            return fcm.invoke_local(element.command,
                                    {element.arg_name: target})
        if isinstance(element, DdiRange) and verb == "set":
            return fcm.invoke_local(element.command,
                                    {element.arg_name: int(value)})
        if isinstance(element, DdiChoice) and verb == "set":
            return fcm.invoke_local(element.command,
                                    {element.arg_name: str(value)})
        raise FcmCommandError(
            "EINVALID_ARG",
            f"verb {verb!r} invalid for {element.kind} element")

    # -- change propagation ------------------------------------------------------------

    def _on_fcm_state(self, event: HaviEvent) -> None:
        if event.payload.get("device_guid") != self.dcm.guid:
            return
        seid = SEID.parse(str(event.payload["seid"]))
        key = str(event.payload["key"])
        prefix = f"{seid.handle}:"
        tree = build_tree(self.dcm)
        for element in tree.walk():
            if (element.element_id.startswith(prefix)
                    and getattr(element, "key", None) == key):
                self.events.post(HaviEvent(
                    source=self.seid,
                    opcode="ddi.changed",
                    payload={"element": element.element_id,
                             "value": event.payload.get("value")},
                ))
                return


# -- controller side -----------------------------------------------------------------


class DdiController(SoftwareElement):
    """A native DDI client: caches the tree, sends semantic actions."""

    element_type = "ddi_controller"

    def __init__(self, seid: SEID, messaging: MessageSystem,
                 events: EventManager,
                 command_log: Optional[CommandLog] = None) -> None:
        super().__init__(seid, messaging)
        self.events = events
        #: DDI actions are actuations too: they ride the command spine so
        #: the home journal sees them alongside widget clicks.
        self.spine = CommandSpine(self, command_log)
        self.tree: Optional[DdiPanel] = None
        self.target: Optional[SEID] = None
        self._subscription: Optional[int] = None
        #: Demo/test hook: fired with (element_id, value) on remote change.
        self.on_changed: Optional[Callable[[str, object], None]] = None
        #: Byte accounting for the DDI-vs-UIP experiment.
        self.bytes_moved = 0

    def open(self, target: SEID,
             on_tree: Optional[Callable[[DdiPanel], None]] = None) -> None:
        """Fetch the tree from a DDI server and follow its changes."""
        self.target = target

        def absorb(message: HaviMessage) -> None:
            self.bytes_moved += _wire_size(message)
            tree_data = message.payload.get("tree")
            if tree_data is None:
                raise HaviError(f"DDI server replied {message.status}")
            tree = element_from_dict(tree_data)
            if not isinstance(tree, DdiPanel):
                raise HaviError("DDI tree root must be a panel")
            self.tree = tree
            if on_tree is not None:
                on_tree(tree)

        self._subscription = self.events.subscribe(
            "ddi.changed", self._on_changed, source=target)
        request_size = _estimate_request("ddi.get_tree", {})
        self.bytes_moved += request_size
        self.spine.submit(target, "ddi.get_tree", origin="ddi",
                          on_reply=absorb)

    def close(self) -> None:
        if self._subscription is not None:
            self.events.unsubscribe(self._subscription)
            self._subscription = None
        self.tree = None
        self.target = None

    def action(self, element_id: str, verb: str = "press",
               value=None,
               on_reply: Optional[Callable[[HaviMessage], None]] = None,
               origin: str = "ddi") -> Command:
        if self.target is None:
            raise HaviError("controller is not open")
        payload = {"element": element_id, "verb": verb}
        if value is not None:
            payload["value"] = value
        self.bytes_moved += _estimate_request("ddi.action", payload)

        def count_reply(message: HaviMessage) -> None:
            self.bytes_moved += _wire_size(message)
            if on_reply is not None:
                on_reply(message)

        return self.spine.submit(self.target, "ddi.action", payload,
                                 origin=origin, on_reply=count_reply)

    def _on_changed(self, event: HaviEvent) -> None:
        self.bytes_moved += _estimate_request("ddi.changed", event.payload)
        if self.tree is not None:
            element = self.tree.find(str(event.payload.get("element")))
            if element is not None and hasattr(element, "value"):
                element.value = event.payload.get("value")
        if self.on_changed is not None:
            self.on_changed(str(event.payload.get("element")),
                            event.payload.get("value"))


# -- voice dispatch over DDI trees -----------------------------------------------


class DdiVoiceAssistant:
    """Speech front-end over a DDI tree: free-form utterances become
    semantic actions (origin ``voice`` on the command spine).

    The grammar is label-driven — whatever the appliance exports is
    speakable, with no per-device vocabulary:

    * ``"power on"`` / ``"mute off"``   — toggle labels + on/off
    * ``"play"`` / ``"stop"``           — button labels press
    * ``"volume 40"``                   — range labels + a number
    * ``"source tuner"``                — choice labels + an option
    * a bare toggle label               — flips it
    """

    def __init__(self, controller: DdiController) -> None:
        self.controller = controller
        self.utterances_heard = 0
        self.utterances_matched = 0

    def interpret(self, utterance: str) -> Optional[tuple]:
        """``(element_id, verb, value)`` for an utterance, else None."""
        tree = self.controller.tree
        if tree is None:
            return None
        words = utterance.lower().split()
        if not words:
            return None
        # longest label first, so "power level" beats "power"
        elements = sorted(
            (e for e in tree.walk() if e.label and not
             isinstance(e, (DdiPanel, DdiText))),
            key=lambda e: -len(e.label.split()))
        for element in elements:
            label_words = element.label.lower().split()
            if words[:len(label_words)] != label_words:
                continue
            rest = words[len(label_words):]
            if isinstance(element, DdiButton) and not rest:
                return element.element_id, "press", None
            if isinstance(element, DdiToggle):
                if rest == ["on"]:
                    return element.element_id, "set", True
                if rest == ["off"]:
                    return element.element_id, "set", False
                if not rest:
                    return element.element_id, "toggle", None
            if isinstance(element, DdiRange) and len(rest) == 1 \
                    and rest[0].lstrip("-").isdigit():
                return element.element_id, "set", int(rest[0])
            if isinstance(element, DdiChoice) and len(rest) == 1:
                option = rest[0]
                for candidate in element.options:
                    if candidate.lower() == option:
                        return element.element_id, "set", candidate
        return None

    def say(self, utterance: str,
            on_reply: Optional[Callable[[HaviMessage], None]] = None
            ) -> Optional[Command]:
        """Interpret and dispatch; returns the tracked Command (or None
        when nothing in the tree matches the utterance)."""
        self.utterances_heard += 1
        parsed = self.interpret(utterance)
        if parsed is None:
            return None
        self.utterances_matched += 1
        element_id, verb, value = parsed
        return self.controller.action(element_id, verb, value,
                                      on_reply=on_reply, origin="voice")


_WIRE_HEADER = 24  # SEIDs, type, transaction, status


def _wire_size(message: HaviMessage) -> int:
    """Estimated serialised size of a HAVi message."""
    return _WIRE_HEADER + len(message.opcode) + len(
        json.dumps(message.payload, sort_keys=True, default=str))


def _estimate_request(opcode: str, payload: dict) -> int:
    return _WIRE_HEADER + len(opcode) + len(
        json.dumps(payload, sort_keys=True, default=str))


# -- text rendering ---------------------------------------------------------------------


def render_text(tree: DdiPanel, width: int = 24) -> list[str]:
    """Render a DDI tree as phone-style text lines (a native 2002 client)."""
    lines: list[str] = []

    def emit(text: str, indent: int) -> None:
        lines.append((" " * indent + text)[:width])

    def visit(element: DdiElement, indent: int) -> None:
        if isinstance(element, DdiPanel):
            emit(f"[{element.label}]", indent)
            for child in element.children:
                visit(child, indent + 1)
        elif isinstance(element, DdiToggle):
            mark = "x" if element.value else " "
            emit(f"({mark}) {element.label}", indent)
        elif isinstance(element, DdiRange):
            emit(f"{element.label}: {element.value}/{element.maximum}",
                 indent)
        elif isinstance(element, DdiChoice):
            emit(f"{element.label}: {element.value}", indent)
        elif isinstance(element, DdiButton):
            emit(f"<{element.label}>", indent)
        else:
            emit(f"{element.label}: {getattr(element, 'value', '')}",
                 indent)

    visit(tree, 0)
    return lines

"""The HAVi message system: async messaging between software elements.

Every software element registers with the :class:`MessageSystem` under its
SEID.  Messages are delivered asynchronously on the virtual clock (a small
configurable middleware latency), so callers observe realistic interleaving
without any threads.  Request/response correlation uses per-sender
transaction numbers, exactly like HAVi's ``SendRequest``/``SendResponse``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.havi.seid import SEID
from repro.util.errors import MessagingError
from repro.util.scheduler import Scheduler

#: Default one-way middleware latency (seconds); 1394 async packets are fast.
DEFAULT_LATENCY = 0.0002


class MessageType(enum.Enum):
    REQUEST = "request"
    RESPONSE = "response"
    EVENT = "event"


@dataclass(frozen=True)
class HaviMessage:
    """One message on the home network."""

    source: SEID
    destination: SEID
    msg_type: MessageType
    opcode: str
    payload: dict = field(default_factory=dict)
    transaction: int = 0
    status: str = "SUCCESS"

    def reply(self, payload: dict | None = None,
              status: str = "SUCCESS") -> "HaviMessage":
        """Build the response to this request."""
        if self.msg_type is not MessageType.REQUEST:
            raise MessagingError("can only reply to a request")
        return HaviMessage(
            source=self.destination,
            destination=self.source,
            msg_type=MessageType.RESPONSE,
            opcode=self.opcode,
            payload=payload if payload is not None else {},
            transaction=self.transaction,
            status=status,
        )


Handler = Callable[[HaviMessage], None]
ReplyCallback = Callable[[HaviMessage], None]


class MessageSystem:
    """Routes messages between registered software elements."""

    def __init__(self, scheduler: Scheduler,
                 latency: float = DEFAULT_LATENCY) -> None:
        self.scheduler = scheduler
        self.latency = latency
        self._handlers: dict[SEID, Handler] = {}
        self._transactions = itertools.count(1)
        self._pending: dict[tuple[SEID, int], ReplyCallback] = {}
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- registration ------------------------------------------------------

    def register(self, seid: SEID, handler: Handler) -> None:
        if seid in self._handlers:
            raise MessagingError(f"SEID {seid} already registered")
        self._handlers[seid] = handler

    def unregister(self, seid: SEID) -> None:
        if seid not in self._handlers:
            raise MessagingError(f"SEID {seid} is not registered")
        del self._handlers[seid]
        # drop reply callbacks whose requester vanished
        for key in [k for k in self._pending if k[0] == seid]:
            del self._pending[key]

    def is_registered(self, seid: SEID) -> bool:
        return seid in self._handlers

    # -- sending -------------------------------------------------------------

    def send(self, message: HaviMessage) -> None:
        """Queue a message for asynchronous delivery."""
        self.scheduler.call_later(self.latency, self._deliver, message)

    def send_request(self, source: SEID, destination: SEID, opcode: str,
                     payload: dict | None = None,
                     on_reply: Optional[ReplyCallback] = None) -> int:
        """Send a REQUEST; ``on_reply`` fires when the RESPONSE arrives.

        Returns the transaction number.
        """
        transaction = next(self._transactions)
        message = HaviMessage(
            source=source,
            destination=destination,
            msg_type=MessageType.REQUEST,
            opcode=opcode,
            payload=payload if payload is not None else {},
            transaction=transaction,
        )
        if on_reply is not None:
            self._pending[(source, transaction)] = on_reply
        self.send(message)
        return transaction

    def send_event(self, source: SEID, destination: SEID, opcode: str,
                   payload: dict | None = None) -> None:
        self.send(HaviMessage(
            source=source,
            destination=destination,
            msg_type=MessageType.EVENT,
            opcode=opcode,
            payload=payload if payload is not None else {},
        ))

    # -- delivery -------------------------------------------------------------

    def _deliver(self, message: HaviMessage) -> None:
        handler = self._handlers.get(message.destination)
        if handler is None:
            self.messages_dropped += 1
            if message.msg_type is MessageType.REQUEST:
                # bounce an error response so requesters are not left hanging
                error = HaviMessage(
                    source=message.destination,
                    destination=message.source,
                    msg_type=MessageType.RESPONSE,
                    opcode=message.opcode,
                    transaction=message.transaction,
                    status="EUNKNOWN_ELEMENT",
                )
                self.scheduler.call_later(self.latency, self._deliver, error)
            return
        self.messages_delivered += 1
        if message.msg_type is MessageType.RESPONSE:
            callback = self._pending.pop(
                (message.destination, message.transaction), None)
            if callback is not None:
                callback(message)
                return
        handler(message)

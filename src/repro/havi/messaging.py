"""The HAVi message system: async messaging between software elements.

Every software element registers with the :class:`MessageSystem` under its
SEID.  Messages are delivered asynchronously on the virtual clock (a small
configurable middleware latency), so callers observe realistic interleaving
without any threads.  Request/response correlation uses per-sender
transaction numbers, exactly like HAVi's ``SendRequest``/``SendResponse``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.havi.seid import SEID
from repro.util.errors import MessagingError
from repro.util.scheduler import Event, Scheduler

#: Default one-way middleware latency (seconds); 1394 async packets are fast.
DEFAULT_LATENCY = 0.0002


class MessageType(enum.Enum):
    REQUEST = "request"
    RESPONSE = "response"
    EVENT = "event"


@dataclass(frozen=True)
class HaviMessage:
    """One message on the home network."""

    source: SEID
    destination: SEID
    msg_type: MessageType
    opcode: str
    payload: dict = field(default_factory=dict)
    transaction: int = 0
    status: str = "SUCCESS"

    def reply(self, payload: dict | None = None,
              status: str = "SUCCESS") -> "HaviMessage":
        """Build the response to this request."""
        if self.msg_type is not MessageType.REQUEST:
            raise MessagingError("can only reply to a request")
        return HaviMessage(
            source=self.destination,
            destination=self.source,
            msg_type=MessageType.RESPONSE,
            opcode=self.opcode,
            payload=payload if payload is not None else {},
            transaction=self.transaction,
            status=status,
        )


Handler = Callable[[HaviMessage], None]
ReplyCallback = Callable[[HaviMessage], None]


@dataclass
class _Pending:
    """Book-keeping for one outstanding REQUEST awaiting its RESPONSE."""

    callback: ReplyCallback
    destination: SEID
    opcode: str
    timer: Optional[Event] = None

    def disarm(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class MessageSystem:
    """Routes messages between registered software elements."""

    def __init__(self, scheduler: Scheduler,
                 latency: float = DEFAULT_LATENCY) -> None:
        self.scheduler = scheduler
        self.latency = latency
        self._handlers: dict[SEID, Handler] = {}
        self._transactions = itertools.count(1)
        self._pending: dict[tuple[SEID, int], _Pending] = {}
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Requests answered by a locally synthesized RESPONSE because the
        #: destination unregistered while the request was outstanding.
        self.replies_synthesized = 0
        #: Requests answered by a locally synthesized ETIMEOUT RESPONSE.
        self.requests_timed_out = 0
        # Optional seeded fault injection on the bus (PR 7 harness).
        self._fault_plan = None
        self._fault_rng = None
        self.messages_fault_dropped = 0
        self.messages_fault_delayed = 0
        self.messages_fault_duplicated = 0

    # -- registration ------------------------------------------------------

    def register(self, seid: SEID, handler: Handler) -> None:
        if seid in self._handlers:
            raise MessagingError(f"SEID {seid} already registered")
        self._handlers[seid] = handler

    def unregister(self, seid: SEID) -> None:
        if seid not in self._handlers:
            raise MessagingError(f"SEID {seid} is not registered")
        del self._handlers[seid]
        # drop reply callbacks whose requester vanished
        for key in [k for k in self._pending if k[0] == seid]:
            self._pending.pop(key).disarm()
        # requests *to* the vanished element can never be answered by it:
        # synthesize an EGONE failure so the requester is not left hanging
        # (the entry stays pending; the synthetic RESPONSE pops it through
        # the normal delivery path after one middleware latency).
        for key, entry in list(self._pending.items()):
            if entry.destination != seid:
                continue
            entry.disarm()
            self.replies_synthesized += 1
            self.send(HaviMessage(
                source=seid,
                destination=key[0],
                msg_type=MessageType.RESPONSE,
                opcode=entry.opcode,
                payload={"detail": f"{seid} unregistered mid-flight"},
                transaction=key[1],
                status="EGONE",
            ))

    def is_registered(self, seid: SEID) -> bool:
        return seid in self._handlers

    # -- fault injection -----------------------------------------------------

    def inject_faults(self, plan, name: str = "messaging") -> None:
        """Subject bus delivery to a seeded :class:`~repro.net.faults.FaultPlan`.

        ``drop``/``duplicate``/``delay`` rates apply per message;
        ``truncate`` is meaningless for structured messages and passes
        through.  Dropped REQUESTs are silently lost (no
        ``EUNKNOWN_ELEMENT`` bounce) — recovery is the requester's
        timeout, exactly like a lost 1394 packet.
        """
        self._fault_plan = plan
        self._fault_rng = plan.rng_for(name)

    def clear_faults(self) -> None:
        self._fault_plan = None
        self._fault_rng = None

    # -- sending -------------------------------------------------------------

    def send(self, message: HaviMessage) -> None:
        """Queue a message for asynchronous delivery."""
        plan = self._fault_plan
        if plan is not None:
            roll = self._fault_rng.random()
            if roll < plan.drop:
                self.messages_fault_dropped += 1
                return
            roll -= plan.drop
            # truncate is meaningless for structured messages: pass through
            roll -= plan.truncate
            if 0 <= roll < plan.duplicate:
                self.messages_fault_duplicated += 1
                self.scheduler.call_later(self.latency, self._deliver, message)
            roll -= plan.duplicate
            if 0 <= roll < plan.delay:
                self.messages_fault_delayed += 1
                self.scheduler.call_later(self.latency + plan.delay_s,
                                          self._deliver, message)
                return
        self.scheduler.call_later(self.latency, self._deliver, message)

    def send_request(self, source: SEID, destination: SEID, opcode: str,
                     payload: dict | None = None,
                     on_reply: Optional[ReplyCallback] = None,
                     timeout_s: Optional[float] = None) -> int:
        """Send a REQUEST; ``on_reply`` fires when the RESPONSE arrives.

        With ``timeout_s`` set (> 0), a virtual-clock guard delivers a
        synthesized ``ETIMEOUT`` RESPONSE if no real reply lands in time;
        the guard timer is cancelled the moment a reply arrives, so it
        never drags the virtual clock forward.  Returns the transaction
        number.
        """
        transaction = next(self._transactions)
        message = HaviMessage(
            source=source,
            destination=destination,
            msg_type=MessageType.REQUEST,
            opcode=opcode,
            payload=payload if payload is not None else {},
            transaction=transaction,
        )
        if on_reply is not None:
            entry = _Pending(on_reply, destination, opcode)
            if timeout_s is not None and timeout_s > 0:
                entry.timer = self.scheduler.call_later(
                    timeout_s, self._expire, (source, transaction))
            self._pending[(source, transaction)] = entry
        self.send(message)
        return transaction

    def _expire(self, key: tuple[SEID, int]) -> None:
        entry = self._pending.pop(key, None)
        if entry is None:  # answered in the meantime
            return
        self.requests_timed_out += 1
        entry.callback(HaviMessage(
            source=entry.destination,
            destination=key[0],
            msg_type=MessageType.RESPONSE,
            opcode=entry.opcode,
            payload={"detail": "no reply before deadline"},
            transaction=key[1],
            status="ETIMEOUT",
        ))

    def send_event(self, source: SEID, destination: SEID, opcode: str,
                   payload: dict | None = None) -> None:
        self.send(HaviMessage(
            source=source,
            destination=destination,
            msg_type=MessageType.EVENT,
            opcode=opcode,
            payload=payload if payload is not None else {},
        ))

    # -- delivery -------------------------------------------------------------

    def _deliver(self, message: HaviMessage) -> None:
        handler = self._handlers.get(message.destination)
        if handler is None:
            self.messages_dropped += 1
            if message.msg_type is MessageType.REQUEST:
                # bounce an error response so requesters are not left hanging
                error = HaviMessage(
                    source=message.destination,
                    destination=message.source,
                    msg_type=MessageType.RESPONSE,
                    opcode=message.opcode,
                    transaction=message.transaction,
                    status="EUNKNOWN_ELEMENT",
                )
                self.scheduler.call_later(self.latency, self._deliver, error)
            return
        self.messages_delivered += 1
        if message.msg_type is MessageType.RESPONSE:
            entry = self._pending.pop(
                (message.destination, message.transaction), None)
            if entry is not None:
                entry.disarm()
                entry.callback(message)
                return
        handler(message)

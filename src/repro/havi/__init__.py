"""HAVi-class home-network middleware.

The paper's prototype controls appliances through the authors' home
computing system, which implements HAVi (Home Audio/Video
Interoperability) — the consumer-electronics middleware of the era.  This
package reproduces the HAVi concepts the universal interaction system
depends on:

* **SEIDs** — software element identifiers (device GUID + handle),
* **Message system** — asynchronous request/response messaging between
  software elements, delivered on the virtual clock,
* **Registry** — attribute-based lookup of software elements with a
  comparison/boolean query language,
* **Event manager** — publish/subscribe system events (hotplug, state
  changes),
* **DCM / FCM** — a Device Control Module per appliance exposing one
  Functional Component Module per controllable function (tuner, VCR
  transport, amplifier, ...),
* **Home bus** — a simulated IEEE-1394-style bus with hotplug, driving a
  DCM manager that installs/uninstalls DCMs as devices come and go.
"""

from repro.havi.seid import SEID, SOFTWARE_ELEMENT_TYPES
from repro.havi.messaging import HaviMessage, MessageSystem, MessageType
from repro.havi.registry import (
    Attribute,
    Comparison,
    Query,
    QueryAnd,
    QueryNot,
    QueryOr,
    Registry,
)
from repro.havi.events import EventManager, HaviEvent
from repro.havi.element import SoftwareElement
from repro.havi.capabilities import (
    CAPABILITY_KINDS,
    MAIN_COMPONENT,
    Capability,
    CapabilityDescriptor,
    CapabilityError,
    DescriptorCache,
)
from repro.havi.fcm import Fcm, FcmCommandError, FcmType
from repro.havi.dcm import Dcm
from repro.havi.bus import DeviceInfo, HomeBus
from repro.havi.manager import DcmManager, HomeNetwork
from repro.havi.streams import Plug, StreamConnection, StreamManager

__all__ = [
    "Attribute",
    "CAPABILITY_KINDS",
    "Capability",
    "CapabilityDescriptor",
    "CapabilityError",
    "Comparison",
    "Dcm",
    "DescriptorCache",
    "MAIN_COMPONENT",
    "DcmManager",
    "DeviceInfo",
    "EventManager",
    "Fcm",
    "FcmCommandError",
    "FcmType",
    "HaviEvent",
    "HaviMessage",
    "HomeBus",
    "HomeNetwork",
    "MessageSystem",
    "MessageType",
    "Plug",
    "Query",
    "QueryAnd",
    "QueryNot",
    "QueryOr",
    "Registry",
    "SEID",
    "SOFTWARE_ELEMENT_TYPES",
    "SoftwareElement",
    "StreamConnection",
    "StreamManager",
]

"""SoftwareElement: base class for everything addressable on the network."""

from __future__ import annotations

from typing import Optional

from repro.havi.messaging import (
    HaviMessage,
    MessageSystem,
    MessageType,
    ReplyCallback,
)
from repro.havi.seid import SEID
from repro.util.errors import MessagingError


class SoftwareElement:
    """An addressable element: owns a SEID, speaks via the message system.

    Subclasses override :meth:`handle_request` (and optionally
    :meth:`handle_event`); responses are routed to ``send_request``
    callbacks automatically by the message system.
    """

    element_type = "software_element"

    def __init__(self, seid: SEID, messaging: MessageSystem) -> None:
        self.seid = seid
        self.messaging = messaging
        self._attached = False

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> None:
        """Register with the message system; idempotence is an error."""
        if self._attached:
            raise MessagingError(f"{self.seid} already attached")
        self.messaging.register(self.seid, self._on_message)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self.messaging.unregister(self.seid)
        self._attached = False

    @property
    def attached(self) -> bool:
        return self._attached

    # -- message plumbing -------------------------------------------------------

    def _on_message(self, message: HaviMessage) -> None:
        if message.msg_type is MessageType.REQUEST:
            self.handle_request(message)
        elif message.msg_type is MessageType.EVENT:
            self.handle_event(message)
        else:  # RESPONSE without a pending callback
            self.handle_orphan_response(message)

    def handle_request(self, message: HaviMessage) -> None:
        """Default: reject unknown requests."""
        self.messaging.send(message.reply(status="EUNSUPPORTED"))

    def handle_event(self, message: HaviMessage) -> None:
        """Default: ignore events."""

    def handle_orphan_response(self, message: HaviMessage) -> None:
        """Default: ignore responses nobody is waiting for."""

    # -- convenience ---------------------------------------------------------------

    def send_request(self, destination: SEID, opcode: str,
                     payload: dict | None = None,
                     on_reply: Optional[ReplyCallback] = None,
                     timeout_s: Optional[float] = None) -> int:
        return self.messaging.send_request(self.seid, destination, opcode,
                                           payload, on_reply,
                                           timeout_s=timeout_s)

    def reply(self, request: HaviMessage, payload: dict | None = None,
              status: str = "SUCCESS") -> None:
        self.messaging.send(request.reply(payload, status))

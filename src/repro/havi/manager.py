"""DCM manager plus the HomeNetwork facade bundling all middleware parts."""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.havi.bus import BusDevice, DeviceInfo, HomeBus
from repro.havi.dcm import Dcm
from repro.havi.events import EventManager, HaviEvent
from repro.havi.messaging import MessageSystem
from repro.havi.registry import Registry
from repro.havi.seid import SEID
from repro.util.errors import HaviError
from repro.util.scheduler import Scheduler

#: Pseudo-SEID used as the source of infrastructure events.
INFRA_SEID = SEID("0000000000000000", 0)


class DcmCapableDevice(BusDevice, Protocol):
    """A bus device that can manufacture its own DCM (a HAVi code unit)."""

    def create_dcm(self, network: "HomeNetwork") -> Dcm:
        ...  # pragma: no cover - protocol


class DcmManager:
    """Installs/uninstalls DCMs to mirror the bus after each reset."""

    def __init__(self, network: "HomeNetwork") -> None:
        self.network = network
        self._dcms: dict[str, Dcm] = {}
        self._ddi_servers: dict[str, object] = {}
        # guid -> the bus device each installed DCM was manufactured by,
        # so a *new* device reusing a departed guid (detach + attach
        # coalesced into one reset) is detected and re-installed instead
        # of keeping a DCM wired to the dead instance
        self._dcm_devices: dict[str, BusDevice] = {}
        network.bus.observe_resets(self._on_bus_reset)

    def ddi_server_for(self, guid: str):
        """The installed DDI server of a device (None if absent)."""
        return self._ddi_servers.get(guid)

    @property
    def dcms(self) -> dict[str, Dcm]:
        return dict(self._dcms)

    def dcm_for(self, guid: str) -> Optional[Dcm]:
        return self._dcms.get(guid)

    def _uninstall(self, guid: str) -> None:
        dcm = self._dcms.pop(guid)
        self._dcm_devices.pop(guid, None)
        ddi = self._ddi_servers.pop(guid, None)
        if ddi is not None:
            ddi.uninstall()
        dcm.uninstall()
        self.network.events.post(HaviEvent(
            source=INFRA_SEID,
            opcode="dcm.uninstalled",
            payload={"guid": guid, "name": dcm.name,
                     "device_class": dcm.device_class},
        ))

    def _on_bus_reset(self, devices: list[DeviceInfo]) -> None:
        present = {info.guid for info in devices}
        # uninstall DCMs for departed devices ...
        for guid in [g for g in self._dcms if g not in present]:
            self._uninstall(guid)
        # ... and for guids whose *device* was swapped out under them (a
        # detach + attach of a different appliance with the same guid,
        # coalesced into one bus reset): the installed DCM belongs to the
        # departed instance, so it must go through a full uninstall too
        for guid in [g for g in self._dcms
                     if self._dcm_devices.get(g)
                     is not self.network.bus.device(g)]:
            self._uninstall(guid)
        # install DCMs for new devices
        for info in devices:
            if info.guid in self._dcms:
                continue
            device = self.network.bus.device(info.guid)
            if device is None or not hasattr(device, "create_dcm"):
                raise HaviError(f"device {info.guid} cannot create a DCM")
            dcm = device.create_dcm(self.network)
            dcm.install()
            self._dcms[info.guid] = dcm
            # recorded only after a successful install, so the two dicts
            # can never disagree about which device a guid belongs to
            self._dcm_devices[info.guid] = device
            if self.network.ddi_enabled:
                from repro.havi.ddi import DdiServer
                ddi = DdiServer(dcm, self.network.messaging,
                                self.network.events, self.network.registry)
                ddi.install()
                self._ddi_servers[info.guid] = ddi
            self.network.events.post(HaviEvent(
                source=INFRA_SEID,
                opcode="dcm.installed",
                payload={"guid": info.guid, "name": dcm.name,
                         "device_class": dcm.device_class},
            ))


class HomeNetwork:
    """Everything one home's middleware needs, wired together.

    This is the reproduction of the authors' "home computing system"
    [Middleware 2001]: message system, registry, event manager, home bus
    and DCM manager over one shared virtual-time scheduler.
    """

    def __init__(self, scheduler: Optional[Scheduler] = None,
                 ddi_enabled: bool = True) -> None:
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        #: Export a DDI server per appliance (HAVi level-1 UI; see
        #: :mod:`repro.havi.ddi`).
        self.ddi_enabled = ddi_enabled
        self.messaging = MessageSystem(self.scheduler)
        self.registry = Registry()
        self.events = EventManager(self.scheduler)
        self.bus = HomeBus(self.scheduler)
        self.dcm_manager = DcmManager(self)
        # imported late: streams needs the manager types above
        from repro.havi.streams import StreamManager
        self.streams = StreamManager(self)

    def attach_device(self, device: DcmCapableDevice) -> None:
        """Plug an appliance into the home network."""
        self.bus.attach(device)

    def detach_device(self, guid: str) -> None:
        """Unplug an appliance."""
        self.bus.detach(guid)

    def settle(self) -> None:
        """Run the scheduler until the network is quiescent."""
        self.scheduler.run_until_idle()

"""DCM manager plus the HomeNetwork facade bundling all middleware parts."""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.havi.bus import BusDevice, DeviceInfo, HomeBus
from repro.havi.dcm import Dcm
from repro.havi.events import EventManager, HaviEvent
from repro.havi.messaging import MessageSystem
from repro.havi.registry import Registry
from repro.havi.seid import SEID
from repro.util.errors import HaviError
from repro.util.scheduler import Scheduler

#: Pseudo-SEID used as the source of infrastructure events.
INFRA_SEID = SEID("0000000000000000", 0)


class DcmCapableDevice(BusDevice, Protocol):
    """A bus device that can manufacture its own DCM (a HAVi code unit)."""

    def create_dcm(self, network: "HomeNetwork") -> Dcm:
        ...  # pragma: no cover - protocol


class DcmManager:
    """Installs/uninstalls DCMs to mirror the bus after each reset."""

    def __init__(self, network: "HomeNetwork") -> None:
        self.network = network
        self._dcms: dict[str, Dcm] = {}
        self._ddi_servers: dict[str, object] = {}
        network.bus.observe_resets(self._on_bus_reset)

    def ddi_server_for(self, guid: str):
        """The installed DDI server of a device (None if absent)."""
        return self._ddi_servers.get(guid)

    @property
    def dcms(self) -> dict[str, Dcm]:
        return dict(self._dcms)

    def dcm_for(self, guid: str) -> Optional[Dcm]:
        return self._dcms.get(guid)

    def _on_bus_reset(self, devices: list[DeviceInfo]) -> None:
        present = {info.guid for info in devices}
        # uninstall DCMs for departed devices
        for guid in [g for g in self._dcms if g not in present]:
            dcm = self._dcms.pop(guid)
            ddi = self._ddi_servers.pop(guid, None)
            if ddi is not None:
                ddi.uninstall()
            dcm.uninstall()
            self.network.events.post(HaviEvent(
                source=INFRA_SEID,
                opcode="dcm.uninstalled",
                payload={"guid": guid, "name": dcm.name,
                         "device_class": dcm.device_class},
            ))
        # install DCMs for new devices
        for info in devices:
            if info.guid in self._dcms:
                continue
            device = self.network.bus.device(info.guid)
            if device is None or not hasattr(device, "create_dcm"):
                raise HaviError(f"device {info.guid} cannot create a DCM")
            dcm = device.create_dcm(self.network)
            dcm.install()
            self._dcms[info.guid] = dcm
            if self.network.ddi_enabled:
                from repro.havi.ddi import DdiServer
                ddi = DdiServer(dcm, self.network.messaging,
                                self.network.events, self.network.registry)
                ddi.install()
                self._ddi_servers[info.guid] = ddi
            self.network.events.post(HaviEvent(
                source=INFRA_SEID,
                opcode="dcm.installed",
                payload={"guid": info.guid, "name": dcm.name,
                         "device_class": dcm.device_class},
            ))


class HomeNetwork:
    """Everything one home's middleware needs, wired together.

    This is the reproduction of the authors' "home computing system"
    [Middleware 2001]: message system, registry, event manager, home bus
    and DCM manager over one shared virtual-time scheduler.
    """

    def __init__(self, scheduler: Optional[Scheduler] = None,
                 ddi_enabled: bool = True) -> None:
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        #: Export a DDI server per appliance (HAVi level-1 UI; see
        #: :mod:`repro.havi.ddi`).
        self.ddi_enabled = ddi_enabled
        self.messaging = MessageSystem(self.scheduler)
        self.registry = Registry()
        self.events = EventManager(self.scheduler)
        self.bus = HomeBus(self.scheduler)
        self.dcm_manager = DcmManager(self)
        # imported late: streams needs the manager types above
        from repro.havi.streams import StreamManager
        self.streams = StreamManager(self)

    def attach_device(self, device: DcmCapableDevice) -> None:
        """Plug an appliance into the home network."""
        self.bus.attach(device)

    def detach_device(self, guid: str) -> None:
        """Unplug an appliance."""
        self.bus.detach(guid)

    def settle(self) -> None:
        """Run the scheduler until the network is quiescent."""
        self.scheduler.run_until_idle()

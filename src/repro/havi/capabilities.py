"""Typed capability descriptors: the appliance→UI contract.

The paper's universal-interaction pitch is that *any* appliance becomes
controllable without per-device UI code.  A :class:`CapabilityDescriptor`
is how an FCM states what it can do in a vocabulary every surface
understands — pixel panels (:func:`repro.app.panels.build_capability_panel`),
DDI trees (:func:`repro.havi.ddi.build_tree`) and text renderers all derive
their widgets from the same descriptor, so the descriptor — not widget
code — is the unit of appliance integration.

Seven capability kinds cover the appliance gallery:

=========  =========================================  ==================
kind       meaning                                    typical widget
=========  =========================================  ==================
switch     boolean attribute + setter command         ToggleButton
range      bounded integer attribute + setter         Slider
choice     one-of-N string attribute + setter         ListBox
number     numeric entry submitted to a command       TextField
text       read-only status string                    Label
button     a command with optional fixed arguments    Button
progress   read-only bounded value                    ProgressBar
=========  =========================================  ==================

Kinds outside this table are allowed (forward compatibility): surfaces
route them to a generic ``send_command`` escape hatch.

Multi-component devices (fridge + freezer + ice maker) tag capabilities
with a ``component`` id; surfaces render one labelled section per
component.

Descriptors are queryable over HAVi messaging (``capabilities.get`` on
any FCM or DCM) and versioned; the :class:`DescriptorCache` memoises them
keyed by ``(guid, fcm handle, version)`` so controllers re-fetch only when
a device actually changes shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.util.errors import HaviError

#: The capability kinds every surface has a widget mapping for.
CAPABILITY_KINDS = ("switch", "range", "choice", "number", "text",
                    "button", "progress")

#: Component id for single-component devices.
MAIN_COMPONENT = "main"


class CapabilityError(HaviError):
    """A malformed capability or descriptor."""


@dataclass(frozen=True)
class Capability:
    """One controllable or observable facet of an FCM.

    ``name`` doubles as the widget-id leaf (``<guid8>.<fcm_type>.<name>``),
    so it must be unique within the descriptor.  ``attribute`` names the
    FCM state key the capability reflects (empty for pure buttons);
    ``command`` the FCM verb that changes it (empty for read-only
    capabilities); ``arg_name`` the payload key carrying the value.
    """

    kind: str
    name: str
    label: str = ""
    attribute: str = ""
    command: str = ""
    arg_name: str = ""
    args: dict = field(default_factory=dict)
    minimum: Optional[int] = None
    maximum: Optional[int] = None
    step: int = 1
    choices: tuple = ()
    unit: str = ""
    read_only: bool = False
    component: str = MAIN_COMPONENT
    fmt: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise CapabilityError("capability needs a name")
        if not self.kind:
            raise CapabilityError(f"capability {self.name!r} needs a kind")
        if self.kind in ("range", "progress", "number"):
            if self.minimum is None or self.maximum is None:
                raise CapabilityError(
                    f"{self.kind} capability {self.name!r} needs bounds")
            if self.maximum <= self.minimum:
                raise CapabilityError(
                    f"{self.kind} capability {self.name!r} bounds empty: "
                    f"[{self.minimum}, {self.maximum}]")
        if self.kind == "choice" and not self.choices:
            raise CapabilityError(
                f"choice capability {self.name!r} needs choices")
        if not self.read_only and self.kind not in ("text", "progress"):
            if not self.command:
                raise CapabilityError(
                    f"writable capability {self.name!r} needs a command")

    @property
    def display_label(self) -> str:
        return self.label or self.name.replace("-", " ").replace("_", " ")

    def to_dict(self) -> dict:
        """Wire form; omits defaulted fields to keep descriptors small."""
        data: dict = {"kind": self.kind, "name": self.name}
        if self.label:
            data["label"] = self.label
        if self.attribute:
            data["attribute"] = self.attribute
        if self.command:
            data["command"] = self.command
        if self.arg_name:
            data["arg"] = self.arg_name
        if self.args:
            data["args"] = dict(self.args)
        if self.minimum is not None:
            data["min"] = self.minimum
        if self.maximum is not None:
            data["max"] = self.maximum
        if self.step != 1:
            data["step"] = self.step
        if self.choices:
            data["choices"] = list(self.choices)
        if self.unit:
            data["unit"] = self.unit
        if self.read_only:
            data["read_only"] = True
        if self.component != MAIN_COMPONENT:
            data["component"] = self.component
        if self.fmt:
            data["fmt"] = self.fmt
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Capability":
        return cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            label=str(data.get("label", "")),
            attribute=str(data.get("attribute", "")),
            command=str(data.get("command", "")),
            arg_name=str(data.get("arg", "")),
            args=dict(data.get("args", {})),
            minimum=(None if data.get("min") is None
                     else int(data["min"])),
            maximum=(None if data.get("max") is None
                     else int(data["max"])),
            step=int(data.get("step", 1)),
            choices=tuple(data.get("choices", ())),
            unit=str(data.get("unit", "")),
            read_only=bool(data.get("read_only", False)),
            component=str(data.get("component", MAIN_COMPONENT)),
            fmt=str(data.get("fmt", "")),
        )


@dataclass(frozen=True)
class CapabilityDescriptor:
    """Everything a surface needs to build a UI for one FCM."""

    fcm_type: str
    version: int = 1
    capabilities: tuple = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for capability in self.capabilities:
            if capability.name in seen:
                raise CapabilityError(
                    f"duplicate capability name {capability.name!r} "
                    f"in {self.fcm_type} descriptor")
            seen.add(capability.name)

    def __iter__(self) -> Iterator[Capability]:
        return iter(self.capabilities)

    def __len__(self) -> int:
        return len(self.capabilities)

    def by_name(self, name: str) -> Optional[Capability]:
        for capability in self.capabilities:
            if capability.name == name:
                return capability
        return None

    def components(self) -> list[str]:
        """Component ids in first-declared order."""
        order: list[str] = []
        for capability in self.capabilities:
            if capability.component not in order:
                order.append(capability.component)
        return order

    def for_component(self, component: str) -> list[Capability]:
        return [c for c in self.capabilities if c.component == component]

    def commands(self) -> set:
        return {c.command for c in self.capabilities if c.command}

    def attributes(self) -> set:
        return {c.attribute for c in self.capabilities if c.attribute}

    def to_dict(self) -> dict:
        return {
            "fcm_type": self.fcm_type,
            "version": self.version,
            "capabilities": [c.to_dict() for c in self.capabilities],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CapabilityDescriptor":
        return cls(
            fcm_type=str(data["fcm_type"]),
            version=int(data.get("version", 1)),
            capabilities=tuple(Capability.from_dict(c)
                               for c in data.get("capabilities", ())),
        )


class DescriptorCache:
    """Memoised descriptors keyed by ``(guid, fcm handle, version)``.

    The version rides in the FCM's registry attributes, so a cache user
    knows the current key *before* deciding whether to fetch; a stale
    version simply misses.  :meth:`invalidate_guid` drops every entry of
    one device — called on ``dcm.uninstalled`` (bus reset, hot-unplug,
    guid reuse), so a new device instance behind a recycled guid can
    never be served the departed instance's descriptor.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, CapabilityDescriptor] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, guid: str, handle: int,
            version: int) -> Optional[CapabilityDescriptor]:
        descriptor = self._entries.get((guid, handle, version))
        if descriptor is None:
            self.misses += 1
        else:
            self.hits += 1
        return descriptor

    def put(self, guid: str, handle: int, version: int,
            descriptor: CapabilityDescriptor) -> None:
        self._entries[(guid, handle, version)] = descriptor

    def invalidate_guid(self, guid: str) -> int:
        """Drop every entry of one device; returns how many were dropped."""
        doomed = [key for key in self._entries if key[0] == guid]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self.invalidations += len(self._entries)
        self._entries.clear()

"""Software element identifiers.

HAVi addresses every software element with a SEID: the 64-bit GUID of the
hosting device plus a local handle.  We keep GUIDs as stable hex strings
(derived from model + unit number, see :func:`repro.util.ids.guid_from_seed`)
so simulation runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Well-known software element type names (subset of the HAVi table).
SOFTWARE_ELEMENT_TYPES = (
    "messaging_system",
    "registry",
    "event_manager",
    "dcm_manager",
    "dcm",
    "fcm",
    "application",
)


@dataclass(frozen=True, order=True)
class SEID:
    """A software element identifier: (device GUID, local handle)."""

    guid: str
    handle: int

    def __post_init__(self) -> None:
        if not self.guid:
            raise ValueError("SEID guid must be non-empty")
        if self.handle < 0:
            raise ValueError(f"SEID handle must be >= 0: {self.handle}")

    def __str__(self) -> str:
        return f"{self.guid}:{self.handle}"

    @classmethod
    def parse(cls, text: str) -> "SEID":
        guid, _, handle = text.rpartition(":")
        if not guid:
            raise ValueError(f"malformed SEID {text!r}")
        return cls(guid, int(handle))

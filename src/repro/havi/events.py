"""The HAVi event manager: network-wide publish/subscribe.

Events are fire-and-forget notifications (appliance state changed, device
attached, timer finished).  Subscribers filter by opcode prefix, so an
application can watch ``"fcm.state"`` without enumerating appliances.
Delivery is asynchronous on the virtual clock, via the message system's
latency model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.havi.seid import SEID
from repro.util.scheduler import Scheduler


@dataclass(frozen=True)
class HaviEvent:
    """A posted event: who, what, and details."""

    source: SEID
    opcode: str
    payload: dict = field(default_factory=dict)


Subscriber = Callable[[HaviEvent], None]


@dataclass
class _Subscription:
    ident: int
    prefix: str
    callback: Subscriber
    source: Optional[SEID]


class EventManager:
    """Routes :class:`HaviEvent` objects to prefix-filtered subscribers."""

    def __init__(self, scheduler: Scheduler, latency: float = 0.0002) -> None:
        self.scheduler = scheduler
        self.latency = latency
        self._subs: dict[int, _Subscription] = {}
        self._ids = itertools.count(1)
        self.events_posted = 0

    def subscribe(self, prefix: str, callback: Subscriber,
                  source: Optional[SEID] = None) -> int:
        """Subscribe to events whose opcode starts with ``prefix``.

        ``source`` optionally restricts to one emitting SEID.  Returns a
        subscription id for :meth:`unsubscribe`.
        """
        ident = next(self._ids)
        self._subs[ident] = _Subscription(ident, prefix, callback, source)
        return ident

    def unsubscribe(self, ident: int) -> None:
        self._subs.pop(ident, None)

    def post(self, event: HaviEvent) -> None:
        """Deliver the event to every matching subscriber, asynchronously."""
        self.events_posted += 1
        for sub in list(self._subs.values()):
            if not event.opcode.startswith(sub.prefix):
                continue
            if sub.source is not None and event.source != sub.source:
                continue
            self.scheduler.call_later(self.latency, self._dispatch,
                                      sub.ident, event)

    def _dispatch(self, ident: int, event: HaviEvent) -> None:
        sub = self._subs.get(ident)
        if sub is not None:  # may have unsubscribed in flight
            sub.callback(event)

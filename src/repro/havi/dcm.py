"""Device Control Modules: one per appliance on the network."""

from __future__ import annotations

from typing import Callable, Optional

from repro.havi.element import SoftwareElement
from repro.havi.events import EventManager
from repro.havi.fcm import Fcm
from repro.havi.messaging import HaviMessage, MessageSystem
from repro.havi.registry import Registry
from repro.havi.seid import SEID
from repro.util.errors import HaviError


class Dcm(SoftwareElement):
    """The software face of one appliance.

    Owns the appliance's FCMs; installing a DCM attaches and registers the
    DCM and every FCM, uninstalling reverses it — this is what happens when
    a device hotplugs on/off the home bus.
    """

    element_type = "dcm"

    def __init__(self, guid: str, messaging: MessageSystem,
                 events: EventManager, registry: Registry,
                 device_class: str, manufacturer: str, model: str,
                 name: str) -> None:
        super().__init__(SEID(guid, 0), messaging)
        self.events = events
        self.registry = registry
        self.guid = guid
        self.device_class = device_class
        self.manufacturer = manufacturer
        self.model = model
        self.name = name
        self.fcms: list[Fcm] = []
        self._next_handle = 1
        self._installed = False

    # -- construction -------------------------------------------------------

    def add_fcm(self, factory: Callable[..., Fcm], **kwargs) -> Fcm:
        """Create an FCM with the next free handle on this device."""
        if self._installed:
            raise HaviError("cannot add FCMs to an installed DCM")
        seid = SEID(self.guid, self._next_handle)
        self._next_handle += 1
        fcm = factory(seid=seid, messaging=self.messaging,
                      events=self.events, device_guid=self.guid,
                      device_name=self.name, **kwargs)
        self.fcms.append(fcm)
        return fcm

    def fcm_by_type(self, fcm_type) -> Optional[Fcm]:
        for fcm in self.fcms:
            if fcm.fcm_type is fcm_type:
                return fcm
        return None

    # -- lifecycle -------------------------------------------------------------

    @property
    def installed(self) -> bool:
        return self._installed

    def capabilities(self) -> dict[int, "object"]:
        """Descriptors of every FCM, keyed by the FCM's SEID handle."""
        return {fcm.seid.handle: fcm.capability_descriptor()
                for fcm in self.fcms}

    def install(self) -> None:
        if self._installed:
            raise HaviError(f"DCM {self.name} already installed")
        # drift guard: a descriptor naming a command or attribute its FCM
        # does not implement must fail loudly at hotplug, not at the first
        # click of an auto-generated widget
        for fcm in self.fcms:
            fcm.validate_capabilities()
        self.attach()
        self.registry.register(self.seid, self.registry_attributes())
        for fcm in self.fcms:
            fcm.attach()
            self.registry.register(fcm.seid, {
                **fcm.registry_attributes(),
                "device.class": self.device_class,
            })
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            raise HaviError(f"DCM {self.name} is not installed")
        for fcm in self.fcms:
            self.registry.unregister(fcm.seid)
            fcm.detach()
        self.registry.unregister(self.seid)
        self.detach()
        self._installed = False

    # -- requests ----------------------------------------------------------------

    def handle_request(self, message: HaviMessage) -> None:
        if message.opcode == "dcm.describe":
            self.reply(message, {
                "guid": self.guid,
                "device_class": self.device_class,
                "manufacturer": self.manufacturer,
                "model": self.model,
                "name": self.name,
                "fcm_seids": [str(fcm.seid) for fcm in self.fcms],
                "capability_versions": {
                    str(fcm.seid.handle): fcm.descriptor_version
                    for fcm in self.fcms},
            })
            return
        if message.opcode == "capabilities.get":
            self.reply(message, {"descriptors": {
                str(handle): descriptor.to_dict()
                for handle, descriptor in self.capabilities().items()}})
            return
        super().handle_request(message)

    def registry_attributes(self) -> dict[str, object]:
        return {
            "element.type": "dcm",
            "device.guid": self.guid,
            "device.class": self.device_class,
            "device.manufacturer": self.manufacturer,
            "device.model": self.model,
            "device.name": self.name,
        }

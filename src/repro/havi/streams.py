"""HAVi stream manager: AV plug connections between FCMs.

HAVi devices do more than accept commands — they stream media to each
other (the VCR's video output feeds the TV's display input).  FCMs declare
*plugs*; the :class:`StreamManager` validates and tracks connections,
notifies the sink FCM (``plug.attach`` / ``plug.detach`` commands) so it
can retune its source, posts ``stream.*`` events, and tears connections
down when either end leaves the bus.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.havi.events import HaviEvent
from repro.havi.fcm import Fcm
from repro.havi.seid import SEID
from repro.util.errors import HaviError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.havi.manager import HomeNetwork


@dataclass(frozen=True)
class Plug:
    """One media attachment point on an FCM."""

    name: str
    direction: str  # "out" (source) or "in" (sink)
    media: str = "av"

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise HaviError(f"plug direction must be in/out: "
                            f"{self.direction!r}")


@dataclass(frozen=True)
class StreamConnection:
    """An established source->sink connection."""

    connection_id: int
    source: SEID
    source_plug: str
    sink: SEID
    sink_plug: str
    media: str


class StreamManager:
    """Connects FCM output plugs to FCM input plugs."""

    def __init__(self, network: "HomeNetwork") -> None:
        self.network = network
        self._connections: dict[int, StreamConnection] = {}
        self._ids = itertools.count(1)
        network.registry.on_change.append(self._on_registry_change)

    # -- plug lookup ---------------------------------------------------------

    def _resolve_fcm(self, seid: SEID) -> Fcm:
        for dcm in self.network.dcm_manager.dcms.values():
            for fcm in dcm.fcms:
                if fcm.seid == seid:
                    return fcm
        raise HaviError(f"no installed FCM with SEID {seid}")

    def _find_plug(self, fcm: Fcm, name: str) -> Plug:
        for plug in getattr(fcm, "plugs", ()):
            if plug.name == name:
                return plug
        raise HaviError(
            f"FCM {fcm.seid} has no plug {name!r}; "
            f"plugs: {[p.name for p in getattr(fcm, 'plugs', ())]}")

    # -- connecting ----------------------------------------------------------------

    def connect(self, source: SEID, source_plug: str, sink: SEID,
                sink_plug: str) -> StreamConnection:
        """Establish a stream; validates directions, media and exclusivity."""
        src_fcm = self._resolve_fcm(source)
        dst_fcm = self._resolve_fcm(sink)
        src = self._find_plug(src_fcm, source_plug)
        dst = self._find_plug(dst_fcm, sink_plug)
        if src.direction != "out":
            raise HaviError(f"{source_plug!r} on {source} is not an output")
        if dst.direction != "in":
            raise HaviError(f"{sink_plug!r} on {sink} is not an input")
        if src.media != dst.media:
            raise HaviError(f"media mismatch: {src.media} -> {dst.media}")
        for connection in self._connections.values():
            if (connection.sink == sink
                    and connection.sink_plug == sink_plug):
                raise HaviError(
                    f"sink plug {sink}:{sink_plug} already connected "
                    f"(connection {connection.connection_id})")
        connection = StreamConnection(
            connection_id=next(self._ids),
            source=source, source_plug=source_plug,
            sink=sink, sink_plug=sink_plug, media=src.media,
        )
        self._connections[connection.connection_id] = connection
        # tell the sink where its signal now comes from
        dst_fcm.invoke_local("plug.attach", {
            "plug": sink_plug,
            "source_seid": str(source),
            "source_guid": src_fcm.device_guid,
            "source_type": src_fcm.fcm_type.value,
        })
        self.network.events.post(HaviEvent(
            source=sink,
            opcode="stream.connected",
            payload={"connection_id": connection.connection_id,
                     "source": str(source), "sink": str(sink)},
        ))
        return connection

    def disconnect(self, connection_id: int) -> None:
        connection = self._connections.pop(connection_id, None)
        if connection is None:
            raise HaviError(f"no stream connection {connection_id}")
        try:
            sink_fcm = self._resolve_fcm(connection.sink)
        except HaviError:
            sink_fcm = None  # sink already left the bus
        if sink_fcm is not None:
            sink_fcm.invoke_local("plug.detach",
                                  {"plug": connection.sink_plug})
        self.network.events.post(HaviEvent(
            source=connection.sink,
            opcode="stream.disconnected",
            payload={"connection_id": connection.connection_id},
        ))

    # -- queries --------------------------------------------------------------------

    @property
    def connections(self) -> list[StreamConnection]:
        return sorted(self._connections.values(),
                      key=lambda c: c.connection_id)

    def connections_of(self, seid: SEID) -> list[StreamConnection]:
        return [c for c in self.connections
                if c.source == seid or c.sink == seid]

    # -- hotplug cleanup ---------------------------------------------------------------

    def _on_registry_change(self, kind: str, entry) -> None:
        if kind != "unregistered":
            return
        doomed = [c.connection_id for c in self._connections.values()
                  if c.source == entry.seid or c.sink == entry.seid]
        for connection_id in doomed:
            self.disconnect(connection_id)

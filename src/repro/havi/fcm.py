"""Functional Component Modules: the controllable units of an appliance.

A HAVi DCM exposes one FCM per controllable function — a TV is a tuner FCM
plus a display FCM; a VCR is a transport FCM plus a tuner FCM.  FCMs accept
*commands* (request messages), hold *state*, and post ``fcm.state.*`` events
whenever state changes, which is what keeps control panels live.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.havi.capabilities import (
    Capability,
    CapabilityDescriptor,
    MAIN_COMPONENT,
)
from repro.havi.element import SoftwareElement
from repro.havi.events import EventManager, HaviEvent
from repro.havi.messaging import HaviMessage, MessageSystem
from repro.havi.seid import SEID
from repro.util.errors import FcmError


class FcmType(enum.Enum):
    """HAVi standard FCM types plus the white-goods extensions the paper's
    home (kitchen, lights, air conditioning) needs."""

    TUNER = "tuner"
    VCR = "vcr"
    CLOCK = "clock"
    CAMERA = "camera"
    AV_DISC = "av_disc"
    AMPLIFIER = "amplifier"
    DISPLAY = "display"
    MODEM = "modem"
    WEB_PROXY = "web_proxy"
    # vendor extensions (HAVi reserves a vendor-specific range)
    AIRCON = "aircon"
    LIGHT = "light"
    MICROWAVE = "microwave"
    REFRIGERATOR = "refrigerator"


class FcmCommandError(FcmError):
    """A command was rejected; carries the HAVi-style status code."""

    def __init__(self, status: str, detail: str = "") -> None:
        super().__init__(detail or status)
        self.status = status


CommandHandler = Callable[[dict], dict]

#: Sentinel distinguishing "no initial value" from ``initial=None``.
_UNSET = object()


class Fcm(SoftwareElement):
    """Base FCM: a command table plus observable state.

    Subclasses call :meth:`register_command` for each verb and
    :meth:`set_state` for every observable value; everything else
    (messaging, events, introspection) is inherited.
    """

    element_type = "fcm"
    fcm_type: FcmType = FcmType.CLOCK

    def __init__(self, seid: SEID, messaging: MessageSystem,
                 events: EventManager, device_guid: str,
                 device_name: str) -> None:
        super().__init__(seid, messaging)
        self.events = events
        self.device_guid = device_guid
        self.device_name = device_name
        self._state: dict[str, object] = {}
        self._commands: dict[str, CommandHandler] = {}
        self._capabilities: list[Capability] = []
        #: Bumped whenever the capability set changes, so descriptor
        #: caches keyed by (guid, handle, version) miss on a new shape.
        self.descriptor_version = 0
        #: Media plugs (see :mod:`repro.havi.streams`); subclasses append.
        self.plugs: tuple = ()
        self.register_command("fcm.describe", self._cmd_describe)
        self.register_command("fcm.get_state", self._cmd_get_state)
        self.register_command("capabilities.get", self._cmd_capabilities)

    def add_plug(self, name: str, direction: str, media: str = "av") -> None:
        """Declare a media plug on this FCM."""
        from repro.havi.streams import Plug
        self.plugs = self.plugs + (Plug(name, direction, media),)

    # -- commands -----------------------------------------------------------

    def register_command(self, opcode: str, handler: CommandHandler) -> None:
        if opcode in self._commands:
            raise FcmError(f"duplicate command {opcode!r}")
        self._commands[opcode] = handler

    @property
    def commands(self) -> list[str]:
        return sorted(self._commands)

    def handle_request(self, message: HaviMessage) -> None:
        handler = self._commands.get(message.opcode)
        if handler is None:
            self.reply(message, status="EUNSUPPORTED")
            return
        try:
            result = handler(dict(message.payload))
        except FcmCommandError as error:
            self.reply(message, {"detail": str(error)}, status=error.status)
            return
        self.reply(message, result if result is not None else {})

    def invoke_local(self, opcode: str, payload: dict | None = None) -> dict:
        """Synchronous command invocation (appliance-internal use, tests)."""
        handler = self._commands.get(opcode)
        if handler is None:
            raise FcmCommandError("EUNSUPPORTED", f"no command {opcode!r}")
        result = handler(dict(payload or {}))
        return result if result is not None else {}

    # -- capabilities --------------------------------------------------------

    def declare_capability(self, capability: Capability, *,
                           handler: Optional[CommandHandler] = None,
                           initial: object = _UNSET) -> Capability:
        """Declare one capability, wiring state and command in the same act.

        Passing ``handler`` registers the capability's command; passing
        ``initial`` seeds the capability's state attribute.  Because the
        declaration *is* the registration, the descriptor cannot name a
        command or attribute the FCM does not implement —
        :meth:`validate_capabilities` (run at DCM install) catches the
        remaining drift direction (a capability whose command/attribute
        was declared elsewhere and later removed).
        """
        if any(c.name == capability.name for c in self._capabilities):
            raise FcmError(f"duplicate capability {capability.name!r}")
        if capability.attribute and initial is not _UNSET:
            self.init_state(capability.attribute, initial)
        if capability.command and handler is not None:
            self.register_command(capability.command, handler)
        self._capabilities.append(capability)
        self.descriptor_version += 1
        return capability

    def declare_switch(self, name: str, *, command: str, arg: str = "on",
                       handler: Optional[CommandHandler] = None,
                       attribute: Optional[str] = None,
                       initial: object = _UNSET, label: str = "",
                       component: str = MAIN_COMPONENT) -> Capability:
        return self.declare_capability(Capability(
            kind="switch", name=name, label=label, command=command,
            arg_name=arg, attribute=attribute if attribute is not None
            else name, component=component), handler=handler,
            initial=initial)

    def declare_range(self, name: str, minimum: int, maximum: int, *,
                      command: str, arg: str, step: int = 1,
                      handler: Optional[CommandHandler] = None,
                      attribute: Optional[str] = None,
                      initial: object = _UNSET, unit: str = "",
                      label: str = "",
                      component: str = MAIN_COMPONENT) -> Capability:
        return self.declare_capability(Capability(
            kind="range", name=name, label=label, command=command,
            arg_name=arg, minimum=minimum, maximum=maximum, step=step,
            unit=unit, attribute=attribute if attribute is not None
            else name, component=component), handler=handler,
            initial=initial)

    def declare_choice(self, name: str, choices, *, command: str, arg: str,
                       handler: Optional[CommandHandler] = None,
                       attribute: Optional[str] = None,
                       initial: object = _UNSET, label: str = "",
                       component: str = MAIN_COMPONENT) -> Capability:
        return self.declare_capability(Capability(
            kind="choice", name=name, label=label, command=command,
            arg_name=arg, choices=tuple(choices),
            attribute=attribute if attribute is not None else name,
            component=component), handler=handler, initial=initial)

    def declare_number(self, name: str, minimum: int, maximum: int, *,
                       command: str, arg: str,
                       handler: Optional[CommandHandler] = None,
                       attribute: str = "", initial: object = _UNSET,
                       unit: str = "", label: str = "",
                       component: str = MAIN_COMPONENT) -> Capability:
        return self.declare_capability(Capability(
            kind="number", name=name, label=label, command=command,
            arg_name=arg, minimum=minimum, maximum=maximum, unit=unit,
            attribute=attribute, component=component), handler=handler,
            initial=initial)

    def declare_text(self, name: str, *, attribute: Optional[str] = None,
                     initial: object = _UNSET, fmt: str = "",
                     label: str = "",
                     component: str = MAIN_COMPONENT) -> Capability:
        return self.declare_capability(Capability(
            kind="text", name=name, label=label, read_only=True, fmt=fmt,
            attribute=attribute if attribute is not None else name,
            component=component), initial=initial)

    def declare_progress(self, name: str, minimum: int, maximum: int, *,
                         attribute: Optional[str] = None,
                         initial: object = _UNSET, unit: str = "",
                         label: str = "",
                         component: str = MAIN_COMPONENT) -> Capability:
        return self.declare_capability(Capability(
            kind="progress", name=name, label=label, read_only=True,
            minimum=minimum, maximum=maximum, unit=unit,
            attribute=attribute if attribute is not None else name,
            component=component), initial=initial)

    def declare_button(self, name: str, *, command: str,
                       handler: Optional[CommandHandler] = None,
                       args: dict | None = None, label: str = "",
                       component: str = MAIN_COMPONENT) -> Capability:
        return self.declare_capability(Capability(
            kind="button", name=name, label=label, command=command,
            args=dict(args or {}), component=component), handler=handler)

    @property
    def capabilities(self) -> tuple:
        return tuple(self._capabilities)

    def capability_descriptor(self) -> CapabilityDescriptor:
        return CapabilityDescriptor(
            fcm_type=self.fcm_type.value,
            version=self.descriptor_version,
            capabilities=tuple(self._capabilities))

    def validate_capabilities(self) -> None:
        """Descriptor↔behaviour drift guard (run at DCM install).

        Every capability command must be a registered verb and every
        capability attribute an existing state key, so a descriptor can
        never promise a surface something the FCM won't honour.
        """
        for capability in self._capabilities:
            if capability.command and (capability.command
                                       not in self._commands):
                raise FcmError(
                    f"{self.fcm_type.value} capability "
                    f"{capability.name!r} names unregistered command "
                    f"{capability.command!r}")
            if capability.attribute and (capability.attribute
                                         not in self._state):
                raise FcmError(
                    f"{self.fcm_type.value} capability "
                    f"{capability.name!r} names unknown attribute "
                    f"{capability.attribute!r}")

    # -- state -------------------------------------------------------------------

    def get_state(self, key: str, default: object = None) -> object:
        return self._state.get(key, default)

    @property
    def state(self) -> dict[str, object]:
        return dict(self._state)

    def set_state(self, key: str, value: object) -> None:
        """Update one state variable, posting an event when it changes."""
        if self._state.get(key) == value and key in self._state:
            return
        self._state[key] = value
        self.events.post(HaviEvent(
            source=self.seid,
            opcode=f"fcm.state.{key}",
            payload={
                "seid": str(self.seid),
                "fcm_type": self.fcm_type.value,
                "device_guid": self.device_guid,
                "key": key,
                "value": value,
            },
        ))

    def init_state(self, key: str, value: object) -> None:
        """Set initial state without posting an event."""
        self._state[key] = value

    # -- introspection ---------------------------------------------------------------

    def _cmd_describe(self, payload: dict) -> dict:
        return {
            "fcm_type": self.fcm_type.value,
            "device_guid": self.device_guid,
            "device_name": self.device_name,
            "commands": self.commands,
            "state": self.state,
            "capability_version": self.descriptor_version,
        }

    def _cmd_get_state(self, payload: dict) -> dict:
        return {"state": self.state}

    def _cmd_capabilities(self, payload: dict) -> dict:
        return {"descriptor": self.capability_descriptor().to_dict(),
                "version": self.descriptor_version}

    # -- registry ------------------------------------------------------------------

    def registry_attributes(self) -> dict[str, object]:
        return {
            "element.type": "fcm",
            "fcm.type": self.fcm_type.value,
            "device.guid": self.device_guid,
            "device.name": self.device_name,
            "capability.version": self.descriptor_version,
        }

    # -- guards ---------------------------------------------------------------------

    def require_power(self) -> None:
        """Common guard: many commands are invalid while powered off."""
        if not self.get_state("power", False):
            raise FcmCommandError("EPOWER_OFF",
                                  f"{self.device_name} is powered off")

    @staticmethod
    def require_arg(payload: dict, name: str) -> object:
        if name not in payload:
            raise FcmCommandError("EINVALID_ARG", f"missing argument {name!r}")
        return payload[name]

"""Functional Component Modules: the controllable units of an appliance.

A HAVi DCM exposes one FCM per controllable function — a TV is a tuner FCM
plus a display FCM; a VCR is a transport FCM plus a tuner FCM.  FCMs accept
*commands* (request messages), hold *state*, and post ``fcm.state.*`` events
whenever state changes, which is what keeps control panels live.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.havi.element import SoftwareElement
from repro.havi.events import EventManager, HaviEvent
from repro.havi.messaging import HaviMessage, MessageSystem
from repro.havi.seid import SEID
from repro.util.errors import FcmError


class FcmType(enum.Enum):
    """HAVi standard FCM types plus the white-goods extensions the paper's
    home (kitchen, lights, air conditioning) needs."""

    TUNER = "tuner"
    VCR = "vcr"
    CLOCK = "clock"
    CAMERA = "camera"
    AV_DISC = "av_disc"
    AMPLIFIER = "amplifier"
    DISPLAY = "display"
    MODEM = "modem"
    WEB_PROXY = "web_proxy"
    # vendor extensions (HAVi reserves a vendor-specific range)
    AIRCON = "aircon"
    LIGHT = "light"
    MICROWAVE = "microwave"


class FcmCommandError(FcmError):
    """A command was rejected; carries the HAVi-style status code."""

    def __init__(self, status: str, detail: str = "") -> None:
        super().__init__(detail or status)
        self.status = status


CommandHandler = Callable[[dict], dict]


class Fcm(SoftwareElement):
    """Base FCM: a command table plus observable state.

    Subclasses call :meth:`register_command` for each verb and
    :meth:`set_state` for every observable value; everything else
    (messaging, events, introspection) is inherited.
    """

    element_type = "fcm"
    fcm_type: FcmType = FcmType.CLOCK

    def __init__(self, seid: SEID, messaging: MessageSystem,
                 events: EventManager, device_guid: str,
                 device_name: str) -> None:
        super().__init__(seid, messaging)
        self.events = events
        self.device_guid = device_guid
        self.device_name = device_name
        self._state: dict[str, object] = {}
        self._commands: dict[str, CommandHandler] = {}
        #: Media plugs (see :mod:`repro.havi.streams`); subclasses append.
        self.plugs: tuple = ()
        self.register_command("fcm.describe", self._cmd_describe)
        self.register_command("fcm.get_state", self._cmd_get_state)

    def add_plug(self, name: str, direction: str, media: str = "av") -> None:
        """Declare a media plug on this FCM."""
        from repro.havi.streams import Plug
        self.plugs = self.plugs + (Plug(name, direction, media),)

    # -- commands -----------------------------------------------------------

    def register_command(self, opcode: str, handler: CommandHandler) -> None:
        if opcode in self._commands:
            raise FcmError(f"duplicate command {opcode!r}")
        self._commands[opcode] = handler

    @property
    def commands(self) -> list[str]:
        return sorted(self._commands)

    def handle_request(self, message: HaviMessage) -> None:
        handler = self._commands.get(message.opcode)
        if handler is None:
            self.reply(message, status="EUNSUPPORTED")
            return
        try:
            result = handler(dict(message.payload))
        except FcmCommandError as error:
            self.reply(message, {"detail": str(error)}, status=error.status)
            return
        self.reply(message, result if result is not None else {})

    def invoke_local(self, opcode: str, payload: dict | None = None) -> dict:
        """Synchronous command invocation (appliance-internal use, tests)."""
        handler = self._commands.get(opcode)
        if handler is None:
            raise FcmCommandError("EUNSUPPORTED", f"no command {opcode!r}")
        result = handler(dict(payload or {}))
        return result if result is not None else {}

    # -- state -------------------------------------------------------------------

    def get_state(self, key: str, default: object = None) -> object:
        return self._state.get(key, default)

    @property
    def state(self) -> dict[str, object]:
        return dict(self._state)

    def set_state(self, key: str, value: object) -> None:
        """Update one state variable, posting an event when it changes."""
        if self._state.get(key) == value and key in self._state:
            return
        self._state[key] = value
        self.events.post(HaviEvent(
            source=self.seid,
            opcode=f"fcm.state.{key}",
            payload={
                "seid": str(self.seid),
                "fcm_type": self.fcm_type.value,
                "device_guid": self.device_guid,
                "key": key,
                "value": value,
            },
        ))

    def init_state(self, key: str, value: object) -> None:
        """Set initial state without posting an event."""
        self._state[key] = value

    # -- introspection ---------------------------------------------------------------

    def _cmd_describe(self, payload: dict) -> dict:
        return {
            "fcm_type": self.fcm_type.value,
            "device_guid": self.device_guid,
            "device_name": self.device_name,
            "commands": self.commands,
            "state": self.state,
        }

    def _cmd_get_state(self, payload: dict) -> dict:
        return {"state": self.state}

    # -- registry ------------------------------------------------------------------

    def registry_attributes(self) -> dict[str, object]:
        return {
            "element.type": "fcm",
            "fcm.type": self.fcm_type.value,
            "device.guid": self.device_guid,
            "device.name": self.device_name,
        }

    # -- guards ---------------------------------------------------------------------

    def require_power(self) -> None:
        """Common guard: many commands are invalid while powered off."""
        if not self.get_state("power", False):
            raise FcmCommandError("EPOWER_OFF",
                                  f"{self.device_name} is powered off")

    @staticmethod
    def require_arg(payload: dict, name: str) -> object:
        if name not in payload:
            raise FcmCommandError("EINVALID_ARG", f"missing argument {name!r}")
        return payload[name]

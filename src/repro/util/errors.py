"""Exception hierarchy for the reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause, while
still being able to distinguish protocol, transport and middleware faults.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchedulerError(ReproError):
    """Misuse of the virtual-time scheduler (e.g. scheduling in the past)."""


class ReactorError(ReproError):
    """Misuse of the I/O reactor (duplicate registration, runaway loop)."""


class TransportError(ReproError):
    """A network transport failed (framing, overflow, simulated loss)."""


class TransportClosed(TransportError):
    """Operation attempted on a transport that has been closed."""


class ProtocolError(ReproError):
    """Universal-interaction-protocol violation (bad handshake, message)."""


class GraphicsError(ReproError):
    """Invalid raster operation (bad geometry, pixel format mismatch)."""


class ToolkitError(ReproError):
    """Widget toolkit misuse (re-parenting, painting an unrooted tree)."""


class HaviError(ReproError):
    """HAVi middleware fault."""


class RegistryError(HaviError):
    """Bad registry query or duplicate registration."""


class MessagingError(HaviError):
    """Message addressed to an unknown software element."""


class FcmError(HaviError):
    """An FCM rejected a command (unsupported or invalid in this state)."""


class ApplianceError(ReproError):
    """Simulated appliance driven outside its state machine."""


class ProxyError(ReproError):
    """UniInt proxy misuse (unknown device, no active session)."""


class PluginError(ProxyError):
    """A device plug-in could not be instantiated or rejected an event."""


class ContextError(ReproError):
    """Invalid situation or preference data."""

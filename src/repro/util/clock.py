"""Clock abstractions.

The whole system is written against the :class:`Clock` interface so the same
code runs under a deterministic :class:`VirtualClock` (tests, simulation) or
a :class:`MonotonicClock` (interactive demos, benchmarks that want wall
time).  Times are float seconds.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: something that can tell the current time in seconds."""

    def now(self) -> float:
        raise NotImplementedError


class VirtualClock(Clock):
    """A clock that only moves when told to.

    The :class:`~repro.util.scheduler.Scheduler` advances it as events fire,
    which makes every latency in the simulation exact and reproducible.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t`` (never backward)."""
        if t < self._now:
            raise ValueError(
                f"virtual clock cannot move backward: {t} < {self._now}"
            )
        self._now = float(t)

    def advance(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"negative clock advance: {dt}")
        self._now += dt


class ManualClock(VirtualClock):
    """Alias of :class:`VirtualClock` kept for expressiveness in tests."""


class MonotonicClock(Clock):
    """Wall-clock time via :func:`time.monotonic`, offset to start at zero."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

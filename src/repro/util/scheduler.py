"""Deterministic virtual-time event scheduler.

This is the simulation kernel: every asynchronous thing in the reproduction
(network delivery, appliance timers, context changes, device think time) is
an :class:`Event` in one :class:`Scheduler`.  Running the scheduler advances
the :class:`~repro.util.clock.VirtualClock`; two runs with the same inputs
produce byte-identical traces.

Events at the same timestamp fire in scheduling order (FIFO), which keeps
causality intuitive: if A schedules B and C at the same instant, B fires
before C.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.clock import VirtualClock
from repro.util.errors import SchedulerError


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A cancellable callback scheduled at an absolute virtual time."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired",
                 "_scheduler")

    def __init__(
        self, time: float, callback: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._scheduler: "Scheduler | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing; cancelling twice is harmless."""
        if self.cancelled:
            return
        self.cancelled = True
        # A fired event has already left the heap; only a still-queued
        # cancellation affects the scheduler's dead-entry accounting.
        if not self.fired and self._scheduler is not None:
            self._scheduler._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled else "fired" if self.fired else "pending"
        )
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Scheduler:
    """Priority-queue scheduler over a :class:`VirtualClock`.

    >>> sched = Scheduler()
    >>> order = []
    >>> _ = sched.call_later(0.2, order.append, "b")
    >>> _ = sched.call_later(0.1, order.append, "a")
    >>> sched.run_until_idle()
    >>> order
    ['a', 'b']
    >>> sched.now()
    0.2
    """

    #: Heaps smaller than this are never compacted: the O(n) rebuild only
    #: pays for itself once a meaningful number of dead entries pile up.
    COMPACT_MIN_SIZE = 64

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._fired_count = 0
        # Cancelled-but-still-queued entries, kept live so pending_count()
        # is O(1) and the heap can be compacted before it grows without
        # bound under cancel-heavy timer churn (e.g. backpressure timers).
        self._cancelled_in_heap = 0
        self._compactions = 0

    # -- time -------------------------------------------------------------

    def now(self) -> float:
        return self.clock.now()

    @property
    def fired_count(self) -> int:
        """Number of events that have fired (for tests and diagnostics)."""
        return self._fired_count

    def pending_count(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return len(self._queue) - self._cancelled_in_heap

    def next_event_time(self) -> float | None:
        """Virtual time of the earliest live pending event, or ``None``.

        Dead (cancelled) heap heads are reaped on the way, so repeated
        peeks stay cheap.  A reactor uses this to size its ``select()``
        timeout: block for I/O only until the scheduler has work again.
        """
        while self._queue and self._queue[0].event.cancelled:
            heapq.heappop(self._queue)
            self._cancelled_in_heap -= 1
        return self._queue[0].time if self._queue else None

    def has_ready(self) -> bool:
        """True if an event is due at (or before) the current instant."""
        when = self.next_event_time()
        return when is not None and when <= self.clock.now() + 1e-12

    # -- scheduling -------------------------------------------------------

    def call_at(self, when: float, callback: Callable, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self.clock.now() - 1e-12:
            raise SchedulerError(
                f"cannot schedule at {when}; clock already at {self.clock.now()}"
            )
        event = Event(max(when, self.clock.now()), callback, args)
        event._scheduler = self
        heapq.heappush(
            self._queue, _QueueEntry(event.time, next(self._seq), event)
        )
        return event

    def call_later(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulerError(f"negative delay: {delay}")
        return self.call_at(self.clock.now() + delay, callback, *args)

    def call_soon(self, callback: Callable, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the current instant (FIFO)."""
        return self.call_at(self.clock.now(), callback, *args)

    # -- cancellation accounting ------------------------------------------

    def _note_cancelled(self) -> None:
        """A queued event was cancelled; compact once mostly dead.

        The heap keeps cancelled entries until they are popped, so a
        workload that schedules and cancels timers far faster than time
        advances (backpressure churn) would otherwise grow the heap
        without bound.  Rebuilding from the live entries is O(n) and
        amortises against the >50% dead entries it removes.
        """
        self._cancelled_in_heap += 1
        if (len(self._queue) >= self.COMPACT_MIN_SIZE
                and self._cancelled_in_heap * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        self._queue = [e for e in self._queue if not e.event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_heap = 0
        self._compactions += 1

    # -- execution --------------------------------------------------------

    def _pop_next(self) -> Event | None:
        while self._queue:
            entry = heapq.heappop(self._queue)
            if not entry.event.cancelled:
                return entry.event
            self._cancelled_in_heap -= 1
        return None

    def step(self) -> bool:
        """Fire the single earliest pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was empty.
        """
        event = self._pop_next()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.fired = True
        self._fired_count += 1
        event.callback(*event.args)
        return True

    def run_ready(self, limit: int = 1_000_000) -> int:
        """Fire up to ``limit`` events due at the current instant.

        Unlike :meth:`run_until_idle` this never advances the clock past
        ``now()``: only events already due fire, so a reactor can give each
        of many schedulers a bounded *event budget* per turn without any
        of them running ahead of its own virtual time.  Returns the number
        of events fired (0 when nothing is due).
        """
        if self._running:
            raise SchedulerError("scheduler is not reentrant")
        self._running = True
        fired = 0
        try:
            while fired < limit and self.has_ready():
                self.step()
                fired += 1
            return fired
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Fire events until none remain; returns the number fired.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        if self._running:
            raise SchedulerError("scheduler is not reentrant")
        self._running = True
        fired = 0
        try:
            while fired < max_events:
                if not self.step():
                    return fired
                fired += 1
            raise SchedulerError(
                f"run_until_idle exceeded {max_events} events; "
                "likely a self-perpetuating event loop"
            )
        finally:
            self._running = False

    def run_until(self, deadline: float, max_events: int = 1_000_000) -> int:
        """Fire all events with time <= deadline, then advance the clock.

        Returns the number of events fired.  The clock always ends exactly at
        ``deadline`` even if the queue empties earlier, so periodic processes
        observe a consistent notion of elapsed time.
        """
        if self._running:
            raise SchedulerError("scheduler is not reentrant")
        if deadline < self.clock.now():
            raise SchedulerError(
                f"deadline {deadline} is in the past (now={self.clock.now()})"
            )
        self._running = True
        fired = 0
        try:
            while fired < max_events:
                while self._queue and self._queue[0].event.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_in_heap -= 1
                if not self._queue or self._queue[0].time > deadline:
                    break
                self.step()
                fired += 1
            else:
                raise SchedulerError(
                    f"run_until exceeded {max_events} events before {deadline}"
                )
            self.clock.advance_to(deadline)
            return fired
        finally:
            self._running = False

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Convenience: :meth:`run_until` ``now() + duration``."""
        return self.run_until(self.clock.now() + duration, max_events)

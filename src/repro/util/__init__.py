"""Simulation kernel utilities: clock, scheduler, ids, deterministic RNG.

Everything in the reproduction runs on a *virtual* clock so that tests and
benchmarks are deterministic: network latency, device think time and context
changes are scheduled events, not wall-clock sleeps.
"""

from repro.util.clock import ManualClock, MonotonicClock, VirtualClock
from repro.util.errors import (
    ProtocolError,
    ReactorError,
    ReproError,
    SchedulerError,
    TransportClosed,
    TransportError,
)
from repro.util.ids import IdAllocator, guid_from_seed
from repro.util.scheduler import Event, Scheduler

__all__ = [
    "Event",
    "IdAllocator",
    "ManualClock",
    "MonotonicClock",
    "ProtocolError",
    "ReactorError",
    "ReproError",
    "Scheduler",
    "SchedulerError",
    "TransportClosed",
    "TransportError",
    "VirtualClock",
    "guid_from_seed",
]

"""Deterministic identifier generation.

HAVi software elements, proxy sessions and devices all need unique ids.  We
avoid :mod:`uuid` so that repeated runs of a simulation produce identical
identifiers, which keeps golden-file tests and trace diffs meaningful.
"""

from __future__ import annotations

import hashlib
import itertools


class IdAllocator:
    """Hands out ``prefix-N`` strings with a monotonically increasing N.

    >>> ids = IdAllocator("dev")
    >>> ids.next(), ids.next()
    ('dev-1', 'dev-2')
    """

    def __init__(self, prefix: str, start: int = 1) -> None:
        self.prefix = prefix
        self._counter = itertools.count(start)

    def next(self) -> str:
        return f"{self.prefix}-{next(self._counter)}"

    def next_int(self) -> int:
        return next(self._counter)


def guid_prefixes(guids, start: int = 8) -> dict[str, str]:
    """Map each GUID to a prefix that is unique within the set.

    Widget and page ids embed a GUID prefix; two devices whose GUIDs share
    the first ``start`` hex digits would silently alias each other's
    widgets.  The prefix length is extended (uniformly, so id shapes stay
    consistent across the UI) until every prefix is distinct.
    """
    ordered = list(dict.fromkeys(guids))
    longest = max((len(guid) for guid in ordered), default=start)
    length = start
    while length < longest:
        prefixes = {guid: guid[:length] for guid in ordered}
        if len(set(prefixes.values())) == len(ordered):
            return prefixes
        length += 1
    return {guid: guid for guid in ordered}


def guid_from_seed(seed: str, length: int = 16) -> str:
    """Derive a stable hex GUID from a seed string.

    Used for simulated IEEE-1394 device GUIDs: the same appliance model and
    unit number always yields the same GUID, run after run.
    """
    if length <= 0 or length > 64:
        raise ValueError(f"guid length out of range: {length}")
    digest = hashlib.sha256(seed.encode("utf-8")).hexdigest()
    return digest[:length]

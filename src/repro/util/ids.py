"""Deterministic identifier generation.

HAVi software elements, proxy sessions and devices all need unique ids.  We
avoid :mod:`uuid` so that repeated runs of a simulation produce identical
identifiers, which keeps golden-file tests and trace diffs meaningful.
"""

from __future__ import annotations

import hashlib
import itertools


class IdAllocator:
    """Hands out ``prefix-N`` strings with a monotonically increasing N.

    >>> ids = IdAllocator("dev")
    >>> ids.next(), ids.next()
    ('dev-1', 'dev-2')
    """

    def __init__(self, prefix: str, start: int = 1) -> None:
        self.prefix = prefix
        self._counter = itertools.count(start)

    def next(self) -> str:
        return f"{self.prefix}-{next(self._counter)}"

    def next_int(self) -> int:
        return next(self._counter)


def guid_from_seed(seed: str, length: int = 16) -> str:
    """Derive a stable hex GUID from a seed string.

    Used for simulated IEEE-1394 device GUIDs: the same appliance model and
    unit number always yields the same GUID, run after run.
    """
    if length <= 0 or length > 64:
        raise ValueError(f"guid length out of range: {length}")
    digest = hashlib.sha256(seed.encode("utf-8")).hexdigest()
    return digest[:length]

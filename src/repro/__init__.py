"""Universal Interaction with Networked Home Appliances — reproduction.

A complete implementation of Nakajima & Hasegawa's ICDCS 2002 system:
thin-client *universal interaction* (bitmaps out, key/pointer events in)
between HAVi-controlled home appliances and heterogeneous interaction
devices, with a plug-in proxy and context-driven dynamic device selection.

Quick start::

    from repro import Home
    from repro.appliances import Television
    from repro.devices import Pda

    home = Home()
    home.add_appliance(Television("Living Room TV"))
    home.add_device(Pda("my-pda", home.scheduler))
    home.settle()            # run the simulated home to quiescence
    pda = home.devices["my-pda"]
    print(pda.screen_image)  # the TV control panel, dithered for the PDA

Layered architecture (each layer importable on its own):

========================  ====================================================
``repro.util``            virtual clock + deterministic event scheduler
``repro.net``             link profiles, scheduled byte pipes, framing
``repro.graphics``        bitmaps, pixel formats, regions, dithering, fonts
``repro.uip``             the universal interaction protocol (RFB-class)
``repro.toolkit``         the widget toolkit (AWT/GTK+ stand-in)
``repro.windows``         the window system (X stand-in)
``repro.havi``            HAVi middleware: registry, messaging, DCM/FCM, bus
``repro.appliances``      simulated TV, VCR, amp, DVD, aircon, light, oven
``repro.server``          the UniInt server
``repro.proxy``           the UniInt proxy, plug-ins, upstream client
``repro.devices``         PDA, phone, voice, remote, displays, gesture pad
``repro.context``         situations, preferences, profiles, selection policy
``repro.app``             the appliance application (composed GUIs) and the
                          status-monitor application
``repro.home``            the one-call Home facade
``repro.tools``           ASCII rendering, event traces, experiment reports
========================  ====================================================
"""

from repro.fleet import HomeFleet
from repro.home import Home

__version__ = "1.0.0"

__all__ = ["Home", "HomeFleet", "__version__"]

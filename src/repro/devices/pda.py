"""PDA: 320x240 4-grey touchscreen over 802.11b (the era's Palm/iPAQ)."""

from __future__ import annotations

import numpy as np

from repro.graphics import ops
from repro.graphics.bitmap import Bitmap
from repro.graphics.region import Rect
from repro.net.link import WIFI_11B
from repro.devices.base import InteractionDevice
from repro.proxy.descriptors import DeviceDescriptor, ScreenSpec
from repro.proxy.plugins import (
    DeviceImage,
    InputPlugin,
    OutputPlugin,
    UniversalEvent,
)
from repro.uip.messages import PointerEvent
from repro.util.errors import PluginError

PDA_WIDTH = 320
PDA_HEIGHT = 240


class PdaTouchPlugin(InputPlugin):
    """Maps stylus touches to pointer events via the inverse view transform."""

    def translate(self, event: dict) -> list[UniversalEvent]:
        if event.get("type") != "touch":
            return []
        view = self.context.view
        if view is None:
            return []  # nothing on screen yet; taps go nowhere
        action = event.get("action")
        if action not in ("down", "move", "up"):
            raise PluginError(f"bad touch action {action!r}")
        x, y = view.to_server(int(event["x"]), int(event["y"]))
        buttons = 0 if action == "up" else 1
        return [PointerEvent(buttons, x, y)]


class PdaOutputPlugin(OutputPlugin):
    """Letterboxed box-filter downscale, 4-grey ordered dither, 2-bit pack.

    Ordered dithering is chosen over error diffusion because its pattern is
    stable frame-to-frame — interactive updates do not shimmer.
    """

    def transform(self, frame: Bitmap, dirty: Rect) -> DeviceImage:
        view = self.fit_view(frame)
        target_w = max(1, int(frame.width * view.scale))
        target_h = max(1, int(frame.height * view.scale))
        scaled = (ops.scale_box(frame, target_w, target_h)
                  if view.scale < 1.0
                  else ops.scale_nearest(frame, target_w, target_h))
        gray = ops.to_grayscale(scaled)
        dithered = ops.ordered_dither(gray, levels=4)
        canvas = np.zeros((self.screen.height, self.screen.width))
        canvas[view.offset_y:view.offset_y + target_h,
               view.offset_x:view.offset_x + target_w] = dithered
        return DeviceImage(self.screen.width, self.screen.height, "gray4",
                           ops.pack_gray4(canvas))


class Pda(InteractionDevice):
    """A stylus-driven PDA: both an input and an output device."""

    kind = "pda"
    input_plugin_factory = PdaTouchPlugin
    output_plugin_factory = PdaOutputPlugin

    def build_descriptor(self) -> DeviceDescriptor:
        return DeviceDescriptor(
            device_id=self.device_id,
            kind=self.kind,
            screen=ScreenSpec(PDA_WIDTH, PDA_HEIGHT, "gray4"),
            input_modes=frozenset({"touch"}),
            link=WIFI_11B,
            tags=frozenset({"portable", "personal", "visual", "silent"}),
        )

    # -- user actions ---------------------------------------------------------

    def tap(self, x: int, y: int) -> None:
        """Stylus tap at device coordinates (x, y)."""
        self.send_event({"type": "touch", "action": "down", "x": x, "y": y})
        self.send_event({"type": "touch", "action": "up", "x": x, "y": y})

    def drag(self, points: list[tuple[int, int]]) -> None:
        """Stylus drag through the given device-coordinate points."""
        if not points:
            return
        first, *rest = points
        self.send_event({"type": "touch", "action": "down",
                         "x": first[0], "y": first[1]})
        for x, y in rest:
            self.send_event({"type": "touch", "action": "move",
                             "x": x, "y": y})
        last = points[-1]
        self.send_event({"type": "touch", "action": "up",
                         "x": last[0], "y": last[1]})

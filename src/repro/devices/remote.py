"""Infrared remote control: buttons only, IrDA link."""

from __future__ import annotations

from repro.devices.base import InteractionDevice
from repro.net.link import INFRARED_IRDA
from repro.proxy.descriptors import DeviceDescriptor
from repro.proxy.plugins import InputPlugin, UniversalEvent
from repro.uip import keysyms
from repro.uip.messages import KeyEvent
from repro.util.errors import PluginError

#: Remote buttons -> keysyms.  Digits map to character keys so number-aware
#: panels (channel entry) can use them directly.
BUTTON_MAP = {
    "up": keysyms.UP,
    "down": keysyms.DOWN,
    "left": keysyms.LEFT,
    "right": keysyms.RIGHT,
    "ok": keysyms.RETURN,
    "back": keysyms.ESCAPE,
    "next": keysyms.TAB,
    "menu": keysyms.MENU,
    **{str(d): ord(str(d)) for d in range(10)},
}


class RemoteButtonPlugin(InputPlugin):
    """Remote buttons -> universal key events."""

    def translate(self, event: dict) -> list[UniversalEvent]:
        if event.get("type") != "button":
            return []
        name = str(event.get("button"))
        if name == "prev":
            return [KeyEvent(True, keysyms.SHIFT_L),
                    KeyEvent(True, keysyms.TAB),
                    KeyEvent(False, keysyms.TAB),
                    KeyEvent(False, keysyms.SHIFT_L)]
        keysym = BUTTON_MAP.get(name)
        if keysym is None:
            raise PluginError(f"unknown remote button {name!r}")
        return [KeyEvent(True, keysym), KeyEvent(False, keysym)]


class RemoteControl(InteractionDevice):
    """A classic sofa remote, reborn as a universal input device."""

    kind = "remote"
    input_plugin_factory = RemoteButtonPlugin
    output_plugin_factory = None

    def build_descriptor(self) -> DeviceDescriptor:
        return DeviceDescriptor(
            device_id=self.device_id,
            kind=self.kind,
            screen=None,
            input_modes=frozenset({"ir"}),
            link=INFRARED_IRDA,
            tags=frozenset({"shared", "one_handed", "living_room"}),
        )

    # -- user actions -------------------------------------------------------

    def press(self, button: str) -> None:
        """Press a remote button (e.g. 'up', 'ok', '5')."""
        self.send_event({"type": "button", "button": button})

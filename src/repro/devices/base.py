"""Interaction device base class and the device-link wire format.

A device talks to the proxy over a byte pipe shaped by its bearer's
:class:`~repro.net.LinkProfile`:

* device -> proxy: JSON-encoded native events (taps, key presses,
  utterances, strokes) — small, like real input reports;
* proxy -> device: tagged frames — screen images (tag 0x01, a
  :class:`~repro.proxy.plugins.DeviceImage` blob, dominating the
  bandwidth) and bell notifications (tag 0x02, e.g. the microwave ding
  surfaced as a device beep).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.graphics.pixelformat import RGB565
from repro.graphics import ops
from repro.net.framing import FrameAssembler, encode_frame
from repro.net.link import LOOPBACK
from repro.net.pipe import Pipe, make_pipe
from repro.proxy.descriptors import DeviceDescriptor
from repro.proxy.plugins import DeviceImage
from repro.proxy.plugins import LINK_TAG_BELL, LINK_TAG_IMAGE
from repro.util.errors import ProxyError
from repro.util.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.proxy.proxy import UniIntProxy


class InteractionDevice:
    """A simulated interaction device.

    Subclasses set :attr:`input_plugin_factory` /
    :attr:`output_plugin_factory` (the plug-in modules uploaded to the
    proxy) and implement :meth:`build_descriptor`.
    """

    kind = "generic"
    input_plugin_factory: Optional[type] = None
    output_plugin_factory: Optional[type] = None

    def __init__(self, device_id: str, scheduler: Scheduler,
                 seed: int = 0) -> None:
        self.device_id = device_id
        self.scheduler = scheduler
        self.seed = seed
        self.descriptor: DeviceDescriptor = self.build_descriptor()
        self._pipe: Optional[Pipe] = None
        self._frames = FrameAssembler(on_frame=self._on_frame_blob)
        #: Most recent frame shown on the device screen (if any).
        self.screen_image: Optional[DeviceImage] = None
        self.frames_received = 0
        self.events_sent = 0
        self.bells_received = 0
        #: Test/demo hook fired when a new frame lands.
        self.on_frame: Optional[Callable[[DeviceImage], None]] = None
        #: Test/demo hook fired when the proxy forwards a bell (beep!).
        self.on_bell: Optional[Callable[[], None]] = None

    def build_descriptor(self) -> DeviceDescriptor:
        raise NotImplementedError

    # -- connection ----------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._pipe is not None and self._pipe.a.is_open

    def connect(self, proxy: "UniIntProxy") -> None:
        """Join the proxy over this device's bearer link."""
        if self._pipe is not None:
            raise ProxyError(f"device {self.device_id} already connected")
        link = self.descriptor.link if self.descriptor.link else LOOPBACK
        self._pipe = make_pipe(proxy.scheduler, link,
                               name=f"dev-{self.device_id}", seed=self.seed)
        self._pipe.a.on_receive = self._frames.feed
        proxy.register_device(self, self._pipe.b)

    def disconnect(self) -> None:
        if self._pipe is not None:
            self._pipe.close()
            self._pipe = None

    @property
    def link_stats(self):
        """Traffic counters of the device side of the link."""
        if self._pipe is None:
            raise ProxyError(f"device {self.device_id} is not connected")
        return self._pipe.a.stats

    # -- device -> proxy events ----------------------------------------------------

    def send_event(self, event: dict) -> None:
        """Transmit one native event to the proxy."""
        if self._pipe is None:
            raise ProxyError(f"device {self.device_id} is not connected")
        self.events_sent += 1
        self._pipe.a.send(encode_frame(
            json.dumps(event, sort_keys=True).encode("utf-8")))

    # -- proxy -> device frames -------------------------------------------------------

    def _on_frame_blob(self, blob: bytes) -> None:
        if not blob:
            raise ProxyError("empty device-link frame")
        tag, payload = blob[0], blob[1:]
        if tag == LINK_TAG_IMAGE:
            image = DeviceImage.decode(payload)
            self.screen_image = image
            self.frames_received += 1
            if self.on_frame is not None:
                self.on_frame(image)
        elif tag == LINK_TAG_BELL:
            self.bells_received += 1
            if self.on_bell is not None:
                self.on_bell()
        else:
            raise ProxyError(f"unknown device-link tag {tag}")

    def screen_luma(self) -> np.ndarray:
        """The current screen contents as (H, W) luma — for tests/demos."""
        image = self.screen_image
        if image is None:
            raise ProxyError(f"device {self.device_id} has no frame yet")
        if image.format == "mono1":
            return ops.unpack_mono(image.data, image.width, image.height)
        if image.format == "gray4":
            return ops.unpack_gray4(image.data, image.width, image.height)
        if image.format == "rgb565":
            rgb = RGB565.unpack(image.data, image.width, image.height)
            return rgb.astype(np.float64) @ np.asarray([0.299, 0.587, 0.114])
        if image.format == "rgb888":
            rgb = np.frombuffer(image.data, dtype=np.uint8).reshape(
                image.height, image.width, 3)
            return rgb.astype(np.float64) @ np.asarray([0.299, 0.587, 0.114])
        raise ProxyError(f"unknown screen format {image.format!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.device_id!r}>"

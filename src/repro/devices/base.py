"""Interaction device base class and the device-link wire format.

A device talks to the proxy over the flow-controlled
:class:`~repro.net.transport.Transport` stack, shaped by its bearer's
:class:`~repro.net.LinkProfile` — the same credit-watermark machinery the
server leg uses, so a 9600 bps phone screen gets bounded-queue coalescing
from the proxy's push path:

* device -> proxy: JSON-encoded native events (taps, key presses,
  utterances, strokes) — small, like real input reports;
* proxy -> device: tagged frames — screen images (tag 0x01, a
  :class:`~repro.proxy.plugins.DeviceImage` blob, dominating the
  bandwidth) and bell notifications (tag 0x02, e.g. the microwave ding
  surfaced as a device beep).

A device may be connected to several proxies at once (a shared wall panel
every resident's proxy can select): each connection is its own transport
pair plus frame assembler, and native events are broadcast to every
connected proxy — sessions that have not selected the device ignore them,
so at most one user's session acts on any event.
"""

from __future__ import annotations

import json
import random
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.graphics.pixelformat import RGB565
from repro.graphics import ops
from repro.net import TransportPair, make_transport_pair
from repro.net.framing import FrameAssembler, encode_frame
from repro.net.link import LOOPBACK
from repro.net.transport import Transport, TransportStats
from repro.proxy.descriptors import DeviceDescriptor
from repro.proxy.plugins import DeviceImage
from repro.proxy.plugins import LINK_TAG_BELL, LINK_TAG_IMAGE
from repro.util.errors import ProxyError
from repro.util.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.proxy.proxy import UniIntProxy

#: Back-compat alias for the factory's pair union.
LinkPair = TransportPair


class InteractionDevice:
    """A simulated interaction device.

    Subclasses set :attr:`input_plugin_factory` /
    :attr:`output_plugin_factory` (the plug-in modules uploaded to the
    proxy) and implement :meth:`build_descriptor`.
    """

    kind = "generic"
    input_plugin_factory: Optional[type] = None
    output_plugin_factory: Optional[type] = None

    def __init__(self, device_id: str, scheduler: Scheduler,
                 seed: int = 0) -> None:
        self.device_id = device_id
        self.scheduler = scheduler
        self.seed = seed
        self.descriptor: DeviceDescriptor = self.build_descriptor()
        #: One transport pair per connected proxy, keyed by proxy id;
        #: ``pair.a`` is always the device-side endpoint.
        self._pairs: dict[str, LinkPair] = {}
        self._assemblers: dict[str, FrameAssembler] = {}
        #: Most recent frame shown on the device screen (if any).
        self.screen_image: Optional[DeviceImage] = None
        self.frames_received = 0
        self.events_sent = 0
        self.bells_received = 0
        #: Test/demo hook fired when a new frame lands.
        self.on_frame: Optional[Callable[[DeviceImage], None]] = None
        #: Test/demo hook fired when the proxy forwards a bell (beep!).
        self.on_bell: Optional[Callable[[], None]] = None
        #: Self-healing: when set, a leg dropped by a transport failure is
        #: redialed with exponential backoff + jitter.  Deliberate
        #: :meth:`disconnect` calls are never retried.
        #: ``Home(resilience=True)`` enables this on every device it adds.
        self.auto_reconnect = False
        self.reconnect_base_s = 0.2
        self.reconnect_cap_s = 5.0
        self.reconnect_max_attempts = 8
        self.link_reconnects = 0
        self.link_reconnects_failed = 0
        #: Proxies we should redial (by proxy id), and the transport kind
        #: each leg was dialed with.  Entries survive a link failure and
        #: are removed only by a deliberate disconnect.
        self._proxies: dict[str, "UniIntProxy"] = {}
        self._transports: dict[str, str] = {}
        self._reconnect_rng = random.Random(
            repr(("device-reconnect", device_id, seed)))

    def build_descriptor(self) -> DeviceDescriptor:
        raise NotImplementedError

    # -- connection ----------------------------------------------------------

    @property
    def connected(self) -> bool:
        return any(pair.a.is_open for pair in self._pairs.values())

    @property
    def connected_proxies(self) -> tuple[str, ...]:
        """Ids of the proxies this device currently has a link to."""
        return tuple(sorted(self._pairs))

    @property
    def _pipe(self) -> Optional[LinkPair]:
        """Legacy accessor: the transport pair of a singly-connected device.

        ``None`` when disconnected; ambiguous (and therefore also ``None``)
        once the device is shared between several proxies — use
        :meth:`endpoint_for` / :meth:`link_stats_for` there.
        """
        if len(self._pairs) == 1:
            return next(iter(self._pairs.values()))
        return None

    def connect(self, proxy: "UniIntProxy",
                transport: str = "pipe") -> None:
        """Join a proxy over this device's bearer link.

        The leg rides the flow-controlled Transport stack: credit
        watermarks derive from the bearer's :class:`LinkProfile` whether
        the bytes move over the simulated pipe (``transport="pipe"``) or a
        real kernel socketpair (``transport="socket"``).
        """
        if proxy.scheduler is not self.scheduler:
            # events would fire on the wrong clock in a multi-scheduler
            # setup — the silent legacy behaviour of adopting the proxy's
            # scheduler hid exactly that bug
            raise ProxyError(
                f"device {self.device_id} was built on a different "
                f"scheduler than proxy {proxy.proxy_id!r}")
        if proxy.proxy_id in self._pairs:
            raise ProxyError(f"device {self.device_id} already connected "
                             f"to proxy {proxy.proxy_id!r}")
        link = self.descriptor.link if self.descriptor.link else LOOPBACK
        pair = make_transport_pair(
            self.scheduler, link,
            name=f"dev-{self.device_id}@{proxy.proxy_id}",
            kind=transport, seed=self.seed)
        assembler = FrameAssembler(on_frame=self._on_frame_blob)
        pair.a.on_receive = assembler.feed
        pair.a.on_close = (
            lambda proxy_id=proxy.proxy_id: self._on_link_closed(proxy_id))
        self._pairs[proxy.proxy_id] = pair
        self._assemblers[proxy.proxy_id] = assembler
        try:
            proxy.register_device(self, pair.b)
        except ProxyError:
            self._pairs.pop(proxy.proxy_id, None)
            self._assemblers.pop(proxy.proxy_id, None)
            pair.a.on_close = None
            pair.close()
            raise
        self._proxies[proxy.proxy_id] = proxy
        self._transports[proxy.proxy_id] = transport

    def disconnect(self, proxy_id: Optional[str] = None) -> None:
        """Drop the link to one proxy (or to all of them)."""
        proxy_ids = ([proxy_id] if proxy_id is not None
                     else list(self._pairs))
        for pid in proxy_ids:
            pair = self._pairs.pop(pid, None)
            self._assemblers.pop(pid, None)
            self._proxies.pop(pid, None)
            self._transports.pop(pid, None)
            if pair is not None:
                pair.a.on_close = None
                pair.close()

    def _on_link_closed(self, proxy_id: str) -> None:
        """The leg died under us (reset, unregister, proxy teardown)."""
        self._pairs.pop(proxy_id, None)
        self._assemblers.pop(proxy_id, None)
        proxy = self._proxies.get(proxy_id)
        if self.auto_reconnect and proxy is not None:
            self._schedule_redial(proxy, attempt=0)

    def _schedule_redial(self, proxy: "UniIntProxy", attempt: int) -> None:
        if attempt >= self.reconnect_max_attempts:
            self.link_reconnects_failed += 1
            return
        delay = min(self.reconnect_cap_s,
                    self.reconnect_base_s * (2 ** attempt))
        delay *= self._reconnect_rng.uniform(0.5, 1.5)
        self.scheduler.call_later(
            delay, lambda: self._redial(proxy, attempt))

    def _redial(self, proxy: "UniIntProxy", attempt: int) -> None:
        pid = proxy.proxy_id
        if (not self.auto_reconnect or self._proxies.get(pid) is not proxy
                or pid in self._pairs):
            return  # deliberately disconnected (or already relinked)
        try:
            self.connect(proxy, transport=self._transports.get(pid, "pipe"))
        except ProxyError:
            self._schedule_redial(proxy, attempt + 1)
            return
        self.link_reconnects += 1

    def endpoint_for(self, proxy_id: str) -> Transport:
        """The device-side transport endpoint of one proxy leg."""
        pair = self._pairs.get(proxy_id)
        if pair is None:
            raise ProxyError(f"device {self.device_id} is not connected "
                             f"to proxy {proxy_id!r}")
        return pair.a

    @property
    def link_stats(self) -> TransportStats:
        """Traffic counters of the device side of the (sole) link."""
        if not self._pairs:
            raise ProxyError(f"device {self.device_id} is not connected")
        if len(self._pairs) > 1:
            raise ProxyError(
                f"device {self.device_id} is connected to "
                f"{len(self._pairs)} proxies; use link_stats_for()")
        return next(iter(self._pairs.values())).a.stats

    def link_stats_for(self, proxy_id: str) -> TransportStats:
        """Traffic counters of the device side of one proxy leg."""
        return self.endpoint_for(proxy_id).stats

    # -- device -> proxy events ----------------------------------------------------

    def send_event(self, event: dict) -> None:
        """Transmit one native event to every connected proxy.

        Broadcast is safe: a proxy session that has not selected this
        device hears the event and ignores it, so only the owning user's
        session translates it into universal input.
        """
        if not self._pairs:
            raise ProxyError(f"device {self.device_id} is not connected")
        self.events_sent += 1
        payload = encode_frame(
            json.dumps(event, sort_keys=True).encode("utf-8"))
        for pair in self._pairs.values():
            if pair.a.is_open:
                pair.a.send(payload)

    # -- proxy -> device frames -------------------------------------------------------

    def _on_frame_blob(self, blob: bytes) -> None:
        if not blob:
            raise ProxyError("empty device-link frame")
        tag, payload = blob[0], blob[1:]
        if tag == LINK_TAG_IMAGE:
            image = DeviceImage.decode(payload)
            self.screen_image = image
            self.frames_received += 1
            if self.on_frame is not None:
                self.on_frame(image)
        elif tag == LINK_TAG_BELL:
            self.bells_received += 1
            if self.on_bell is not None:
                self.on_bell()
        else:
            raise ProxyError(f"unknown device-link tag {tag}")

    def screen_luma(self) -> np.ndarray:
        """The current screen contents as (H, W) luma — for tests/demos."""
        image = self.screen_image
        if image is None:
            raise ProxyError(f"device {self.device_id} has no frame yet")
        if image.format == "mono1":
            return ops.unpack_mono(image.data, image.width, image.height)
        if image.format == "gray4":
            return ops.unpack_gray4(image.data, image.width, image.height)
        if image.format == "rgb565":
            rgb = RGB565.unpack(image.data, image.width, image.height)
            return rgb.astype(np.float64) @ np.asarray([0.299, 0.587, 0.114])
        if image.format == "rgb888":
            rgb = np.frombuffer(image.data, dtype=np.uint8).reshape(
                image.height, image.width, 3)
            return rgb.astype(np.float64) @ np.asarray([0.299, 0.587, 0.114])
        raise ProxyError(f"unknown screen format {image.format!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.device_id!r}>"

"""Cellular phone: 128x128 1-bit screen, 12-key keypad, 9600 bps PDC link.

The keypad plug-in turns the 12 keys into *focus navigation*: because every
appliance panel is built from focusable widgets, arrow/Tab/Return coverage
is sufficient to drive any GUI — this is exactly how the paper's phone
client controls unmodified applications.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import InteractionDevice
from repro.graphics import ops
from repro.graphics.bitmap import Bitmap
from repro.graphics.region import Rect
from repro.net.link import CELLULAR_PDC
from repro.proxy.descriptors import DeviceDescriptor, ScreenSpec
from repro.proxy.plugins import (
    DeviceImage,
    InputPlugin,
    OutputPlugin,
    UniversalEvent,
)
from repro.uip import keysyms
from repro.uip.messages import KeyEvent
from repro.util.errors import PluginError

PHONE_WIDTH = 128
PHONE_HEIGHT = 128

#: Keypad key -> keysym for simple keys.
KEYPAD_MAP = {
    "2": keysyms.UP,
    "8": keysyms.DOWN,
    "4": keysyms.LEFT,
    "6": keysyms.RIGHT,
    "5": keysyms.RETURN,
    "0": keysyms.SPACE,
    "#": keysyms.ESCAPE,
    "*": keysyms.TAB,
    "3": keysyms.PAGE_UP,
    "9": keysyms.PAGE_DOWN,
}

VALID_KEYS = set(KEYPAD_MAP) | {"1", "7"}


def _press(keysym: int) -> list[KeyEvent]:
    return [KeyEvent(True, keysym), KeyEvent(False, keysym)]


class PhoneKeypadPlugin(InputPlugin):
    """12-key keypad -> universal key events."""

    def translate(self, event: dict) -> list[UniversalEvent]:
        if event.get("type") != "key":
            return []
        key = str(event.get("key"))
        if key not in VALID_KEYS:
            raise PluginError(f"unknown keypad key {key!r}")
        if key == "1":  # reverse focus: Shift+Tab chord
            return [KeyEvent(True, keysyms.SHIFT_L),
                    KeyEvent(True, keysyms.TAB),
                    KeyEvent(False, keysyms.TAB),
                    KeyEvent(False, keysyms.SHIFT_L)]
        if key == "7":  # home
            return _press(keysyms.HOME)
        return _press(KEYPAD_MAP[key])


class PhoneOutputPlugin(OutputPlugin):
    """Downscale to 128x128, Floyd-Steinberg to 1 bit, pack to bytes.

    Error diffusion wins on this tiny static screen: panel text stays far
    more legible than with ordered dithering at 1 bit.
    """

    def transform(self, frame: Bitmap, dirty: Rect) -> DeviceImage:
        view = self.fit_view(frame)
        target_w = max(1, int(frame.width * view.scale))
        target_h = max(1, int(frame.height * view.scale))
        scaled = ops.scale_box(frame, target_w, target_h)
        gray = ops.to_grayscale(scaled)
        dithered = ops.floyd_steinberg(gray, levels=2)
        canvas = np.zeros((self.screen.height, self.screen.width))
        canvas[view.offset_y:view.offset_y + target_h,
               view.offset_x:view.offset_x + target_w] = dithered
        return DeviceImage(self.screen.width, self.screen.height, "mono1",
                           ops.pack_mono(canvas))


class CellPhone(InteractionDevice):
    """A 2002 cellular phone used as a universal remote."""

    kind = "phone"
    input_plugin_factory = PhoneKeypadPlugin
    output_plugin_factory = PhoneOutputPlugin

    def build_descriptor(self) -> DeviceDescriptor:
        return DeviceDescriptor(
            device_id=self.device_id,
            kind=self.kind,
            screen=ScreenSpec(PHONE_WIDTH, PHONE_HEIGHT, "mono1"),
            input_modes=frozenset({"keypad"}),
            link=CELLULAR_PDC,
            tags=frozenset({"portable", "personal", "silent",
                            "always_carried"}),
        )

    # -- user actions -----------------------------------------------------------

    def press(self, key: str) -> None:
        """Press one keypad key ('0'-'9', '*', '#')."""
        self.send_event({"type": "key", "key": key})

    def dial(self, keys: str) -> None:
        """Press a sequence of keypad keys."""
        for key in keys:
            self.press(key)

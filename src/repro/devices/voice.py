"""Voice input device with a synthetic speech recogniser.

The paper's motivating scenario: hands busy cooking, switch input to
voice.  Real 2002 recognisers were vocabulary-constrained and error-prone,
so the simulator models both: a fixed command vocabulary and a seeded
recognition error model (drop or confuse).

The *device* does the recognising (like an era headset + DSP box); the
uploaded plug-in just maps recognised words to universal key events.
"""

from __future__ import annotations

import random

from repro.devices.base import InteractionDevice
from repro.net.link import BLUETOOTH_1
from repro.proxy.descriptors import DeviceDescriptor
from repro.proxy.plugins import InputPlugin, UniversalEvent
from repro.uip import keysyms
from repro.uip.messages import KeyEvent

#: Recognised words -> key sequences (None entries are chords).
VOCABULARY: dict[str, tuple[int, ...]] = {
    "next": (keysyms.TAB,),
    "previous": (),  # chord, handled specially
    "select": (keysyms.RETURN,),
    "ok": (keysyms.RETURN,),
    "cancel": (keysyms.ESCAPE,),
    "up": (keysyms.UP,),
    "down": (keysyms.DOWN,),
    "left": (keysyms.LEFT,),
    "right": (keysyms.RIGHT,),
    "more": (keysyms.RIGHT,),
    "less": (keysyms.LEFT,),
    "home": (keysyms.HOME,),
}


def _press(keysym: int) -> list[KeyEvent]:
    return [KeyEvent(True, keysym), KeyEvent(False, keysym)]


class VoiceCommandPlugin(InputPlugin):
    """Maps recognised vocabulary words to universal key events."""

    def translate(self, event: dict) -> list[UniversalEvent]:
        if event.get("type") != "voice":
            return []
        word = str(event.get("word", "")).lower()
        if word == "previous":
            return [KeyEvent(True, keysyms.SHIFT_L),
                    KeyEvent(True, keysyms.TAB),
                    KeyEvent(False, keysyms.TAB),
                    KeyEvent(False, keysyms.SHIFT_L)]
        keys = VOCABULARY.get(word)
        if not keys:
            return []  # out-of-vocabulary utterances are ignored
        out: list[UniversalEvent] = []
        for keysym in keys:
            out.extend(_press(keysym))
        return out


class VoiceInput(InteractionDevice):
    """A hands-free microphone + recogniser."""

    kind = "voice"
    input_plugin_factory = VoiceCommandPlugin
    output_plugin_factory = None

    def __init__(self, device_id: str, scheduler, seed: int = 0,
                 accuracy: float = 1.0) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1]: {accuracy}")
        self.accuracy = accuracy
        self._rng = random.Random(("voice", device_id, seed).__repr__())
        self.utterances = 0
        self.misrecognitions = 0
        #: Optional DDI speech front-end
        #: (:class:`repro.havi.ddi.DdiVoiceAssistant`): utterances outside
        #: the key-event vocabulary are forwarded to it, so free-form
        #: appliance phrases ("volume 40") ride the command spine with
        #: origin ``voice`` instead of being dropped.
        self.assistant = None
        super().__init__(device_id, scheduler, seed)

    def build_descriptor(self) -> DeviceDescriptor:
        return DeviceDescriptor(
            device_id=self.device_id,
            kind=self.kind,
            screen=None,
            input_modes=frozenset({"voice"}),
            link=BLUETOOTH_1,
            tags=frozenset({"hands_free", "eyes_free", "personal"}),
        )

    # -- user actions ------------------------------------------------------------

    def say(self, word: str) -> None:
        """Utter one word (or phrase); the recogniser may mishear it."""
        self.utterances += 1
        heard = self._recognise(word.lower())
        if heard is None:
            self.misrecognitions += 1
            return  # recogniser produced nothing
        if heard != word.lower():
            self.misrecognitions += 1
        if heard not in VOCABULARY and self.assistant is not None:
            self.assistant.say(heard)
            return
        self.send_event({"type": "voice", "word": heard})

    def _recognise(self, word: str) -> str | None:
        if self._rng.random() < self.accuracy:
            return word
        # failure mode: half drops, half confusions with vocabulary words
        if self._rng.random() < 0.5:
            return None
        candidates = sorted(set(VOCABULARY) - {word})
        return self._rng.choice(candidates)

"""Interaction devices (paper §2.2, component 4).

Each device simulates a piece of 2002-era interaction hardware with a
realistic capability envelope and bearer link, and carries the *plug-in
modules* it uploads to the UniInt proxy on selection:

=============  ======================  ==========================  =========
device         screen                  input                       bearer
=============  ======================  ==========================  =========
PDA            320x240 4-grey touch    stylus touch                802.11b
Cell phone     128x128 1-bit           12-key keypad               PDC 9600
Voice input    —                       speech (error model)        Bluetooth
IR remote      —                       buttons                     IrDA
TV display     720x480 RGB             —                           Ethernet
Wall display   1024x768 RGB            —                           Ethernet
Gesture pad    —                       strokes (recogniser)        Bluetooth
=============  ======================  ==========================  =========

Devices never touch appliance state directly: every interaction flows
through the proxy as universal events, which is the paper's whole point.
"""

from repro.devices.base import InteractionDevice
from repro.devices.pda import Pda, PdaOutputPlugin, PdaTouchPlugin
from repro.devices.phone import CellPhone, PhoneKeypadPlugin, PhoneOutputPlugin
from repro.devices.voice import VoiceInput, VoiceCommandPlugin, VOCABULARY
from repro.devices.remote import RemoteControl, RemoteButtonPlugin
from repro.devices.displays import (
    DisplayOutputPlugin,
    TvDisplay,
    WallDisplay,
)
from repro.devices.gesture import GesturePad, GesturePlugin

__all__ = [
    "CellPhone",
    "DisplayOutputPlugin",
    "GesturePad",
    "GesturePlugin",
    "InteractionDevice",
    "Pda",
    "PdaOutputPlugin",
    "PdaTouchPlugin",
    "PhoneKeypadPlugin",
    "PhoneOutputPlugin",
    "RemoteButtonPlugin",
    "RemoteControl",
    "TvDisplay",
    "VOCABULARY",
    "VoiceCommandPlugin",
    "VoiceInput",
    "WallDisplay",
]

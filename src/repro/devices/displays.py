"""Fixed displays: the TV panel and a wall display as output devices.

The paper's user may pick "television displays as his/her output
interaction devices" — the TV screen doubles as the GUI surface while a
phone or voice provides input.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import InteractionDevice
from repro.graphics import ops
from repro.graphics.bitmap import Bitmap
from repro.graphics.region import Rect
from repro.net.link import ETHERNET_100
from repro.proxy.descriptors import DeviceDescriptor, ScreenSpec
from repro.proxy.plugins import DeviceImage, OutputPlugin


class DisplayOutputPlugin(OutputPlugin):
    """Aspect-preserving fit to the panel, full RGB."""

    def transform(self, frame: Bitmap, dirty: Rect) -> DeviceImage:
        view = self.fit_view(frame)
        target_w = max(1, int(frame.width * view.scale))
        target_h = max(1, int(frame.height * view.scale))
        if view.scale == 1.0:
            scaled = frame
        elif view.scale < 1.0:
            scaled = ops.scale_box(frame, target_w, target_h)
        else:
            scaled = ops.scale_nearest(frame, target_w, target_h)
        canvas = np.zeros((self.screen.height, self.screen.width, 3),
                          dtype=np.uint8)
        canvas[view.offset_y:view.offset_y + target_h,
               view.offset_x:view.offset_x + target_w] = scaled.pixels
        return DeviceImage(self.screen.width, self.screen.height, "rgb888",
                           canvas.tobytes())


class TvDisplay(InteractionDevice):
    """The television panel as a GUI output surface (720x480)."""

    kind = "tv-display"
    input_plugin_factory = None
    output_plugin_factory = DisplayOutputPlugin

    def build_descriptor(self) -> DeviceDescriptor:
        return DeviceDescriptor(
            device_id=self.device_id,
            kind=self.kind,
            screen=ScreenSpec(720, 480, "rgb888"),
            input_modes=frozenset(),
            link=ETHERNET_100,
            tags=frozenset({"fixed", "shared", "visual", "large",
                            "living_room"}),
        )


class WallDisplay(InteractionDevice):
    """A large wall panel (1024x768) for shared spaces."""

    kind = "wall-display"
    input_plugin_factory = None
    output_plugin_factory = DisplayOutputPlugin

    def build_descriptor(self) -> DeviceDescriptor:
        return DeviceDescriptor(
            device_id=self.device_id,
            kind=self.kind,
            screen=ScreenSpec(1024, 768, "rgb888"),
            input_modes=frozenset(),
            link=ETHERNET_100,
            tags=frozenset({"fixed", "shared", "visual", "large",
                            "kitchen"}),
        )

"""Developer tooling: terminal rendering and event tracing."""

from repro.tools.ascii import bitmap_to_ascii, luma_to_ascii
from repro.tools.trace import EventTrace

__all__ = ["EventTrace", "bitmap_to_ascii", "luma_to_ascii"]

"""Event tracing: record what happened in a simulated home.

An :class:`EventTrace` subscribes to everything observable (HAVi events,
context switches) and produces a timestamped, deterministic log — useful
for debugging scenarios, diffing behaviour across versions, and the
examples' narratives.  Records are plain dicts; :meth:`to_jsonl` writes a
machine-readable transcript.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.havi.events import HaviEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.home import Home


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    detail: dict

    def format(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"t={self.time:10.4f}  {self.category:<18} {parts}"


@dataclass
class EventTrace:
    """Recorder attachable to a :class:`~repro.home.Home`."""

    records: list = field(default_factory=list)
    _home: Optional["Home"] = None
    _subscription: Optional[int] = None

    def attach(self, home: "Home",
               event_prefix: str = "") -> "EventTrace":
        """Start recording HAVi events and context switches."""
        if self._home is not None:
            raise RuntimeError("trace already attached")
        self._home = home
        self._subscription = home.network.events.subscribe(
            event_prefix, self._on_event)
        previous = home.context.on_switch

        def on_switch(record) -> None:
            self.records.append(TraceRecord(
                time=record.time,
                category="context.switch",
                detail={
                    "input": record.input_device,
                    "output": record.output_device,
                    "location": record.situation.location,
                    "changed": record.changed,
                },
            ))
            if previous is not None:
                previous(record)

        home.context.on_switch = on_switch
        return self

    def detach(self) -> None:
        if self._home is None:
            return
        if self._subscription is not None:
            self._home.network.events.unsubscribe(self._subscription)
        self._home = None
        self._subscription = None

    def _on_event(self, event: HaviEvent) -> None:
        assert self._home is not None
        self.records.append(TraceRecord(
            time=self._home.scheduler.now(),
            category=event.opcode,
            detail={"source": str(event.source), **{
                k: v for k, v in event.payload.items()
                if k in ("key", "value", "name", "device_class",
                         "connection_id")
            }},
        ))

    # -- output ---------------------------------------------------------------

    def filter(self, prefix: str) -> list:
        return [r for r in self.records if r.category.startswith(prefix)]

    def format(self) -> str:
        return "\n".join(record.format() for record in self.records)

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps({"t": record.time, "category": record.category,
                        **record.detail}, sort_keys=True, default=str)
            for record in self.records)

    def __len__(self) -> int:
        return len(self.records)

"""Terminal rendering of framebuffers and device screens.

Examples use this to show "what the PDA sees" without image viewers: a
bitmap is downsampled and mapped onto a luminance ramp of ASCII glyphs
(two characters per pixel to compensate for terminal cell aspect ratio).
"""

from __future__ import annotations

import numpy as np

from repro.graphics import ops
from repro.graphics.bitmap import Bitmap

#: Dark -> light glyph ramp.
RAMP = " .:-=+*#%@"


def luma_to_ascii(luma: np.ndarray, width: int = 72) -> str:
    """Render an (H, W) luma array as ASCII art."""
    if luma.ndim != 2:
        raise ValueError(f"expected (H, W) luma, got shape {luma.shape}")
    height, source_width = luma.shape
    columns = min(width, source_width)
    # terminal cells are ~2x taller than wide; halve the row count
    rows = max(1, round(height * columns / source_width / 2))
    ys = (np.arange(rows) * height) // rows
    xs = (np.arange(columns) * source_width) // columns
    sampled = luma[ys[:, None], xs[None, :]]
    indices = np.clip(sampled / 255.0 * (len(RAMP) - 1), 0,
                      len(RAMP) - 1).astype(int)
    ramp = np.asarray(list(RAMP))
    return "\n".join("".join(ramp[row]) for row in indices)


def bitmap_to_ascii(bitmap: Bitmap, width: int = 72) -> str:
    """Render an RGB bitmap as ASCII art (via luma)."""
    return luma_to_ascii(ops.to_grayscale(bitmap), width)

"""Experiment report generator.

Turns a ``pytest benchmarks/ --benchmark-only --benchmark-json=FILE`` dump
into the per-experiment tables recorded in EXPERIMENTS.md:

.. code-block:: console

   $ pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
   $ python -m repro.tools.report bench.json

Benchmarks are grouped by source file (one file per experiment); each row
shows the timing mean plus every ``extra_info`` metric the benchmark
attached (bytes, ratios, modelled latencies).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import OrderedDict

#: Experiment titles keyed by benchmark file stem.
EXPERIMENT_TITLES = {
    "bench_encodings": "E1 - thin-client encodings on panel frames",
    "bench_transforms": "E2 - output plug-in adaptation per device",
    "bench_input_plugins": "E3 - input plug-in translation throughput",
    "bench_end_to_end": "E4 - end-to-end interaction latency",
    "bench_switching": "E5 - dynamic device switching",
    "bench_home_scale": "E6 - uniform control at scale",
    "bench_bandwidth": "E7 - session bandwidth per device class",
    "bench_ddi_vs_uip": "E9 - DDI (semantic) vs universal (pixels)",
    "bench_ablations": "Ablations A1-A4 - design choices",
}


def _format_time(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def _short_name(fullname: str) -> str:
    name = fullname.split("::")[-1]
    return name.removeprefix("test_")


def group_benchmarks(data: dict) -> "OrderedDict[str, list]":
    """Benchmarks grouped by experiment file, in E-number order."""
    groups: "OrderedDict[str, list]" = OrderedDict(
        (stem, []) for stem in EXPERIMENT_TITLES)
    for bench in data.get("benchmarks", []):
        stem = bench["fullname"].split("::")[0]
        stem = stem.rsplit("/", 1)[-1].removesuffix(".py")
        groups.setdefault(stem, []).append(bench)
    return OrderedDict((k, v) for k, v in groups.items() if v)


def render_report(data: dict) -> str:
    """The full report as text."""
    lines: list[str] = []
    machine = data.get("machine_info", {})
    lines.append("UNIVERSAL INTERACTION - EXPERIMENT REPORT")
    lines.append(f"python {machine.get('python_version', '?')} on "
                 f"{machine.get('machine', '?')}")
    for stem, benches in group_benchmarks(data).items():
        title = EXPERIMENT_TITLES.get(stem, stem)
        lines.append("")
        lines.append(title)
        lines.append("-" * len(title))
        for bench in sorted(benches, key=lambda b: b["fullname"]):
            mean = _format_time(bench["stats"]["mean"])
            extras = bench.get("extra_info", {})
            extra_text = "  ".join(
                f"{key}={value}" for key, value in sorted(extras.items()))
            lines.append(f"  {_short_name(bench['fullname']):<48} "
                         f"{mean:>10}  {extra_text}")
    lines.append("")
    lines.append(f"total benchmarks: "
                 f"{len(data.get('benchmarks', []))}")
    return "\n".join(lines)


def render_command_journal(log, limit: int = 40) -> str:
    """The per-home command journal as a text table.

    ``log`` is a :class:`repro.app.commands.CommandLog` (e.g.
    ``home.command_log``); ``limit`` caps the rows to the most recent
    commands still in the ring.  Counters always cover the full history.
    """
    stats = log.stats()
    lines: list[str] = []
    lines.append("HOME COMMAND JOURNAL")
    terminal = "  ".join(f"{state}={count}" for state, count
                         in sorted(stats["terminal"].items()))
    origins = "  ".join(f"{origin}={count}" for origin, count
                        in sorted(stats["by_origin"].items()))
    lines.append(f"submitted: {stats['submitted']}  ({terminal})")
    lines.append(f"origins:   {origins or '(none)'}")
    lines.append(f"{'id':>5} {'origin':<7} {'opcode':<18} "
                 f"{'state':<10} {'status':<12} latency")
    rows = list(log)[-limit:]
    for command in rows:
        row = command.describe()
        latency = ("-" if row["latency_s"] is None
                   else _format_time(row["latency_s"]))
        lines.append(f"{row['id']:>5} {row['origin']:<7} "
                     f"{row['opcode']:<18} {row['state']:<10} "
                     f"{row['status'] or '-':<12} {latency}")
    if len(log) > limit:
        lines.append(f"  ... {len(log) - limit} older in ring, "
                     f"{stats['submitted'] - len(log)} rotated out")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render EXPERIMENTS-style tables from a "
                    "pytest-benchmark JSON dump.")
    parser.add_argument("json_file", help="output of --benchmark-json")
    args = parser.parse_args(argv)
    try:
        with open(args.json_file) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read {args.json_file}: {error}", file=sys.stderr)
        return 1
    print(render_report(data))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())

"""HomeApplianceApplication: discovery-driven composed control panels."""

from __future__ import annotations

from typing import Optional

from repro.app.commands import CommandLog, CommandSpine
from repro.app.composer import compose_ui
from repro.app.handles import ApplianceHandle, FcmHandle
from repro.havi.capabilities import CapabilityDescriptor, DescriptorCache
from repro.havi.element import SoftwareElement
from repro.havi.events import HaviEvent
from repro.havi.manager import HomeNetwork
from repro.havi.messaging import HaviMessage
from repro.havi.registry import Comparison
from repro.havi.seid import SEID
from repro.toolkit import TabPanel, UIWindow
from repro.util.ids import guid_from_seed


class HomeApplianceApplication:
    """The GUI application controlling every appliance on the network.

    Lifecycle: on every ``dcm.installed`` / ``dcm.uninstalled`` event the
    application re-queries the registry, rebuilds its appliance handles and
    regenerates the composed UI; ``fcm.state.*`` events keep panel widgets
    synchronised with appliance state regardless of who changed it.
    """

    def __init__(self, network: HomeNetwork, window: UIWindow,
                 app_name: str = "uniint-home-app",
                 dynamic_panels: bool = True,
                 command_log: Optional[CommandLog] = None) -> None:
        self.network = network
        self.window = window
        self.app_name = app_name
        #: False selects the legacy hand-written panel builders and DDI
        #: specs instead of descriptor-generated surfaces.
        self.dynamic_panels = dynamic_panels
        self.element = SoftwareElement(
            SEID(guid_from_seed(f"app/{app_name}"), 0), network.messaging)
        self.element.attach()
        #: Every actuation this application makes — widget, programmatic
        #: or internal — flows through one command spine; multi-view homes
        #: share the home's journal by passing ``command_log``.
        self.command_log = command_log if command_log is not None \
            else CommandLog()
        self.spine = CommandSpine(self.element, self.command_log)
        self.appliances: list[ApplianceHandle] = []
        self._handles_by_seid: dict[SEID, FcmHandle] = {}
        #: Descriptors keyed by (guid, handle, version); survives rebuilds
        #: so a UI regeneration normally needs zero descriptor round-trips.
        self.descriptors = DescriptorCache()
        self._descriptor_fetches: set[SEID] = set()
        self._descriptor_failed: set[tuple] = set()
        self.rebuild_count = 0
        self.closed = False
        self.on_bell = None  # demo hook for appliance.bell events
        self._subscriptions = [
            network.events.subscribe("dcm.", self._on_dcm_change),
            network.events.subscribe("fcm.state.", self._on_fcm_state),
            network.events.subscribe("appliance.bell", self._on_bell_event),
        ]
        self.rebuild()

    def close(self) -> None:
        """Stop tracking the network: unsubscribe and release the SEID.

        A multi-view home runs one application per resident view; when a
        resident leaves, their application must stop rebuilding on
        discovery churn and free its network address for reuse.
        """
        if self.closed:
            return
        self.closed = True
        for ident in self._subscriptions:
            self.network.events.unsubscribe(ident)
        self._subscriptions = []
        if self.window.root is not None:
            self.window.root.teardown()
        self.element.detach()

    # -- discovery -------------------------------------------------------------

    def _discover(self) -> list[ApplianceHandle]:
        registry = self.network.registry
        appliances: dict[str, ApplianceHandle] = {}
        for dcm_seid in registry.query(
                Comparison("element.type", "==", "dcm")):
            attributes = registry.get_attributes(dcm_seid)
            guid = str(attributes["device.guid"])
            appliances[guid] = ApplianceHandle(
                guid=guid,
                name=str(attributes["device.name"]),
                device_class=str(attributes["device.class"]),
            )
        for fcm_seid in registry.query(
                Comparison("element.type", "==", "fcm")):
            attributes = registry.get_attributes(fcm_seid)
            guid = str(attributes["device.guid"])
            appliance = appliances.get(guid)
            if appliance is None:
                continue  # FCM without its DCM mid-hotplug; skip
            handle = FcmHandle(self.element, fcm_seid, attributes,
                               spine=self.spine)
            appliance.add(handle)
        return sorted(appliances.values(), key=lambda a: (a.name, a.guid))

    def rebuild(self) -> None:
        """Regenerate handles and the composed UI from the registry.

        ``set_root`` relayouts and damages the whole window, so exactly
        the surfaces showing *this* view repaint in full — other users'
        views are untouched until their own application rebuilds.
        """
        previous_guid, previous_index = self._active_tab()
        self.appliances = self._discover()
        self._handles_by_seid = {
            handle.seid: handle
            for appliance in self.appliances
            for handle in appliance.fcms
        }
        if self.dynamic_panels:
            self._attach_descriptors()
        root = compose_ui(self.appliances,
                          dynamic_panels=self.dynamic_panels)
        self.window.set_root(root)
        self._restore_tab(previous_guid, previous_index)
        for handle in self._handles_by_seid.values():
            handle.refresh()
        self.rebuild_count += 1

    # -- capability descriptors ------------------------------------------------

    def _attach_descriptors(self) -> None:
        """Give every handle its cached descriptor; fetch the missing ones.

        Fetches are asynchronous (``capabilities.get`` over HAVi
        messaging); this rebuild proceeds with whatever the cache holds,
        and ONE further rebuild fires when the last outstanding reply
        lands, so N new appliances cost one regeneration, not N.
        """
        missing = []
        for handle in self._handles_by_seid.values():
            if handle.capability_version <= 0:
                continue
            handle.descriptor = self.descriptors.get(
                handle.device_guid, handle.seid.handle,
                handle.capability_version)
            if handle.descriptor is None:
                missing.append(handle)
        for handle in missing:
            self._fetch_descriptor(handle)

    def _fetch_descriptor(self, handle: FcmHandle) -> None:
        key = (handle.device_guid, handle.seid.handle,
               handle.capability_version)
        if handle.seid in self._descriptor_fetches:
            return
        if key in self._descriptor_failed:
            return  # don't re-fetch (and re-rebuild) a known-bad source
        self._descriptor_fetches.add(handle.seid)

        def absorb(message: HaviMessage) -> None:
            self._descriptor_fetches.discard(handle.seid)
            if self.closed:
                return
            if message.status == "SUCCESS":
                descriptor = CapabilityDescriptor.from_dict(
                    message.payload["descriptor"])
                self.descriptors.put(handle.device_guid,
                                     handle.seid.handle,
                                     descriptor.version, descriptor)
            else:
                self._descriptor_failed.add(key)
            if not self._descriptor_fetches:
                self.rebuild()

        handle.command("capabilities.get", on_reply=absorb, origin="app")

    def _active_tab(self) -> tuple[Optional[str], Optional[int]]:
        """(guid, index) of the active tab before a rebuild, if any."""
        if self.window.root is None:
            return None, None
        tabs = self._tabs()
        if tabs is None or not 0 <= tabs.active < len(self.appliances):
            return None, None
        return self.appliances[tabs.active].guid, tabs.active

    def _restore_tab(self, guid: Optional[str],
                     fallback_index: Optional[int] = None) -> None:
        tabs = self._tabs()
        if tabs is None:
            return
        if guid is not None:
            for index, appliance in enumerate(self.appliances):
                if appliance.guid == guid:
                    tabs.set_active(index)
                    return
        if fallback_index is not None:
            # The appliance whose tab was active is gone (hot-unplugged):
            # fall back to the tab that slid into its slot — the next
            # appliance in order, or the new last tab (set_active clamps) —
            # instead of silently jumping home to tab 0.
            tabs.set_active(fallback_index)

    def _tabs(self) -> Optional[TabPanel]:
        root = self.window.root
        if isinstance(root, TabPanel):
            return root
        if root is not None:
            found = root.find("appliance-tabs")
            if isinstance(found, TabPanel):
                return found
        return None

    # -- convenience lookups --------------------------------------------------------

    def appliance_by_name(self, name: str) -> Optional[ApplianceHandle]:
        for appliance in self.appliances:
            if appliance.name == name:
                return appliance
        return None

    def handle_for(self, device_name: str,
                   fcm_type: str) -> Optional[FcmHandle]:
        appliance = self.appliance_by_name(device_name)
        if appliance is None:
            return None
        return appliance.fcm_by_type(fcm_type)

    def show_appliance(self, name: str) -> bool:
        """Bring the named appliance's tab to the front."""
        tabs = self._tabs()
        if tabs is None:
            return len(self.appliances) == 1 and (
                self.appliances[0].name == name)
        for index, appliance in enumerate(self.appliances):
            if appliance.name == name:
                tabs.set_active(index)
                return True
        return False

    # -- event plumbing ----------------------------------------------------------------

    def _on_dcm_change(self, event: HaviEvent) -> None:
        if event.opcode == "dcm.uninstalled":
            # hot-unplug / bus reset: a device re-appearing behind this
            # guid may be a different appliance entirely (guid reuse), so
            # its cached descriptors must not survive the departure
            guid = str(event.payload.get("guid", ""))
            if guid:
                self.descriptors.invalidate_guid(guid)
                self._descriptor_failed = {
                    key for key in self._descriptor_failed
                    if key[0] != guid}
        self.rebuild()

    def _on_fcm_state(self, event: HaviEvent) -> None:
        seid_text = event.payload.get("seid")
        if seid_text is None:
            return
        handle = self._handles_by_seid.get(SEID.parse(str(seid_text)))
        if handle is not None:
            handle.on_event(event)

    def _on_bell_event(self, event: HaviEvent) -> None:
        if self.on_bell is not None:
            self.on_bell(event)

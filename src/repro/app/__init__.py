"""The home appliance application (paper §2.2, component 1).

"Home appliance applications generate a control panel for currently
available appliances to control them. [...] the application generates the
composed GUI for TV and VCR if both TV and VCR are currently available."

:class:`HomeApplianceApplication` watches the HAVi registry, builds a
per-FCM control panel for every appliance on the network (one tab per
appliance when several are present), binds widgets to FCM commands, and
keeps the widgets live by subscribing to ``fcm.state.*`` events.

Crucially, the application is written **only** against the widget toolkit
and HAVi — it contains no knowledge of the universal interaction protocol,
proxies or devices.  That it is nevertheless controllable from a phone
keypad or by voice is the paper's transparency result.
"""

from repro.app.commands import (
    Command,
    CommandError,
    CommandLog,
    CommandSpine,
    CommandState,
)
from repro.app.handles import ApplianceHandle, FcmHandle
from repro.app.panels import (
    PANEL_BUILDERS,
    build_capability_panel,
    build_fcm_panel,
)
from repro.app.composer import assign_guid_prefixes, compose_ui
from repro.app.application import HomeApplianceApplication
from repro.app.monitor import StatusMonitorApplication

__all__ = [
    "ApplianceHandle",
    "Command",
    "CommandError",
    "CommandLog",
    "CommandSpine",
    "CommandState",
    "FcmHandle",
    "HomeApplianceApplication",
    "PANEL_BUILDERS",
    "StatusMonitorApplication",
    "assign_guid_prefixes",
    "build_capability_panel",
    "build_fcm_panel",
    "compose_ui",
]

"""Composed GUI generation (paper §2.2).

"the application generates the composed GUI for TV and VCR if both TV and
VCR are currently available": with one appliance the UI is that appliance's
panel; with several, a tab per appliance.
"""

from __future__ import annotations

from repro.app.handles import ApplianceHandle
from repro.app.panels import build_fcm_panel
from repro.toolkit import Column, Label, TabPanel
from repro.toolkit.widget import Widget


def build_appliance_page(appliance: ApplianceHandle) -> Widget:
    """One appliance's page: its FCM panels stacked vertically."""
    page = Column(padding=2, spacing=3)
    page.widget_id = f"page.{appliance.guid[:8]}"
    for handle in appliance.fcms:
        page.add(build_fcm_panel(handle))
    return page


def compose_ui(appliances: list[ApplianceHandle]) -> Widget:
    """The whole application UI for the currently available appliances."""
    if not appliances:
        empty = Column()
        notice = Label("No appliances available", centered=True, title=True)
        notice.widget_id = "no-appliances"
        empty.add(notice)
        return empty
    if len(appliances) == 1:
        return build_appliance_page(appliances[0])
    tabs = TabPanel()
    tabs.widget_id = "appliance-tabs"
    for appliance in appliances:
        tabs.add_page(appliance.name, build_appliance_page(appliance))
    return tabs

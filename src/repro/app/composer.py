"""Composed GUI generation (paper §2.2).

"the application generates the composed GUI for TV and VCR if both TV and
VCR are currently available": with one appliance the UI is that appliance's
panel; with several, a tab per appliance.

Before building, the composer assigns each appliance its GUID prefix for
widget/page ids — normally the first 8 hex digits, lengthened uniformly
when two devices collide on them (:func:`repro.util.ids.guid_prefixes`).
"""

from __future__ import annotations

from repro.app.handles import ApplianceHandle
from repro.app.panels import build_fcm_panel
from repro.toolkit import Column, Label, TabPanel
from repro.toolkit.widget import Widget
from repro.util.ids import guid_prefixes


def assign_guid_prefixes(appliances: list[ApplianceHandle]) -> None:
    """Give every appliance (and its FCM handles) a collision-free prefix."""
    prefixes = guid_prefixes([appliance.guid for appliance in appliances])
    for appliance in appliances:
        prefix = prefixes.get(appliance.guid, appliance.guid[:8])
        appliance.guid_prefix = prefix
        for handle in appliance.fcms:
            handle.guid_prefix = prefix


def build_appliance_page(appliance: ApplianceHandle,
                         dynamic_panels: bool = True) -> Widget:
    """One appliance's page: its FCM panels stacked vertically."""
    page = Column(padding=2, spacing=3)
    page.widget_id = f"page.{appliance.guid_prefix}"
    for handle in appliance.fcms:
        page.add(build_fcm_panel(handle, dynamic=dynamic_panels))
    return page


def compose_ui(appliances: list[ApplianceHandle],
               dynamic_panels: bool = True) -> Widget:
    """The whole application UI for the currently available appliances."""
    assign_guid_prefixes(appliances)
    if not appliances:
        empty = Column()
        notice = Label("No appliances available", centered=True, title=True)
        notice.widget_id = "no-appliances"
        empty.add(notice)
        return empty
    if len(appliances) == 1:
        return build_appliance_page(appliances[0], dynamic_panels)
    tabs = TabPanel()
    tabs.widget_id = "appliance-tabs"
    for appliance in appliances:
        tabs.add_page(appliance.name,
                      build_appliance_page(appliance, dynamic_panels))
    return tabs

"""A second appliance application: the home energy/status monitor.

The paper's third characteristic says *any* application written against a
traditional toolkit gains universal interaction for free.  The composed
control panel proves it once; this monitor proves it is a property of the
architecture, not of one app: a completely different application (a live
status board with no control widgets except per-appliance standby buttons)
runs on the same window system and is equally drivable from any device.
"""

from __future__ import annotations

from typing import Optional

from repro.app.commands import CommandLog, CommandSpine
from repro.havi.element import SoftwareElement
from repro.havi.events import HaviEvent
from repro.havi.manager import HomeNetwork
from repro.havi.registry import Comparison
from repro.havi.seid import SEID
from repro.toolkit import Button, Column, Grid, Label, UIWindow
from repro.util.ids import guid_from_seed

#: Rough standby/active draw per device class, watts (for the total row).
_WATTS = {
    "tv": (3, 90), "vcr": (4, 20), "amplifier": (2, 45), "dvd": (2, 12),
    "aircon": (5, 900), "light": (0, 60), "microwave": (2, 1100),
}


class StatusMonitorApplication:
    """Live per-appliance power/status board with standby-all control."""

    def __init__(self, network: HomeNetwork, window: UIWindow,
                 app_name: str = "status-monitor",
                 command_log: Optional[CommandLog] = None) -> None:
        self.network = network
        self.window = window
        self.element = SoftwareElement(
            SEID(guid_from_seed(f"app/{app_name}"), 0), network.messaging)
        self.element.attach()
        self.spine = CommandSpine(self.element, command_log)
        self._power: dict[str, bool] = {}     # guid -> power
        self._names: dict[str, str] = {}
        self._classes: dict[str, str] = {}
        self._power_seids: dict[str, SEID] = {}
        self._rows: dict[str, Label] = {}
        self.total_label: Optional[Label] = None
        network.events.subscribe("dcm.", lambda e: self.rebuild())
        network.events.subscribe("fcm.state.power", self._on_power)
        self.rebuild()

    # -- discovery ---------------------------------------------------------

    def _scan(self) -> None:
        registry = self.network.registry
        self._names.clear()
        self._classes.clear()
        self._power_seids.clear()
        for seid in registry.query(Comparison("element.type", "==", "dcm")):
            attributes = registry.get_attributes(seid)
            guid = str(attributes["device.guid"])
            self._names[guid] = str(attributes["device.name"])
            self._classes[guid] = str(attributes["device.class"])
            self._power.setdefault(guid, False)
        for seid in registry.query(Comparison("element.type", "==", "fcm")):
            attributes = registry.get_attributes(seid)
            guid = str(attributes["device.guid"])
            # the first FCM of a device that exposes power.set is its switch
            if guid not in self._power_seids:
                self._power_seids[guid] = seid
        # forget departed appliances
        for guid in [g for g in self._power if g not in self._names]:
            del self._power[guid]

    # -- UI --------------------------------------------------------------------

    def rebuild(self) -> None:
        self._scan()
        root = Column()
        title = Label("HOME STATUS MONITOR", centered=True, title=True)
        root.add(title)
        grid = Grid(columns=3)
        self._rows.clear()
        for guid in sorted(self._names, key=lambda g: self._names[g]):
            grid.add(Label(self._names[guid]))
            grid.add(Label(self._classes[guid]))
            status = Label(self._status_text(guid))
            status.widget_id = f"monitor.{guid[:8]}.status"
            grid.add(status)
            self._rows[guid] = status
        root.add(grid)
        self.total_label = Label(self._total_text(), centered=True)
        self.total_label.widget_id = "monitor.total"
        root.add(self.total_label)
        standby = Button("All standby", on_click=lambda w: self.standby_all())
        standby.widget_id = "monitor.standby-all"
        root.add(standby)
        self.window.set_root(root)

    def _status_text(self, guid: str) -> str:
        return "ON" if self._power.get(guid) else "standby"

    def _total_text(self) -> str:
        total = 0
        for guid, powered in self._power.items():
            standby_w, active_w = _WATTS.get(self._classes.get(guid, ""),
                                             (2, 50))
            total += active_w if powered else standby_w
        return f"estimated draw: {total} W"

    # -- events ----------------------------------------------------------------------

    def _on_power(self, event: HaviEvent) -> None:
        guid = str(event.payload.get("device_guid", ""))
        if guid not in self._names:
            return
        self._power[guid] = bool(event.payload.get("value"))
        row = self._rows.get(guid)
        if row is not None:
            row.text = self._status_text(guid)
        if self.total_label is not None:
            self.total_label.text = self._total_text()

    # -- control -----------------------------------------------------------------------

    def standby_all(self) -> list:
        """Power-off every appliance that exposes a power switch; returns
        the tracked commands."""
        return [self.spine.submit(seid, "power.set", {"on": False},
                                  origin="widget")
                for seid in self._power_seids.values()]

    @property
    def watts(self) -> int:
        return int(self._total_text().split()[2])
